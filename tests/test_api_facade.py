"""The ``repro.api`` construction facade."""

import dataclasses

import pytest

from repro.api import (
    MetricsSpec,
    SYSTEM_KINDS,
    SystemConfig,
    TraceSpec,
    build_system,
)
from repro.core.platform import (
    M3Platform,
    M3vPlatform,
    M3xPlatform,
    PlatformConfig,
)
from repro.sim import engine


def _small(kind, **layers):
    return SystemConfig(kind=kind, n_proc_tiles=2, n_mem_tiles=1, **layers)


# -- building -----------------------------------------------------------------

@pytest.mark.parametrize("kind,cls", [("m3v", M3vPlatform),
                                      ("m3", M3Platform),
                                      ("m3x", M3xPlatform)])
def test_build_system_tiled_kinds(kind, cls):
    system = build_system(_small(kind))
    assert type(system.impl) is cls
    assert system.kind == kind
    assert system.platform is system.impl
    assert system.sim is system.impl.sim
    # attribute fall-through: a System drops in wherever a plat was used
    assert system.controller is system.impl.controller
    assert system.now_us == system.impl.now_us


def test_build_system_linux_kind():
    from repro.linuxsim import LinuxMachine

    system = build_system(SystemConfig(kind="linux", with_net=True))
    assert type(system.impl) is LinuxMachine
    assert system.machine is system.impl
    assert system.sim is system.impl.sim


def test_keyword_overrides_patch_the_config():
    system = build_system(_small("m3v"), n_proc_tiles=3)
    assert system.config.n_proc_tiles == 3
    assert len(system.platform.proc_tile_ids) == 3


# -- the config object --------------------------------------------------------

def test_config_is_frozen():
    config = _small("m3v")
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.kind = "m3x"


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown system kind"):
        SystemConfig(kind="windows")
    assert set(SYSTEM_KINDS) == {"m3v", "m3", "m3x", "linux"}


def test_with_returns_a_derived_config():
    base = _small("m3v")
    derived = base.with_(kind="m3x", n_proc_tiles=5)
    assert (derived.kind, derived.n_proc_tiles) == ("m3x", 5)
    assert (base.kind, base.n_proc_tiles) == ("m3v", 2)


def test_platform_config_round_trips_through_from_platform():
    pc = PlatformConfig(n_proc_tiles=3, n_mem_tiles=1)
    assert SystemConfig.from_platform("m3x", pc).platform_config() == pc


# -- layer precedence and cleanup ---------------------------------------------

def test_installed_tracer_wins_over_config_spec():
    from repro.sim.trace import capture

    with capture() as tracer:
        system = build_system(_small("m3v", trace=TraceSpec()))
        assert system.tracer is tracer
        assert system.sim.tracer is tracer
    assert engine._default_tracer is None


def test_config_layers_do_not_leak_into_engine_defaults():
    system = build_system(_small("m3v", trace=TraceSpec(record=True),
                                 metrics=MetricsSpec()))
    assert engine._default_tracer is None
    assert engine._default_metrics is None
    # ...but the built simulator latched them
    assert system.sim.tracer is system.tracer
    assert system.sim.metrics is system.metrics
    assert system.tracer is not None and system.metrics is not None


def test_metrics_spec_with_spans_attaches_a_collector():
    system = build_system(_small("m3v", metrics=MetricsSpec(spans=True)))
    assert system.spans is not None

    def prog(api):
        yield from api.compute(1000)

    act = system.run_proc(system.controller.spawn("worker", 0, prog))
    system.sim.run_until_event(act.exit_event, limit=10**12)
    system.spans.finish()
    assert system.spans.of_state("running")
    assert system.metrics.counter_value("tile0/tilemux/ctx_switches") > 0


# -- the legacy builders are gone ---------------------------------------------

def test_legacy_builders_removed():
    """The PR-4 ``build_m3v``/``build_m3``/``build_m3x`` shims are
    deleted; ``build_system`` is the only construction entry point."""
    import repro
    import repro.core
    import repro.core.platform as platform_mod

    for name in ("build_m3v", "build_m3", "build_m3x"):
        assert not hasattr(platform_mod, name)
        assert not hasattr(repro.core, name)
        with pytest.raises(AttributeError):
            getattr(repro, name)


def _rpc_digest(build):
    """Trace digest of one remote ping-pong on a freshly built system."""
    from repro.core.exps.common import rendezvous
    from repro.sim.trace import capture
    from repro.testing.golden import digest

    env = {}
    result = {}

    def server(api):
        yield from rendezvous(api, env, "s_rep")
        msg = yield from api.recv(env["s_rep"])
        yield from api.reply(env["s_rep"], msg, data=msg.data * 2, size=16)

    def client(api):
        yield from rendezvous(api, env, "c_sep")
        value = yield from api.call(env["c_sep"], env["c_rep"],
                                    data=21, size=16)
        result["value"] = value

    with capture(exclude=("evq_pop",)) as tracer:
        plat = build()
        ctrl = plat.controller
        s = plat.run_proc(ctrl.spawn("server", 1, server))
        c = plat.run_proc(ctrl.spawn("client", 0, client))
        sep, rep, reply_ep = plat.run_proc(ctrl.wire_channel(c, s))
        env.update(s_rep=rep, c_sep=sep, c_rep=reply_ep)
        plat.sim.run_until_event(c.exit_event, limit=10**13)
    assert result["value"] == 42
    return digest(tracer)


@pytest.mark.parametrize("kind", ["m3v", "m3x"])
def test_from_platform_builds_the_same_system_as_direct_config(kind):
    def via_from_platform():
        pc = PlatformConfig(n_proc_tiles=4, n_mem_tiles=1)
        return build_system(SystemConfig.from_platform(kind, pc))

    def via_facade():
        return build_system(SystemConfig(kind=kind, n_proc_tiles=4,
                                         n_mem_tiles=1))

    assert _rpc_digest(via_from_platform) == _rpc_digest(via_facade)


# -- metrics must not perturb simulation --------------------------------------

@pytest.mark.golden
def test_fig6_golden_digest_unchanged_with_metrics_enabled():
    from repro.obs import capture_metrics
    from repro.testing.golden import digest, load_golden, record_trace

    with capture_metrics() as m:
        tracer = record_trace("fig6")
    assert digest(tracer) == load_golden("fig6")
    # and the metering actually happened
    assert m.counter_value("tile0/dtu/sends") > 0


@pytest.mark.golden
def test_fig8_golden_digest_unchanged_with_metrics_enabled():
    from repro.obs import capture_metrics
    from repro.testing.golden import digest, load_golden, record_trace

    with capture_metrics():
        tracer = record_trace("fig8")
    assert digest(tracer) == load_golden("fig8")
