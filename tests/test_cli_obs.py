"""The observability CLI: stats, profile, trace exports, metrics-out."""

import json

import pytest

from repro.cli import main


def test_trace_out_creates_missing_parent_dirs(tmp_path, capsys):
    out = tmp_path / "deep" / "nested" / "fig6.jsonl"
    spans = tmp_path / "other" / "spans.json"
    chrome = tmp_path / "third" / "chrome.json"
    rc = main(["trace", "fig6", "--out", str(out),
               "--spans", str(spans), "--chrome", str(chrome)])
    assert rc == 0
    assert out.exists() and out.stat().st_size > 0
    parsed = json.loads(spans.read_text())
    assert parsed and parsed[0]["state"]
    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"]


def test_stats_prints_series_and_aggregate_counters(tmp_path, capsys):
    rc = main(["stats", "fig6", "--quick", "--no-cache"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "aggregate counters" in out
    assert "tile0/dtu/sends" in out
    assert "sim/evq_depth" in out


def test_stats_series_filter(tmp_path, capsys):
    rc = main(["stats", "fig6", "--quick", "--no-cache",
               "--series", "ready_q"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ready_q" in out
    assert "core_req_q" not in out


def test_profile_emits_subsystem_table(capsys):
    rc = main(["profile", "fig6", "--quick"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "subsystem" in out
    assert "events/s" in out
    assert "tilemux" in out


def test_metrics_out_writes_per_point_artifacts(tmp_path, capsys):
    dest = tmp_path / "made" / "by" / "cli"
    rc = main(["fig6", "--quick", "--no-cache",
               "--metrics-out", str(dest)])
    assert rc == 0
    files = sorted(dest.glob("fig6-*.metrics.json"))
    assert len(files) == 4              # one snapshot per fig6 point
    snaps = [json.loads(f.read_text()) for f in files]
    assert all("counters" in s for s in snaps)
    # the m3v points carry DTU counters (the linux point has none)
    assert any(s["counters"].get("tile0/dtu/sends") for s in snaps)


def test_metrics_flag_prints_aggregate(capsys):
    rc = main(["fig6", "--quick", "--no-cache", "--metrics"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "aggregate counters" in out


def test_help_lists_observability_options(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["fig9", "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "--metrics" in out and "--metrics-out" in out
    assert "--jobs" in out and "--no-cache" in out
