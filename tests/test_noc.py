"""Unit tests for the NoC: topology, latency, bandwidth, backpressure."""

import pytest

from repro.sim import Simulator
from repro.noc import NocFabric, NocParams, Packet, PacketKind, StarMeshTopology
from repro.noc.topology import SingleRouterTopology


def make_fabric(n_tiles=8, params=None):
    sim = Simulator()
    topo = StarMeshTopology(range(n_tiles))
    fabric = NocFabric(sim, topo, params=params)
    inboxes = {t: fabric.attach(t) for t in range(n_tiles)}
    return sim, fabric, inboxes


# -- topology ------------------------------------------------------------------


def test_star_mesh_has_four_routers():
    topo = StarMeshTopology(range(8))
    assert topo.routers == [0, 1, 2, 3]


def test_star_mesh_round_robin_placement():
    topo = StarMeshTopology(range(8))
    assert topo.router_of(0) == 0
    assert topo.router_of(5) == 1


def test_router_path_same_router():
    topo = StarMeshTopology(range(8))
    assert topo.router_path(2, 2) == [2]


def test_router_path_adjacent():
    topo = StarMeshTopology(range(8))
    assert topo.router_path(0, 1) == [0, 1]


def test_router_path_diagonal_two_hops():
    topo = StarMeshTopology(range(8))
    path = topo.router_path(0, 3)
    assert len(path) == 3 and path[0] == 0 and path[-1] == 3


def test_hop_count_includes_tile_links():
    topo = StarMeshTopology(range(8))
    # same router: tile->router->tile
    assert topo.hops(0, 4) == 2
    # adjacent routers: + 1 router link
    assert topo.hops(0, 1) == 3


def test_explicit_placement_respected():
    topo = StarMeshTopology([10, 11], placement={10: 3, 11: 3})
    assert topo.router_of(10) == 3 and topo.hops(10, 11) == 2


def test_duplicate_tile_attachment_rejected():
    topo = StarMeshTopology(range(4))
    with pytest.raises(ValueError):
        topo.attach_tile(0, 1)


def test_unknown_router_rejected():
    topo = SingleRouterTopology(range(2))
    with pytest.raises(ValueError):
        topo.attach_tile(99, 7)


# -- packets -------------------------------------------------------------------


def test_packet_wire_size_includes_header():
    p = Packet(PacketKind.MSG, src=0, dst=1, size=64)
    assert p.wire_size == 80


def test_packet_negative_size_rejected():
    with pytest.raises(ValueError):
        Packet(PacketKind.MSG, src=0, dst=1, size=-1)


def test_response_packet_swaps_endpoints_and_keeps_tag():
    p = Packet(PacketKind.READ_REQ, src=2, dst=5, size=0, tag=77)
    r = p.response_to(PacketKind.READ_RESP, size=128)
    assert (r.src, r.dst, r.tag) == (5, 2, 77)


# -- fabric delivery -----------------------------------------------------------


def test_delivery_to_inbox():
    sim, fabric, inboxes = make_fabric()
    pkt = Packet(PacketKind.MSG, src=0, dst=1, size=32, payload="hi")
    got = []

    def receiver():
        got.append((yield inboxes[1].get()))

    sim.process(receiver())
    fabric.send(pkt)
    sim.run()
    assert got and got[0].payload == "hi"


def test_send_to_unattached_tile_raises():
    sim, fabric, _ = make_fabric(n_tiles=4)
    with pytest.raises(ValueError):
        fabric.send(Packet(PacketKind.MSG, src=0, dst=99))


def test_latency_scales_with_hops():
    sim, fabric, inboxes = make_fabric()
    times = {}

    def receiver(tile):
        yield inboxes[tile].get()
        times[tile] = sim.now

    # tile 4 shares router 0 with tile 0; tile 3 is on the diagonal router
    sim.process(receiver(4))
    sim.process(receiver(3))
    fabric.send(Packet(PacketKind.MSG, src=0, dst=4, size=16))
    fabric.send(Packet(PacketKind.MSG, src=0, dst=3, size=16))
    sim.run()
    assert times[3] > times[4]


def test_tile_to_tile_latency_is_dozens_of_ns():
    # Paper: "tile-to-tile latency within our on-chip network is dozens
    # of nanoseconds".
    sim, fabric, inboxes = make_fabric()
    arrival = []

    def receiver():
        yield inboxes[3].get()
        arrival.append(sim.now)

    sim.process(receiver())
    fabric.send(Packet(PacketKind.MSG, src=0, dst=3, size=16))
    sim.run()
    ns = arrival[0] / 1000
    assert 10 <= ns <= 100


def test_link_serialization_delays_second_packet():
    params = NocParams(hop_latency_ps=1000, bytes_per_ns=1)  # slow links
    sim, fabric, inboxes = make_fabric(params=params)
    arrivals = []

    def receiver():
        for _ in range(2):
            pkt = yield inboxes[4].get()
            arrivals.append((pkt.pid, sim.now))

    sim.process(receiver())
    a = Packet(PacketKind.MSG, src=0, dst=4, size=1000)
    b = Packet(PacketKind.MSG, src=0, dst=4, size=1000)
    fabric.send(a)
    fabric.send(b)
    sim.run()
    t_a = dict(arrivals)[a.pid]
    t_b = dict(arrivals)[b.pid]
    # second packet waits for the first on the shared injection link
    assert t_b >= t_a + params.transfer_ps(a.wire_size)


def test_backpressure_blocks_when_inbox_full():
    params = NocParams(tile_queue_depth=2)
    sim, fabric, inboxes = make_fabric(params=params)
    delivered = []
    for i in range(5):
        fabric.send(Packet(PacketKind.MSG, src=0, dst=4, size=8, tag=i))
    # nobody consumes: run and observe only queue_depth packets delivered
    sim.run(until=10_000_000)
    assert len(inboxes[4]) == 2

    def consumer():
        while True:
            pkt = yield inboxes[4].get()
            delivered.append(pkt.tag)
            if len(delivered) == 5:
                return

    sim.process(consumer())
    sim.run()
    assert sorted(delivered) == [0, 1, 2, 3, 4]


def test_fabric_counts_traffic():
    sim, fabric, inboxes = make_fabric()

    def consumer():
        yield inboxes[1].get()

    sim.process(consumer())
    fabric.send(Packet(PacketKind.MSG, src=0, dst=1, size=100))
    sim.run()
    assert fabric.stats.counter_value("noc/packets") == 1
    assert fabric.stats.counter_value("noc/bytes") == 116


def test_latency_estimate_matches_uncontended_delivery():
    sim, fabric, inboxes = make_fabric()
    est = fabric.latency_estimate_ps(0, 1, 16)
    arrival = []

    def receiver():
        yield inboxes[1].get()
        arrival.append(sim.now)

    sim.process(receiver())
    fabric.send(Packet(PacketKind.MSG, src=0, dst=1, size=16))
    sim.run()
    assert arrival[0] == est
