"""Unit tests for the NIC, the Ethernet wire and the remote host."""

import pytest

from repro.sim import Simulator
from repro.tiles.nic import (
    EthFrame,
    EthernetWire,
    NicDevice,
    RemoteHost,
    UDP_OVERHEAD,
)


def test_frame_wire_size_has_min_and_headers():
    assert EthFrame(None, size=1).wire_bytes == 64          # min frame
    assert EthFrame(None, size=1000).wire_bytes == 1000 + UDP_OVERHEAD


def test_wire_delivers_up_and_down():
    sim = Simulator()
    wire = EthernetWire(sim)
    got = {"up": [], "down": []}
    wire.to_host = got["up"].append
    wire.to_device = got["down"].append
    wire.transmit(EthFrame(b"a", 1, dst_port=9), up=True)
    wire.transmit(EthFrame(b"b", 1, dst_port=9), up=False)
    sim.run()
    assert got["up"][0].payload == b"a"
    assert got["down"][0].payload == b"b"


def test_wire_latency_and_serialization():
    sim = Simulator()
    wire = EthernetWire(sim, latency_us=10.0, gbps=1.0)
    arrivals = []
    wire.to_host = lambda f: arrivals.append(sim.now)
    big = EthFrame(None, size=1458)  # 1500B on the wire = 12 us at 1 Gb/s
    wire.transmit(big, up=True)
    wire.transmit(big, up=True)
    sim.run()
    assert arrivals[0] == pytest.approx(22_000_000, rel=0.01)  # 12+10 us
    # second frame serializes behind the first
    assert arrivals[1] - arrivals[0] == pytest.approx(12_000_000, rel=0.01)


def test_wire_loss_is_deterministic_per_seed():
    sim = Simulator()
    wire = EthernetWire(sim, drop_prob=0.5, seed=123)
    wire.to_host = lambda f: None
    for _ in range(100):
        wire.transmit(EthFrame(None, 64), up=True)
    sim.run()
    assert 20 <= wire.dropped <= 80
    assert wire.dropped + wire.transferred == 100


def test_nic_ring_overflow_drops():
    sim = Simulator()
    wire = EthernetWire(sim)
    nic = NicDevice(sim, wire)
    for _ in range(NicDevice.RING_SLOTS + 5):
        wire.transmit(EthFrame(None, 64, dst_port=1), up=False)
    sim.run()
    assert len(nic.rx_queue) == NicDevice.RING_SLOTS
    assert nic.rx_overruns == 5


def test_nic_wakes_driver_on_rx():
    sim = Simulator()
    wire = EthernetWire(sim)
    nic = NicDevice(sim, wire)
    wakes = []
    nic.attach_driver(lambda: wakes.append(sim.now))
    wire.transmit(EthFrame(None, 64, dst_port=1), up=False)
    sim.run()
    assert len(wakes) == 1
    assert nic.pop_rx() is not None
    assert nic.pop_rx() is None


def test_remote_host_echoes_registered_ports_only():
    sim = Simulator()
    wire = EthernetWire(sim)
    host = RemoteHost(sim, wire, proc_us=5.0)
    host.echo_ports.add(7)
    echoed = []
    wire.to_device = echoed.append
    wire.transmit(EthFrame(b"ping", 4, src_port=100, dst_port=7), up=True)
    wire.transmit(EthFrame(b"sink", 4, src_port=100, dst_port=8), up=True)
    sim.run()
    assert len(echoed) == 1
    assert echoed[0].dst_port == 100 and echoed[0].payload == b"ping"
    assert host.sunk_frames == 1 and host.sunk_bytes == 4


def test_remote_host_processing_delay():
    sim = Simulator()
    wire = EthernetWire(sim, latency_us=0.0)
    host = RemoteHost(sim, wire, proc_us=25.0)
    host.echo_ports.add(7)
    times = []
    wire.to_device = lambda f: times.append(sim.now)
    wire.transmit(EthFrame(b"x", 1, src_port=1, dst_port=7), up=True)
    sim.run()
    # serialization both ways + 25us processing
    assert times[0] >= 25_000_000
