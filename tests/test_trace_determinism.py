"""Trace determinism and golden-file conformance (ISSUE: tentpole tests).

Three layers:

* structural sanity of recorded traces (contiguous seqs, monotone time
  per simulator);
* same-seed determinism — running a golden workload twice in the same
  interpreter yields byte-identical canonical JSON, including under a
  seeded fault plan;
* conformance against the committed golden digests in ``tests/golden/``
  (refresh intentionally with ``python -m repro trace <name> --refresh``).
"""

import pytest

from repro.api import SystemConfig, build_system
from repro.sim.trace import capture
from repro.testing.faults import FaultPlan
from repro.testing.golden import (
    GOLDEN_WORKLOADS,
    canonical_events,
    canonical_json,
    diff_digest,
    digest,
    golden_path,
    load_golden,
    record_trace,
)
from repro.testing.invariants import InvariantSuite

WORKLOADS = sorted(GOLDEN_WORKLOADS)


@pytest.fixture(scope="module")
def twice():
    """Each golden workload recorded twice in this interpreter."""
    return {name: (record_trace(name), record_trace(name))
            for name in WORKLOADS}


@pytest.mark.parametrize("name", WORKLOADS)
def test_trace_structure(twice, name):
    tracer, _ = twice[name]
    assert len(tracer.events) > 100
    # contiguous sequence numbers (exclude-filtering happens pre-seq)
    assert [ev.seq for ev in tracer.events] == list(range(len(tracer.events)))
    # time is monotone within each simulator
    last_ts = {}
    for ev in tracer.events:
        assert ev.ts >= last_ts.get(ev.sim, 0)
        last_ts[ev.sim] = ev.ts
    assert "evq_pop" not in tracer.kinds()


@pytest.mark.parametrize("name", WORKLOADS)
def test_same_seed_traces_are_byte_identical(twice, name):
    first, second = twice[name]
    assert canonical_json(first) == canonical_json(second)


@pytest.mark.parametrize("name", WORKLOADS)
def test_canonical_ids_are_renumbered(twice, name):
    events = canonical_events(twice[name][0])
    uids = {d["uid"] for d in events if d.get("uid") is not None}
    assert uids, "workload should carry messages"
    # first-appearance renumbering makes ids dense from 0
    assert min(uids) == 0 and max(uids) == len(uids) - 1


@pytest.mark.golden
@pytest.mark.parametrize("name", WORKLOADS)
def test_trace_matches_committed_golden(twice, name):
    assert golden_path(name).exists(), (
        f"missing golden for {name}; record it with "
        f"`python -m repro trace {name} --refresh`")
    problems = diff_digest(load_golden(name), digest(twice[name][0]))
    assert not problems, "trace diverges from golden:\n" + "\n".join(problems)


def test_diff_digest_reports_divergence(twice):
    good = digest(twice["fig6"][0])
    bad = dict(good, n_events=good["n_events"] + 1,
               sha256="0" * 64)
    problems = diff_digest(good, bad)
    assert problems and any("event count" in p for p in problems)
    assert diff_digest(good, good) == []


# -- determinism under fault injection ----------------------------------------

def _rendezvous(api, env, *keys):
    while any(k not in env for k in keys):
        yield api.sim.timeout(1_000_000)


def _ping_pong(plat, server_tile, client_tile, rounds=4):
    """Spawn a reply server and a calling client; returns final value."""
    env, result = {}, {}

    def server(api):
        yield from _rendezvous(api, env, "s_rep")
        for _ in range(rounds):
            msg = yield from api.recv(env["s_rep"])
            yield from api.reply(env["s_rep"], msg, data=msg.data + 1, size=16)

    def client(api):
        yield from _rendezvous(api, env, "c_sep")
        value = 0
        for _ in range(rounds):
            value = yield from api.call(env["c_sep"], env["c_rep"],
                                        data=value, size=16)
        result["value"] = value

    ctrl = plat.controller
    s = plat.run_proc(ctrl.spawn("server", server_tile, server))
    c = plat.run_proc(ctrl.spawn("client", client_tile, client))
    sep, rep, reply_ep = plat.run_proc(ctrl.wire_channel(c, s, credits=2))
    env.update(s_rep=rep, c_sep=sep, c_rep=reply_ep)
    plat.sim.run_until_event(c.exit_event, limit=10**13)
    return result["value"]


def _faulted_local_ping_pong(seed):
    with capture() as tracer:
        plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=4,
                                        n_mem_tiles=1)).platform
        FaultPlan.standard(seed, deadline_ps=3_000_000_000).apply(plat)
        value = _ping_pong(plat, server_tile=2, client_tile=2, rounds=4)
        plat.sim.run()  # drain, so traces end at quiescence
    assert value == 4
    return tracer


def test_same_fault_seed_reproduces_the_trace():
    assert (canonical_json(_faulted_local_ping_pong(7))
            == canonical_json(_faulted_local_ping_pong(7)))


def test_different_fault_seeds_perturb_the_schedule():
    assert (canonical_json(_faulted_local_ping_pong(7))
            != canonical_json(_faulted_local_ping_pong(8)))


@pytest.mark.parametrize("seed", [1, 7, 13])
def test_invariants_hold_under_fault_seeds(seed):
    with capture(record=False) as tracer:
        suite = InvariantSuite().attach(tracer)
        plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=4,
                                        n_mem_tiles=1)).platform
        FaultPlan.standard(seed, deadline_ps=3_000_000_000).apply(plat)
        assert _ping_pong(plat, server_tile=2, client_tile=2, rounds=4) == 4
        assert _ping_pong(plat, server_tile=1, client_tile=0, rounds=3) == 3
        plat.sim.run()  # drain in-flight exit notifications
    assert suite.seen > 0
    suite.finish()
