"""Integration tests for DTU / vDTU message passing and DMA."""

import pytest

from repro.sim import Simulator
from repro.noc import NocFabric, StarMeshTopology
from repro.dtu import (
    ACT_TILEMUX,
    DtuError,
    DtuFault,
    DtuParams,
    MemoryDtu,
    MemoryEndpoint,
    Perm,
    ReceiveEndpoint,
    SendEndpoint,
    VDtu,
)
from repro.dtu.dtu import Dtu, ExtOp, ExtRequest
from repro.noc.packet import Packet, PacketKind

MEM_TILE = 9


class Harness:
    """Two vDTU compute tiles + one memory tile on a star-mesh."""

    def __init__(self, params=None):
        self.sim = Simulator()
        topo = StarMeshTopology(range(10))
        self.fabric = NocFabric(self.sim, topo)
        self.params = params or DtuParams()
        self.d0 = VDtu(self.sim, 0, self.fabric, params=self.params)
        self.d1 = VDtu(self.sim, 1, self.fabric, params=self.params)
        self.mem = MemoryDtu(self.sim, MEM_TILE, self.fabric,
                             dram_size=1 << 20, params=self.params)

    def channel(self, act_src=1, act_dst=1, credits=1, slots=8,
                src_ep=4, dst_ep=4, reply_ep=None):
        """Wire a send EP on d0 to a receive EP on d1."""
        self.d1.configure(dst_ep, ReceiveEndpoint(act=act_dst, slots=slots))
        self.d0.configure(src_ep, SendEndpoint(
            act=act_src, dst_tile=1, dst_ep=dst_ep, label=7,
            credits=credits, max_credits=credits))
        if reply_ep is not None:
            self.d0.configure(reply_ep, ReceiveEndpoint(act=act_src))
        self.d0.cur_act = act_src
        self.d1.cur_act = act_dst

    def run(self, gen):
        return self.sim.run_until_event(self.sim.process(gen), limit=10**12)


def test_send_deposits_message():
    h = Harness()
    h.channel()

    def sender():
        yield from h.d0.cmd_send(4, data="ping", size=16)
        msg = yield from h.d1.cmd_fetch(4)
        return msg

    msg = h.run(sender())
    assert msg.data == "ping" and msg.label == 7


def test_send_takes_time():
    h = Harness()
    h.channel()

    def sender():
        yield from h.d0.cmd_send(4, data="x", size=64)

    h.run(sender())
    # 5 MMIO accesses alone are 600ns
    assert h.sim.now > 600_000


def test_send_on_foreign_activity_ep_fails_uniformly():
    h = Harness()
    h.channel(act_src=2)      # EP owned by act 2
    h.d0.cur_act = 3          # but act 3 is running

    def sender():
        yield from h.d0.cmd_send(4, data="x", size=8)

    with pytest.raises(DtuFault) as exc:
        h.run(sender())
    assert exc.value.error is DtuError.UNKNOWN_EP


def test_send_invalid_ep_same_error_as_foreign():
    h = Harness()

    def sender():
        yield from h.d0.cmd_send(60, data="x", size=8)

    with pytest.raises(DtuFault) as exc:
        h.run(sender())
    assert exc.value.error is DtuError.UNKNOWN_EP


def test_send_without_credits_fails():
    h = Harness()
    h.channel(credits=1)

    def sender():
        yield from h.d0.cmd_send(4, data="a", size=8)
        yield from h.d0.cmd_send(4, data="b", size=8)  # no credit left

    with pytest.raises(DtuFault) as exc:
        h.run(sender())
    assert exc.value.error is DtuError.MISSING_CREDITS


def test_message_too_large_rejected_locally():
    h = Harness()
    h.channel()

    def sender():
        yield from h.d0.cmd_send(4, data="x", size=4096)

    with pytest.raises(DtuFault) as exc:
        h.run(sender())
    assert exc.value.error is DtuError.MSG_TOO_LARGE


def test_receive_buffer_full_yields_error_and_restores_credit():
    h = Harness()
    h.channel(credits=4, slots=1)

    def sender():
        yield from h.d0.cmd_send(4, data="a", size=8)
        with pytest.raises(DtuFault) as exc:
            yield from h.d0.cmd_send(4, data="b", size=8)
        assert exc.value.error is DtuError.RECV_FULL
        return h.d0.eps[4].credits

    credits = h.run(sender())
    assert credits == 3  # one message in flight, failed send refunded


def test_reply_roundtrip_returns_credit():
    h = Harness()
    h.channel(credits=1, reply_ep=5)

    def rpc():
        yield from h.d0.cmd_send(4, data="req", size=16, reply_ep=5)
        req = yield from h.d1.cmd_fetch(4)
        assert req.data == "req"
        yield from h.d1.cmd_reply(4, req, data="resp", size=16)
        resp = None
        while resp is None:
            resp = yield from h.d0.cmd_fetch(5)
        yield from h.d0.cmd_ack(5, resp)
        return resp.data, h.d0.eps[4].credits

    data, credits = h.run(rpc())
    assert data == "resp"
    assert credits == 1  # credit returned by the reply


def test_ack_without_reply_returns_credit():
    h = Harness()
    h.channel(credits=1)

    def flow():
        yield from h.d0.cmd_send(4, data="oneway", size=8)
        msg = yield from h.d1.cmd_fetch(4)
        yield from h.d1.cmd_ack(4, msg)
        # wait for the credit-return packet to arrive back
        while h.d0.eps[4].credits == 0:
            yield h.sim.timeout(1000)
        return h.d0.eps[4].credits

    assert h.run(flow()) == 1


def test_fetch_order_is_arrival_order():
    h = Harness()
    h.channel(credits=4)

    def flow():
        for tag in ("a", "b", "c"):
            yield from h.d0.cmd_send(4, data=tag, size=8)
        got = []
        for _ in range(3):
            msg = yield from h.d1.cmd_fetch(4)
            got.append(msg.data)
            yield from h.d1.cmd_ack(4, msg)
        return got

    assert h.run(flow()) == ["a", "b", "c"]


def test_fetch_empty_returns_none():
    h = Harness()
    h.channel()

    def flow():
        return (yield from h.d1.cmd_fetch(4))

    assert h.run(flow()) is None


# -- memory endpoints and DMA ----------------------------------------------------


def memory_ep(act=1, base=0, size=4096, perm=Perm.RW):
    return MemoryEndpoint(act=act, dst_tile=MEM_TILE, base=base,
                          size=size, perm=perm)


def test_write_then_read_roundtrip():
    h = Harness()
    h.d0.configure(8, memory_ep())
    h.d0.cur_act = 1

    def flow():
        yield from h.d0.cmd_write(8, offset=100, data=b"hello dram")
        return (yield from h.d0.cmd_read(8, offset=100, size=10))

    assert h.run(flow()) == b"hello dram"


def test_read_out_of_bounds_rejected():
    h = Harness()
    h.d0.configure(8, memory_ep(size=128))
    h.d0.cur_act = 1

    def flow():
        yield from h.d0.cmd_read(8, offset=100, size=64)

    with pytest.raises(DtuFault) as exc:
        h.run(flow())
    assert exc.value.error is DtuError.OUT_OF_BOUNDS


def test_write_to_readonly_ep_rejected():
    h = Harness()
    h.d0.configure(8, memory_ep(perm=Perm.R))
    h.d0.cur_act = 1

    def flow():
        yield from h.d0.cmd_write(8, offset=0, data=b"x")

    with pytest.raises(DtuFault) as exc:
        h.run(flow())
    assert exc.value.error is DtuError.NO_PERM


def test_dma_larger_transfer_takes_longer():
    h = Harness()
    h.d0.configure(8, memory_ep(size=1 << 16))
    h.d0.cur_act = 1
    times = []

    def flow(size):
        start = h.sim.now
        yield from h.d0.cmd_read(8, offset=0, size=size)
        times.append(h.sim.now - start)

    h.run(flow(64))
    h.run(flow(4096))
    assert times[1] > times[0]


# -- vDTU translation (section 3.6) -----------------------------------------------


def test_send_with_virt_addr_faults_without_tlb_entry():
    h = Harness()
    h.channel()

    def flow():
        yield from h.d0.cmd_send(4, data="x", size=32, virt_addr=0x5000)

    with pytest.raises(DtuFault) as exc:
        h.run(flow())
    assert exc.value.error is DtuError.TRANSLATION_FAULT


def test_send_succeeds_after_tlb_insert():
    h = Harness()
    h.channel()

    def flow():
        yield from h.d0.priv_insert_tlb(1, virt_page=5, phys_page=42, perm=Perm.R)
        yield from h.d0.cmd_send(4, data="x", size=32, virt_addr=0x5000)

    h.run(flow())  # no fault


def test_page_boundary_crossing_rejected():
    h = Harness()
    h.channel()

    def flow():
        yield from h.d0.priv_insert_tlb(1, 5, 42, Perm.R)
        yield from h.d0.priv_insert_tlb(1, 6, 43, Perm.R)
        yield from h.d0.cmd_send(4, data="x", size=64, virt_addr=0x5FF0)

    with pytest.raises(DtuFault) as exc:
        h.run(flow())
    assert exc.value.error is DtuError.PAGE_BOUNDARY


# -- CUR_ACT, message counting, core requests (sections 3.7, 3.8) ------------------


def test_cur_act_counts_messages_for_running_activity():
    h = Harness()
    h.channel(credits=4)

    def flow():
        yield from h.d0.cmd_send(4, data="a", size=8)
        yield from h.d0.cmd_send(4, data="b", size=8)
        return (yield from h.d1.priv_read_cur_act())

    act, msgs = h.run(flow())
    assert (act, msgs) == (1, 2)


def test_fetch_decrements_message_count():
    h = Harness()
    h.channel(credits=2)

    def flow():
        yield from h.d0.cmd_send(4, data="a", size=8)
        yield from h.d1.cmd_fetch(4)
        return (yield from h.d1.priv_read_cur_act())

    assert h.run(flow()) == (1, 0)


def test_message_for_non_running_activity_raises_core_request():
    h = Harness()
    h.channel(act_dst=2)      # receive EP owned by act 2
    h.d1.cur_act = 3          # act 3 runs on the tile
    irqs = []
    h.d1.irq_handler = lambda: irqs.append(h.sim.now)

    def flow():
        yield from h.d0.cmd_send(4, data="x", size=8)
        return (yield from h.d1.priv_fetch_core_req())

    req = h.run(flow())
    assert req is not None and req.act == 2 and req.ep_id == 4
    assert len(irqs) == 1
    # message is nevertheless already deposited (fast path!)
    assert h.d1.eps[4].unread == 1


def test_xchg_act_returns_old_state_and_installs_new():
    h = Harness()
    h.channel(credits=2)

    def flow():
        yield from h.d0.cmd_send(4, data="a", size=8)
        old = yield from h.d1.priv_xchg_act(5, new_msgs=3)
        new = yield from h.d1.priv_read_cur_act()
        return old, new

    old, new = h.run(flow())
    assert old == (1, 1)
    assert new == (5, 3)


def test_core_request_queue_overrun_backpressure():
    params = DtuParams(core_req_queue_depth=2)
    h = Harness(params=params)
    h.channel(act_dst=2, credits=8)
    h.d1.cur_act = 3

    def flow():
        for i in range(4):
            yield from h.d0.cmd_send(4, data=i, size=8)

    proc = h.sim.process(flow())
    h.sim.run(until=10**9)
    # sender stalls: only queue_depth requests fit before backpressure
    assert len(h.d1._core_reqs) == 2
    assert proc.is_alive

    def drain():
        for _ in range(4):
            yield from h.d1.priv_ack_core_req()

    h.sim.process(drain())
    h.sim.run(until=2 * 10**9)
    assert not proc.is_alive  # all sends completed after acks


def test_ack_core_req_reraises_irq_when_queue_nonempty():
    h = Harness()
    h.channel(act_dst=2, credits=4)
    h.d1.cur_act = 3
    irqs = []
    h.d1.irq_handler = lambda: irqs.append(h.sim.now)

    def flow():
        yield from h.d0.cmd_send(4, data="a", size=8)
        yield from h.d0.cmd_send(4, data="b", size=8)
        yield from h.d1.priv_ack_core_req()

    h.run(flow())
    # one IRQ per deposit-into-empty-queue plus the re-raise after ack
    assert len(irqs) >= 2


# -- PMP (section 4.1) -------------------------------------------------------------


def test_pmp_check_allows_configured_window():
    h = Harness()
    h.d0.configure(0, MemoryEndpoint(act=ACT_TILEMUX, dst_tile=MEM_TILE,
                                     base=0, size=1 << 20, perm=Perm.RW))
    assert h.d0.pmp_check(0x1000, 64, Perm.R)
    assert not h.d0.pmp_check((1 << 20) + 10, 64, Perm.R)  # beyond window


def test_pmp_selects_by_upper_bits():
    h = Harness()
    h.d0.configure(1, MemoryEndpoint(act=1, dst_tile=MEM_TILE,
                                     base=0, size=4096, perm=Perm.R))
    addr_in_ep1 = (1 << 30) + 100
    assert h.d0.pmp_check(addr_in_ep1, 4, Perm.R)
    assert not h.d0.pmp_check(addr_in_ep1, 4, Perm.W)
    assert not h.d0.pmp_check(100, 4, Perm.R)  # EP 0 not configured


# -- external interface / M3x save-restore -----------------------------------------


def test_ext_config_and_inval_roundtrip():
    h = Harness()
    ctrl = Dtu(h.sim, 2, h.fabric)  # plays the controller

    def flow():
        req = Packet(PacketKind.EXT_REQ, src=2, dst=1, size=32, tag=999,
                     payload=ExtRequest(ExtOp.CONFIG_EP, {
                         "ep_id": 10,
                         "endpoint": ReceiveEndpoint(act=7)}))
        yield from ctrl._await_response(req)
        assert h.d1.eps[10].act == 7
        req = Packet(PacketKind.EXT_REQ, src=2, dst=1, size=16, tag=1000,
                     payload=ExtRequest(ExtOp.INVAL_EP, {"ep_id": 10}))
        yield from ctrl._await_response(req)

    h.run(flow())
    assert h.d1.eps[10].kind.value == "invalid"


def test_ext_read_write_eps_save_restore():
    h = Harness()
    ctrl = Dtu(h.sim, 2, h.fabric)
    h.d1.configure(4, ReceiveEndpoint(act=1, slots=4))
    h.d1.configure(5, SendEndpoint(act=1, dst_tile=0, dst_ep=4, credits=2,
                                   max_credits=2))

    def flow():
        req = Packet(PacketKind.EXT_REQ, src=2, dst=1, size=16, tag=1001,
                     payload=ExtRequest(ExtOp.READ_EPS, {"ep_ids": [4, 5]}))
        saved = yield from ctrl._await_response(req)
        # wipe and restore
        h.d1.invalidate_ep(4)
        h.d1.invalidate_ep(5)
        req = Packet(PacketKind.EXT_REQ, src=2, dst=1, size=64, tag=1002,
                     payload=ExtRequest(ExtOp.WRITE_EPS, {"eps": saved}))
        yield from ctrl._await_response(req)

    h.run(flow())
    assert h.d1.eps[4].kind.value == "receive"
    assert h.d1.eps[5].credits == 2
