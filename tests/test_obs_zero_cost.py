"""Metrics must be free when off and cheap when on.

Off: the committed golden digests already pin simulated behaviour
(``test_api_facade``, ``test_trace_determinism``); here we additionally
check the canonical event stream is *byte-identical* with and without a
registry installed.  On: fig6 at golden scale must stay within 10% of
the unmetered wall-clock (interleaved min-of-N, which is robust to
scheduler noise).
"""

import time

import pytest

from repro.obs import capture_metrics

ROUNDS = 5


def _fig6_golden_point():
    from repro.core.exps.fig6 import Fig6Params, fig6_points

    return [p for p in fig6_points(Fig6Params(iterations=10, warmup=2))
            if p.kind == "m3v_local"][0]


def test_metered_run_is_byte_identical_to_unmetered():
    from repro.core.exps.fig6 import run_fig6_point
    from repro.sim.trace import capture
    from repro.testing.golden import canonical_json

    pt = _fig6_golden_point()
    with capture(exclude=("evq_pop",)) as plain:
        run_fig6_point(pt)
    with capture(exclude=("evq_pop",)) as metered_tracer:
        with capture_metrics() as m:
            run_fig6_point(pt)
    assert m.counter_value("tile0/dtu/sends") > 0
    assert canonical_json(plain) == canonical_json(metered_tracer)


@pytest.mark.slow
def test_metrics_overhead_within_ten_percent():
    from repro.core.exps.fig6 import run_fig6_point

    pt = _fig6_golden_point()
    run_fig6_point(pt)                      # warm imports and caches

    def timed(metered: bool) -> float:
        start = time.perf_counter()
        if metered:
            with capture_metrics():
                run_fig6_point(pt)
        else:
            run_fig6_point(pt)
        return time.perf_counter() - start

    # interleave so frequency scaling / noisy neighbours hit both arms
    off = on = float("inf")
    for _ in range(ROUNDS):
        off = min(off, timed(False))
        on = min(on, timed(True))
    assert on <= off * 1.10 + 0.010, \
        f"metrics overhead too high: {off * 1e3:.1f}ms off, " \
        f"{on * 1e3:.1f}ms on ({on / off:.2f}x)"
