"""Unit tests for the measurement infrastructure."""

import pytest

from repro.sim.stats import Counter, Histogram, StatRegistry, TimeWeighted


def test_counter_accumulates():
    c = Counter("x")
    c.add()
    c.add(5)
    assert c.value == 6


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("x").add(-1)


def test_histogram_basic_stats():
    h = Histogram("lat")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.record(v)
    assert h.count == 4
    assert h.mean == 2.5
    assert h.min == 1.0 and h.max == 4.0
    assert h.total == 10.0


def test_histogram_stdev():
    h = Histogram("lat")
    for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
        h.record(v)
    assert h.stdev == pytest.approx(2.138, abs=0.01)


def test_histogram_quantile_interpolates():
    h = Histogram("lat")
    for v in (0.0, 10.0):
        h.record(v)
    assert h.quantile(0.5) == 5.0
    assert h.quantile(0.0) == 0.0
    assert h.quantile(1.0) == 10.0


def test_histogram_empty_stats_are_nan():
    import math

    h = Histogram("empty")
    assert math.isnan(h.mean)
    assert math.isnan(h.quantile(0.5))
    assert math.isnan(h.min)
    assert math.isnan(h.max)
    assert h.count == 0 and h.stdev == 0.0


def test_empty_histogram_renders_as_dash():
    """Regression: a report over an experiment that recorded zero
    samples must render, with an em-dash where the number would be."""
    from repro.core.report import bar_chart, series_chart

    chart = bar_chart("t", {"warm": 4.2, "cold": Histogram("none").mean})
    assert "—" in chart and "4.2" in chart and "nan" not in chart
    table = series_chart("t", {"sys": {1: 2.0, 2: float("nan")}})
    assert "—" in table and "nan" not in table


def test_histogram_quantile_range_checked():
    h = Histogram("lat")
    h.record(1.0)
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_time_weighted_mean():
    g = TimeWeighted("util", now=0, initial=0.0)
    g.set(1.0, now=10)   # 0 for [0,10)
    g.set(0.0, now=30)   # 1 for [10,30)
    assert g.mean(40) == pytest.approx(20 / 40)
    assert g.current == 0.0


def test_time_weighted_adjust():
    g = TimeWeighted("depth", now=0)
    g.adjust(+2, now=5)
    g.adjust(-1, now=10)
    assert g.current == 1


def test_registry_reuses_instances():
    reg = StatRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.histogram("h") is reg.histogram("h")
    assert reg.gauge("g") is reg.gauge("g")


def test_registry_snapshot():
    reg = StatRegistry()
    reg.counter("msgs").add(3)
    reg.histogram("lat").record(7.0)
    snap = reg.snapshot()
    assert snap["count/msgs"] == 3
    assert snap["mean/lat"] == 7.0
    assert snap["n/lat"] == 1


def test_counter_value_missing_is_zero():
    assert StatRegistry().counter_value("nope") == 0
