"""SLO-driven multi-tenant serving (ISSUE figS tentpole).

Five layers:

* unit tests for the protection stack primitives — token buckets,
  deadline-aware admission queues, the service estimator, and the
  quarantine-aware circuit breaker;
* the open-loop workload generator: seeded, hash-seed independent,
  globally unique uids, deadlines derived from tenant SLOs;
* the Virtual-Link MPMC queue: FIFO order, shared-capacity rejection,
  CAS contention serialization;
* figS smoke points: conservation (every request resolves exactly
  once) on both systems, protection counters, and the reduced curve's
  shape hooks;
* regressions for the scheduler bugs this PR fixed: the m3v TileMux
  averted-lost-wakeup park and the M3x sleep/wakeup notify protocol.
"""

import pytest

from repro.api import ServingSpec, SystemConfig, build_system
from repro.api import SystemConfig, build_system
from repro.core.exps.figs import FigSParams, FigSPoint, figs_points, \
    reduce_figs, run_figs_point
from repro.core.report import shape_checks
from repro.mux.mpmc import VirtualLinkQueue
from repro.services.serving import (
    AdmissionQueue,
    CircuitBreaker,
    ServiceEstimator,
    ServingStack,
    TokenBucket,
)
from repro.testing.chaos import ChaosCampaign, Floor, Phase, run_campaign
from repro.workloads.serving import (
    DEFAULT_TENANTS,
    Request,
    TenantClass,
    open_loop_arrivals,
)

LIMIT = 10**13


# -- protection stack units ---------------------------------------------------

def test_token_bucket_enforces_rate_and_burst():
    b = TokenBucket(rate_rps=1000.0, burst=2.0)  # 1 token per ms
    assert b.allow(0) and b.allow(0)             # burst of 2
    assert not b.allow(0)                        # drained
    assert not b.allow(500_000_000)              # 0.5 ms: refilled 0.5
    assert b.allow(1_600_000_000)                # 1.6 ms: >1 token again


def test_token_bucket_rate_zero_is_unmetered():
    b = TokenBucket(rate_rps=0.0)
    assert all(b.allow(0) for _ in range(100))


def test_service_estimator_ewma_converges():
    est = ServiceEstimator(initial_ps=0)
    for _ in range(100):
        est.observe(8_000)
    assert 7_000 <= est.estimate_ps <= 8_000


def _req(uid, deadline_ps):
    return Request(uid=uid, tenant="gold", client_id=0, key_idx=uid,
                   op="get", arrival_ps=0, deadline_ps=deadline_ps,
                   gateway=0)


def test_admission_queue_sheds_full_and_deadline():
    q = AdmissionQueue(slots=2)
    est = 1_000
    assert q.offer(_req(0, 10_000), now_ps=0, est_ps=est) == "admitted"
    # depth 1 → needs 2 * est = 2000 ps; deadline 1500 is hopeless
    assert q.offer(_req(1, 1_500), now_ps=0, est_ps=est) == "deadline"
    assert q.offer(_req(2, 10_000), now_ps=0, est_ps=est) == "admitted"
    assert q.offer(_req(3, 10_000), now_ps=0, est_ps=est) == "full"
    assert len(q) == 2


def test_admission_queue_scrub_drops_hopeless_work():
    q = AdmissionQueue(slots=8)
    for uid, dl in enumerate((5_000, 100_000, 6_000, 100_000)):
        assert q.offer(_req(uid, dl), now_ps=0, est_ps=1_000) == "admitted"
    # time advances: the two tight deadlines are now unmeetable
    shed = q.scrub(now_ps=5_000, est_ps=1_000)
    assert [r.uid for r in shed] == [0, 2]
    assert len(q) == 2
    # survivors keep FIFO order; push_front restores a bounced item
    first = q.pop()
    q.push_front(first)
    assert q.pop().uid == first.uid


def test_circuit_breaker_opens_and_reprobes():
    br = CircuitBreaker(failures=2, cooldown_ps=1_000)
    assert br.healthy(0, now_ps=0)
    br.record_failure(0, now_ps=0)
    assert br.healthy(0, now_ps=0)          # one failure: still closed
    br.record_failure(0, now_ps=0)
    assert not br.healthy(0, now_ps=500)    # open, inside cooldown
    assert br.healthy(0, now_ps=1_500)      # cooldown over: half-open
    br.record_success(0)
    br.record_failure(0, now_ps=2_000)
    assert br.healthy(0, now_ps=2_000)      # success reset the count


def test_circuit_breaker_respects_controller_quarantine():
    class Ctrl:
        quarantined = {3}

    br = CircuitBreaker(failures=2, cooldown_ps=1_000, controller=Ctrl(),
                        tile_of={0: 3, 1: 4})
    assert not br.healthy(0, now_ps=0)      # its tile is quarantined
    assert br.healthy(1, now_ps=0)


def test_serving_stack_quota_admission():
    stack = ServingStack(ServingSpec(quota_mult=1.0, quota_burst=1.0))
    stack.set_quota("gold", 1000.0)
    assert stack.admit_tenant("gold", 0)
    assert not stack.admit_tenant("gold", 0)      # burst 1 drained
    assert stack.admit_tenant("silver", 0)        # no quota set: unmetered
    q = stack.make_queue()
    assert q.slots == ServingSpec().queue_slots


# -- open-loop workload -------------------------------------------------------

def test_open_loop_arrivals_deterministic_and_unique():
    a = open_loop_arrivals(0, 200, 5000.0, seed=9)
    b = open_loop_arrivals(0, 200, 5000.0, seed=9)
    assert a == b
    other_gw = open_loop_arrivals(1, 200, 5000.0, seed=9)
    assert a != other_gw
    uids = {r.uid for r in a} | {r.uid for r in other_gw}
    assert len(uids) == 400                      # globally unique


def test_open_loop_arrivals_shape():
    reqs = open_loop_arrivals(2, 300, 10_000.0, keyspace=64, seed=4)
    slo = {t.name: t.slo_us for t in DEFAULT_TENANTS}
    last = 0
    for r in reqs:
        assert r.arrival_ps > last               # strictly increasing
        last = r.arrival_ps
        assert r.deadline_ps == r.arrival_ps + int(slo[r.tenant] * 1e6)
        assert 0 <= r.key_idx < 64
        assert r.op in ("get", "put")
        assert r.gateway == 2
    names = {r.tenant for r in reqs}
    assert names == {t.name for t in DEFAULT_TENANTS}
    # mean gap tracks the offered rate (Poisson, so loosely)
    span_s = (reqs[-1].arrival_ps - reqs[0].arrival_ps) / 1e12
    rate = (len(reqs) - 1) / span_s
    assert 6_000 < rate < 16_000


def test_open_loop_arrivals_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        open_loop_arrivals(0, 10, 0.0)


# -- ServingSpec / build_system plumbing --------------------------------------

def test_serving_spec_validates_backend():
    with pytest.raises(ValueError):
        ServingSpec(backend="carrier-pigeon")


def test_build_system_attaches_stack_only_when_asked():
    plain = build_system(SystemConfig(kind="m3v", n_proc_tiles=2))
    assert plain.serving is None
    served = build_system(SystemConfig(kind="m3v", n_proc_tiles=2,
                                       serving=ServingSpec(quota_mult=2.0)))
    assert isinstance(served.serving, ServingStack)
    assert served.serving.spec.quota_mult == 2.0


# -- Virtual-Link MPMC queue --------------------------------------------------

def _vlq_platform():
    return build_system(SystemConfig(kind="m3v", n_proc_tiles=3,
                                     n_mem_tiles=1)).platform


def test_vlq_fifo_and_shared_capacity():
    plat = _vlq_platform()
    vlq = VirtualLinkQueue(plat, capacity=2, name="t")
    got, rejected = [], []

    def producer(api, base):
        for i in range(3):
            ok = yield from vlq.try_put(api, base + i)
            if not ok:
                rejected.append(base + i)

    def consumer(api):
        yield from api.sleep_us(50.0)
        while len(vlq):
            item = yield from vlq.try_get(api)
            got.append(item)

    ctrl = plat.controller
    p = plat.run_proc(ctrl.spawn("p", 0, lambda api: producer(api, 100)))
    c = plat.run_proc(ctrl.spawn("c", 1, consumer))
    plat.sim.run_until_event(c.exit_event, limit=LIMIT)
    # capacity 2 shared: exactly one producer put was rejected
    assert rejected == [102]
    assert got == [100, 101]                     # FIFO
    assert plat.stats.counter_value("mpmc/t/puts") == 2
    assert plat.stats.counter_value("mpmc/t/gets") == 2
    assert plat.stats.counter_value("mpmc/t/full_rejects") == 1


def test_vlq_contention_serializes_at_home_tile():
    plat = _vlq_platform()
    vlq = VirtualLinkQueue(plat, capacity=8, name="c", op_ps=40_000)
    rt = vlq._round_trip_ps()
    # two operations hit the same pointer word at the same instant: the
    # loser queues behind the winner for exactly one op slot
    assert vlq._occupy() == 40_000 + rt
    assert vlq._occupy() == 80_000 + rt
    # after the home controller drains, the next op is uncontended again
    plat.sim.run(until=plat.sim.now + 200_000)
    assert vlq._occupy() == 40_000 + rt


def test_vlq_get_polled_on_shared_tile():
    plat = _vlq_platform()
    vlq = VirtualLinkQueue(plat, capacity=4, name="s")
    got = []

    def producer(api):
        yield from api.sleep_us(30.0)
        yield from vlq.put(api, "x")

    def consumer(api):
        item = yield from vlq.get_polled(api, poll_gap_us=5.0)
        got.append(item)

    ctrl = plat.controller
    # consumer shares tile 2 with the producer: must not hold the core
    plat.run_proc(ctrl.spawn("p", 2, producer))
    c = plat.run_proc(ctrl.spawn("c", 2, consumer))
    plat.sim.run_until_event(c.exit_event, limit=LIMIT)
    assert got == ["x"]


# -- figS smoke ---------------------------------------------------------------

def _smoke_pt(**kw):
    kw.setdefault("kv_shards", 2)
    kw.setdefault("gateways", 2)
    kw.setdefault("requests", 6)
    return FigSPoint(**kw)


def test_figs_m3v_point_conserves_requests():
    res = run_figs_point(_smoke_pt(system="m3v", load=2.0,
                                   fault_rate=0.05))
    expected = 2 * 6
    assert res["completed"] + res["shed"] + res["failed"] == expected
    assert res["goodput_rps"] > 0
    assert set(res["tenants"]) <= {t.name for t in DEFAULT_TENANTS}
    assert res["offered_rps"] == pytest.approx(6000.0)


def test_figs_m3x_point_takes_slow_paths():
    res = run_figs_point(_smoke_pt(system="m3x", load=1.0,
                                   fault_rate=0.0))
    assert res["completed"] + res["shed"] + res["failed"] == 2 * 6
    # multiplexed KV/gateway/sink tiles force controller slow paths
    assert res["slow_paths"] > 0


def test_figs_noprot_runs_unbounded():
    res = run_figs_point(_smoke_pt(system="m3v", load=2.0,
                                   protection=False, fault_rate=0.0))
    assert res["completed"] == 2 * 6             # nothing shed, ever
    assert res["shed"] == 0
    assert res["shed_quota"] == res["shed_deadline"] == res["shed_full"] == 0


def test_figs_mpmc_backend_runs():
    res = run_figs_point(_smoke_pt(system="m3v", load=1.0, backend="mpmc",
                                   fault_rate=0.0))
    assert res["completed"] + res["shed"] + res["failed"] == 2 * 6


def test_figs_points_cover_all_arms():
    p = FigSParams(loads=[0.5, 2.0], systems=["m3v", "m3x"],
                   ablation_loads=[2.0], backend_loads=[2.0])
    pts = figs_points(p)
    arms = reduce_figs(p, [{"marker": i} for i in range(len(pts))])
    assert set(arms) == {"m3v", "m3x", "m3v_noprot", "m3v_mpmc",
                         "m3v_static", "m3v_adapt"}
    assert set(arms["m3v"]) == {0.5, 2.0}
    assert set(arms["m3v_noprot"]) == {2.0}
    # the adaptive pair differs only in scheduling/placement: same packed
    # layout, same skew, same (pinned) request count on both sides
    pairs = {pt.rebalance: pt for pt in pts if pt.pack != 1}
    assert set(pairs) == {False, True}
    st, ad = pairs[False], pairs[True]
    assert (st.pack, st.skew, st.requests) == (ad.pack, ad.skew, ad.requests)
    assert st.requests == p.adaptive_requests
    assert (st.sched, ad.sched) == ("rr", "edf")


def test_figs_shape_checks_accept_good_curve_and_catch_collapse():
    def row(goodput, p99, met=10, completed=10):
        return {"goodput_rps": goodput, "p99_us": p99, "slo_met": met,
                "completed": completed}

    good = {"figS": {
        "m3v": {"0.7": row(2000, 1500), "2.0": row(3900, 7000)},
        "m3x": {"0.7": row(1900, 4000), "2.0": row(150, 80000)},
    }}
    assert [f for f in shape_checks(good) if "figS" in f] == []

    collapsed = {"figS": {
        "m3v": {"0.7": row(2000, 1500, met=4), "2.0": row(1000, 7000)},
        "m3x": {"0.7": row(1900, 4000), "2.0": row(3800, 5000)},
    }}
    failures = [f for f in shape_checks(collapsed) if "figS" in f]
    assert len(failures) == 4          # all four figS claims violated


def test_figs_shape_checks_enforce_adaptive_gap():
    def row(gold_p99, migrations):
        return {"migrations": migrations,
                "tenants": {"gold": {"slo_us": 10_000.0,
                                     "p99_us": gold_p99}}}

    good = {"figS": {
        "m3v_static": {"1.1": row(11_300.0, 0)},
        "m3v_adapt": {"1.1": row(9_500.0, 7)},
    }}
    assert shape_checks(good) == []

    # adaptive arm misses the SLO and never migrates: both claims fire
    broken = {"figS": {
        "m3v_static": {"1.1": row(11_300.0, 0)},
        "m3v_adapt": {"1.1": row(12_000.0, 0)},
    }}
    failures = shape_checks(broken)
    assert len(failures) == 2
    assert any("adaptive placement holds" in f for f in failures)
    assert any("live-migrates" in f for f in failures)

    # static arm inside SLO means the scenario shows no gap at all
    no_gap = {"figS": {
        "m3v_static": {"1.1": row(8_000.0, 0)},
        "m3v_adapt": {"1.1": row(7_500.0, 5)},
    }}
    assert any("breaks gold p99 SLO" in f for f in shape_checks(no_gap))


# -- chaos harness ------------------------------------------------------------

def test_floor_checks_bounds():
    floor = Floor(min_goodput_frac=0.5, max_p99_us=1_000.0,
                  max_failed_frac=0.1)
    ok = {"goodput_rps": 600.0, "p99_us": 900.0, "failed": 0}
    assert floor.check(ok, expected=10, offered_rps=1000.0) == []
    bad = {"goodput_rps": 400.0, "p99_us": 2_000.0, "failed": 3}
    problems = floor.check(bad, expected=10, offered_rps=1000.0)
    assert len(problems) == 3


def test_chaos_campaign_passes_and_fails_deterministically():
    base = dict(requests=4, kv_shards=2, gateways=2)
    ok = run_campaign(ChaosCampaign(
        name="smoke", phases=[Phase("p", 1.0, 0.02, Floor())], **base))
    assert ok.ok and ok.phases[0].ok
    assert "PASS" in ok.summary()
    # an absurd floor must fail the phase, not raise
    bad = run_campaign(ChaosCampaign(
        name="doomed",
        phases=[Phase("p", 1.0, 0.02, Floor(min_goodput_frac=2.0))],
        **base))
    assert not bad.ok
    assert any("below floor" in p for p in bad.phases[0].problems)
    # seeded: the same campaign reproduces the same stats
    again = run_campaign(ChaosCampaign(
        name="smoke", phases=[Phase("p", 1.0, 0.02, Floor())], **base))
    assert again.phases[0].stats == ok.phases[0].stats


def test_chaos_min_migrations_guards_against_vacuous_pass():
    # a phase that demands live migrations must fail when the
    # rebalancer is off — the migration-storm campaign cannot pass
    # with the mechanism parked
    res = run_campaign(ChaosCampaign(
        name="static",
        phases=[Phase("p", 1.0, 0.02, Floor(), min_migrations=1)],
        requests=4, kv_shards=2, gateways=2))
    assert not res.ok
    assert any("live migrations" in p for p in res.phases[0].problems)


# -- scheduler regressions (bugs fixed by this PR) ----------------------------

def test_m3v_sleepers_survive_overload_fanin():
    """Regression: TileMux._idle parked the core even when its own
    CUR_ACT exchange had just averted a lost wakeup, stranding the
    requeued activity forever (no core request → no IRQ).  An overload
    point with sleeping pollers + fan-in traffic reproduced the hang;
    it must now terminate well before the simulation limit."""
    res = run_figs_point(_smoke_pt(system="m3v", load=1.5,
                                   fault_rate=0.02))
    assert res["completed"] + res["shed"] + res["failed"] == 2 * 6


def test_m3x_descheduled_sleeper_timer_wakes_via_controller():
    """Regression: an M3x activity whose sleep timer fired while it
    was descheduled (or mid-save) was dropped by both the mux and the
    controller.  The WAKEUP notify + post-save requeue keep it
    schedulable; the run must terminate and the new notify counters
    must tick."""
    plat = build_system(SystemConfig(kind="m3x", n_proc_tiles=2,
                                     n_mem_tiles=1)).platform
    order = []

    def napper(api):
        for i in range(4):
            yield from api.sleep_us(40.0)
            order.append(("nap", i))

    def worker(api):
        for i in range(4):
            yield from api.compute(2_000)
            order.append(("work", i))
            yield from api.sleep_us(15.0)

    ctrl = plat.controller
    a = plat.run_proc(ctrl.spawn("napper", 0, napper))
    b = plat.run_proc(ctrl.spawn("worker", 0, worker))
    plat.sim.run_until_event(a.exit_event, limit=LIMIT)
    plat.sim.run_until_event(b.exit_event, limit=LIMIT)
    assert [x for x in order if x[0] == "nap"] == \
        [("nap", i) for i in range(4)]
    # naps block-notified the controller, and at least one timer fired
    # while the napper was descheduled
    assert plat.stats.counter_value("m3x/block_notifies") > 0
    assert plat.stats.counter_value("m3x/wake_notifies") > 0
