"""Pluggable TileMux scheduling policies (ISSUE 10 tentpole, part 1).

Three layers:

* unit behaviour of the four disciplines (``rr``/``edf``/``lottery``/
  ``autotune``) against the deque surface TileMux consumes;
* config plumbing — ``SchedSpec`` on ``SystemConfig``, the
  ``REPRO_SCHED`` environment default, and explicit-config-wins
  precedence;
* equivalence — the default spec (and an explicit ``rr`` spec) leaves
  the trace of a real workload byte-identical to an unconfigured build,
  which is what keeps every golden digest valid.
"""

import pytest

from repro.api import SystemConfig, build_system
from repro.mux.sched import (
    AutotunePolicy,
    EdfPolicy,
    LotteryPolicy,
    RoundRobinPolicy,
    SCHED_POLICIES,
    SchedSpec,
    SchedPolicy,
    make_policy,
)
from repro.sim.trace import capture
from repro.testing.golden import canonical_json

LIMIT = 10**13


class FakeAct:
    def __init__(self, name, deadline_ps=None, tickets=1):
        self.name = name
        self.deadline_ps = deadline_ps
        self.tickets = tickets
        self.sched_slice_ps = None

    def __repr__(self):
        return f"FakeAct({self.name})"


# -- unit: the disciplines ----------------------------------------------------

def test_spec_validates_policy_and_bounds():
    with pytest.raises(ValueError, match="unknown sched policy"):
        SchedSpec(policy="fifo")
    with pytest.raises(ValueError, match="slice bounds"):
        SchedSpec(slice_min_us=0)
    with pytest.raises(ValueError, match="slice bounds"):
        SchedSpec(slice_min_us=100.0, slice_max_us=50.0)


def test_make_policy_covers_all_disciplines():
    classes = {make_policy(SchedSpec(policy=p), tile_id=1).__class__
               for p in SCHED_POLICIES}
    assert classes == {RoundRobinPolicy, EdfPolicy, LotteryPolicy,
                       AutotunePolicy}
    assert isinstance(make_policy(None, tile_id=0), RoundRobinPolicy)


def test_round_robin_is_fifo_with_deque_surface():
    q = make_policy(SchedSpec(), tile_id=0)
    a, b, c = FakeAct("a"), FakeAct("b"), FakeAct("c")
    for act in (a, b, c):
        q.append(act)
    assert len(q) == 3 and b in q and list(q) == [a, b, c]
    q.remove(b)
    assert [q.popleft(), q.popleft()] == [a, c]
    assert not q
    # the base policy never adapts
    assert q.slice_ps(a, 777) == 777
    assert q.on_preempt(a) is False and q.on_trap(a) is False


def test_edf_picks_earliest_deadline_ties_and_blanks_fifo():
    q = make_policy(SchedSpec(policy="edf"), tile_id=0)
    none1 = FakeAct("n1")
    late = FakeAct("late", deadline_ps=9_000)
    early = FakeAct("early", deadline_ps=1_000)
    tied = FakeAct("tied", deadline_ps=1_000)
    none2 = FakeAct("n2")
    for act in (none1, late, early, tied, none2):
        q.append(act)
    # earliest deadline first; equal deadlines keep queue order; the
    # deadline-free stragglers drain FIFO behind every deadlined one
    assert [q.popleft() for _ in range(5)] == [early, tied, late,
                                              none1, none2]


def test_edf_without_deadlines_degenerates_to_round_robin():
    q = make_policy(SchedSpec(policy="edf"), tile_id=0)
    acts = [FakeAct(str(i)) for i in range(4)]
    for act in acts:
        q.append(act)
    assert [q.popleft() for _ in range(4)] == acts


def test_lottery_is_seeded_and_proportional():
    def draw_seq(spec, tile):
        q = make_policy(spec, tile)
        picks = []
        for _ in range(50):
            hog = FakeAct("hog", tickets=8)
            starved = FakeAct("starved", tickets=1)
            q.append(hog)
            q.append(starved)
            picks.append(q.popleft().name)
            q.popleft()  # drain the loser
        return picks

    base = SchedSpec(policy="lottery", seed=7)
    assert draw_seq(base, 3) == draw_seq(base, 3)          # reproducible
    assert draw_seq(base, 3) != draw_seq(base, 4)          # tile-local
    assert draw_seq(base, 3) != draw_seq(
        SchedSpec(policy="lottery", seed=8), 3)            # seed-keyed
    wins = draw_seq(base, 3).count("hog")
    assert wins > 35, f"8:1 tickets won only {wins}/50 draws"


def test_lottery_single_entry_skips_the_draw():
    q = make_policy(SchedSpec(policy="lottery"), tile_id=0)
    only = FakeAct("only")
    q.append(only)
    assert q.popleft() is only


def test_autotune_slice_adapts_and_clamps():
    spec = SchedSpec(policy="autotune", slice_min_us=100.0,
                     slice_max_us=400.0)
    q = make_policy(spec, tile_id=0)
    act = FakeAct("a")
    base = q.slice_ps(act, 200_000_000)       # 200 us seed
    assert base == act.sched_slice_ps == 200_000_000
    assert q.on_preempt(act) and act.sched_slice_ps == 400_000_000
    assert not q.on_preempt(act)              # clamped at slice_max_us
    for _ in range(3):
        q.on_trap(act)
    assert act.sched_slice_ps == 100_000_000  # clamped at slice_min_us
    assert not q.on_trap(act)
    # the adapted slice rides on the activity, not the tile
    assert make_policy(spec, tile_id=5).slice_ps(act, 999) == 100_000_000


# -- config plumbing ----------------------------------------------------------

def test_sched_spec_rejected_on_non_tilemux_kinds():
    with pytest.raises(ValueError, match="requires a TileMux kind"):
        SystemConfig(kind="m3x", sched=SchedSpec())
    with pytest.raises(ValueError, match="requires a TileMux kind"):
        SystemConfig(kind="linux", sched=SchedSpec())


def _mux_policies(cfg=None, **overrides):
    plat = build_system(cfg, **overrides).platform
    return {tid: tile.mux.ready.name
            for tid, tile in sorted(plat.tiles.items())
            if getattr(tile, "mux", None) is not None}


def test_sched_spec_reaches_every_tilemux():
    pols = _mux_policies(SystemConfig(kind="m3v", n_proc_tiles=3,
                                      sched=SchedSpec(policy="edf")))
    assert set(pols.values()) == {"edf"} and len(pols) == 3


def test_env_sched_defaults_unset_config(monkeypatch):
    monkeypatch.setenv("REPRO_SCHED", "lottery")
    assert set(_mux_policies(SystemConfig(kind="m3v",
                                          n_proc_tiles=2)).values()) \
        == {"lottery"}


def test_explicit_config_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCHED", "lottery")
    pols = _mux_policies(SystemConfig(kind="m3v", n_proc_tiles=2,
                                      sched=SchedSpec(policy="autotune")))
    assert set(pols.values()) == {"autotune"}


def test_env_sched_ignored_for_non_tilemux_kind(monkeypatch):
    monkeypatch.setenv("REPRO_SCHED", "edf")
    plat = build_system(SystemConfig(kind="m3x", n_proc_tiles=2)).platform
    assert plat is not None  # must not raise the kind check


# -- equivalence: default spec keeps the trace byte-identical -----------------

def _pingpong_trace(sched):
    """A small two-tile RPC workload, traced."""
    with capture() as tracer:
        plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=3,
                                         n_mem_tiles=1, sched=sched)).platform
        ctrl = plat.controller
        env = {}

        def server(api):
            while "rep" not in env:
                yield api.sim.timeout(1_000_000)
            for _ in range(6):
                msg = yield from api.recv(env["rep"])
                yield from api.reply(env["rep"], msg, data=msg.data + 1,
                                     size=16)

        def client(api):
            while "sep" not in env:
                yield api.sim.timeout(1_000_000)
            for i in range(6):
                v = yield from api.call(env["sep"], env["rpl"], data=i,
                                        size=16)
                assert v == i + 1
                yield from api.compute(150_000)

        srv = plat.run_proc(ctrl.spawn("server", 1, server))
        cli = plat.run_proc(ctrl.spawn("client", 2, client))
        sep, rep, rpl = plat.run_proc(ctrl.wire_channel(cli, srv, credits=2))
        env.update(sep=sep, rep=rep, rpl=rpl)
        plat.sim.run_until_event(cli.exit_event, limit=LIMIT)
    return canonical_json(tracer)


def test_default_and_explicit_rr_trace_byte_identical():
    unconfigured = _pingpong_trace(sched=None)
    explicit_rr = _pingpong_trace(sched=SchedSpec())
    assert unconfigured == explicit_rr


def test_edf_differs_only_when_deadlines_exist():
    # without any set_deadline() calls EDF degenerates to round-robin:
    # the same workload must produce the identical trace
    assert _pingpong_trace(sched=SchedSpec(policy="edf")) \
        == _pingpong_trace(sched=None)
