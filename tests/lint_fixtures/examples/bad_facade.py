"""Fixture: triggers exactly REP003[facade-bypass]."""

from repro.core import PlatformConfig, build_m3v


def main():
    return build_m3v(PlatformConfig(n_proc_tiles=2))
