"""Fixture: triggers exactly REP001[id-ordering]."""


def tie_break(event):
    return id(event)
