"""Fixture: triggers exactly REP003[upward-import]."""

from repro.dtu.dtu import Dtu


def attach(tile):
    return Dtu
