"""Fixture: a real hazard silenced by a scoped noqa; zero findings."""


def drain(events):
    pending = {3, 1, 2}
    order = []
    for ev in pending:  # repro: noqa[REP001] order irrelevant here
        order.append(ev)
    return order
