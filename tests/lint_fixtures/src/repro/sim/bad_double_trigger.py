"""Fixture: triggers exactly REP002[double-trigger]."""


def finish(ev):
    ev.succeed()
    ev.succeed()
