"""Fixture: triggers exactly REP001[unordered-iter]."""


def drain(events):
    pending = {3, 1, 2}
    order = []
    for ev in pending:
        order.append(ev)
    return order
