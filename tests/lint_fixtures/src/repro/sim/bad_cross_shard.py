"""Fixture: triggers exactly REP004[foreign-tile-store]."""


def rewire(plat, tid, new_mux):
    plat.tiles[tid].mux = new_mux
    return plat
