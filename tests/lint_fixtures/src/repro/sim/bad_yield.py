"""Fixture: triggers exactly REP002[bad-yield]."""


def worker(sim):
    yield "not-an-event"
