"""Fixture: triggers exactly REP002[blocking-call]."""

import os


def worker(sim):
    os.system("sync")
    yield 10
