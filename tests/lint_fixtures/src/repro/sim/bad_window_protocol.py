"""Fixture: triggers exactly REP004[window-protocol]."""


def steal_work(queue, lane, horizon):
    return queue.pop_lane_upto(lane, horizon)
