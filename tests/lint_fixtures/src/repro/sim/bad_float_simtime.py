"""Fixture: triggers exactly REP001[float-simtime]."""


def worker(sim, cost):
    yield cost / 2
