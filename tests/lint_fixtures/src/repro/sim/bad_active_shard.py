"""Fixture: triggers exactly REP004[active-shard]."""


def pin(sim, shard):
    sim._active_shard = shard
