"""REP003 env-config: REPRO_* reads outside repro.sim.envcfg."""

import os


def shard_count():
    raw = os.environ.get("REPRO_SHARDS", "")
    return int(raw) if raw else 0


def strict():
    return os.environ["REPRO_SHARD_STRICT"] == "1"


def backend():
    return os.getenv("REPRO_SHARD_BACKEND", "inline")
