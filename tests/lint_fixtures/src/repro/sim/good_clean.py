"""Fixture: near-misses of every rule; must produce zero findings."""

import random
from typing import Dict, Iterator


def seeded(seed: int):
    # constructing a *seeded* generator is the sanctioned way to be
    # random; only the process-global RNG is flagged
    return random.Random(seed)


def worker(sim, rng):
    yield rng.randrange(10)
    yield 5
    yield 100 // 3  # floor division stays integral
    yield int(2.5)  # explicit conversion is an accepted fix


def drain(sim, table: Dict[int, int]):
    total = sum(v for v in table.values())  # order-insensitive consumer
    for _key, value in sorted(table.items()):  # sorted() fixes the order
        yield value
    return total


def names(table: Dict[int, str]) -> Iterator[str]:
    # a data iterator, not a process body: non-Event yields are fine
    yield "header"
    for _key, value in sorted(table.items()):
        yield value


def retry(ev, fallback):
    if ev.pending:
        ev.succeed()
    else:
        fallback.succeed()  # different event: not a double trigger


class Event:
    def __repr__(self):
        return f"<Event {id(self):#x}>"  # repr may use id()
