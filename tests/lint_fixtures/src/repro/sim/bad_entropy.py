"""Fixture: triggers exactly REP001[entropy]."""

import random


def jitter_ps():
    return int(random.random() * 1000)
