"""Fixture: triggers exactly REP002[nongen-process]."""


def worker():
    return 42


def start(sim):
    sim.process(worker)
