"""Fixture: triggers exactly REP004[event-shard-store]."""


def restamp(event, lane):
    event.shard = lane
    return event
