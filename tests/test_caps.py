"""Unit tests for the capability system."""

import pytest

from repro.dtu.endpoints import Perm
from repro.kernel.caps import (
    CapError,
    CapKind,
    CapTable,
    MGateObj,
    RGateObj,
    SGateObj,
    delegate,
    revoke,
)


def make_tables(n=3):
    return {i: CapTable(i) for i in range(1, n + 1)}


def test_insert_and_get():
    table = CapTable(1)
    obj = RGateObj(slots=4, slot_size=128)
    cap = table.insert(CapKind.RGATE, obj)
    assert table.get(cap.sel).obj is obj


def test_get_wrong_kind_rejected():
    table = CapTable(1)
    cap = table.insert(CapKind.RGATE, RGateObj(4, 128))
    with pytest.raises(CapError):
        table.get(cap.sel, CapKind.MGATE)


def test_get_unknown_selector_rejected():
    with pytest.raises(CapError):
        CapTable(1).get(42)


def test_explicit_selector_and_collision():
    table = CapTable(1)
    table.insert(CapKind.RGATE, RGateObj(4, 128), sel=10)
    with pytest.raises(CapError):
        table.insert(CapKind.RGATE, RGateObj(4, 128), sel=10)
    # allocator continues past explicit selectors
    cap = table.insert(CapKind.RGATE, RGateObj(4, 128))
    assert cap.sel == 11


def test_delegate_builds_tree():
    tables = make_tables()
    root = tables[1].insert(CapKind.MGATE,
                            MGateObj(mem_tile=9, base=0, size=4096,
                                     perm=Perm.RW))
    child = delegate(root, tables[2])
    grandchild = delegate(child, tables[3])
    assert [c.owner for c in root.subtree()] == [1, 2, 3]
    assert grandchild.obj is root.obj  # same kernel object


def test_revoke_removes_whole_subtree():
    tables = make_tables()
    root = tables[1].insert(CapKind.MGATE,
                            MGateObj(mem_tile=9, base=0, size=4096,
                                     perm=Perm.RW))
    child = delegate(root, tables[2])
    delegate(child, tables[3])
    count = revoke(child, tables)
    assert count == 2
    assert child.sel not in tables[2]
    assert len(tables[3]) == 0
    # the root survives
    assert root.sel in tables[1]


def test_revoke_calls_hook_for_each_victim():
    tables = make_tables()
    root = tables[1].insert(CapKind.RGATE, RGateObj(4, 128))
    delegate(root, tables[2])
    victims = []
    revoke(root, tables, on_revoke=lambda cap: victims.append(cap.owner))
    assert sorted(victims) == [1, 2]


def test_delegate_revoked_cap_rejected():
    tables = make_tables()
    root = tables[1].insert(CapKind.RGATE, RGateObj(4, 128))
    revoke(root, tables)
    with pytest.raises(CapError):
        delegate(root, tables[2])


def test_mgate_derive_narrows():
    parent = MGateObj(mem_tile=9, base=1000, size=8192, perm=Perm.RW)
    child = parent.derive(offset=4096, size=4096, perm=Perm.R)
    assert child.base == 5096 and child.size == 4096
    assert child.perm is Perm.R


def test_mgate_derive_cannot_widen_or_escape():
    parent = MGateObj(mem_tile=9, base=0, size=4096, perm=Perm.R)
    with pytest.raises(CapError):
        parent.derive(0, 4096, Perm.RW)  # widen perms
    with pytest.raises(CapError):
        parent.derive(4000, 4096, Perm.R)  # out of bounds


def test_sgate_points_at_rgate():
    rgate = RGateObj(8, 256)
    sgate = SGateObj(rgate=rgate, label=7, credits=2)
    assert sgate.rgate is rgate
    assert not rgate.activated
    rgate.tile, rgate.ep = 3, 12
    assert rgate.activated
