"""Differential test layer for the conservative parallel engine.

Three layers of evidence that sharded execution is *indistinguishable*
from serial execution:

1. **Golden conformance** — every committed digest replays byte-identical
   under shards ∈ {serial, 2, 4} × {calendar, heap}.  The merge order of
   :class:`repro.sim.parallel.ShardedEventQueue` is provably the serial
   pop order, so this must hold exactly, not approximately.
2. **Property-based differential testing** — hypothesis generates random
   inter-tile send/receive schedules (same-timestamp ties, messages
   landing exactly on the lookahead boundary) and runs them through the
   sharded and the single-queue engine; event histories and canonical
   traces must be identical, under strict causality checking.
3. **Mutation re-runs** — the PR-1 mutation tests (a deliberately broken
   mechanism must be *caught* by the online invariant checkers) repeat
   under ``REPRO_SHARDS=4``: the checkers observe the same trace stream,
   so a bug the serial engine surfaces must also surface sharded.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Simulator, engine
from repro.sim.parallel import (
    GLOBAL_SHARD,
    CausalityError,
    ShardPlan,
    ShardedEventQueue,
    partition_tiles,
)
from repro.sim.trace import capture
from repro.testing.golden import (
    GOLDEN_DIR,
    canonical_events,
    digest,
    diff_digest,
    load_golden,
    record_trace,
)

GOLDEN_NAMES = sorted(p.stem for p in Path(GOLDEN_DIR).glob("*.json"))

SHARD_CONFIGS = [
    pytest.param("", id="serial"),
    pytest.param("2", id="shards2"),
    pytest.param("4", id="shards4"),
]
SCHEDULERS = ["calendar", "heap"]


# -- layer 1: golden conformance ----------------------------------------------

@pytest.mark.golden
@pytest.mark.parametrize("name", GOLDEN_NAMES)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("shards", SHARD_CONFIGS)
def test_golden_digest_survives_sharding(name, scheduler, shards,
                                         monkeypatch):
    if shards:
        monkeypatch.setenv("REPRO_SHARDS", shards)
    else:
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
    monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
    # strict mode: a lookahead violation anywhere in the platform build
    # or the workload fails the test instead of being silently counted
    monkeypatch.setenv("REPRO_SHARD_STRICT", "1")
    engine.set_default_scheduler(scheduler)
    try:
        actual = digest(record_trace(name))
    finally:
        engine.set_default_scheduler(None)
    problems = diff_digest(load_golden(name), actual)
    assert not problems, (
        f"{name} diverged under shards={shards or 'serial'} "
        f"scheduler={scheduler}:\n  " + "\n  ".join(problems))


# -- layer 2: property-based differential testing -----------------------------
#
# A synthetic multi-tile workload small enough for hypothesis to shrink:
# every tile runs a program of "local" steps (timeouts with deliberately
# colliding timestamps) and "send" steps (an event created in the
# *destination* tile's shard and triggered ``lookahead + slack`` ahead —
# slack 0 lands exactly on the conservative boundary).

LOOKAHEAD = 10

_OP = st.one_of(
    st.tuples(st.just("local"), st.integers(0, 3), st.integers(0, 7)),
    st.tuples(st.just("send"), st.integers(0, 3), st.integers(0, 3)),
)
_PROGRAMS = st.lists(st.lists(_OP, max_size=6), min_size=2, max_size=5)


def _run_program(programs, scheduler, shards):
    """Returns (history, canonical trace, final now) for one engine."""
    n_tiles = len(programs)
    history = []
    with capture() as tracer:
        sim = Simulator(scheduler=scheduler, shards=shards,
                        lookahead=LOOKAHEAD, shard_strict=True,
                        shard_backend="inline")
        if shards:
            plan = ShardPlan.for_tiles(list(range(n_tiles)), shards,
                                       LOOKAHEAD)
            sim.set_shard_plan(plan)
            shard_of = plan.shard_of
        else:
            shard_of = lambda tid: GLOBAL_SHARD

        def tile_proc(tid, ops):
            for kind, a, b in ops:
                if kind == "local":
                    yield sim.timeout(a)
                    history.append(("local", tid, sim.now, b))
                else:
                    dst = (tid + 1 + a) % n_tiles
                    with sim.shard_scope(shard_of(dst)):
                        ev = sim.event()
                    ev.callbacks.append(
                        lambda e, dst=dst, b=b:
                            history.append(("recv", dst, sim.now, b)))
                    ev.succeed(delay=LOOKAHEAD + b)
                    history.append(("send", tid, sim.now, b))

        for tid, ops in enumerate(programs):
            with sim.shard_scope(shard_of(tid)):
                sim.process(tile_proc(tid, ops), name=f"tile{tid}")
        sim.run()
    return history, canonical_events(tracer), sim.now


@given(programs=_PROGRAMS, n_shards=st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_sharded_engine_is_serial_engine(programs, n_shards):
    for scheduler in SCHEDULERS:
        serial = _run_program(programs, scheduler, shards=0)
        sharded = _run_program(programs, scheduler, shards=n_shards)
        assert sharded[0] == serial[0], (
            f"event histories diverged (scheduler={scheduler}, "
            f"shards={n_shards})")
        assert sharded[1] == serial[1], (
            f"canonical traces diverged (scheduler={scheduler}, "
            f"shards={n_shards})")
        assert sharded[2] == serial[2]


@given(programs=_PROGRAMS)
@settings(max_examples=10, deadline=None)
def test_calendar_and_heap_agree_sharded(programs):
    """The cross-scheduler tie-order invariant (DESIGN.md §13) holds
    with the sharded queue layered on either scheduler."""
    cal = _run_program(programs, "calendar", shards=2)
    hp = _run_program(programs, "heap", shards=2)
    assert cal[0] == hp[0]
    assert cal[1] == hp[1]


def test_threads_backend_same_events_and_state():
    """The threads backend promises the same *set* of events at the same
    timestamps and the same final state — and run-to-run determinism —
    but not serial byte-order for same-timestamp cross-shard ties."""
    programs = [[("local", 1, 0), ("send", 0, 1), ("local", 2, 0)],
                [("send", 0, 0), ("local", 1, 1)],
                [("local", 0, 0), ("send", 1, 2)]]

    def run(backend):
        history = []
        sim = Simulator(shards=3, lookahead=LOOKAHEAD,
                        shard_backend=backend)
        plan = ShardPlan.for_tiles([0, 1, 2], 3, LOOKAHEAD)
        sim.set_shard_plan(plan)

        def tile_proc(tid, ops):
            for kind, a, b in ops:
                if kind == "local":
                    yield sim.timeout(a)
                    history.append(("local", tid, sim.now, b))
                else:
                    dst = (tid + 1 + a) % 3
                    with sim.shard_scope(plan.shard_of(dst)):
                        ev = sim.event()
                    ev.callbacks.append(
                        lambda e, dst=dst, b=b:
                            history.append(("recv", dst, sim.now, b)))
                    ev.succeed(delay=LOOKAHEAD + b)
                    history.append(("send", tid, sim.now, b))

        for tid, ops in enumerate(programs):
            with sim.shard_scope(plan.shard_of(tid)):
                sim.process(tile_proc(tid, ops), name=f"tile{tid}")
        sim.run()
        return history, sim.now

    serial_hist, serial_now = run("inline")
    threads_hist, threads_now = run("threads")
    assert sorted(threads_hist) == sorted(serial_hist)
    assert threads_now == serial_now
    again_hist, again_now = run("threads")
    assert again_hist == threads_hist
    assert again_now == threads_now


# -- causality policing --------------------------------------------------------

def _two_shard_sim(**kwargs):
    sim = Simulator(shards=2, lookahead=LOOKAHEAD, shard_backend="inline",
                    **kwargs)
    sim.set_shard_plan(ShardPlan.for_tiles([0, 1], 2, LOOKAHEAD))
    return sim


def test_lookahead_violation_is_counted():
    # pin non-strict: REPRO_SHARD_STRICT=1 in the environment (the CI
    # parallel job) must not turn the counted violation into a raise
    sim = _two_shard_sim(shard_strict=False)

    def offender():
        yield sim.timeout(5)
        with sim.shard_scope(1):
            ev = sim.event()
        ev.callbacks.append(lambda e: None)
        ev.succeed(delay=LOOKAHEAD - 1)   # under the conservative bound

    with sim.shard_scope(0):
        sim.process(offender(), name="offender")
    sim.run()
    assert sim.shard_stats.violations == 1


def test_lookahead_violation_raises_in_strict_mode():
    sim = _two_shard_sim(shard_strict=True)

    def offender():
        yield sim.timeout(5)
        with sim.shard_scope(1):
            ev = sim.event()
        ev.succeed(delay=LOOKAHEAD - 1)

    with sim.shard_scope(0):
        sim.process(offender(), name="offender")
    with pytest.raises(CausalityError):
        sim.run()


def test_boundary_send_is_not_a_violation():
    sim = _two_shard_sim(shard_strict=True)
    seen = []

    def sender():
        yield sim.timeout(3)
        with sim.shard_scope(1):
            ev = sim.event()
        ev.callbacks.append(lambda e: seen.append(sim.now))
        ev.succeed(delay=LOOKAHEAD)       # exactly on the boundary

    with sim.shard_scope(0):
        sim.process(sender(), name="sender")
    sim.run()
    assert seen == [3 + LOOKAHEAD]
    assert sim.shard_stats.violations == 0


# -- partitioning & plumbing ---------------------------------------------------

def test_partition_tiles_block_and_modulo():
    tiles = list(range(8))
    block = partition_tiles(tiles, 4, "block")
    assert block == {0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3, 7: 3}
    modulo = partition_tiles(tiles, 4, "modulo")
    assert modulo == {t: t % 4 for t in tiles}


def test_shard_plan_caps_at_tile_count():
    plan = ShardPlan.for_tiles([10, 11], 8, LOOKAHEAD)
    assert plan.n_shards == 2
    assert plan.shard_of(10) != plan.shard_of(11)
    assert plan.shard_of(99) == GLOBAL_SHARD


def test_env_selects_sharding(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "3")
    sim = Simulator()
    assert sim.shards == 3
    assert isinstance(sim._eq, ShardedEventQueue)
    monkeypatch.delenv("REPRO_SHARDS")
    assert Simulator().shards == 0


def test_shard_stats_accounting():
    programs = [[("send", 0, 0), ("local", 1, 0)],
                [("local", 2, 1)]]
    _, _, _ = _run_program(programs, "calendar", shards=2)
    sim = Simulator(shards=2, lookahead=LOOKAHEAD, shard_backend="inline")
    sim.set_shard_plan(ShardPlan.for_tiles([0, 1], 2, LOOKAHEAD))

    def prog(tid):
        yield sim.timeout(1)
        with sim.shard_scope(1 - tid):
            ev = sim.event()
        ev.callbacks.append(lambda e: None)
        ev.succeed(delay=LOOKAHEAD)

    for tid in range(2):
        with sim.shard_scope(tid):
            sim.process(prog(tid), name=f"t{tid}")
    sim.run()
    stats = sim.shard_stats.as_dict()
    assert stats["events"] > 0
    assert stats["cross_pushes"] == 2
    assert stats["violations"] == 0
    assert stats["windows"] >= 1


# -- layer 3: the invariant checkers under REPRO_SHARDS=4 ---------------------
#
# The five online checkers subscribe to the trace stream; the sharded
# engine produces the identical stream (layer 1), so every mutation the
# serial suite catches must be caught sharded too.  Re-run the PR-1
# mutation tests — and one green control — with the env knob set.

import tests.test_invariants_systems as _inv


@pytest.fixture
def _sharded_env(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "4")
    monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
    monkeypatch.setenv("REPRO_SHARD_STRICT", "1")
    return monkeypatch


def test_mutation_ownership_bypass_caught_sharded(_sharded_env):
    _inv.test_mutation_ownership_bypass_is_caught(_sharded_env)


def test_mutation_forgotten_cur_act_caught_sharded(_sharded_env):
    _inv.test_mutation_forgotten_cur_act_decrement_is_caught(_sharded_env)


def test_unmutated_control_still_green_sharded(_sharded_env):
    _inv.test_unmutated_foreign_fetch_is_refused()


def test_invariants_under_faults_sharded(_sharded_env):
    _inv.test_m3v_invariants_under_faults(seed=11)
