"""Tests for the YCSB generator and the syscall traces."""

import pytest

from repro.workloads import (
    WORKLOAD_MIXES,
    YcsbOp,
    find_trace,
    make_workload,
    sqlite_trace,
)
from repro.workloads.traces import find_tree_spec


def op_share(workload, op):
    hits = sum(1 for r in workload.requests if r.op is op)
    return hits / len(workload.requests)


def test_workload_sizes_match_paper():
    w = make_workload("read")
    assert len(w.records) == 200
    assert len(w.requests) == 200


@pytest.mark.parametrize("mix,dominant", [
    ("read", YcsbOp.READ), ("insert", YcsbOp.INSERT),
    ("update", YcsbOp.UPDATE), ("scan", YcsbOp.SCAN),
])
def test_dominant_operation_is_about_80_percent(mix, dominant):
    w = make_workload(mix, records=400, operations=2000, seed=3)
    assert 0.74 <= op_share(w, dominant) <= 0.86


def test_scan_heavy_omits_updates_and_point_heavy_omits_scans():
    scan = make_workload("scan", operations=500)
    assert op_share(scan, YcsbOp.UPDATE) == 0
    read = make_workload("read", operations=500)
    assert op_share(read, YcsbOp.SCAN) == 0


def test_mixed_uses_50_10_30_10():
    w = make_workload("mixed", records=400, operations=4000, seed=9)
    assert abs(op_share(w, YcsbOp.READ) - 0.5) < 0.05
    assert abs(op_share(w, YcsbOp.UPDATE) - 0.3) < 0.05
    assert abs(op_share(w, YcsbOp.SCAN) - 0.1) < 0.03


def test_workload_is_deterministic_per_seed():
    a = make_workload("mixed", seed=5)
    b = make_workload("mixed", seed=5)
    assert [r.key for r in a.requests] == [r.key for r in b.requests]
    c = make_workload("mixed", seed=6)
    assert [r.key for r in a.requests] != [r.key for r in c.requests]


def test_inserts_use_fresh_keys():
    w = make_workload("insert", records=50, operations=200, seed=2)
    existing = {k for k, _ in w.records}
    inserted = [r.key for r in w.requests if r.op is YcsbOp.INSERT]
    assert not set(inserted) & existing
    assert len(set(inserted)) == len(inserted)


def test_unknown_mix_rejected():
    with pytest.raises(ValueError):
        make_workload("write-only")


def test_all_mixes_have_proportions_summing_to_one():
    for mix, proportions in WORKLOAD_MIXES.items():
        assert sum(proportions.values()) == pytest.approx(1.0)


# --------------------------------------------------------------- traces


def test_find_trace_stats_every_file():
    trace = find_trace(dirs=24, files_per_dir=40)
    stats = [c for c in trace if c.op == "stat"]
    # one stat per file + one per directory
    assert len(stats) == 24 * 40 + 24
    readdirs = [c for c in trace if c.op == "readdir"]
    assert len(readdirs) == 25  # root + 24 dirs


def test_find_tree_spec_matches_trace():
    dirs, files = find_tree_spec(6, 10)
    assert len(dirs) == 6 and len(files) == 60
    trace = find_trace(6, 10)
    paths = {c.path for c in trace if c.path}
    for d in dirs:
        assert d in paths


def test_sqlite_trace_has_journal_pattern():
    trace = sqlite_trace(transactions=32)
    assert sum(1 for c in trace if c.op == "fsync") == 64   # 2 per insert
    assert sum(1 for c in trace if c.op == "unlink") == 32  # journal delete
    opens = [c for c in trace if c.op == "open"]
    assert opens[0].path == "/test.db"
    assert sum(1 for c in trace if c.path == "/test.db-journal"
               and c.op == "open") == 32


def test_traces_carry_think_time():
    assert all(c.think_cycles >= 0 for c in find_trace(2, 2))
    assert any(c.think_cycles > 0 for c in sqlite_trace(2))
