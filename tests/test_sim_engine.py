"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Event, Interrupt, Simulator, SimulationError, Timeout


def test_timeout_advances_clock():
    sim = Simulator()
    done = []

    def proc():
        yield sim.timeout(10)
        done.append(sim.now)
        yield sim.timeout(5)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [10, 15]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc():
        got.append((yield sim.timeout(3, value="hello")))

    sim.process(proc())
    sim.run()
    assert got == ["hello"]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(waiter(30, "c"))
    sim.process(waiter(10, "a"))
    sim.process(waiter(20, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    sim = Simulator()
    order = []

    def waiter(tag):
        yield sim.timeout(5)
        order.append(tag)

    for tag in range(8):
        sim.process(waiter(tag))
    sim.run()
    assert order == list(range(8))


def test_event_succeed_wakes_waiter_with_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        got.append((yield ev))

    def firer():
        yield sim.timeout(7)
        ev.succeed(42)

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert got == [42]
    assert ev.value == 42 and ev.ok


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())

    def firer():
        yield sim.timeout(1)
        ev.fail(ValueError("boom"))

    sim.process(firer())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_propagates():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        sim.run()


def test_defused_failure_is_silent():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("quiet"))
    ev.defuse()
    sim.run()  # does not raise


def test_process_return_value_propagates():
    sim = Simulator()

    def inner():
        yield sim.timeout(2)
        return 99

    results = []

    def outer():
        results.append((yield sim.process(inner())))

    sim.process(outer())
    sim.run()
    assert results == [99]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def inner():
        yield sim.timeout(1)
        raise KeyError("inner blew up")

    caught = []

    def outer():
        try:
            yield sim.process(inner())
        except KeyError:
            caught.append(True)

    sim.process(outer())
    sim.run()
    assert caught == [True]


def test_waiting_on_already_processed_event():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    sim.run()  # processes ev
    got = []

    def late_waiter():
        got.append((yield ev))

    sim.process(late_waiter())
    sim.run()
    assert got == ["early"]


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
            log.append("slept full")
        except Interrupt as irq:
            log.append(("interrupted", irq.cause, sim.now))

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(50)
        proc.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    assert log == [("interrupted", "wake up", 50)]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_yield_none_is_cooperative_yield():
    sim = Simulator()
    trace = []

    def proc(tag):
        for i in range(3):
            trace.append((tag, i, sim.now))
            yield None

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    # time never advances; both interleave at t=0
    assert all(t == 0 for (_, _, t) in trace)
    assert ("a", 2, 0) in trace and ("b", 2, 0) in trace


def test_yield_int_is_timeout_fast_path():
    sim = Simulator()
    done = []

    def proc():
        yield 10
        done.append(sim.now)
        yield 0
        done.append(sim.now)
        yield 5
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [10, 10, 15]


def test_yield_negative_int_raises():
    sim = Simulator()

    def bad():
        yield -3

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_yield_garbage_raises():
    sim = Simulator()

    def bad():
        yield "not an event"  # repro: noqa[REP002] deliberately bad yield under test

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_yield_int_interleaves_like_timeout():
    # int sleeps and Timeout sleeps must share one FIFO tie order
    sim = Simulator()
    order = []

    def via_int(tag):
        yield 5
        order.append(tag)

    def via_timeout(tag):
        yield sim.timeout(5)
        order.append(tag)

    sim.process(via_timeout("t0"))
    sim.process(via_int("i0"))
    sim.process(via_timeout("t1"))
    sim.process(via_int("i1"))
    sim.run()
    assert order == ["t0", "i0", "t1", "i1"]


def test_interrupt_then_int_sleep_survives_stale_tick():
    # an interrupt orphans the queued tick event; the next int sleep
    # must not be woken by the stale pop
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield 1000
        except Interrupt:
            log.append(("irq", sim.now))
        yield 500
        log.append(("slept", sim.now))

    proc = sim.process(sleeper())

    def interrupter():
        yield 50
        proc.interrupt()

    sim.process(interrupter())
    sim.run()
    assert log == [("irq", 50), ("slept", 550)]


def test_run_until_time_pauses_simulation():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(100)
        fired.append(sim.now)

    sim.process(proc())
    sim.run(until=50)
    assert sim.now == 50 and fired == []
    sim.run()
    assert fired == [100]


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(SimulationError):
        sim.run(until=5)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(10)
        return "done"

    p = sim.process(proc())
    assert sim.run_until_event(p) == "done"


def test_run_until_event_starvation_detected():
    sim = Simulator()
    ev = sim.event()  # never triggered
    with pytest.raises(SimulationError, match="starved"):
        sim.run_until_event(ev)


def test_run_until_event_limit_enforced():
    sim = Simulator()

    def proc():
        yield sim.timeout(1000)

    p = sim.process(proc())
    with pytest.raises(SimulationError, match="did not trigger"):
        sim.run_until_event(p, limit=100)


def test_any_of_returns_first_winner():
    sim = Simulator()
    got = []

    def proc():
        a = sim.timeout(30, value="slow")
        b = sim.timeout(10, value="fast")
        winner, value = yield sim.any_of([a, b])
        got.append((value, sim.now))

    sim.process(proc())
    sim.run()
    assert got == [("fast", 10)]


def test_all_of_waits_for_all():
    sim = Simulator()
    got = []

    def proc():
        values = yield sim.all_of([sim.timeout(5, "a"), sim.timeout(9, "b")])
        got.append((values, sim.now))

    sim.process(proc())
    sim.run()
    assert got == [(["a", "b"], 9)]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    got = []

    def proc():
        got.append((yield sim.all_of([])))

    sim.process(proc())
    sim.run()
    assert got == [[]]


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(42)
    assert sim.peek == 42
