"""Tests for the report renderer and the CLI."""

import json

import pytest

from repro.cli import main
from repro.core.report import bar_chart, render_report, series_chart, shape_checks


def test_bar_chart_scales_to_peak():
    chart = bar_chart("t", {"a": 10.0, "b": 5.0})
    lines = chart.splitlines()
    assert lines[0] == "t"
    assert lines[1].count("#") == 2 * lines[2].count("#")


def test_bar_chart_empty():
    assert "(no data)" in bar_chart("t", {})


def test_series_chart_renders_all_points():
    chart = series_chart("t", {"m3v": {1: 10, 2: 20}, "m3x": {1: 5, 2: 6}})
    assert "m3v" in chart and "m3x" in chart
    assert "20" in chart


GOOD = {
    "fig6": {"m3v_remote": {"kcycles": 1.7, "us": 21},
             "linux_syscall": {"kcycles": 1.8, "us": 22},
             "m3v_local": {"kcycles": 5.2, "us": 65},
             "linux_yield_2x": {"kcycles": 5.8, "us": 72}},
    "fig7": {"m3v_read_shared": 250.0, "linux_read": 70.0,
             "linux_write": 50.0},
    "fig9": {"find": {"m3v": {"1": 94, "12": 1128},
                      "m3x": {"1": 47, "4": 62, "12": 62}}},
    "fig10": {"scan": {"linux": {"total_s": 2.7},
                       "m3v_shared": {"total_s": 2.5},
                       "m3v_isolated": {"total_s": 2.4}}},
    "voice": {"isolated_ms": 119.0, "shared_ms": 127.0,
              "overhead_pct": 6.7},
}


def test_shape_checks_pass_on_good_results():
    assert shape_checks(GOOD) == []


def test_shape_checks_catch_broken_scaling():
    bad = json.loads(json.dumps(GOOD))
    bad["fig9"]["find"]["m3v"]["12"] = 100  # flat M3v: not the paper
    failures = shape_checks(bad)
    assert any("near-linear" in f for f in failures)


def test_shape_checks_catch_linux_winning_scans():
    bad = json.loads(json.dumps(GOOD))
    bad["fig10"]["scan"]["linux"]["total_s"] = 1.0
    assert any("scans" in f for f in failures_of(bad))


def failures_of(results):
    return shape_checks(results)


def test_render_report_includes_all_sections():
    text = render_report(GOOD)
    for needle in ("Figure 6", "Figure 7", "Figure 9", "Figure 10",
                   "Voice assistant"):
        assert needle in text


def test_cli_area_and_sloc(capsys):
    assert main(["area"]) == 0
    out = capsys.readouterr().out
    assert "vDTU" in out and "10.6%" in out
    assert main(["sloc"]) == 0
    assert "controller" in capsys.readouterr().out


def test_cli_report_roundtrip(tmp_path, capsys):
    path = tmp_path / "results.json"
    path.write_text(json.dumps(GOOD))
    assert main(["report", str(path)]) == 0
    assert "all shape checks passed" in capsys.readouterr().out


def test_cli_report_flags_failures(tmp_path, capsys):
    bad = json.loads(json.dumps(GOOD))
    bad["fig7"]["m3v_read_shared"] = 10.0
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(bad))
    assert main(["report", str(path)]) == 1
    assert "SHAPE CHECKS FAILED" in capsys.readouterr().out


def test_cli_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
