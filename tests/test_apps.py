"""Tests for the traceplayer and the voice-assistant pieces."""

import numpy as np
import pytest

from repro.apps.compress import (
    detect_trigger,
    make_audio,
    rice_compress,
    rice_decompress,
)
from repro.apps.traceplayer import TracePlayer
from repro.linuxsim import LinuxMachine
from repro.posix.vfs import LinuxVfs
from repro.workloads.traces import find_trace, find_tree_spec, sqlite_trace


def run_player(trace, setup=None):
    machine = LinuxMachine()
    out = {}

    def prog(api):
        vfs = LinuxVfs(api)
        if setup is not None:
            yield from setup(api)
        player = TracePlayer(vfs, api.compute)
        start = api.sim.now
        yield from player.play(trace)
        out["player"] = player
        out["ps"] = api.sim.now - start

    proc = machine.spawn("player", prog)
    machine.sim.run_until_event(proc.exit_event, limit=10**16)
    return out


def find_setup(dirs=3, files=4):
    dpaths, fpaths = find_tree_spec(dirs, files)

    def setup(api):
        for d in dpaths:
            yield from api.mkdir(d)
        for f in fpaths:
            fd = yield from api.open(f, 64 | 1)  # O_CREAT|O_WRONLY
            yield from api.close(fd)

    return setup


def test_traceplayer_replays_find_trace():
    trace = find_trace(3, 4)
    out = run_player(trace, setup=find_setup(3, 4))
    assert out["player"].runs_completed == 1
    assert out["player"].calls_replayed == len(trace)


def test_traceplayer_replays_sqlite_trace():
    trace = sqlite_trace(transactions=4)
    out = run_player(trace)
    assert out["player"].runs_completed == 1
    assert out["player"].calls_replayed == len(trace)


def test_traceplayer_think_time_costs_time():
    fast = run_player(sqlite_trace(4, think_cycles=0))["ps"]
    slow = run_player(sqlite_trace(4, think_cycles=100_000))["ps"]
    assert slow > fast


def test_traceplayer_rejects_unknown_op():
    from repro.workloads.traces import TraceCall

    with pytest.raises(ValueError):
        run_player([TraceCall("frobnicate", path="/x")])


# ------------------------------------------------------------ audio pieces


def test_make_audio_has_triggers_where_asked():
    audio = make_audio(40_000, trigger_at=[10_000, 30_000])
    assert detect_trigger(audio[10_000:12_048])
    assert detect_trigger(audio[30_000:32_048])
    assert not detect_trigger(audio[0:2048])


def test_trigger_detector_threshold():
    quiet = np.zeros(1024, dtype=np.int16)
    loud = (np.ones(1024) * 5000).astype(np.int16)
    assert not detect_trigger(quiet)
    assert detect_trigger(loud)


def test_rice_roundtrip_on_synthetic_audio():
    audio = make_audio(4096, trigger_at=[1000])
    frame = rice_compress(audio)
    assert np.array_equal(rice_decompress(frame), audio)
    assert len(frame) < 2 * len(audio)  # actually compresses
