"""POSIX-shim parity: the same program must produce identical file
contents and results on M3v (m3fs) and on the Linux baseline (tmpfs)."""

import pytest

from repro.api import SystemConfig, build_system
from repro.posix.vfs import (
    LinuxVfs,
    M3vVfs,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
)
from repro.services.boot import boot_m3fs, connect_fs
from repro.services.m3fs import FsClient


def file_workload(vfs, out):
    """A mixed workload touching every VFS operation."""
    yield from vfs.mkdir("/data")
    fd = yield from vfs.open("/data/log", O_WRONLY | O_CREAT)
    for i in range(6):
        yield from vfs.write(fd, f"record-{i:02d};".encode())
    yield from vfs.fsync(fd)
    yield from vfs.close(fd)

    fd = yield from vfs.open("/data/log", O_RDONLY)
    head = yield from vfs.read(fd, 10)
    yield from vfs.seek(fd, 33)
    middle = yield from vfs.read(fd, 11)
    yield from vfs.close(fd)

    st = yield from vfs.stat("/data/log")
    names = yield from vfs.readdir("/data")

    fd = yield from vfs.open("/data/tmp", O_WRONLY | O_CREAT)
    yield from vfs.write(fd, b"junk")
    yield from vfs.close(fd)
    yield from vfs.unlink("/data/tmp")
    names_after = yield from vfs.readdir("/data")

    fd = yield from vfs.open("/data/log", O_WRONLY | O_CREAT | O_TRUNC)
    yield from vfs.write(fd, b"fresh")
    yield from vfs.close(fd)
    st2 = yield from vfs.stat("/data/log")

    out.update(head=head, middle=middle, size=st["size"], names=names,
               names_after=names_after, size_after_trunc=st2["size"])


def run_on_m3v():
    plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=4,
                                     n_mem_tiles=1))
    fs = plat.run_proc(boot_m3fs(plat, tile=1, blocks=512))
    env, out = {}, {}

    def prog(api):
        while "fs_eps" not in env:
            yield api.sim.timeout(1_000_000)
        vfs = M3vVfs(FsClient(api, *env["fs_eps"]))
        yield from file_workload(vfs, out)

    act = plat.run_proc(plat.controller.spawn("app", 0, prog))
    env["fs_eps"] = plat.run_proc(connect_fs(plat, act, fs))
    plat.sim.run_until_event(act.exit_event, limit=10**14)
    return out


def run_on_linux():
    machine = build_system(SystemConfig(kind="linux"))
    out = {}

    def prog(api):
        yield from file_workload(LinuxVfs(api), out)

    proc = machine.spawn("app", prog)
    machine.sim.run_until_event(proc.exit_event, limit=10**14)
    return out


def test_posix_shim_parity():
    m3v = run_on_m3v()
    linux = run_on_linux()
    assert m3v == linux
    assert m3v["head"] == b"record-00;"
    assert m3v["middle"] == b"ord-03;reco"
    assert m3v["size"] == 60
    assert m3v["names"] == ["log"]
    assert m3v["names_after"] == ["log"]
    assert m3v["size_after_trunc"] == 5
