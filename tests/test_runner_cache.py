"""The content-addressed cache: key stability and invalidation.

Hypothesis properties pin the canonicalization contract — dict
insertion order never matters, ``1`` and ``1.0`` key identically,
configs survive JSON/``asdict`` round-trips — and that any actual
value change always produces a different key.  The invalidation test
edits a (copied) cost-model fingerprint input and checks that exactly
the affected sweep re-simulates while the other sweep's points are
served from cache.
"""

import dataclasses
from dataclasses import dataclass

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.runner import (
    ResultCache,
    Runner,
    Sweep,
    cache_key,
    canonical_json,
    file_fingerprint,
    register,
    unregister,
)
from repro.runner.points import PointSpec, point_seed

# -- canonical-JSON properties ------------------------------------------------

# ±2**40 keeps ints exactly representable as floats, so the int/float
# equivalence property is well defined
small_ints = st.integers(-2**40, 2**40)
scalars = st.one_of(st.none(), st.booleans(), small_ints,
                    st.floats(allow_nan=False, allow_infinity=False),
                    st.text(max_size=8))
json_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4)),
    max_leaves=12)


@given(st.dictionaries(st.text(max_size=6), json_values, max_size=6),
       st.randoms())
@settings(max_examples=60, deadline=None)
def test_key_ignores_dict_insertion_order(d, rnd):
    items = list(d.items())
    rnd.shuffle(items)
    assert canonical_json(dict(items)) == canonical_json(d)


@given(small_ints)
@settings(max_examples=60, deadline=None)
def test_int_and_integral_float_key_identically(i):
    assert canonical_json({"v": i}) == canonical_json({"v": float(i)})
    assert canonical_json([i]) == canonical_json([float(i)])


@given(small_ints, small_ints)
@settings(max_examples=60, deadline=None)
def test_changing_a_value_changes_the_key(a, b):
    assume(a != b)
    assert canonical_json({"x": a}) != canonical_json({"x": b})


@given(st.booleans())
@settings(max_examples=10, deadline=None)
def test_bool_is_not_confused_with_int(flag):
    assert canonical_json({"v": flag}) != canonical_json({"v": int(flag)})


@dataclass(frozen=True)
class InnerCfg:
    a: int
    b: float


@dataclass(frozen=True)
class OuterCfg:
    name: str
    inner: InnerCfg
    ks: tuple


@given(st.text(max_size=8), small_ints,
       st.floats(allow_nan=False, allow_infinity=False),
       st.lists(small_ints, max_size=4))
@settings(max_examples=60, deadline=None)
def test_nested_config_round_trip_keeps_key(name, a, b, ks):
    cfg = OuterCfg(name=name, inner=InnerCfg(a=a, b=b), ks=tuple(ks))
    d = dataclasses.asdict(cfg)
    rebuilt = OuterCfg(name=d["name"], inner=InnerCfg(**d["inner"]),
                       ks=tuple(d["ks"]))
    assert canonical_json(cfg) == canonical_json(rebuilt)
    # the plain-dict form (a JSON round-trip of the config) keys
    # identically too: dataclasses canonicalize to their field dicts
    assert canonical_json(cfg) == canonical_json(d)


@given(small_ints, small_ints)
@settings(max_examples=40, deadline=None)
def test_cache_key_changes_with_any_config_field(a, b):
    assume(a != b)
    spec_a = PointSpec("s", 0, InnerCfg(a=a, b=0.5), point_seed("s", 0))
    spec_b = PointSpec("s", 0, InnerCfg(a=b, b=0.5), point_seed("s", 0))
    assert cache_key(spec_a, "fp") != cache_key(spec_b, "fp")
    # ... and with the code fingerprint and the trace namespace
    assert cache_key(spec_a, "fp") != cache_key(spec_a, "fp2")
    assert cache_key(spec_a, "fp") != cache_key(spec_a, "fp", trace=True)


# -- invalidation: editing a fingerprint input re-runs only its sweep ---------

@dataclass(frozen=True)
class ToyCfg:
    idx: int


RUNS = []


def _toy_point_a(cfg):
    RUNS.append(("a", cfg.idx))
    return {"v": cfg.idx * 10}


def _toy_point_b(cfg):
    RUNS.append(("b", cfg.idx))
    return {"v": cfg.idx * 100}


def _toy_points(_params):
    return [ToyCfg(i) for i in range(3)]


def _toy_reduce(_params, values):
    return values


@pytest.fixture
def toy_sweeps(tmp_path):
    costs_a = tmp_path / "costs_a.py"
    costs_b = tmp_path / "costs_b.py"
    costs_a.write_text("RPC_CYCLES = 5000\n")
    costs_b.write_text("RPC_CYCLES = 5000\n")
    register(Sweep("toy-a", _toy_points, _toy_point_a, _toy_reduce,
                   fingerprint_paths=(str(costs_a),)))
    register(Sweep("toy-b", _toy_points, _toy_point_b, _toy_reduce,
                   fingerprint_paths=(str(costs_b),)))
    RUNS.clear()
    yield costs_a, costs_b
    unregister("toy-a")
    unregister("toy-b")


def test_fingerprint_edit_invalidates_only_affected_points(toy_sweeps,
                                                           tmp_path):
    costs_a, _ = toy_sweeps
    root = tmp_path / "cache"

    cold = Runner(jobs=1, cache=ResultCache(root=root))
    cold.run_sweep("toy-a")
    cold.run_sweep("toy-b")
    assert cold.simulated == 6 and cold.served == 0
    assert cold.cache_misses == 6 and cold.cache_hits == 0

    warm = Runner(jobs=1, cache=ResultCache(root=root))
    a = warm.run_sweep("toy-a")
    b = warm.run_sweep("toy-b")
    assert warm.simulated == 0 and warm.served == 6
    assert warm.cache_hits == 6 and warm.cache_misses == 0
    assert a == [{"v": 0}, {"v": 10}, {"v": 20}]
    assert b == [{"v": 0}, {"v": 100}, {"v": 200}]

    # rewrite one constant in sweep A's (copied) cost-model input
    costs_a.write_text("RPC_CYCLES = 6000\n")
    RUNS.clear()
    after = Runner(jobs=1, cache=ResultCache(root=root))
    after.run_sweep("toy-a")
    after.run_sweep("toy-b")
    assert after.simulated == 3 and after.served == 3
    assert after.cache_hits == 3 and after.cache_misses == 3
    assert RUNS == [("a", 0), ("a", 1), ("a", 2)]   # b never re-ran

    # the new entries are cached under the new fingerprint
    final = Runner(jobs=1, cache=ResultCache(root=root))
    final.run_sweep("toy-a")
    final.run_sweep("toy-b")
    assert final.simulated == 0 and final.served == 6


def test_refresh_ignores_entries_but_rewrites_them(toy_sweeps, tmp_path):
    root = tmp_path / "cache"
    Runner(jobs=1, cache=ResultCache(root=root)).run_sweep("toy-a")

    refresh = Runner(jobs=1, cache=ResultCache(root=root, refresh=True))
    refresh.run_sweep("toy-a")
    assert refresh.simulated == 3 and refresh.served == 0

    warm = Runner(jobs=1, cache=ResultCache(root=root))
    warm.run_sweep("toy-a")
    assert warm.simulated == 0 and warm.served == 3


def test_file_fingerprint_tracks_content(tmp_path):
    f = tmp_path / "m.py"
    f.write_text("X = 1\n")
    before = file_fingerprint([str(f)])
    assert before == file_fingerprint([str(f)])
    f.write_text("X = 2\n")
    assert file_fingerprint([str(f)]) != before
