"""Tests for the mediated-vDTU ablation (section 3.5)."""

from repro.api import SystemConfig, build_system
from repro.mux.mediated import MediatedActivityApi


def measure_rpc(mediated: bool) -> float:
    plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=4,
                                     n_mem_tiles=1)).platform
    if mediated:
        for tid in plat.proc_tile_ids:
            plat.mux(tid).api_class = MediatedActivityApi
    env, out = {}, {}

    def server(api):
        while "s_rep" not in env:
            yield api.sim.timeout(1_000_000)
        while True:
            msg = yield from api.recv(env["s_rep"])
            if msg.data == "stop":
                return
            yield from api.reply(env["s_rep"], msg, data=0, size=16)

    def client(api):
        while "c_sep" not in env:
            yield api.sim.timeout(1_000_000)
        for _ in range(5):
            yield from api.call(env["c_sep"], env["c_rep"], 0, 16)
        start = api.sim.now
        for _ in range(20):
            yield from api.call(env["c_sep"], env["c_rep"], 0, 16)
        out["ps"] = (api.sim.now - start) / 20
        yield from api.send(env["c_sep"], "stop", 16)

    ctrl = plat.controller
    s = plat.run_proc(ctrl.spawn("server", 1, server))
    c = plat.run_proc(ctrl.spawn("client", 0, client))
    sep, rep, rpl = plat.run_proc(ctrl.wire_channel(c, s, credits=2))
    env.update(s_rep=rep, c_sep=sep, c_rep=rpl)
    plat.sim.run_until_event(c.exit_event, limit=10**14)
    out["traps"] = plat.stats.counter_value("mediated/traps")
    return out


def test_mediated_api_traps_on_every_command():
    out = measure_rpc(mediated=True)
    # per RPC: send, fetch(es), ack on both sides all trap
    assert out["traps"] > 25 * 4


def test_mediation_costs_an_order_of_magnitude():
    direct = measure_rpc(mediated=False)["ps"]
    mediated = measure_rpc(mediated=True)["ps"]
    assert mediated > 5 * direct


def test_direct_api_never_traps_for_mediation():
    out = measure_rpc(mediated=False)
    assert out["traps"] == 0
