"""Tests for the original-M3 platform mode (no tile multiplexing)."""

import pytest

from repro.api import SystemConfig, build_system
from repro.kernel.controller import SyscallError


def platform():
    return build_system(SystemConfig(kind="m3", n_proc_tiles=4,
                                     n_mem_tiles=1)).platform


def test_one_activity_per_tile_enforced():
    plat = platform()

    def forever(api):
        yield from api.compute(10**9)

    plat.run_proc(plat.controller.spawn("first", 0, forever))
    with pytest.raises(SyscallError, match="at most one activity"):
        plat.run_proc(plat.controller.spawn("second", 0, forever))


def test_tile_reusable_after_termination():
    plat = platform()
    done = []

    def quick(api):
        yield from api.compute(100)
        done.append(api.sim.now)

    a = plat.run_proc(plat.controller.spawn("a", 0, quick))
    plat.sim.run_until_event(a.exit_event, limit=10**13)
    b = plat.run_proc(plat.controller.spawn("b", 0, quick))
    plat.sim.run_until_event(b.exit_event, limit=10**13)
    assert len(done) == 2


def test_dedicated_tiles_still_communicate():
    plat = platform()
    env, out = {}, {}

    def server(api):
        while "rep" not in env:
            yield api.sim.timeout(1_000_000)
        msg = yield from api.recv(env["rep"])
        yield from api.reply(env["rep"], msg, data=msg.data * 3, size=16)

    def client(api):
        while "sep" not in env:
            yield api.sim.timeout(1_000_000)
        out["v"] = yield from api.call(env["sep"], env["rpl"], 7, 16)

    ctrl = plat.controller
    s = plat.run_proc(ctrl.spawn("server", 1, server))
    c = plat.run_proc(ctrl.spawn("client", 0, client))
    sep, rep, rpl = plat.run_proc(ctrl.wire_channel(c, s))
    env.update(rep=rep, sep=sep, rpl=rpl)
    plat.sim.run_until_event(c.exit_event, limit=10**13)
    assert out["v"] == 21
    # physically isolated tiles: no context switch ever happened
    assert plat.stats.counter_value("tilemux/ctx_switches") <= 2
