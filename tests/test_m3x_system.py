"""Integration tests for the M3x baseline: remote multiplexing + slow path."""

import pytest

from repro.api import SystemConfig, build_system


def m3x_platform(**kw):
    kw.setdefault("n_proc_tiles", 4)
    kw.setdefault("n_mem_tiles", 1)
    return build_system(SystemConfig(kind="m3x"), **kw).platform


def rendezvous(api, env, *keys):
    while any(k not in env for k in keys):
        yield api.sim.timeout(1_000_000)


def test_m3x_spawn_and_exit():
    plat = m3x_platform()
    done = []

    def prog(api):
        yield from api.compute(500)
        done.append(api.sim.now)
        yield from api.exit(7)

    act = plat.run_proc(plat.controller.spawn("solo", 0, prog))
    code = plat.sim.run_until_event(act.exit_event, limit=10**12)
    assert code == 7 and done


def test_m3x_remote_rpc_fast_path():
    """Cross-tile communication with both partners running stays on
    the fast path — no controller involvement."""
    plat = m3x_platform()
    env, result = {}, {}

    def server(api):
        yield from rendezvous(api, env, "s_rep")
        msg = yield from api.recv(env["s_rep"])
        yield from api.reply(env["s_rep"], msg, data=msg.data + 1, size=16)

    def client(api):
        yield from rendezvous(api, env, "c_sep")
        result["v"] = yield from api.call(env["c_sep"], env["c_rep"], 41, 16)

    ctrl = plat.controller
    s = plat.run_proc(ctrl.spawn("server", 1, server))
    c = plat.run_proc(ctrl.spawn("client", 0, client))
    sep, rep, rpl = plat.run_proc(ctrl.wire_channel(c, s))
    env.update(s_rep=rep, c_sep=sep, c_rep=rpl)
    plat.sim.run_until_event(c.exit_event, limit=10**13)
    assert result["v"] == 42
    assert plat.stats.counter_value("ctrl/forwards") == 0


def test_m3x_tile_local_rpc_takes_slow_path():
    """Two activities on one tile can only talk through the controller
    (section 2.2): every request and reply is forwarded."""
    plat = m3x_platform()
    env, result = {}, {}

    def server(api):
        yield from rendezvous(api, env, "s_rep")
        for _ in range(3):
            msg = yield from api.recv(env["s_rep"])
            yield from api.reply(env["s_rep"], msg, data=msg.data + 1, size=16)

    def client(api):
        yield from rendezvous(api, env, "c_sep")
        v = 0
        for _ in range(3):
            v = yield from api.call(env["c_sep"], env["c_rep"], v, 16)
        result["v"] = v

    ctrl = plat.controller
    s = plat.run_proc(ctrl.spawn("server", 2, server))
    c = plat.run_proc(ctrl.spawn("client", 2, client))
    sep, rep, rpl = plat.run_proc(ctrl.wire_channel(c, s, credits=2))
    env.update(s_rep=rep, c_sep=sep, c_rep=rpl)
    plat.sim.run_until_event(c.exit_event, limit=10**13)
    assert result["v"] == 3
    assert plat.stats.counter_value("ctrl/forwards") >= 6  # 2 per RPC
    assert plat.stats.counter_value("m3x/switches") > 0


def measure_local_rpc(kind, n=10, **kw):
    plat = build_system(SystemConfig(kind=kind, n_proc_tiles=4,
                                     n_mem_tiles=1), **kw).platform
    env, out = {}, {}

    def server(api):
        yield from rendezvous(api, env, "s_rep")
        while True:
            msg = yield from api.recv(env["s_rep"])
            if msg.data == "stop":
                return
            yield from api.reply(env["s_rep"], msg, data="pong", size=16)

    def client(api):
        yield from rendezvous(api, env, "c_sep")
        for _ in range(3):
            yield from api.call(env["c_sep"], env["c_rep"], "ping", 16)
        start = api.sim.now
        for _ in range(n):
            yield from api.call(env["c_sep"], env["c_rep"], "ping", 16)
        out["ps"] = (api.sim.now - start) / n
        yield from api.send(env["c_sep"], "stop", 16)

    ctrl = plat.controller
    s = plat.run_proc(ctrl.spawn("server", 0, server))
    c = plat.run_proc(ctrl.spawn("client", 0, client))
    sep, rep, rpl = plat.run_proc(ctrl.wire_channel(c, s, credits=2))
    env.update(s_rep=rep, c_sep=sep, c_rep=rpl)
    plat.sim.run_until_event(c.exit_event, limit=10**13)
    return out["ps"]


def test_m3x_local_rpc_much_slower_than_m3v():
    """Section 6.2: M3x needs ~27k cycles for a tile-local RPC where
    M3v needs ~5k — the slow path dominates."""
    m3x = measure_local_rpc("m3x")
    m3v = measure_local_rpc("m3v")
    assert m3x > 3 * m3v


def test_m3x_three_activities_round_robin_via_controller():
    plat = m3x_platform()
    env, log = {}, []

    def worker(tag):
        def prog(api):
            yield from rendezvous(api, env, f"{tag}_rep")
            msg = yield from api.recv(env[f"{tag}_rep"])
            log.append((tag, msg.data))
            yield from api.reply(env[f"{tag}_rep"], msg, data=tag, size=16)
        return prog

    def driver(api):
        yield from rendezvous(api, env, "a_sep", "b_sep")
        ra = yield from api.call(env["a_sep"], env["d_rep_a"], "to-a", 16)
        rb = yield from api.call(env["b_sep"], env["d_rep_b"], "to-b", 16)
        log.append(("driver", ra, rb))

    ctrl = plat.controller
    a = plat.run_proc(ctrl.spawn("a", 3, worker("a")))
    b = plat.run_proc(ctrl.spawn("b", 3, worker("b")))
    d = plat.run_proc(ctrl.spawn("driver", 3, driver))
    sa, ra_, rpa = plat.run_proc(ctrl.wire_channel(d, a))
    sb, rb_, rpb = plat.run_proc(ctrl.wire_channel(d, b))
    env.update(a_rep=ra_, b_rep=rb_, a_sep=sa, b_sep=sb,
               d_rep_a=rpa, d_rep_b=rpb)
    plat.sim.run_until_event(d.exit_event, limit=10**13)
    assert ("driver", "a", "b") in log
