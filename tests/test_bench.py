"""The bench subsystem: schema, determinism, and the regression gate.

Three layers, matching how ``scripts/check_perf.sh`` can fail:

* **schema** — every emitted BENCH document validates, and
  :func:`repro.bench.validate` rejects structurally broken ones;
* **determinism** — simulated-event counts are a pure function of the
  workload: identical across runs, PYTHONHASHSEEDs, and processes
  (this is what lets the gate treat a count mismatch as a hard error);
* **gate** — :func:`repro.bench.compare` passes noise and improvements,
  fails big throughput drops and any change in event counts; the shell
  wrapper trips end-to-end on a sleep-injected regression via
  ``REPRO_BENCH_HANDICAP_S``.
"""

import copy
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import bench

REPO = Path(__file__).resolve().parents[1]

COUNT_SNIPPET = """\
from repro.bench import churn_workload
print(churn_workload(4, 300))
"""


def _committed_doc():
    """A realistic committed document to diff against."""
    return {
        "schema": bench.SCHEMA,
        "kind": "figs",
        "fingerprint": bench.fingerprint(),
        "benches": {
            "fig9_quick": {"wall_s": 0.4, "events": 70440,
                           "events_per_sec": 176100.0, "runs": 3},
        },
    }


# -- schema -------------------------------------------------------------------

def test_emitted_engine_document_validates():
    doc = bench.run_engine_bench(runs=1)
    assert bench.validate(doc) == []
    assert doc["schema"] == "repro-bench/1"
    assert doc["baseline"]["commit"]["rev"]
    assert doc["speedup"]["fig9_quick_wall"] > 0


def test_written_files_roundtrip(tmp_path):
    paths = bench.write_bench_files(tmp_path, runs=1, which="figs")
    assert [p.name for p in paths] == [bench.FIGS_FILE]
    with open(paths[0]) as fh:
        doc = json.load(fh)
    assert bench.validate(doc) == []
    for name in ("fig6_quick", "fig8_quick", "fig9_quick"):
        assert doc["benches"][name]["events"] > 0


@pytest.mark.parametrize("mutate,expect", [
    (lambda d: d.update(schema="bogus/9"), "schema"),
    (lambda d: d.update(kind="nope"), "kind"),
    (lambda d: d.pop("fingerprint"), "fingerprint"),
    (lambda d: d.update(benches={}), "no benches"),
    (lambda d: d["benches"]["fig9_quick"].pop("events"), "events"),
    (lambda d: d["benches"]["fig9_quick"].update(events=0), "nonpositive"),
])
def test_validate_rejects_broken_documents(mutate, expect):
    doc = _committed_doc()
    mutate(doc)
    problems = bench.validate(doc)
    assert problems and any(expect in p for p in problems), problems


# -- determinism --------------------------------------------------------------

def test_churn_event_count_is_exact_and_repeatable():
    assert bench.churn_workload(4, 300) == bench.churn_workload(4, 300)


def test_event_counts_identical_across_hash_seeds():
    counts = set()
    for seed in ("0", "1", "31337"):
        env = dict(os.environ,
                   PYTHONHASHSEED=seed,
                   PYTHONPATH=str(REPO / "src"))
        out = subprocess.run([sys.executable, "-c", COUNT_SNIPPET],
                             capture_output=True, text=True, env=env)
        assert out.returncode == 0, out.stderr
        counts.add(int(out.stdout.strip()))
    assert len(counts) == 1, f"event count varies with hash seed: {counts}"


def test_measure_raises_on_nondeterministic_workload():
    from repro.sim import Simulator

    drift = [100, 100, 105]  # third run schedules extra events

    def workload():
        sim = Simulator()

        def ticker(n):
            for _ in range(n):
                yield 1

        sim.process(ticker(drift.pop(0)), name="drift")
        sim.run()

    with pytest.raises(RuntimeError, match="not deterministic"):
        bench.measure("drifty", workload, runs=2)


def test_handicap_parses_global_and_per_bench(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_HANDICAP_S", "0.5")
    assert bench._handicap_s("fig9_quick") == 0.5
    monkeypatch.setenv("REPRO_BENCH_HANDICAP_S", "fig9_quick:0.25, other:1")
    assert bench._handicap_s("fig9_quick") == 0.25
    assert bench._handicap_s("engine_churn") == 0.0
    monkeypatch.delenv("REPRO_BENCH_HANDICAP_S")
    assert bench._handicap_s("fig9_quick") == 0.0


# -- gate logic ---------------------------------------------------------------

def _fresh(wall_scale=1.0, events_delta=0):
    doc = copy.deepcopy(_committed_doc())
    b = doc["benches"]["fig9_quick"]
    b["wall_s"] = round(b["wall_s"] * wall_scale, 6)
    b["events"] += events_delta
    b["events_per_sec"] = round(b["events"] / b["wall_s"], 1)
    return doc


def test_compare_passes_identical_and_improved_runs():
    committed = _committed_doc()
    assert bench.compare(committed, _fresh()) == []
    assert bench.compare(committed, _fresh(wall_scale=0.5)) == []


def test_compare_tolerates_noise_within_threshold():
    assert bench.compare(_committed_doc(), _fresh(wall_scale=1.2)) == []


def test_compare_fails_past_threshold():
    problems = bench.compare(_committed_doc(), _fresh(wall_scale=1.6))
    assert problems and "regressed" in problems[0]


def test_compare_hard_fails_on_event_count_change():
    # even when *faster*, changed work is flagged for a deliberate re-baseline
    problems = bench.compare(_committed_doc(),
                             _fresh(wall_scale=0.5, events_delta=-10))
    assert problems and "event count changed" in problems[0]


def test_compare_flags_missing_bench():
    fresh = _fresh()
    del fresh["benches"]["fig9_quick"]
    problems = bench.compare(_committed_doc(), fresh)
    assert any("missing from fresh run" in p for p in problems)


# -- the shell gate, end to end ----------------------------------------------

def _run_gate(extra_env):
    env = dict(os.environ, PERF_RUNS="1", **extra_env)
    return subprocess.run(["sh", str(REPO / "scripts" / "check_perf.sh")],
                          capture_output=True, text=True, env=env)


@pytest.mark.slow
def test_check_perf_trips_on_injected_regression(tmp_path):
    out = _run_gate({"REPRO_BENCH_HANDICAP_S": "fig9_quick:2.0",
                     "PERF_OUT_DIR": str(tmp_path)})
    assert out.returncode != 0
    assert "PERF GATE FAILED" in out.stdout, out.stdout + out.stderr
    assert "fig9_quick" in out.stdout


@pytest.mark.slow
def test_check_perf_passes_without_handicap(tmp_path):
    # a wide threshold isolates the gate's logic from machine noise;
    # the event-count hard check is threshold-independent either way
    out = _run_gate({"PERF_THRESHOLD": "0.9",
                     "PERF_OUT_DIR": str(tmp_path)})
    assert out.returncode == 0, out.stdout + out.stderr
    assert "perf gate passed" in out.stdout
