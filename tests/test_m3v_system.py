"""Integration tests: full M3v platform with TileMux, controller, vDTU."""

import pytest

from repro.api import SystemConfig, build_system
from repro.dtu import Perm
from repro.kernel.protocol import Syscall
from repro.tiles import BOOM


def small_platform(**kw):
    kw.setdefault("n_proc_tiles", 4)
    kw.setdefault("n_mem_tiles", 1)
    return build_system(SystemConfig(kind="m3v"), **kw).platform


def rendezvous(api, env, *keys):
    """Boot-time helper: wait until the test wired the channels."""
    while any(k not in env for k in keys):
        yield api.sim.timeout(1_000_000)


def test_spawn_creates_ready_activity():
    plat = small_platform()
    done = []

    def prog(api):
        yield from api.compute(1000)
        done.append(api.sim.now)

    act = plat.run_proc(plat.controller.spawn("worker", 0, prog))
    assert act.act_id >= 1
    plat.sim.run_until_event(act.exit_event, limit=10**12)
    assert done and act.exit_code == 0


def test_activity_exit_notifies_controller():
    plat = small_platform()

    def prog(api):
        yield from api.compute(10)
        yield from api.exit(42)

    act = plat.run_proc(plat.controller.spawn("quitter", 1, prog))
    code = plat.sim.run_until_event(act.exit_event, limit=10**12)
    assert code == 42
    assert plat.stats.counter_value("ctrl/exits") == 1


def test_remote_ping_pong():
    plat = small_platform()
    env = {}
    result = {}

    def server(api):
        yield from rendezvous(api, env, "s_rep")
        msg = yield from api.recv(env["s_rep"])
        yield from api.reply(env["s_rep"], msg, data=msg.data * 2, size=16)

    def client(api):
        yield from rendezvous(api, env, "c_sep")
        value = yield from api.call(env["c_sep"], env["c_rep"], data=21, size=16)
        result["value"] = value

    ctrl = plat.controller
    s = plat.run_proc(ctrl.spawn("server", 1, server))
    c = plat.run_proc(ctrl.spawn("client", 0, client))
    sep, rep, reply_ep = plat.run_proc(ctrl.wire_channel(c, s))
    env.update(s_rep=rep, c_sep=sep, c_rep=reply_ep)
    plat.sim.run_until_event(c.exit_event, limit=10**13)
    assert result["value"] == 42


def test_local_ping_pong_shares_one_tile():
    plat = small_platform()
    env = {}
    result = {}

    def server(api):
        yield from rendezvous(api, env, "s_rep")
        for _ in range(3):
            msg = yield from api.recv(env["s_rep"])
            yield from api.reply(env["s_rep"], msg, data=msg.data + 1, size=16)

    def client(api):
        yield from rendezvous(api, env, "c_sep")
        value = 0
        for _ in range(3):
            value = yield from api.call(env["c_sep"], env["c_rep"],
                                        data=value, size=16)
        result["value"] = value

    ctrl = plat.controller
    s = plat.run_proc(ctrl.spawn("server", 2, server))
    c = plat.run_proc(ctrl.spawn("client", 2, client))  # same tile!
    sep, rep, reply_ep = plat.run_proc(ctrl.wire_channel(c, s))
    env.update(s_rep=rep, c_sep=sep, c_rep=reply_ep)
    plat.sim.run_until_event(c.exit_event, limit=10**13)
    assert result["value"] == 3
    # tile-local communication must have gone through core requests
    assert plat.stats.counter_value("vdtu/core_reqs") > 0
    assert plat.stats.counter_value("tilemux/ctx_switches") > 0


def test_local_rpc_slower_than_remote():
    """Section 6.2: tile-local RPC involves TileMux twice and is
    significantly more expensive than cross-tile RPC."""

    def measure(local):
        plat = small_platform()
        env = {}
        times = {}

        def server(api):
            yield from rendezvous(api, env, "s_rep")
            while True:
                msg = yield from api.recv(env["s_rep"])
                if msg.data == "stop":
                    return
                yield from api.reply(env["s_rep"], msg, data="pong", size=16)

        def client(api):
            yield from rendezvous(api, env, "c_sep")
            for _ in range(5):  # warmup
                yield from api.call(env["c_sep"], env["c_rep"], "ping", 16)
            start = api.sim.now
            for _ in range(20):
                yield from api.call(env["c_sep"], env["c_rep"], "ping", 16)
            times["rpc_ps"] = (api.sim.now - start) / 20
            yield from api.send(env["c_sep"], "stop", 16)

        ctrl = plat.controller
        s = plat.run_proc(ctrl.spawn("server", 0 if local else 1, server))
        c = plat.run_proc(ctrl.spawn("client", 0, client))
        sep, rep, reply_ep = plat.run_proc(ctrl.wire_channel(c, s, credits=2))
        env.update(s_rep=rep, c_sep=sep, c_rep=reply_ep)
        plat.sim.run_until_event(c.exit_event, limit=10**13)
        return times["rpc_ps"]

    local = measure(local=True)
    remote = measure(local=False)
    assert local > 1.5 * remote


def test_syscall_noop_roundtrip():
    plat = small_platform()
    out = {}

    def prog(api):
        start = api.sim.now
        yield from api.syscall(Syscall.NOOP)
        out["latency_ps"] = api.sim.now - start

    act = plat.run_proc(plat.controller.spawn("caller", 0, prog))
    plat.sim.run_until_event(act.exit_event, limit=10**12)
    assert out["latency_ps"] > 0
    assert plat.stats.counter_value("ctrl/syscalls") == 1


def test_runtime_channel_setup_via_syscalls():
    """The full runtime path: rgate/sgate creation, delegation,
    activation — all through controller system calls."""
    plat = small_platform()
    result = {}
    shared = {}

    def server(api):
        while "client" not in shared:
            yield api.sim.timeout(1_000_000)
        rsel = yield from api.syscall(Syscall.CREATE_RGATE,
                                      {"slots": 4, "slot_size": 128})
        rep = yield from api.syscall(Syscall.ACTIVATE, {"sel": rsel})
        ssel = yield from api.syscall(Syscall.CREATE_SGATE,
                                      {"rgate_sel": rsel, "label": 99,
                                       "credits": 1})
        yield from api.syscall(Syscall.DELEGATE,
                               {"sel": ssel, "target_act": shared["client"],
                                "target_sel": 50})
        shared["ready"] = True
        msg = yield from api.recv(rep)
        result["label"] = msg.label
        yield from api.reply(rep, msg, data="ok", size=16)

    def client(api):
        while "ready" not in shared:
            yield api.sim.timeout(1_000_000)
        # reply gate for the RPC
        rsel = yield from api.syscall(Syscall.CREATE_RGATE,
                                      {"slots": 2, "slot_size": 128})
        rep = yield from api.syscall(Syscall.ACTIVATE, {"sel": rsel})
        sep = yield from api.syscall(Syscall.ACTIVATE, {"sel": 50})
        value = yield from api.call(sep, rep, data="hello", size=16)
        result["value"] = value

    ctrl = plat.controller
    s = plat.run_proc(ctrl.spawn("server", 1, server))
    c = plat.run_proc(ctrl.spawn("client", 2, client))
    shared["client"] = c.act_id
    plat.sim.run_until_event(c.exit_event, limit=10**13)
    assert result["value"] == "ok"
    assert result["label"] == 99


def test_mgate_syscalls_and_dma():
    plat = small_platform()
    result = {}

    def prog(api):
        msel = yield from api.syscall(Syscall.CREATE_MGATE, {"size": 8192})
        ep = yield from api.syscall(Syscall.ACTIVATE, {"sel": msel})
        yield from api.write(ep, 0, b"persistent data")
        data = yield from api.read(ep, 0, 15)
        # derive a read-only sub-window and access it
        dsel = yield from api.syscall(Syscall.DERIVE_MGATE,
                                      {"mgate_sel": msel, "offset": 0,
                                       "size": 4096, "perm": Perm.R})
        dep = yield from api.syscall(Syscall.ACTIVATE, {"sel": dsel})
        data2 = yield from api.read(dep, 0, 15)
        result["data"] = data
        result["data2"] = data2

    act = plat.run_proc(plat.controller.spawn("dma", 0, prog))
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    assert result["data"] == b"persistent data"
    assert result["data2"] == b"persistent data"


def test_preemption_timeslices_two_spinners():
    plat = small_platform(timeslice_us=100.0)
    progress = {"a": 0, "b": 0}

    def spinner(tag):
        def prog(api):
            for _ in range(40):
                yield from api.compute(2000)  # 25us per chunk at 80MHz
                progress[tag] += 1
        return prog

    ctrl = plat.controller
    a = plat.run_proc(ctrl.spawn("a", 3, spinner("a")))
    b = plat.run_proc(ctrl.spawn("b", 3, spinner("b")))
    # run until roughly half the work is done, then check interleaving
    plat.sim.run(until=plat.sim.now + 3_000_000_000)
    assert progress["a"] > 5 and progress["b"] > 5
    plat.sim.run_until_event(b.exit_event, limit=10**13)
    assert plat.stats.counter_value("tilemux/preemptions") > 0


def test_exit_frees_tile_for_next_activity():
    plat = small_platform()
    order = []

    def first(api):
        yield from api.compute(100)
        order.append("first")

    def second(api):
        yield from api.compute(100)
        order.append("second")

    ctrl = plat.controller
    a = plat.run_proc(ctrl.spawn("first", 0, first))
    plat.sim.run_until_event(a.exit_event, limit=10**12)
    b = plat.run_proc(ctrl.spawn("second", 0, second))
    plat.sim.run_until_event(b.exit_event, limit=10**12)
    assert order == ["first", "second"]
    assert plat.mux(0).resident == 0
