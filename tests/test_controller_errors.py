"""Error-path tests for controller system calls and kernel plumbing."""

import pytest

from repro.api import SystemConfig, build_system
from repro.dtu import Perm
from repro.kernel.memalloc import OutOfMemory, PhysAllocator, PhysRegion
from repro.kernel.protocol import Syscall
from repro.mux.api import RpcError


def platform():
    return build_system(SystemConfig(kind="m3v", n_proc_tiles=4,
                                     n_mem_tiles=1)).platform


def run_act(plat, prog, tile=0, **kw):
    act = plat.run_proc(plat.controller.spawn("t", tile, prog, **kw))
    plat.sim.run_until_event(act.exit_event, limit=10**14)
    return act


def test_syscall_with_bad_selector_returns_error():
    plat = platform()
    out = {}

    def prog(api):
        try:
            yield from api.syscall(Syscall.ACTIVATE, {"sel": 999})
        except RpcError as exc:
            out["err"] = str(exc)

    run_act(plat, prog)
    assert "no capability" in out["err"]


def test_activate_sgate_before_rgate_fails():
    plat = platform()
    out = {}

    def prog(api):
        rsel = yield from api.syscall(Syscall.CREATE_RGATE, {})
        ssel = yield from api.syscall(Syscall.CREATE_SGATE,
                                      {"rgate_sel": rsel})
        try:
            yield from api.syscall(Syscall.ACTIVATE, {"sel": ssel})
        except RpcError as exc:
            out["err"] = str(exc)

    run_act(plat, prog)
    assert "not activated" in out["err"]


def test_derive_mgate_cannot_widen_permissions():
    plat = platform()
    out = {}

    def prog(api):
        msel = yield from api.syscall(Syscall.CREATE_MGATE,
                                      {"size": 4096, "perm": Perm.R})
        try:
            yield from api.syscall(Syscall.DERIVE_MGATE,
                                   {"mgate_sel": msel, "offset": 0,
                                    "size": 4096, "perm": Perm.RW})
        except RpcError as exc:
            out["err"] = str(exc)

    run_act(plat, prog)
    assert "widen" in out["err"]


def test_revoke_deactivates_endpoint():
    plat = platform()
    out = {}

    def prog(api):
        msel = yield from api.syscall(Syscall.CREATE_MGATE, {"size": 4096})
        ep = yield from api.syscall(Syscall.ACTIVATE, {"sel": msel})
        yield from api.write(ep, 0, b"live")
        yield from api.syscall(Syscall.REVOKE, {"sel": msel})
        try:
            yield from api.read(ep, 0, 4)
        except Exception as exc:
            out["err"] = type(exc).__name__

    run_act(plat, prog)
    assert out["err"] == "DtuFault"  # endpoint invalidated by revocation


def test_delegate_to_unknown_activity_fails():
    plat = platform()
    out = {}

    def prog(api):
        msel = yield from api.syscall(Syscall.CREATE_MGATE, {"size": 4096})
        try:
            yield from api.syscall(Syscall.DELEGATE,
                                   {"sel": msel, "target_act": 4242})
        except RpcError as exc:
            out["err"] = str(exc)

    run_act(plat, prog)
    assert "unknown activity" in out["err"]


def test_spawn_with_unregistered_pager_fails():
    plat = platform()
    from repro.kernel.controller import SyscallError

    def prog(api):
        yield from api.compute(1)

    with pytest.raises(SyscallError, match="not registered"):
        plat.run_proc(plat.controller.spawn("x", 0, prog, pager="ghost"))


def test_create_mgate_exhausts_memory():
    plat = platform()
    out = {}

    def prog(api):
        try:
            while True:  # the DRAM is finite
                yield from api.syscall(Syscall.CREATE_MGATE,
                                       {"size": 8 * 1024 * 1024})
        except RpcError as exc:
            out["err"] = str(exc)

    # OutOfMemory surfaces as a crash in the controller unless wrapped;
    # it propagates as a simulation error we can observe either way
    try:
        run_act(plat, prog)
    except OutOfMemory:
        out["err"] = "oom"
    assert out.get("err")


def test_phys_allocator_rejects_zero():
    alloc = PhysAllocator([PhysRegion(0, 0, 4096)])
    with pytest.raises(ValueError):
        alloc.alloc(0)


def test_ep_exhaustion_detected():
    plat = platform()
    ctrl = plat.controller
    from repro.kernel.controller import SyscallError

    with pytest.raises(SyscallError, match="out of endpoints"):
        for _ in range(200):
            ctrl.alloc_ep(0)
