"""Integration tests for the OS services: m3fs, pager, net."""

import pytest

from repro.api import SystemConfig, build_system
from repro.services.boot import (
    boot_m3fs,
    boot_net,
    boot_pager,
    connect_fs,
    connect_net,
)
from repro.services.m3fs import FsClient, O_CREAT, O_RDONLY, O_WRONLY


def platform(**kw):
    kw.setdefault("n_proc_tiles", 4)
    kw.setdefault("n_mem_tiles", 1)
    return build_system(SystemConfig(kind="m3v"), **kw).platform


def run_client(plat, tile, body, fs=None, net=None, **spawn_kw):
    """Spawn a client running ``body(api, clients...)``; wire sessions."""
    env = {}

    def prog(api):
        while "ready" not in env:
            yield api.sim.timeout(1_000_000)
        fs_client = None
        net_client = None
        if "fs_eps" in env:
            fs_client = FsClient(api, *env["fs_eps"])
        if "net_eps" in env:
            from repro.services.net import NetClient
            net_client = NetClient(api, *env["net_eps"])
        yield from body(api, fs_client, net_client)

    ctrl = plat.controller
    act = plat.run_proc(ctrl.spawn("client", tile, prog, **spawn_kw))
    if fs is not None:
        env["fs_eps"] = plat.run_proc(connect_fs(plat, act, fs))
    if net is not None:
        env["net_eps"] = plat.run_proc(connect_net(plat, act, net))
    env["ready"] = True
    return act


# ---------------------------------------------------------------- m3fs


def test_fs_write_then_read_roundtrip():
    plat = platform()
    fs = plat.run_proc(boot_m3fs(plat, tile=1, blocks=512))
    out = {}

    def body(api, fsc, _net):
        fd = yield from fsc.open("/hello.txt", O_WRONLY | O_CREAT)
        yield from fsc.write(fd, b"hello extent world" * 10)
        yield from fsc.close(fd)
        fd = yield from fsc.open("/hello.txt", O_RDONLY)
        out["data"] = yield from fsc.read(fd, 18)
        out["size"] = fsc.size(fd)
        yield from fsc.close(fd)

    act = run_client(plat, 0, body, fs=fs)
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    assert out["data"] == b"hello extent world"
    assert out["size"] == 180


def test_fs_large_file_spans_extents():
    plat = platform()
    fs = plat.run_proc(boot_m3fs(plat, tile=1, blocks=1024,
                                 max_extent_blocks=4))
    payload = bytes(range(256)) * 256  # 64 KiB -> 4 extents of 4 blocks
    out = {}

    def body(api, fsc, _net):
        fd = yield from fsc.open("/big", O_WRONLY | O_CREAT)
        yield from fsc.write(fd, payload)
        yield from fsc.close(fd)
        fd = yield from fsc.open("/big", O_RDONLY)
        chunks = []
        while True:
            chunk = yield from fsc.read(fd, 4096)
            if not chunk:
                break
            chunks.append(chunk)
        out["data"] = b"".join(chunks)

    act = run_client(plat, 0, body, fs=fs)
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    assert out["data"] == payload
    inode = fs.image.lookup("/big")
    assert len(inode.extents) == 4
    assert all(e.blocks == 4 for e in inode.extents)


def test_fs_populate_and_read():
    plat = platform()
    fs = plat.run_proc(boot_m3fs(plat, tile=1, blocks=1024))
    data = b"pre-populated!" * 100
    fs.populate(plat.tiles[fs.region.mem_tile].dtu, "/input.dat", data)
    out = {}

    def body(api, fsc, _net):
        st = yield from fsc.stat("/input.dat")
        out["stat_size"] = st["size"]
        fd = yield from fsc.open("/input.dat")
        out["head"] = yield from fsc.read(fd, 14)

    act = run_client(plat, 0, body, fs=fs)
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    assert out["stat_size"] == len(data)
    assert out["head"] == b"pre-populated!"


def test_fs_dirs_and_unlink():
    plat = platform()
    fs = plat.run_proc(boot_m3fs(plat, tile=1, blocks=256))
    out = {}

    def body(api, fsc, _net):
        yield from fsc.mkdir("/d")
        fd = yield from fsc.open("/d/a", O_WRONLY | O_CREAT)
        yield from fsc.close(fd)
        fd = yield from fsc.open("/d/b", O_WRONLY | O_CREAT)
        yield from fsc.close(fd)
        out["names"] = yield from fsc.readdir("/d")
        yield from fsc.unlink("/d/a")
        out["names2"] = yield from fsc.readdir("/d")

    act = run_client(plat, 0, body, fs=fs)
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    assert out["names"] == ["a", "b"]
    assert out["names2"] == ["b"]


def test_fs_extent_grants_amortize_rpcs():
    """Reading within one extent must not hit the fs again (section 6.3)."""
    plat = platform()
    fs = plat.run_proc(boot_m3fs(plat, tile=1, blocks=512))
    data = b"z" * (64 * 4096)  # exactly one max-size extent
    fs.populate(plat.tiles[fs.region.mem_tile].dtu, "/one_extent", data)
    out = {}

    marks = {}

    def body(api, fsc, _net):
        fd = yield from fsc.open("/one_extent")
        yield from fsc.read(fd, 4096)
        marks["after_first"] = plat.stats.counter_value("dtu/replies")
        for _ in range(15):
            yield from fsc.read(fd, 4096)
        marks["after_rest"] = plat.stats.counter_value("dtu/replies")

    act = run_client(plat, 0, body, fs=fs)
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    # the first read pays the extent grant (fs RPC + cap syscalls); the
    # following 15 reads within the extent are pure DMA: zero RPCs
    assert marks["after_rest"] == marks["after_first"]


def test_fs_shared_tile_works():
    plat = platform()
    fs = plat.run_proc(boot_m3fs(plat, tile=2, blocks=256))
    out = {}

    def body(api, fsc, _net):
        fd = yield from fsc.open("/x", O_WRONLY | O_CREAT)
        yield from fsc.write(fd, b"shared tile data")
        yield from fsc.close(fd)
        fd = yield from fsc.open("/x")
        out["data"] = yield from fsc.read(fd, 16)

    act = run_client(plat, 2, body, fs=fs)  # same tile as the fs!
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    assert out["data"] == b"shared tile data"
    assert plat.stats.counter_value("tilemux/ctx_switches") > 0


# ---------------------------------------------------------------- pager


def test_pager_demand_paging_resolves_faults():
    plat = platform()
    pager, pager_act = plat.run_proc(boot_pager(plat, tile=1))
    out = {}

    def body(api, _fs, _net):
        # touching fresh heap pages faults through TileMux -> pager -> MAP
        base = api.act.addrspace.HEAP_BASE
        for i in range(4):
            yield from api.touch(base + i * 4096)
        out["done"] = True

    act = run_client(plat, 0, body, pager="pager")
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    assert out.get("done")
    assert pager.faults_handled == 4
    assert plat.stats.counter_value("tilemux/pagefaults") == 4
    # the mapping was applied by TileMux on behalf of the controller
    assert act.addrspace.mapped_pages == 4


def test_pager_faults_only_once_per_page():
    plat = platform()
    pager, _ = plat.run_proc(boot_pager(plat, tile=1))

    def body(api, _fs, _net):
        base = api.act.addrspace.HEAP_BASE
        for _ in range(3):
            yield from api.touch(base)  # same page

    act = run_client(plat, 0, body, pager="pager")
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    assert pager.faults_handled == 1


# ----------------------------------------------------------------- net


def test_udp_echo_roundtrip():
    plat = platform()
    net = plat.run_proc(boot_net(plat, tile=1))
    net.remote.echo_ports.add(7)  # the remote echoes port 7
    out = {}

    def body(api, _fs, netc):
        sid = yield from netc.socket()
        yield from netc.bind(sid, 5000)
        yield from netc.sendto(sid, 7, b"x", 1)
        value = yield from netc.recvfrom(sid)
        out["reply"] = value

    act = run_client(plat, 0, body, net=net)
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    assert out["reply"]["data"] == b"x"
    assert out["reply"]["from_port"] == 7


def test_udp_send_to_sink_counts_bytes():
    plat = platform()
    net = plat.run_proc(boot_net(plat, tile=1))
    out = {}

    def body(api, _fs, netc):
        sid = yield from netc.socket()
        yield from netc.bind(sid)
        for _ in range(5):
            yield from netc.sendto(sid, 9999, None, 1024)
        out["done"] = True

    act = run_client(plat, 0, body, net=net)
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    plat.sim.run(until=plat.sim.now + 10**9)  # drain the wire
    assert net.remote.sunk_frames == 5
    assert net.remote.sunk_bytes == 5 * 1024


def test_lossy_wire_drops_frames():
    plat = platform()
    net = plat.run_proc(boot_net(plat, tile=1, drop_prob=0.5))

    def body(api, _fs, netc):
        sid = yield from netc.socket()
        yield from netc.bind(sid)
        for _ in range(40):
            yield from netc.sendto(sid, 9999, None, 64)

    act = run_client(plat, 0, body, net=net)
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    plat.sim.run(until=plat.sim.now + 10**9)
    assert net.wire.dropped > 0
    assert net.remote.sunk_frames < 40
