"""Runner robustness: failing points, killed workers, corrupt cache.

A sweep with a crashing point must *finish*: the failure is retried
once with its original seed, then recorded on the outcome (``failed``,
``error``) while every sibling still simulates and caches.  A worker
killed mid-pool (``BrokenProcessPool``) gets the same treatment — its
orphaned points are re-run in-process.  Cache entries that exist but
cannot be parsed (truncated by a crash, hand-edited) degrade to a
warned miss instead of aborting the sweep.
"""

import json
import multiprocessing
import os
from dataclasses import dataclass

import pytest

from repro.runner import ResultCache, Runner, Sweep, register, unregister


@dataclass(frozen=True)
class RobCfg:
    idx: int


RUNS = []


def _flaky_point(cfg):
    """Crashes the first time index 1 runs; succeeds on retry."""
    RUNS.append(cfg.idx)
    if cfg.idx == 1 and RUNS.count(1) == 1:
        raise RuntimeError("transient crash")
    return {"v": cfg.idx}


def _crash_point(cfg):
    """Index 1 crashes deterministically, every time."""
    RUNS.append(cfg.idx)
    if cfg.idx == 1:
        raise ValueError("deliberate crash")
    return {"v": cfg.idx}


def _killer_point(cfg):
    """Index 1 kills its pool worker outright; the in-process retry
    (no parent process) succeeds."""
    if cfg.idx == 1 and multiprocessing.parent_process() is not None:
        os._exit(17)
    return {"v": cfg.idx}


def _points(_params):
    return [RobCfg(i) for i in range(3)]


def _reduce(_params, values):
    return values


@pytest.fixture
def rob_sweeps(tmp_path):
    fp = tmp_path / "fp.py"
    fp.write_text("X = 1\n")
    for name, fn in (("rob-flaky", _flaky_point),
                     ("rob-crash", _crash_point),
                     ("rob-kill", _killer_point)):
        register(Sweep(name, _points, fn, _reduce,
                       fingerprint_paths=(str(fp),)))
    RUNS.clear()
    yield
    for name in ("rob-flaky", "rob-crash", "rob-kill"):
        unregister(name)


def test_transient_crash_is_retried_with_same_seed(rob_sweeps):
    runner = Runner(jobs=1)
    values = runner.run_sweep("rob-flaky")
    assert values == [{"v": 0}, {"v": 1}, {"v": 2}]
    assert runner.failed == 0 and not runner.failures
    assert RUNS.count(1) == 2      # first attempt + successful retry


def test_persistent_crash_is_recorded_not_fatal(rob_sweeps, tmp_path, capsys):
    runner = Runner(jobs=1, cache=ResultCache(root=tmp_path / "cache"))
    values = runner.run_sweep("rob-crash")
    # the sweep finished; the reducer saw None in the failed slot
    assert values == [{"v": 0}, None, {"v": 2}]
    assert runner.failed == 1
    (outcome,) = runner.failures
    assert outcome.spec.sweep == "rob-crash" and outcome.spec.index == 1
    assert outcome.failed and "ValueError: deliberate crash" in outcome.error
    assert "failed after retry" in capsys.readouterr().err

    # siblings were cached; the failed point is re-attempted next run
    RUNS.clear()
    warm = Runner(jobs=1, cache=ResultCache(root=tmp_path / "cache"))
    warm.run_sweep("rob-crash")
    assert warm.served == 2 and warm.failed == 1
    assert RUNS == [1, 1]          # only the crasher re-ran (plus retry)


def test_killed_worker_points_are_rerun_in_process(rob_sweeps):
    runner = Runner(jobs=2)
    values = runner.run_sweep("rob-kill")
    assert values == [{"v": 0}, {"v": 1}, {"v": 2}]
    assert runner.failed == 0


@pytest.mark.parametrize("garbage", ["{\"truncated\": ", "not json at all\n",
                                     "{\"no_value\": 1}\n"])
def test_corrupt_cache_entry_warns_and_resimulates(rob_sweeps, tmp_path,
                                                  capsys, garbage):
    root = tmp_path / "cache"
    cold = Runner(jobs=1, cache=ResultCache(root=root))
    cold.run_sweep("rob-flaky")
    entries = sorted(root.rglob("*.json"))
    assert len(entries) == 3
    entries[0].write_text(garbage)

    cache = ResultCache(root=root)
    warm = Runner(jobs=1, cache=cache)
    values = warm.run_sweep("rob-flaky")
    assert values == [{"v": 0}, {"v": 1}, {"v": 2}]
    assert warm.served == 2 and warm.simulated == 1
    assert cache.corrupt == 1
    assert "re-simulating" in capsys.readouterr().err
    # the re-run overwrote the bad entry: next run is all hits
    final = Runner(jobs=1, cache=ResultCache(root=root))
    final.run_sweep("rob-flaky")
    assert final.served == 3 and final.simulated == 0


def test_failed_points_are_never_cached(rob_sweeps, tmp_path):
    root = tmp_path / "cache"
    runner = Runner(jobs=1, cache=ResultCache(root=root))
    runner.run_sweep("rob-crash")
    # two sibling entries on disk, nothing for the crasher
    assert len(list(root.rglob("*.json"))) == 2
    for path in root.rglob("*.json"):
        entry = json.loads(path.read_text())
        assert entry["value"]["v"] in (0, 2)
