"""The analyzer itself: rule precision on fixtures, suppression and
baseline semantics, the JSON schema, and the self-check that the real
tree is clean."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.baseline import (
    SCHEMA,
    baseline_entries,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import (
    DEFAULT_TARGETS,
    all_rules,
    collect_files,
    module_name_for,
    run_lint,
)
from repro.analysis.report import JSON_SCHEMA, findings_to_json, format_human

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "lint_fixtures"

# every bad fixture and the single (rule, check) it must trigger
BAD_FIXTURES = {
    "src/repro/sim/bad_unordered.py": ("REP001", "unordered-iter"),
    "src/repro/sim/bad_entropy.py": ("REP001", "entropy"),
    "src/repro/sim/bad_id_ordering.py": ("REP001", "id-ordering"),
    "src/repro/sim/bad_float_simtime.py": ("REP001", "float-simtime"),
    "src/repro/sim/bad_yield.py": ("REP002", "bad-yield"),
    "src/repro/sim/bad_double_trigger.py": ("REP002", "double-trigger"),
    "src/repro/sim/bad_nongen.py": ("REP002", "nongen-process"),
    "src/repro/sim/bad_blocking.py": ("REP002", "blocking-call"),
    "src/repro/sim/bad_upward.py": ("REP003", "upward-import"),
    "examples/bad_facade.py": ("REP003", "facade-bypass"),
    "src/repro/sim/bad_env_read.py": ("REP003", "env-config"),
    "src/repro/sim/bad_cross_shard.py": ("REP004", "foreign-tile-store"),
    "src/repro/sim/bad_active_shard.py": ("REP004", "active-shard"),
    "src/repro/sim/bad_window_protocol.py": ("REP004", "window-protocol"),
    "src/repro/sim/bad_event_shard.py": ("REP004", "event-shard-store"),
}


def lint_fixture(rel):
    return run_lint([rel], root=FIXTURES)


# -- rule precision -----------------------------------------------------------

@pytest.mark.parametrize("rel,expected", sorted(BAD_FIXTURES.items()),
                         ids=[Path(k).stem for k in sorted(BAD_FIXTURES)])
def test_bad_fixture_triggers_exactly_its_rule(rel, expected):
    findings = lint_fixture(rel)
    assert findings, f"{rel} produced no findings"
    assert {(f.rule, f.check) for f in findings} == {expected}


def test_good_fixture_is_clean():
    assert lint_fixture("src/repro/sim/good_clean.py") == []


def test_findings_carry_precise_locations():
    (f,) = lint_fixture("src/repro/sim/bad_yield.py")
    assert f.path.endswith("bad_yield.py")
    assert f.line == 5 and f.col > 0
    assert f.symbol == "worker"
    assert "Event" in f.message


def test_fixture_tree_walk_covers_every_bad_file():
    findings = run_lint(["src", "examples"], root=FIXTURES)
    flagged = {f.path for f in findings}
    assert flagged == set(BAD_FIXTURES)


# -- policy -------------------------------------------------------------------

def test_module_name_mapping():
    assert module_name_for("src/repro/sim/engine.py") == "repro.sim.engine"
    assert module_name_for("src/repro/api/__init__.py") == "repro.api"
    assert module_name_for("tests/test_noc.py") == "tests.test_noc"
    assert module_name_for("examples/quickstart.py") == "examples.quickstart"


def test_default_walk_skips_fixture_directory():
    files = collect_files(DEFAULT_TARGETS, root=REPO)
    assert files, "collect_files found nothing from the repo root"
    assert not any("lint_fixtures" in p.parts for p in files)


def test_select_and_ignore():
    rel = "src/repro/sim/bad_unordered.py"
    assert lint_fixture(rel)
    assert run_lint([rel], root=FIXTURES, select=["REP002"]) == []
    assert run_lint([rel], root=FIXTURES, ignore=["REP001"]) == []
    with pytest.raises(ValueError):
        run_lint([rel], root=FIXTURES, select=["REP999"])


def test_rule_registry_is_complete():
    rules = all_rules()
    assert set(rules) == {"REP001", "REP002", "REP003", "REP004"}
    for rule in rules.values():
        assert rule.description


# -- suppressions -------------------------------------------------------------

def test_noqa_suppresses_scoped_rule():
    assert lint_fixture("src/repro/sim/suppressed_ok.py") == []


def test_noqa_scoping(tmp_path):
    src = ("def drain(events):\n"
           "    pending = {3, 1, 2}\n"
           "    out = []\n"
           "    for ev in pending:  # repro: noqa[REP002]\n"
           "        out.append(ev)\n"
           "    return out\n")
    tree = tmp_path / "src" / "repro" / "sim"
    tree.mkdir(parents=True)
    (tree / "scoped.py").write_text(src)
    # noqa names the wrong rule: the REP001 finding survives
    findings = run_lint(["src"], root=tmp_path)
    assert [(f.rule, f.check) for f in findings] == \
        [("REP001", "unordered-iter")]
    # bare noqa silences everything on the line
    (tree / "scoped.py").write_text(src.replace("noqa[REP002]", "noqa"))
    assert run_lint(["src"], root=tmp_path) == []


# -- baseline -----------------------------------------------------------------

def test_baseline_keys_are_line_free():
    (f,) = lint_fixture("src/repro/sim/bad_yield.py")
    assert str(f.line) not in f.key()
    assert f.key() == \
        "REP002::bad-yield::src/repro/sim/bad_yield.py::worker"


def test_baseline_roundtrip_and_diff(tmp_path):
    findings = run_lint(["src", "examples"], root=FIXTURES)
    path = write_baseline(tmp_path / "baseline.json", findings)
    assert load_baseline(path) == baseline_entries(findings)

    # fully baselined: nothing new, nothing stale
    new, stale = diff_against_baseline(findings, load_baseline(path))
    assert new == [] and stale == []

    # one finding beyond its budget is new
    extra = findings + [findings[0]]
    new, stale = diff_against_baseline(extra, load_baseline(path))
    assert new == [findings[0]] and stale == []

    # a fixed finding leaves its baseline entry stale
    new, stale = diff_against_baseline(findings[1:], load_baseline(path))
    assert new == [] and stale == [findings[0].key()]


def test_baseline_rejects_unknown_schema(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": "bogus/9", "entries": {}}))
    with pytest.raises(ValueError):
        load_baseline(path)
    assert load_baseline(tmp_path / "absent.json") == {}
    assert SCHEMA.startswith("repro-lint-baseline/")


# -- report -------------------------------------------------------------------

def test_json_report_schema():
    findings = run_lint(["src", "examples"], root=FIXTURES)
    new = findings[1:]
    doc = json.loads(findings_to_json(findings, new=new, stale=["k::x"]))
    assert doc["schema"] == JSON_SCHEMA
    assert doc["summary"]["total"] == len(findings)
    assert doc["summary"]["new"] == len(new)
    assert doc["summary"]["by_rule"]["REP001"] == 4
    assert doc["stale_baseline_keys"] == ["k::x"]
    for entry in doc["findings"]:
        assert set(entry) == {"rule", "check", "path", "line", "col",
                              "symbol", "message", "baselined"}
    baselined = [e for e in doc["findings"] if e["baselined"]]
    assert len(baselined) == 1


def test_human_report_tags_and_summary():
    findings = lint_fixture("src/repro/sim/bad_yield.py")
    out = format_human(findings, new=findings, stale=[])
    assert "REP002[bad-yield] [NEW]" in out
    assert "bad_yield.py:5:" in out
    assert "1 new vs baseline" in out
    assert "no findings" in format_human([], new=[], stale=[])


# -- the real tree ------------------------------------------------------------

def test_repo_lint_is_clean_against_baseline():
    """The committed tree has no findings beyond lint_baseline.json."""
    findings = run_lint(DEFAULT_TARGETS, root=REPO)
    baseline = load_baseline(REPO / "lint_baseline.json")
    new, _stale = diff_against_baseline(findings, baseline)
    assert new == [], "\n".join(
        f"{f.location()}: {f.rule}[{f.check}] {f.message}" for f in new)


def test_gate_fails_on_injected_violation(tmp_path):
    """End-to-end CI-gate behavior: copying a clean mini-tree passes,
    injecting a REP001 violation makes `repro lint` exit 1."""
    tree = tmp_path / "src" / "repro" / "sim"
    tree.mkdir(parents=True)
    clean = FIXTURES / "src" / "repro" / "sim" / "good_clean.py"
    (tree / "engine_ext.py").write_text(clean.read_text())

    def gate():
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--root", str(tmp_path),
             "--no-baseline", "--format", "json", "src"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})

    assert gate().returncode == 0

    (tree / "engine_ext.py").write_text(
        clean.read_text()
        + "\n\ndef racy(events):\n"
          "    for ev in set(events):\n"
          "        ev.succeed()\n")
    result = gate()
    assert result.returncode == 1
    doc = json.loads(result.stdout)
    assert [f["rule"] for f in doc["findings"]] == ["REP001"]
    assert doc["findings"][0]["check"] == "unordered-iter"
