"""System-level invariant checking on M3v and M3x (ISSUE: satellites).

The same :class:`InvariantSuite` is attached to both platforms and to
fault-perturbed schedules; two *mutation* tests then deliberately break
a mechanism (endpoint ownership, the CUR_ACT decrement) and assert the
corresponding checker catches it — evidence the suite has teeth.
"""

import pytest

from repro.api import SystemConfig, build_system
from repro.dtu.dtu import Dtu
from repro.dtu.vdtu import VDtu
from repro.sim.trace import capture
from repro.testing.faults import FaultPlan, NocJitter
from repro.testing.invariants import (
    CurActConsistency,
    EndpointOwnership,
    InvariantSuite,
    InvariantViolation,
)

FAULT_SEEDS = (3, 11, 42)


def _rendezvous(api, env, *keys):
    while any(k not in env for k in keys):
        yield api.sim.timeout(1_000_000)


def _ping_pong(plat, server_tile, client_tile, rounds=4):
    env, result = {}, {}

    def server(api):
        yield from _rendezvous(api, env, "s_rep")
        for _ in range(rounds):
            msg = yield from api.recv(env["s_rep"])
            yield from api.reply(env["s_rep"], msg, data=msg.data + 1, size=16)

    def client(api):
        yield from _rendezvous(api, env, "c_sep")
        value = 0
        for _ in range(rounds):
            value = yield from api.call(env["c_sep"], env["c_rep"],
                                        data=value, size=16)
        result["value"] = value

    ctrl = plat.controller
    s = plat.run_proc(ctrl.spawn("server", server_tile, server))
    c = plat.run_proc(ctrl.spawn("client", client_tile, client))
    sep, rep, reply_ep = plat.run_proc(ctrl.wire_channel(c, s, credits=2))
    env.update(s_rep=rep, c_sep=sep, c_rep=reply_ep)
    plat.sim.run_until_event(c.exit_event, limit=10**13)
    return result["value"]


# -- both systems, clean and faulted ------------------------------------------

@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_m3v_invariants_under_faults(seed):
    """Tile-local + remote RPC on M3v with jitter and forced preemption:
    all five checkers stay green (section 3.7's race paths included)."""
    with capture(record=False) as tracer:
        suite = InvariantSuite().attach(tracer)
        plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=4,
                                          n_mem_tiles=1)).platform
        FaultPlan.standard(seed, deadline_ps=3_000_000_000).apply(plat)
        assert _ping_pong(plat, server_tile=2, client_tile=2, rounds=5) == 5
        assert _ping_pong(plat, server_tile=1, client_tile=0, rounds=3) == 3
        # the tile-local rounds must exercise the section 3.7/3.8 paths
        assert plat.stats.counter_value("vdtu/core_reqs") > 0
        assert plat.stats.counter_value("tilemux/blocks") > 0
        plat.sim.run()  # drain in-flight exit notifications
    assert suite.seen > 0
    suite.finish()


@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_m3x_invariants_under_faults(seed):
    """The identical suite runs unchanged on the M3x baseline; the
    tile-local scenario takes the controller slow path (section 2.2)."""
    with capture(record=False) as tracer:
        suite = InvariantSuite().attach(tracer)
        plat = build_system(SystemConfig(kind="m3x", n_proc_tiles=4,
                                          n_mem_tiles=1)).platform
        FaultPlan(seed, deadline_ps=3_000_000_000).add(NocJitter()).apply(plat)
        assert _ping_pong(plat, server_tile=2, client_tile=2, rounds=3) == 3
        assert _ping_pong(plat, server_tile=1, client_tile=0, rounds=3) == 3
        assert plat.stats.counter_value("ctrl/forwards") >= 6
        plat.sim.run()  # drain in-flight exit notifications
    assert suite.seen > 0
    suite.finish()


# -- section 3.7: the lost-wakeup race ----------------------------------------

def _paced_remote_stream(seed, n_msgs=10):
    """A remote sender paced against a blocking receiver that shares its
    tile with a spinner: every round the receiver drains, blocks, and
    the next (jittered) arrival may land exactly inside the switch-out
    window — the section 3.7 race."""
    with capture(record=False) as tracer:
        suite = InvariantSuite().attach(tracer)
        plat = build_system(SystemConfig(kind="m3v", timeslice_us=50.0,
                                          n_proc_tiles=4,
                                          n_mem_tiles=1)).platform
        FaultPlan.standard(seed, deadline_ps=20_000_000_000).apply(plat)
        env, got = {}, []

        def receiver(api):
            yield from _rendezvous(api, env, "rep")
            for _ in range(n_msgs):
                msg = yield from api.recv(env["rep"])
                got.append(msg.data)
                yield from api.ack(env["rep"], msg)

        def spinner(api):
            for _ in range(80):
                yield from api.compute(2000)  # 25 us chunks, IRQ windows

        def sender(api):
            yield from _rendezvous(api, env, "sep")
            for i in range(n_msgs):
                yield from api.send(env["sep"], i, 16)
                yield from api.sleep_us(80.0)

        ctrl = plat.controller
        r = plat.run_proc(ctrl.spawn("recv", 3, receiver))
        sp = plat.run_proc(ctrl.spawn("spin", 3, spinner))
        snd = plat.run_proc(ctrl.spawn("send", 0, sender))
        sep, rep, _ = plat.run_proc(ctrl.wire_channel(snd, r, credits=4))
        env.update(sep=sep, rep=rep)
        for act in (snd, r, sp):
            plat.sim.run_until_event(act.exit_event, limit=10**13)
        assert got == list(range(n_msgs))
        assert plat.stats.counter_value("tilemux/blocks") > 0
        averted = plat.stats.counter_value("tilemux/lost_wakeups_averted")
        plat.sim.run()  # drain in-flight exit notifications
    suite.finish()
    return averted


def test_lost_wakeup_race_is_averted():
    """Drive the section 3.7 race: a message arrives while TileMux is
    switching away from the just-blocked receiver.  The atomic-switch
    re-check must catch the raced deposit (counter > 0 over the seeds)
    and BlockedWakeup must never see an activity stay blocked with a
    message pending."""
    averted = sum(_paced_remote_stream(seed) for seed in (1, 2, 7))
    assert averted > 0, "seed sweep never hit the section 3.7 race window"


# -- section 3.8: core-request queue overrun and backpressure -----------------

def test_queue_overrun_backpressure():
    """With a one-deep core-request queue and a compute-bound activity
    holding the core, bursts to non-running receivers overrun the queue;
    the deposit stalls (NoC backpressure) instead of dropping, and the
    queue-bound / conservation checkers hold throughout."""
    config = SystemConfig(kind="m3v",
                          dtu_overrides={"core_req_queue_depth": 1})
    with capture(record=False) as tracer:
        suite = InvariantSuite().attach(tracer)
        plat = build_system(config, n_proc_tiles=4, n_mem_tiles=1).platform
        FaultPlan(5, deadline_ps=4_000_000_000).add(NocJitter()).apply(plat)
        env, got = {}, {"a": 0, "b": 0}

        def receiver(tag):
            def prog(api):
                yield from _rendezvous(api, env, f"{tag}_rep")
                for _ in range(4):
                    msg = yield from api.recv(env[f"{tag}_rep"])
                    got[tag] += 1
                    yield from api.ack(env[f"{tag}_rep"], msg)
            return prog

        def sender(tag):
            def prog(api):
                yield from _rendezvous(api, env, f"{tag}_sep")
                for i in range(4):
                    yield from api.send(env[f"{tag}_sep"], (tag, i), 16)
            return prog

        def spinner(api):
            yield from api.compute(400_000)  # ~5 ms: hogs the core

        ctrl = plat.controller
        spin = plat.run_proc(ctrl.spawn("spin", 3, spinner))
        ra = plat.run_proc(ctrl.spawn("recv-a", 3, receiver("a")))
        rb = plat.run_proc(ctrl.spawn("recv-b", 3, receiver("b")))
        sa = plat.run_proc(ctrl.spawn("send-a", 0, sender("a")))
        sb = plat.run_proc(ctrl.spawn("send-b", 1, sender("b")))
        sep_a, rep_a, _ = plat.run_proc(ctrl.wire_channel(sa, ra, credits=4))
        sep_b, rep_b, _ = plat.run_proc(ctrl.wire_channel(sb, rb, credits=4))
        env.update(a_rep=rep_a, b_rep=rep_b, a_sep=sep_a, b_sep=sep_b)
        for act in (ra, rb, sa, sb, spin):
            plat.sim.run_until_event(act.exit_event, limit=10**13)
        assert got == {"a": 4, "b": 4}
        assert plat.stats.counter_value("vdtu/core_req_overruns") > 0
        plat.sim.run()  # drain in-flight exit notifications
    assert suite.seen > 0
    suite.finish()


# -- mutation tests: a broken mechanism must be *caught* ----------------------

def test_mutation_ownership_bypass_is_caught(monkeypatch):
    """Break section 3.5: skip the vDTU's owner check (but keep the
    trace event honest).  A foreign fetch then reaches the endpoint and
    EndpointOwnership must flag it."""

    def leaky_usable_ep(self, ep_id, kind):
        ep = Dtu._usable_ep(self, ep_id, kind)  # base checks only
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(self.sim, "ep_use", tile=self.tile, ep=ep_id,
                        owner=ep.act, cur_act=self.cur_act)
        return ep

    monkeypatch.setattr(VDtu, "_usable_ep", leaky_usable_ep)
    with capture(record=False) as tracer:
        InvariantSuite(checkers=(EndpointOwnership,)).attach(tracer)
        plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=4,
                                          n_mem_tiles=1)).platform
        env = {}

        def server(api):
            yield from _rendezvous(api, env, "s_rep")
            yield from api.recv(env["s_rep"])

        def intruder(api):
            yield from _rendezvous(api, env, "s_rep")
            # fetch from the *server's* receive endpoint
            yield from api.fetch(env["s_rep"])

        ctrl = plat.controller
        s = plat.run_proc(ctrl.spawn("server", 2, server))
        i = plat.run_proc(ctrl.spawn("intruder", 2, intruder))
        sep, rep, reply_ep = plat.run_proc(ctrl.wire_channel(i, s))
        env.update(s_rep=rep)
        with pytest.raises(InvariantViolation, match="ep-ownership"):
            plat.sim.run_until_event(i.exit_event, limit=10**13)


def test_unmutated_foreign_fetch_is_refused():
    """Control for the mutation test: with the real vDTU the same
    foreign fetch fails with UNKNOWN_EP and no ownership event fires."""
    from repro.dtu import DtuError, DtuFault

    plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=4,
                                          n_mem_tiles=1)).platform
    env, seen = {}, {}

    def intruder(api):
        yield from _rendezvous(api, env, "s_rep")
        try:
            yield from api.fetch(env["s_rep"])
        except DtuFault as fault:
            seen["error"] = fault.error

    def server(api):
        yield from _rendezvous(api, env, "done")
        if False:
            yield

    ctrl = plat.controller
    s = plat.run_proc(ctrl.spawn("server", 2, server))
    i = plat.run_proc(ctrl.spawn("intruder", 2, intruder))
    _, rep, _ = plat.run_proc(ctrl.wire_channel(i, s))
    env["s_rep"] = rep  # the server's receive EP — foreign to the intruder
    plat.sim.run_until_event(i.exit_event, limit=10**13)
    env["done"] = True
    plat.sim.run_until_event(s.exit_event, limit=10**13)
    assert seen["error"] is DtuError.UNKNOWN_EP


def test_mutation_forgotten_cur_act_decrement_is_caught(monkeypatch):
    """Break section 3.7: FETCH reports the decrement but never applies
    it to the register.  The shadow kept by CurActConsistency diverges
    from the value the atomic switch reads back — caught."""

    def forgetful_on_fetch(self, ep):
        if ep.act == self.cur_act and self.cur_msgs > 0:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(self.sim, "cur_dec", tile=self.tile,
                            act=self.cur_act, cur=self.cur_msgs - 1)
            # bug under test: self.cur_msgs is never decremented

    monkeypatch.setattr(VDtu, "_on_fetch", forgetful_on_fetch)
    with capture(record=False) as tracer:
        InvariantSuite(checkers=(CurActConsistency,)).attach(tracer)
        plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=4,
                                          n_mem_tiles=1)).platform
        with pytest.raises(InvariantViolation, match="cur-act"):
            _ping_pong(plat, server_tile=2, client_tile=2, rounds=3)
