"""Unit tests for the vDTU's software-loaded TLB."""

import pytest

from repro.dtu import Perm, Tlb


def make_tlb(entries=4, page=4096):
    return Tlb(entries, page)


def test_lookup_miss_on_empty():
    tlb = make_tlb()
    assert tlb.lookup(1, 0x1000, Perm.R) is None
    assert tlb.misses == 1 and tlb.hits == 0


def test_insert_then_hit_translates_offset():
    tlb = make_tlb()
    tlb.insert(1, virt_page=4, phys_page=9, perm=Perm.RW)
    phys = tlb.lookup(1, 4 * 4096 + 123, Perm.R)
    assert phys == 9 * 4096 + 123
    assert tlb.hits == 1


def test_translation_is_per_activity():
    tlb = make_tlb()
    tlb.insert(1, 4, 9, Perm.RW)
    assert tlb.lookup(2, 4 * 4096, Perm.R) is None


def test_permission_mismatch_is_a_miss():
    tlb = make_tlb()
    tlb.insert(1, 4, 9, Perm.R)
    assert tlb.lookup(1, 4 * 4096, Perm.W) is None
    assert tlb.lookup(1, 4 * 4096, Perm.R) is not None


def test_lru_eviction():
    tlb = make_tlb(entries=2)
    tlb.insert(1, 0, 10, Perm.R)
    tlb.insert(1, 1, 11, Perm.R)
    tlb.lookup(1, 0, Perm.R)          # touch page 0 -> page 1 becomes LRU
    tlb.insert(1, 2, 12, Perm.R)      # evicts page 1
    assert tlb.lookup(1, 1 * 4096, Perm.R) is None
    assert tlb.lookup(1, 0, Perm.R) is not None


def test_reinsert_updates_in_place():
    tlb = make_tlb(entries=2)
    tlb.insert(1, 0, 10, Perm.R)
    tlb.insert(1, 0, 20, Perm.RW)
    assert len(tlb) == 1
    assert tlb.lookup(1, 0, Perm.W) == 20 * 4096


def test_pinned_entries_survive_eviction():
    tlb = make_tlb(entries=2)
    tlb.insert(0, 0, 5, Perm.RW, pinned=True)
    tlb.insert(1, 1, 6, Perm.R)
    tlb.insert(1, 2, 7, Perm.R)  # must evict the unpinned entry
    assert tlb.lookup(0, 0, Perm.R) == 5 * 4096
    assert tlb.lookup(1, 1 * 4096, Perm.R) is None


def test_all_pinned_overflow_raises():
    tlb = make_tlb(entries=1)
    tlb.insert(0, 0, 5, Perm.RW, pinned=True)
    with pytest.raises(RuntimeError):
        tlb.insert(1, 1, 6, Perm.R)


def test_invalidate_single_page():
    tlb = make_tlb()
    tlb.insert(1, 0, 10, Perm.R)
    tlb.insert(1, 1, 11, Perm.R)
    assert tlb.invalidate(1, virt_page=0) == 1
    assert tlb.lookup(1, 0, Perm.R) is None
    assert tlb.lookup(1, 4096, Perm.R) is not None


def test_invalidate_whole_activity():
    tlb = make_tlb()
    tlb.insert(1, 0, 10, Perm.R)
    tlb.insert(1, 1, 11, Perm.R)
    tlb.insert(2, 0, 12, Perm.R)
    assert tlb.invalidate(1) == 2
    assert len(tlb) == 1
    assert tlb.lookup(2, 0, Perm.R) is not None


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        Tlb(0, 4096)
