"""The metrics registry: primitives, instrumentation, determinism,
and the runner's metrics-artifact sidecars."""

import json
from dataclasses import dataclass

import pytest

from repro.obs import MetricsRegistry, capture_metrics
from repro.obs.metrics import Gauge
from repro.runner import ResultCache, Runner, Sweep, register, unregister


# -- primitives ---------------------------------------------------------------

def test_counter_inc():
    m = MetricsRegistry()
    m.inc("a/b")
    m.inc("a/b", 4)
    assert m.counter_value("a/b") == 5
    assert m.counter_value("missing") == 0


def test_gauge_throttle_collapses_identical_values():
    g = Gauge("q", interval_ps=1000)
    g.sample(0, 3)          # first point always records
    g.sample(10, 3)         # same value inside the interval: dropped
    g.sample(20, 4)         # changed value: recorded
    g.sample(30, 4)         # unchanged again: dropped
    g.sample(1500, 4)       # interval elapsed: recorded even if equal
    assert g.series == [(0, 3), (20, 4), (1500, 4)]
    assert g.last == 4


def test_series_inc_records_cumulative_totals():
    m = MetricsRegistry(gauge_interval_ps=0)
    m.series_inc("dtu/sends", 100)
    m.series_inc("dtu/sends", 200)
    m.series_inc("dtu/sends", 300, n=2)
    assert m.counter_value("dtu/sends") == 4
    assert m.series("dtu/sends") == [(100, 1), (200, 2), (300, 4)]


def test_histogram_summary_percentiles():
    m = MetricsRegistry()
    for v in range(1, 101):
        m.observe("lat", v)
    s = m.as_dict()["histograms"]["lat"]
    assert s["count"] == 100
    assert s["min"] == 1 and s["max"] == 100
    assert s["p50"] == pytest.approx(50, abs=1)
    assert s["p99"] == pytest.approx(99, abs=1)


def test_on_step_counts_event_classes_and_samples_queue_depth():
    from repro.sim.engine import Simulator

    m = MetricsRegistry(evq_interval_ps=0)
    sim = Simulator()
    sim.metrics = m
    done = []

    def proc():
        yield sim.timeout(100)
        yield sim.timeout(100)
        done.append(sim.now)

    sim.process(proc())
    sim.run(until=1_000)
    assert done
    assert sum(m.event_counts.values()) > 0
    depths = m.series("sim/evq_depth")
    assert depths and all(isinstance(ts, int) for ts, _ in depths)
    assert "sim/evq_depth" in m.series_names()


def test_as_dict_is_json_safe_and_merge_sums_counters():
    m = MetricsRegistry()
    m.inc("x", 2)
    m.observe("h", 1.5)
    m.sample("g", 0, 7)
    d = m.as_dict()
    json.dumps(d)   # must not raise
    merged = MetricsRegistry.merge_dicts([d, d, None, {}])
    assert merged["counters"]["x"] == 4


# -- instrumented workloads ---------------------------------------------------

def _fig6_m3v_counters():
    from repro.core.exps.fig6 import Fig6Params, run_fig6_point, fig6_points

    pt = [p for p in fig6_points(Fig6Params(iterations=10, warmup=2))
          if p.kind == "m3v_local"][0]
    with capture_metrics() as m:
        run_fig6_point(pt)
    return m


def test_fig6_point_populates_dtu_and_tilemux_metrics():
    m = _fig6_m3v_counters()
    assert m.counter_value("tile0/dtu/sends") > 0
    assert m.counter_value("tile0/dtu/recvs") > 0
    assert m.counter_value("tile0/tilemux/ctx_switches") > 0
    names = m.series_names()
    assert "tile0/tilemux/ready_q" in names
    assert "tile0/vdtu/core_req_q" in names
    switch = m.as_dict()["histograms"]["tile0/tilemux/switch_ps"]
    assert switch["count"] > 0 and switch["min"] > 0


def test_metrics_are_deterministic_across_runs():
    a = _fig6_m3v_counters().as_dict()
    b = _fig6_m3v_counters().as_dict()
    assert a == b


def test_m3x_slow_paths_and_controller_queue_are_metered():
    from repro.core.exps.figr import FigRPoint, run_figr_point

    with capture_metrics() as m:
        run_figr_point(FigRPoint("m3x", 0.0, messages=20))
    assert m.counter_value("ctrl/switches") > 0
    slow = sum(v for k, v in m.counters.items()
               if k.endswith("m3x/slow_paths"))
    assert slow > 0
    assert m.series("ctrl/slowpath_q")          # sampled over time
    assert m.series("ctrl/sysc_q")


def test_recovery_metrics_under_faults():
    from repro.core.exps.figr import FigRPoint, run_figr_point

    with capture_metrics() as m:
        run_figr_point(FigRPoint("m3v", 0.2, messages=10))
    retx = sum(v for k, v in m.counters.items()
               if k.endswith("recovery/retransmits"))
    assert retx > 0
    backoffs = [h for name, h in m.as_dict()["histograms"].items()
                if name.endswith("recovery/backoff_ps")]
    assert backoffs and backoffs[0]["count"] > 0


# -- runner metrics artifacts -------------------------------------------------

@dataclass(frozen=True)
class ToyCfg:
    idx: int


def _toy_point(cfg):
    from repro.sim.engine import Simulator

    sim = Simulator()

    def proc():
        if sim.metrics is not None:
            sim.metrics.inc("toy/ran")
        yield sim.timeout(100)

    sim.process(proc())
    sim.run(until=1_000)
    return cfg.idx * 10


@pytest.fixture
def toy_sweep(tmp_path):
    fp = tmp_path / "toy_costs.py"
    fp.write_text("X = 1\n")
    register(Sweep("toy-obs", lambda _p: [ToyCfg(i) for i in range(2)],
                   _toy_point, lambda _p, vs: vs,
                   fingerprint_paths=(str(fp),)))
    yield
    unregister("toy-obs")


def test_runner_stores_metrics_sidecars_next_to_results(toy_sweep, tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    cold = Runner(jobs=1, cache=cache, metrics=True)
    cold.run_sweep("toy-obs")
    assert cold.simulated == 2
    for o in cold.last_outcomes:
        assert o.metrics is not None
        assert o.metrics["counters"]["toy/ran"] == 1
        sidecar = cache.artifact_path(o.key, "metrics")
        assert sidecar.exists()

    warm = Runner(jobs=1, cache=ResultCache(root=tmp_path / "cache"),
                  metrics=True)
    warm.run_sweep("toy-obs")
    assert warm.simulated == 0 and warm.served == 2
    assert all(o.metrics["counters"]["toy/ran"] == 1
               for o in warm.last_outcomes)


def test_cache_hit_without_sidecar_resimulates(toy_sweep, tmp_path):
    root = tmp_path / "cache"
    plain = Runner(jobs=1, cache=ResultCache(root=root))
    plain.run_sweep("toy-obs")     # results cached, no metrics sidecars
    assert plain.simulated == 2

    metered = Runner(jobs=1, cache=ResultCache(root=root), metrics=True)
    metered.run_sweep("toy-obs")
    assert metered.simulated == 2  # hits without sidecars re-ran
    assert all(o.metrics is not None for o in metered.last_outcomes)

    warm = Runner(jobs=1, cache=ResultCache(root=root), metrics=True)
    warm.run_sweep("toy-obs")
    assert warm.simulated == 0 and warm.served == 2


def test_unmetered_run_ignores_sidecars(toy_sweep, tmp_path):
    root = tmp_path / "cache"
    Runner(jobs=1, cache=ResultCache(root=root), metrics=True) \
        .run_sweep("toy-obs")
    warm = Runner(jobs=1, cache=ResultCache(root=root))
    warm.run_sweep("toy-obs")
    assert warm.served == 2
    assert all(o.metrics is None for o in warm.last_outcomes)
