"""Smoke tests for the experiment runners with tiny parameters.

These complement the benchmark harness: every figure's code path runs
inside the regular test suite, with the paper's qualitative shapes
asserted on miniature workloads.
"""

import pytest

from repro.core.exps.fig6 import Fig6Params, run_fig6
from repro.core.exps.fig7 import Fig7Params, run_fig7
from repro.core.exps.fig8 import Fig8Params, run_fig8
from repro.core.exps.fig9 import Fig9Params, _throughput, gem5_config
from repro.core.exps.fig10 import Fig10Params, run_fig10
from repro.core.exps.voice import VoiceParams, run_voice_once


def test_fig6_shape():
    rows = run_fig6(Fig6Params(iterations=60, warmup=10))
    assert rows["m3v_local"]["kcycles"] > 2.5 * rows["m3v_remote"]["kcycles"]
    assert 0.5 < rows["m3v_remote"]["kcycles"] / \
        rows["linux_syscall"]["kcycles"] < 1.5


def test_fig7_shape():
    rows = run_fig7(Fig7Params(file_bytes=256 * 1024, runs=1, warmup=1))
    assert rows["m3v_read_isolated"] > rows["linux_read"]
    assert rows["linux_write"] < rows["linux_read"]


def test_fig8_shape():
    rows = run_fig8(Fig8Params(repetitions=8, warmup=2))
    assert rows["m3v_isolated"] < rows["m3v_shared"]
    assert 0.4 < rows["m3v_shared"] / rows["linux"] < 2.0


def test_fig9_single_tile_advantage():
    p = Fig9Params(find_dirs=4, find_files=6, runs=1)
    m3v = _throughput("m3v", 1, p)
    m3x = _throughput("m3x", 1, p)
    assert m3v > 1.3 * m3x


def test_fig9_gem5_config_uses_3ghz_cores():
    config = gem5_config(4)
    assert config.proc_core.freq_mhz == 3000.0
    assert config.n_proc_tiles == 4


def test_fig10_read_mix_shape():
    data = run_fig10(Fig10Params(records=30, operations=30, runs=1,
                                 warmup=0), mixes=("read",))
    read = data["read"]
    for system in ("m3v_isolated", "m3v_shared", "linux"):
        r = read[system]
        assert r["total_s"] > 0
        assert r["user_s"] >= 0 and r["sys_s"] >= 0
        assert r["user_s"] + r["sys_s"] <= r["total_s"] * 1.35
    # Linux spends relatively more system time (every op is a trap)
    linux = read["linux"]
    m3v = read["m3v_isolated"]
    assert linux["sys_s"] / linux["total_s"] > m3v["sys_s"] / m3v["total_s"]


def test_voice_pipeline_compresses_and_ships():
    result = run_voice_once(shared=False, p=VoiceParams(triggers=2))
    assert result["bytes_in"] == 2 * 16384 * 2
    assert 1.0 < result["compression_ratio"] < 4.0
    assert result["ms"] > 0
