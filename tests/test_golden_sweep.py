"""Golden-conformance sweep: every committed digest, every scheduler.

Replays each digest under ``tests/golden/`` and asserts the canonical
trace is byte-identical to what the digest pins — under the default
calendar scheduler, the reference heap scheduler, and with NoC hop
batching disabled.  This is the blanket guarantee behind the engine
optimizations: whatever the event queue or the fabric's event shape,
the simulated histories may not move by a single byte.
"""

import json
from pathlib import Path

import pytest

from repro.testing.golden import (
    GOLDEN_DIR,
    GOLDEN_WORKLOADS,
    digest,
    diff_digest,
    load_golden,
    record_trace,
)

GOLDEN_NAMES = sorted(p.stem for p in Path(GOLDEN_DIR).glob("*.json"))

# (scheduler, REPRO_NOC_BATCH) — the engine/fabric configurations that
# must all reproduce the committed traces
CONFIGS = [
    pytest.param("calendar", "1", id="calendar-batched"),
    pytest.param("heap", "1", id="heap-batched"),
    pytest.param("calendar", "0", id="calendar-lazy-noc"),
    pytest.param("heap", "0", id="heap-lazy-noc"),
]


def test_every_golden_has_a_workload():
    """A digest nothing replays is a silent hole in the sweep."""
    assert GOLDEN_NAMES, f"no golden digests found in {GOLDEN_DIR}"
    missing = [n for n in GOLDEN_NAMES if n not in GOLDEN_WORKLOADS]
    assert not missing, f"golden digests with no replay workload: {missing}"


@pytest.mark.golden
@pytest.mark.parametrize("name", GOLDEN_NAMES)
@pytest.mark.parametrize("scheduler,noc_batch", CONFIGS)
def test_golden_digest_reproduces(name, scheduler, noc_batch, monkeypatch):
    from repro.sim import engine

    monkeypatch.setenv("REPRO_NOC_BATCH", noc_batch)
    engine.set_default_scheduler(scheduler)
    try:
        actual = digest(record_trace(name))
    finally:
        engine.set_default_scheduler(None)
    expected = load_golden(name)
    problems = diff_digest(expected, actual)
    assert not problems, (
        f"{name} diverged under scheduler={scheduler} "
        f"noc_batch={noc_batch}:\n  " + "\n  ".join(problems))


@pytest.mark.golden
@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_golden_file_is_normalized(name):
    """Digests are committed in the exact form write_golden emits, so
    a refresh with unchanged behavior is always a no-op diff."""
    path = Path(GOLDEN_DIR) / f"{name}.json"
    text = path.read_text()
    assert text == json.dumps(json.loads(text), indent=1, sort_keys=True) + "\n"
