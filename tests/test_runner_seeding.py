"""Per-point RNG seeding: results must not depend on scheduling.

Every point's RNG is seeded from ``(sweep name, point index)`` right
before it runs — never inherited from whatever the worker process (or
the serial loop) executed previously.  The regression here uses a toy
sweep whose point function *only* consumes the process-global
``random`` stream: shuffling submission order, and moving between the
serial path and a 2-worker pool, must not change a single value.
"""

import random
from dataclasses import dataclass

import pytest

from repro.runner import Runner, Sweep, make_specs, point_seed, register, \
    unregister


@dataclass(frozen=True)
class NoiseCfg:
    idx: int


def _noise_point(_cfg):
    # deliberately reads the process-global RNG: without per-point
    # seeding this value would depend on what ran before in the worker
    return [random.random() for _ in range(3)]


def _noise_points(_params):
    return [NoiseCfg(i) for i in range(6)]


def _noise_reduce(_params, values):
    return values


@pytest.fixture
def noise_sweep():
    register(Sweep("toy-noise", _noise_points, _noise_point, _noise_reduce))
    yield "toy-noise"
    unregister("toy-noise")


def _values_by_index(outcomes):
    return {o.spec.index: o.value for o in outcomes}


def test_point_seed_is_deterministic_and_distinct():
    assert point_seed("fig6", 0) == point_seed("fig6", 0)
    assert point_seed("fig6", 0) != point_seed("fig6", 1)
    assert point_seed("fig6", 0) != point_seed("fig8", 0)


def test_results_survive_submission_order_shuffle(noise_sweep):
    specs = make_specs(noise_sweep, None)
    in_order = _values_by_index(Runner(jobs=1).run_points(specs))

    shuffled = specs[:]
    random.Random(42).shuffle(shuffled)
    assert [s.index for s in shuffled] != [s.index for s in specs]
    reshuffled = _values_by_index(Runner(jobs=1).run_points(shuffled))
    assert reshuffled == in_order

    # each point drew from its own seed, not one shared stream
    assert len({tuple(v) for v in in_order.values()}) == len(in_order)


def test_results_survive_worker_assignment(noise_sweep):
    specs = make_specs(noise_sweep, None)
    serial = _values_by_index(Runner(jobs=1).run_points(specs))

    shuffled = specs[:]
    random.Random(7).shuffle(shuffled)
    pooled = _values_by_index(Runner(jobs=2).run_points(shuffled))
    assert pooled == serial


def test_outcomes_keep_submission_order(noise_sweep):
    specs = make_specs(noise_sweep, None)
    shuffled = specs[:]
    random.Random(3).shuffle(shuffled)
    outcomes = Runner(jobs=2).run_points(shuffled)
    assert [o.spec for o in outcomes] == shuffled
