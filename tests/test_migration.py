"""Live activity migration + controller rebalancer (ISSUE 10 tentpole).

Four layers:

* protocol correctness — an in-flight RPC conversation survives a
  mid-run migration exactly-once and in-order, with lazy send-EP
  retargeting converging afterwards;
* refusal safety — the controller declines migrations that would break
  invariants (unknown/exited activities, same-tile moves, service
  owners, EP-range collisions at the target) and declines them without
  side effects;
* the :class:`repro.kernel.rebalance.Rebalancer` — evacuates
  quarantined tiles and spreads hot tiles, within its migration budget;
* determinism — the full migration timeline (trace digest and counter
  sums) is byte-identical across ``PYTHONHASHSEED`` values and between
  the serial and 4-way-sharded engines.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import PlacementSpec, SchedSpec, SystemConfig, build_system
from repro.mux.recovery import RecoveryPolicy, enable_recovery
from repro.services.boot import boot_m3fs

LIMIT = 10**13
REPO = Path(__file__).resolve().parent.parent


def _rendezvous(api, env, *keys):
    while any(k not in env for k in keys):
        yield api.sim.timeout(1_000_000)


def _build(**cfg):
    cfg.setdefault("kind", "m3v")
    cfg.setdefault("n_proc_tiles", 4)
    cfg.setdefault("n_mem_tiles", 1)
    return build_system(SystemConfig(**cfg)).platform


# -- protocol correctness -----------------------------------------------------

def _run_migrating_rpc(n_calls=10, migrate_after_ps=2_000_000_000,
                       dst_tile=2):
    """Client on tile 0 calls a server on tile 1; the server is
    live-migrated to ``dst_tile`` mid-conversation.  Returns
    (platform, received payload list, migrate outcome)."""
    plat = _build()
    ctrl = plat.controller
    env, got = {}, []

    def server(api):
        yield from _rendezvous(api, env, "s_rep")
        for _ in range(n_calls):
            msg = yield from api.recv(env["s_rep"])
            got.append(msg.data)
            yield from api.reply(env["s_rep"], msg, data=msg.data * 2,
                                 size=16)

    def client(api):
        yield from _rendezvous(api, env, "c_sep")
        for i in range(n_calls):
            v = yield from api.call(env["c_sep"], env["c_rep"], data=i,
                                    size=16)
            assert v == i * 2, (i, v)
            yield from api.compute(200_000)

    srv = plat.run_proc(ctrl.spawn("server", 1, server))
    cli = plat.run_proc(ctrl.spawn("client", 0, client))
    sep, rep, rpl = plat.run_proc(ctrl.wire_channel(cli, srv, credits=2))
    env.update(s_rep=rep, c_sep=sep, c_rep=rpl)

    plat.sim.run(until=plat.sim.now + migrate_after_ps)
    moved = plat.run_proc(ctrl.migrate(srv.act_id, dst_tile))
    # drain while the conversation is live: retargeting needs the peer
    # still resident (after exit there is nothing left to repoint)
    plat.sim.run(until=plat.sim.now + 1_000_000_000)
    plat.run_proc(ctrl.drain_retargets())
    plat.sim.run_until_event(cli.exit_event, limit=LIMIT)
    return plat, got, moved, srv


def test_mid_run_migration_is_exactly_once_in_order():
    plat, got, moved, srv = _run_migrating_rpc()
    assert moved is True
    assert got == list(range(10))            # no loss, no dup, no reorder
    assert srv.tile_id == 2
    stats = plat.stats
    assert stats.counter_value("ctrl/migrations") == 1
    assert stats.counter_value("tile1/sched/migrations_out") == 1
    assert stats.counter_value("tile2/sched/migrations_in") == 1
    # the client's send EP was lazily repointed at the new home, after
    # which the forward stubs carry no more traffic
    assert stats.counter_value("ctrl/retargets") >= 1


def test_migration_forwards_packets_in_flight():
    # migrate immediately: the first calls are still in flight, so the
    # source-side stubs must relay (or hold + flush) real packets
    plat, got, moved, _ = _run_migrating_rpc(migrate_after_ps=500_000)
    assert moved is True
    assert got == list(range(10))
    assert plat.stats.counter_value("dtu/migr_forwards") >= 0  # counter exists


def test_migrated_activity_can_migrate_again():
    plat, got, moved, srv = _run_migrating_rpc()
    ctrl = plat.controller
    assert moved and srv.tile_id == 2
    # second hop: tile 2 -> tile 3 (the activity has exited by now, so
    # this must be refused — exited contexts stay put) …
    assert plat.run_proc(ctrl.migrate(srv.act_id, 3)) is False


def test_double_hop_migration_mid_conversation():
    plat = _build()
    ctrl = plat.controller
    env, got = {}, []

    def server(api):
        yield from _rendezvous(api, env, "s_rep")
        for _ in range(12):
            msg = yield from api.recv(env["s_rep"])
            got.append(msg.data)
            yield from api.reply(env["s_rep"], msg, data=msg.data + 100,
                                 size=16)

    def client(api):
        yield from _rendezvous(api, env, "c_sep")
        for i in range(12):
            v = yield from api.call(env["c_sep"], env["c_rep"], data=i,
                                    size=16)
            assert v == i + 100
            yield from api.compute(150_000)

    srv = plat.run_proc(ctrl.spawn("server", 1, server))
    cli = plat.run_proc(ctrl.spawn("client", 0, client))
    sep, rep, rpl = plat.run_proc(ctrl.wire_channel(cli, srv, credits=2))
    env.update(s_rep=rep, c_sep=sep, c_rep=rpl)

    plat.sim.run(until=plat.sim.now + 1_500_000_000)
    assert plat.run_proc(ctrl.migrate(srv.act_id, 2)) is True
    plat.sim.run(until=plat.sim.now + 1_500_000_000)
    assert plat.run_proc(ctrl.migrate(srv.act_id, 3)) is True
    plat.sim.run_until_event(cli.exit_event, limit=LIMIT)
    assert got == list(range(12))
    assert srv.tile_id == 3
    assert plat.stats.counter_value("ctrl/migrations") == 2


# -- refusal safety -----------------------------------------------------------

def test_migrate_refuses_unknown_and_same_tile():
    plat = _build()
    ctrl = plat.controller

    def prog(api):
        yield from api.compute(50_000_000)

    act = plat.run_proc(ctrl.spawn("p", 1, prog))
    before = dict(ctrl._act_tiles)
    assert plat.run_proc(ctrl.migrate(9999, 2)) is False      # unknown act
    assert plat.run_proc(ctrl.migrate(act.act_id, 1)) is False  # src == dst
    assert plat.run_proc(ctrl.migrate(act.act_id, 99)) is False  # no such tile
    assert dict(ctrl._act_tiles) == before                    # no side effects
    assert plat.stats.counter_value("ctrl/migrate_refused") == 3
    assert plat.stats.counter_value("ctrl/migrations") == 0


def test_migrate_refuses_service_owner():
    plat = _build()
    ctrl = plat.controller
    fs = plat.run_proc(boot_m3fs(plat, tile=1, blocks=512))
    assert plat.run_proc(ctrl.migrate(fs.act.act_id, 2)) is False
    assert plat.stats.counter_value("ctrl/migrate_refused") == 1


def test_migrate_refuses_ep_range_collision():
    plat = _build()
    ctrl = plat.controller
    env = {}

    def blocked(api):
        yield from _rendezvous(api, env, "never")

    first = plat.run_proc(ctrl.spawn("first", 1, blocked))
    # crowd tile 2's EP allocator past `first`'s EP range
    for i in range(4):
        plat.run_proc(ctrl.spawn(f"crowd{i}", 2, blocked))
    assert plat.run_proc(ctrl.migrate(first.act_id, 2)) is False
    assert first.tile_id == 1


# -- the rebalancer -----------------------------------------------------------

def test_rebalancer_evacuates_quarantined_tile():
    plat = _build(placement=PlacementSpec(interval_us=200.0,
                                          cooldown_us=500.0))
    enable_recovery(plat, RecoveryPolicy(quarantine_faults=3))
    ctrl = plat.controller
    env = {}

    def worker(api):
        for _ in range(60):
            yield from api.compute(100_000)   # 1.25 ms at 80 MHz
            yield from api.yield_cpu()

    acts = [plat.run_proc(ctrl.spawn(f"w{i}", 1, worker)) for i in range(2)]
    plat.sim.run(until=plat.sim.now + 500_000_000)
    for _ in range(3):
        ctrl.report_tile_fault(1, "test")
    assert 1 in ctrl.quarantined
    for act in acts:
        plat.sim.run_until_event(act.exit_event, limit=LIMIT)
    # the rebalancer moved the survivors off the quarantined tile
    assert plat.stats.counter_value("ctrl/migrations") >= 1
    assert all(act.tile_id != 1 for act in acts)
    assert all(tid != 1 for a, tid in ctrl._act_tiles.items()
               if a in {act.act_id for act in acts})


def test_rebalancer_spreads_hot_tile():
    plat = _build(placement=PlacementSpec(interval_us=200.0, hot_depth=2,
                                          spread=2, cooldown_us=1000.0))
    ctrl = plat.controller

    def worker(api):
        for _ in range(60):
            yield from api.compute(100_000)   # 1.25 ms at 80 MHz
            yield from api.yield_cpu()

    # four CPU-bound workers packed on tile 1; tiles 2 and 3 idle
    acts = [plat.run_proc(ctrl.spawn(f"w{i}", 1, worker)) for i in range(4)]
    for act in acts:
        plat.sim.run_until_event(act.exit_event, limit=LIMIT)
    assert plat.stats.counter_value("ctrl/migrations") >= 1
    homes = {act.tile_id for act in acts}
    assert homes != {1}, "all workers still packed on the hot tile"


def test_rebalancer_respects_migration_budget():
    plat = _build(placement=PlacementSpec(interval_us=200.0, hot_depth=2,
                                          spread=2, cooldown_us=200.0,
                                          max_migrations=1))
    ctrl = plat.controller

    def worker(api):
        for _ in range(60):
            yield from api.compute(100_000)   # 1.25 ms at 80 MHz
            yield from api.yield_cpu()

    acts = [plat.run_proc(ctrl.spawn(f"w{i}", 1, worker)) for i in range(4)]
    for act in acts:
        plat.sim.run_until_event(act.exit_event, limit=LIMIT)
    assert plat.stats.counter_value("ctrl/migrations") <= 1


def test_placement_spec_validates():
    with pytest.raises(ValueError, match="must be positive"):
        PlacementSpec(interval_us=0)
    with pytest.raises(ValueError, match="hot_depth and spread"):
        PlacementSpec(hot_depth=0)
    with pytest.raises(ValueError, match="m3v-only"):
        SystemConfig(kind="m3x", placement=PlacementSpec())


def test_default_config_runs_no_rebalancer():
    plat = _build()
    assert getattr(plat, "rebalancer", None) is None
    # and no beacon processes exist: the sim should go completely idle
    plat.sim.run(until=10_000_000_000)
    assert plat.stats.counter_value("ctrl/migrations") == 0


# -- determinism --------------------------------------------------------------

# a migrating RPC conversation under an active rebalancer; prints the
# trace digest and every migration-relevant counter
MIGRATION_SNIPPET = """\
import hashlib
from repro.api import PlacementSpec, SystemConfig, build_system
from repro.sim.trace import capture
from repro.testing.golden import canonical_json

with capture() as tracer:
    plat = build_system(SystemConfig(
        kind="m3v", n_proc_tiles=4, n_mem_tiles=1,
        placement=PlacementSpec(interval_us=300.0, hot_depth=2, spread=2,
                                cooldown_us=900.0))).platform
    ctrl = plat.controller
    env, got = {}, []

    def rendezvous(api, *keys):
        while any(k not in env for k in keys):
            yield api.sim.timeout(1_000_000)

    def server(api):
        yield from rendezvous(api, "s_rep")
        for _ in range(8):
            msg = yield from api.recv(env["s_rep"])
            got.append(msg.data)
            yield from api.reply(env["s_rep"], msg, data=msg.data * 3,
                                 size=16)

    def client(api):
        yield from rendezvous(api, "c_sep")
        for i in range(8):
            v = yield from api.call(env["c_sep"], env["c_rep"], data=i,
                                    size=16)
            assert v == i * 3
            yield from api.compute(150_000)

    def worker(api):
        for _ in range(40):
            yield from api.compute(100_000)
            yield from api.yield_cpu()

    srv = plat.run_proc(ctrl.spawn("server", 1, server))
    cli = plat.run_proc(ctrl.spawn("client", 0, client))
    ws = [plat.run_proc(ctrl.spawn(f"w{i}", 1, worker)) for i in range(3)]
    sep, rep, rpl = plat.run_proc(ctrl.wire_channel(cli, srv, credits=2))
    env.update(s_rep=rep, c_sep=sep, c_rep=rpl)
    plat.sim.run_until_event(cli.exit_event, limit=10**13)
    for w in ws:
        plat.sim.run_until_event(w.exit_event, limit=10**13)
    plat.run_proc(ctrl.drain_retargets())

assert got == list(range(8)), got
digest = hashlib.sha256(canonical_json(tracer).encode()).hexdigest()
print("digest", digest)
for name in ("ctrl/migrations", "ctrl/migrate_refused", "ctrl/retargets",
             "dtu/migr_forwards"):
    print(name, plat.stats.counter_value(name))
"""


def _run(snippet: str, **env_overrides) -> str:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"), **env_overrides)
    env.pop("REPRO_SHARDS", None)
    env.update(env_overrides)
    out = subprocess.run([sys.executable, "-c", snippet],
                         capture_output=True, text=True, env=env)
    assert out.returncode == 0, out.stderr
    return out.stdout


def test_migration_timeline_identical_across_hashseed_and_shards():
    """The whole migration timeline — trace digest, migration and
    retarget counts — survives interpreter hash-seed changes and the
    4-way-sharded engine bit-for-bit."""
    outputs = {
        _run(MIGRATION_SNIPPET, PYTHONHASHSEED="0"),
        _run(MIGRATION_SNIPPET, PYTHONHASHSEED="1"),
        _run(MIGRATION_SNIPPET, PYTHONHASHSEED="0", REPRO_SHARDS="4",
             REPRO_SHARD_STRICT="1"),
        _run(MIGRATION_SNIPPET, PYTHONHASHSEED="31337", REPRO_SHARDS="4",
             REPRO_SHARD_STRICT="1"),
    }
    assert len(outputs) == 1, \
        f"migration timeline diverges across hash seeds/shards: {outputs}"
    sample = next(iter(outputs))
    assert "ctrl/migrations 0" not in sample, \
        f"workload never migrated — the determinism check is vacuous:\n{sample}"
