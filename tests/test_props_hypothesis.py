"""Property-based tests (hypothesis) for core data structures."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.compress import rice_compress, rice_decompress
from repro.dtu import Perm, Tlb
from repro.kernel.memalloc import OutOfMemory, PhysAllocator, PhysRegion
from repro.services.fsdata import BlockAllocator, FsError
from repro.sim import Channel, Simulator
from repro.sim.stats import Histogram
from repro.workloads.zipfian import ZipfianGenerator


# --------------------------------------------------------------- zipfian


@given(n=st.integers(1, 500), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_zipfian_stays_in_range(n, seed):
    gen = ZipfianGenerator(n, seed=seed)
    for _ in range(200):
        assert 0 <= gen.next() < n


@given(seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_zipfian_is_skewed_towards_small_keys(seed):
    gen = ZipfianGenerator(100, seed=seed)
    draws = [gen.next() for _ in range(3000)]
    low = sum(1 for d in draws if d < 10)
    # with theta=0.99, the top-10% of keys draw far more than 10% of hits
    assert low > 0.3 * len(draws)


# ---------------------------------------------------------- block allocator


@given(requests=st.lists(st.integers(1, 40), min_size=1, max_size=40),
       max_blocks=st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_block_allocator_never_double_allocates(requests, max_blocks):
    alloc = BlockAllocator(512)
    seen = set()
    extents = []
    for want in requests:
        try:
            extent = alloc.alloc_extent(want, max_blocks)
        except FsError:
            break
        blocks = set(range(extent.start, extent.start + extent.blocks))
        assert not blocks & seen, "block handed out twice"
        assert extent.blocks <= max_blocks
        seen |= blocks
        extents.append(extent)
    assert alloc.used_blocks == len(seen)


@given(requests=st.lists(st.integers(1, 30), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_block_allocator_free_restores_everything(requests):
    alloc = BlockAllocator(256)
    extents = []
    for want in requests:
        try:
            extents.append(alloc.alloc_extent(want, 64))
        except FsError:
            break
    for extent in extents:
        alloc.free_extent(extent)
    assert alloc.free_blocks == 256


# ----------------------------------------------------------- phys allocator


@given(sizes=st.lists(st.integers(1, 1 << 16), min_size=1, max_size=25))
@settings(max_examples=40, deadline=None)
def test_phys_allocator_regions_never_overlap(sizes):
    alloc = PhysAllocator([PhysRegion(0, 0, 1 << 20)])
    regions = []
    for size in sizes:
        try:
            regions.append(alloc.alloc(size))
        except OutOfMemory:
            break
    regions.sort(key=lambda r: r.base)
    for a, b in zip(regions, regions[1:]):
        assert a.end <= b.base


@given(sizes=st.lists(st.integers(1, 1 << 14), min_size=1, max_size=20))
@settings(max_examples=30, deadline=None)
def test_phys_allocator_free_coalesces_fully(sizes):
    alloc = PhysAllocator([PhysRegion(0, 0, 1 << 20)])
    regions = [alloc.alloc(s) for s in sizes]
    for region in regions:
        alloc.free(region)
    assert alloc.free_bytes == 1 << 20
    # a single full-size allocation must fit again (no fragmentation)
    big = alloc.alloc((1 << 20) - 4096)
    assert big.size >= (1 << 20) - 4096


# ------------------------------------------------------------------- TLB


@given(ops=st.lists(st.tuples(st.integers(1, 4), st.integers(0, 30)),
                    min_size=1, max_size=80),
       capacity=st.integers(1, 16))
@settings(max_examples=40, deadline=None)
def test_tlb_never_exceeds_capacity_and_hits_are_correct(ops, capacity):
    tlb = Tlb(capacity, 4096)
    model = {}
    for act, vpage in ops:
        tlb.insert(act, vpage, vpage + 1000, Perm.RW)
        model[(act, vpage)] = vpage + 1000
        assert len(tlb) <= capacity
    # whatever is still in the TLB translates exactly as the model says
    for (act, vpage), ppage in model.items():
        got = tlb.lookup(act, vpage * 4096 + 7, Perm.R)
        if got is not None:
            assert got == ppage * 4096 + 7


# ------------------------------------------------------------- rice codec


@given(st.lists(st.integers(-2**15, 2**15 - 1), min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_rice_codec_is_lossless(samples):
    original = np.array(samples, dtype=np.int16)
    frame = rice_compress(original)
    decoded = rice_decompress(frame)
    assert np.array_equal(decoded, original)


@given(st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_rice_codec_compresses_smooth_audio(seed):
    rng = np.random.default_rng(seed)
    t = np.arange(2048)
    audio = (200 * np.sin(2 * np.pi * t / 100)
             + rng.normal(0, 3, 2048)).astype(np.int16)
    frame = rice_compress(audio)
    assert len(frame) < 2 * len(audio)  # beats raw 16-bit PCM


# ---------------------------------------------------------------- channels


@given(st.lists(st.integers(), min_size=1, max_size=50),
       st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_channel_preserves_fifo_order_under_capacity(items, capacity):
    sim = Simulator()
    ch = Channel(sim, capacity=capacity)
    got = []

    def producer():
        for item in items:
            yield ch.put(item)

    def consumer():
        for _ in items:
            got.append((yield ch.get()))
            yield sim.timeout(1)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == items


# --------------------------------------------------------------- histogram


@given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
@settings(max_examples=40, deadline=None)
def test_histogram_quantiles_are_monotone_and_bounded(samples):
    hist = Histogram("h")
    for s in samples:
        hist.record(s)
    q25, q50, q75 = (hist.quantile(q) for q in (0.25, 0.5, 0.75))
    assert hist.min <= q25 <= q50 <= q75 <= hist.max


@given(samples=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
       qs=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=10))
@settings(max_examples=40, deadline=None)
def test_histogram_quantile_is_monotone_in_q(samples, qs):
    hist = Histogram("h")
    for s in samples:
        hist.record(s)
    values = [hist.quantile(q) for q in sorted(qs)]
    assert all(a <= b for a, b in zip(values, values[1:]))
    assert hist.min <= hist.mean <= hist.max
    assert hist.quantile(0.0) == hist.min
    assert hist.quantile(1.0) == hist.max


# ------------------------------------------------------------ time-weighted


@given(steps=st.lists(st.tuples(st.integers(1, 1000), st.floats(-100, 100)),
                      min_size=1, max_size=50))
@settings(max_examples=40, deadline=None)
def test_time_weighted_mean_matches_hand_computed_integral(steps):
    """TimeWeighted.mean equals the integral of the explicit step
    function divided by the elapsed span."""
    from repro.sim.stats import TimeWeighted

    gauge = TimeWeighted("g", now=0, initial=0.0)
    now, value, area = 0, 0.0, 0.0
    for dt, new_value in steps:
        area += value * dt          # the value held during [now, now+dt)
        now += dt
        value = new_value
        gauge.set(new_value, now)
    # advance a final plateau so the last value contributes too
    area += value * 10
    now += 10
    assert gauge.mean(now) == pytest.approx(area / now)
    assert gauge.current == value


# ----------------------------------------------------------- TLB (section 3.6)


@given(ops=st.lists(st.tuples(st.integers(1, 3), st.integers(0, 40)),
                    min_size=1, max_size=100),
       capacity=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_tlb_hit_after_fill_and_eviction_is_conservative(ops, capacity):
    """Inserting a translation makes it hit immediately; an insert into
    a full TLB returns exactly the entry it displaced (no silent drops)."""
    tlb = Tlb(capacity, 4096)
    resident = {}
    for act, vpage in ops:
        evicted = tlb.insert(act, vpage, vpage + 7, Perm.RW)
        resident[(act, vpage)] = vpage + 7
        if evicted is not None:
            key = (evicted.act, evicted.virt_page)
            assert key in resident and key != (act, vpage)
            del resident[key]
        # hit-after-fill: the just-inserted page translates
        assert tlb.lookup(act, vpage * 4096, Perm.R) == (vpage + 7) * 4096
        assert len(tlb) == len(resident) <= capacity


@given(vpages=st.lists(st.integers(0, 100), min_size=1, max_size=60,
                       unique=True),
       capacity=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_tlb_evicts_in_lru_order(vpages, capacity):
    """With untouched entries, evictions happen strictly in insertion
    order (LRU == FIFO without intervening lookups)."""
    tlb = Tlb(capacity, 4096)
    evictions = []
    for vpage in vpages:
        evicted = tlb.insert(1, vpage, vpage, Perm.RW)
        if evicted is not None:
            evictions.append(evicted.virt_page)
    assert evictions == vpages[:len(evictions)]


@given(capacity=st.integers(2, 8))
@settings(max_examples=20, deadline=None)
def test_tlb_lookup_refreshes_lru_position(capacity):
    """A lookup protects an entry: filling the TLB past capacity evicts
    the cold entries, never the one just touched."""
    tlb = Tlb(capacity, 4096)
    for vpage in range(capacity):
        tlb.insert(1, vpage, vpage, Perm.RW)
    assert tlb.lookup(1, 0, Perm.R) is not None  # touch page 0
    evicted = tlb.insert(1, capacity, capacity, Perm.RW)
    assert evicted is not None and evicted.virt_page == 1  # page 0 spared
    assert tlb.lookup(1, 0, Perm.R) is not None


@given(st.lists(st.floats(-1e5, 1e5), max_size=5))
@settings(max_examples=30, deadline=None)
def test_histogram_snapshot_never_crashes(samples):
    """Empty histograms report NaN statistics instead of raising."""
    import math

    hist = Histogram("maybe-empty")
    for s in samples:
        hist.record(s)
    if samples:
        assert hist.min <= hist.mean <= hist.max
    else:
        assert math.isnan(hist.mean) and math.isnan(hist.quantile(0.5))
