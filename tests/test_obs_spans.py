"""Span timelines and the simulator self-profiler."""

import json

import pytest

from repro.obs import SelfProfiler, SpanCollector, capture_profile
from repro.sim.trace import TraceEvent, capture


def _ev(seq, ts, kind, **fields):
    return TraceEvent(seq=seq, ts=ts, sim=0, kind=kind, fields=fields)


# -- span folding on synthetic events -----------------------------------------

def test_running_and_switching_spans_from_switch_events():
    c = SpanCollector()
    c.feed([
        _ev(0, 100, "act_switch", tile=1, old_act=0xFFFF, new_act=3),
        _ev(1, 900, "act_switch", tile=1, old_act=3, new_act=4),
        _ev(2, 2000, "act_exit", tile=1, act=4),
    ])
    c.finish()
    running = sorted(c.of_state("running"), key=lambda s: s.start)
    assert [(s.act, s.start, s.end) for s in running] == \
        [(3, 100, 900), (4, 900, 2000)]
    assert c.busy_ps(1) == 800 + 1100


def test_switch_gap_becomes_switching_span():
    c = SpanCollector()
    c.feed([
        _ev(0, 0, "act_switch", tile=0, old_act=0xFFFF, new_act=1),
        _ev(1, 500, "act_switch", tile=0, old_act=1, new_act=0xFFFF),
        _ev(2, 700, "act_switch", tile=0, old_act=0xFFFF, new_act=2),
    ])
    c.finish(end_ts=1000)
    switching = c.of_state("switching")
    assert [(s.start, s.end) for s in switching] == [(500, 700)]
    assert switching[0].act is None


def test_blocked_spans_pair_block_and_wake():
    c = SpanCollector()
    c.feed([
        _ev(0, 10, "act_block", tile=2, act=5),
        _ev(1, 60, "act_wake", tile=2, act=5),
        _ev(2, 80, "act_block", tile=2, act=6),     # never woken
    ])
    c.finish(end_ts=100)
    blocked = sorted(c.of_state("blocked"), key=lambda s: s.start)
    assert [(s.act, s.start, s.end) for s in blocked] == \
        [(5, 10, 60), (6, 80, 100)]


def test_quarantine_span_runs_to_end_of_trace():
    c = SpanCollector()
    c.feed([_ev(0, 50, "tile_quarantine", tile=3)])
    c.finish(end_ts=400)
    q = c.of_state("quarantined")
    assert [(s.tile, s.act, s.start, s.end) for s in q] == \
        [(3, None, 50, 400)]


# -- real workload + export ---------------------------------------------------

@pytest.fixture(scope="module")
def fig6_spans():
    from repro.core.exps.fig6 import Fig6Params, run_fig6_point, fig6_points

    pt = [p for p in fig6_points(Fig6Params(iterations=10, warmup=2))
          if p.kind == "m3v_local"][0]
    with capture(exclude=("evq_pop",)) as tracer:
        run_fig6_point(pt)
    return SpanCollector().feed(tracer.events).finish()


def test_workload_produces_well_formed_spans(fig6_spans):
    assert fig6_spans.spans
    for span in fig6_spans.spans:
        assert span.state in SpanCollector.STATES
        assert span.end > span.start
    assert fig6_spans.of_state("running")
    assert fig6_spans.busy_ps(0) > 0


def test_span_json_and_chrome_exports_parse(fig6_spans):
    spans = json.loads(fig6_spans.to_json())
    assert spans and {"sim", "tile", "act", "state", "start", "end"} \
        <= set(spans[0])
    chrome = json.loads(fig6_spans.to_chrome())
    events = chrome["traceEvents"]
    names = [e for e in events if e["ph"] == "M"]
    slices = [e for e in events if e["ph"] == "X"]
    assert names and slices
    for e in slices:
        assert e["dur"] > 0 and e["ts"] >= 0


def test_live_attach_matches_post_hoc_feed():
    from repro.core.exps.fig6 import Fig6Params, run_fig6_point, fig6_points

    pt = [p for p in fig6_points(Fig6Params(iterations=5, warmup=1))
          if p.kind == "m3v_local"][0]
    with capture(exclude=("evq_pop",)) as tracer:
        live = SpanCollector().attach(tracer)
        run_fig6_point(pt)
    live.finish()
    replay = SpanCollector().feed(tracer.events).finish()
    assert live.to_json() == replay.to_json()


# -- self-profiler ------------------------------------------------------------

def test_bucket_attribution_by_process_name_prefix():
    p = SelfProfiler()
    assert p.bucket_of("tilemux3") == "tilemux"
    assert p.bucket_of("dtu2-rx") == "dtu"
    assert p.bucket_of("controller") == "controller"
    assert p.bucket_of("m3xmux1") == "m3xmux"
    assert p.bucket_of("linux-proc") == "linux"
    assert p.bucket_of("bench") == "workload"


def test_capture_profile_measures_a_workload():
    from repro.core.exps.fig6 import Fig6Params, run_fig6_point, fig6_points

    pt = [p for p in fig6_points(Fig6Params(iterations=5, warmup=1))
          if p.kind == "m3v_local"][0]
    with capture_profile() as prof:
        run_fig6_point(pt)
    assert prof.events > 0
    assert "tilemux" in prof.buckets and "dtu" in prof.buckets
    assert prof.wall_s > 0 and prof.events_per_sec > 0
    table = prof.table()
    assert "tilemux" in table and "events/s" in table
    # the engine pays the perf_counter pair only while installed
    from repro.sim import engine
    assert engine._default_profiler is None


def test_profile_dict_round_trip_and_merge():
    p = SelfProfiler()
    p.record(None, 0.25)
    p.on_step()
    p.stop()
    d = p.as_dict()
    json.dumps(d)
    merged = SelfProfiler()
    merged.merge(d)
    merged.merge(d)
    assert merged.events == 2
    assert merged.buckets["other"][0] == pytest.approx(0.5)
    assert merged.buckets["other"][1] == 2
