"""Tests for accelerator tiles (M3 semantics, Figure 2 pipelines)."""

import pytest

from repro.api import SystemConfig, build_system
from repro.dtu.dtu import Dtu
from repro.dtu.endpoints import ReceiveEndpoint, SendEndpoint
from repro.tiles.accelerator import EP_IN, StreamAccelerator


def platform_with_accels(n_accels, logics):
    plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=4,
                                     n_mem_tiles=1)).platform
    base = max(plat.tiles) + 1
    accels = []
    for i in range(n_accels):
        tile_id = base + i
        plat.fabric.topology.attach_tile(tile_id, i % 4)
        dtu = Dtu(plat.sim, tile_id, plat.fabric, stats=plat.stats)
        accel = StreamAccelerator(plat.sim, dtu, f"a{i}", logics[i])
        accel.wire_input()
        accels.append(accel)
    return plat, accels


def run_pipeline(logics, inputs):
    """Feed ``inputs`` through a chain of accelerators; return outputs."""
    plat, accels = platform_with_accels(len(logics), logics)
    env, outputs = {}, []

    def sink(api):
        while "rep" not in env:
            yield api.sim.timeout(1_000_000)
        for _ in inputs:
            msg = yield from api.recv(env["rep"])
            outputs.append(msg.data)
            yield from api.ack(env["rep"], msg)

    def source(api):
        while "out" not in env:
            yield api.sim.timeout(1_000_000)
        for data in inputs:
            yield from api.send(env["out"], data, len(data))

    ctrl = plat.controller
    sink_act = plat.run_proc(ctrl.spawn("sink", 1, sink))
    src_act = plat.run_proc(ctrl.spawn("source", 0, source))
    rep = ctrl.alloc_ep(1)
    plat.run_proc(ctrl.config_ep(1, rep, ReceiveEndpoint(
        act=sink_act.act_id, slots=8, slot_size=4096)))
    # chain: source -> a0 -> a1 ... -> sink
    accels[-1].wire_output(1, rep)
    for upstream, downstream in zip(accels, accels[1:]):
        upstream.wire_output(downstream.dtu.tile, EP_IN)
    out = ctrl.alloc_ep(0)
    plat.run_proc(ctrl.config_ep(0, out, SendEndpoint(
        act=src_act.act_id, dst_tile=accels[0].dtu.tile, dst_ep=EP_IN,
        max_msg_size=4096, credits=4, max_credits=4)))
    env.update(rep=rep, out=out)
    plat.sim.run_until_event(sink_act.exit_event, limit=10**14)
    return outputs, accels


def test_single_accelerator_transforms_stream():
    outputs, accels = run_pipeline([bytes.upper], [b"abc", b"def"])
    assert outputs == [b"ABC", b"DEF"]
    assert accels[0].processed == 2


def test_chained_accelerators_compose():
    outputs, _ = run_pipeline([bytes.upper, lambda b: b[::-1]],
                              [b"pipeline"])
    assert outputs == [b"ENILEPIP"]


def test_accelerator_processing_takes_time():
    plat, accels = platform_with_accels(1, [lambda b: b])
    # larger payloads take longer at fixed bytes/ns
    small = accels[0].setup_ns + len(b"x") / accels[0].bytes_per_ns
    big = accels[0].setup_ns + 4096 / accels[0].bytes_per_ns
    assert big > small


def test_accelerator_single_context_enforced():
    plat, accels = platform_with_accels(1, [lambda b: b])
    accels[0].bind_context()
    with pytest.raises(RuntimeError):
        accels[0].bind_context()
