"""Backoff jitter determinism (ISSUE figS satellite).

The recovery layer's retry schedule must be a pure function of the
policy seed and the actor identity: :meth:`RecoveryPolicy.jitter_rng`
seeds ``random.Random`` with a *string* (hashed with SipHash into the
Mersenne state independently of ``PYTHONHASHSEED``), so the backoff
waits — and therefore the whole retransmit timeline — are

* byte-identical across interpreter hash seeds, and
* byte-identical between the serial engine and the 4-way-sharded
  engine (``REPRO_SHARDS=4``), where retries race real traffic.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.faults import RecoveryPolicy

REPO = Path(__file__).resolve().parent.parent

# prints the first 6 backoff waits of 3 distinct jitter streams
JITTER_SNIPPET = """\
from repro.faults import RecoveryPolicy
pol = RecoveryPolicy(seed=7)
for tile, name in ((0, "sep3"), (5, "sep3"), (5, "rep1")):
    rng = pol.jitter_rng(tile, name)
    print(tile, name, [pol.backoff_ps(a, rng) for a in range(1, 7)])
"""

# one lossy figR point end to end; prints the reduced stats dict
FIGR_SNIPPET = """\
from repro.core.exps.figr import FigRPoint, run_figr_point
res = run_figr_point(FigRPoint(system="m3v", rate=0.1, pairs=2,
                               messages=8, fault_seed=3))
print(sorted(res.items()))
"""


def _run(snippet: str, **env_overrides) -> str:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"), **env_overrides)
    out = subprocess.run([sys.executable, "-c", snippet],
                         capture_output=True, text=True, env=env)
    assert out.returncode == 0, out.stderr
    return out.stdout


def test_jitter_stream_is_hash_seed_independent():
    outputs = {_run(JITTER_SNIPPET, PYTHONHASHSEED=seed)
               for seed in ("0", "1", "31337")}
    assert len(outputs) == 1, \
        f"backoff jitter varies with PYTHONHASHSEED: {outputs}"


def test_jitter_streams_are_distinct_per_actor():
    pol = RecoveryPolicy(seed=7)
    streams = [[pol.backoff_ps(a, pol.jitter_rng(tile, name))
                for a in range(1, 7)]
               for tile, name in ((0, "sep3"), (5, "sep3"), (5, "rep1"))]
    assert len({tuple(s) for s in streams}) == 3, streams


def test_jitter_stream_is_reproducible_in_process():
    pol = RecoveryPolicy(seed=9)
    a = [pol.backoff_ps(i, pol.jitter_rng(2, "sep0")) for i in range(1, 9)]
    b = [pol.backoff_ps(i, pol.jitter_rng(2, "sep0")) for i in range(1, 9)]
    assert a == b
    cap = pol.backoff_cap_ps + pol.jitter_ps
    assert all(pol.backoff_base_ps <= w < cap for w in a), a


def test_backoff_timeline_identical_under_hash_seed_and_shards():
    """The full recovery timeline of a lossy workload — retransmit
    counts, goodput, latency percentiles — survives both interpreter
    hash-seed changes and engine sharding bit-for-bit."""
    outputs = {
        _run(FIGR_SNIPPET, PYTHONHASHSEED="0"),
        _run(FIGR_SNIPPET, PYTHONHASHSEED="1"),
        _run(FIGR_SNIPPET, PYTHONHASHSEED="0", REPRO_SHARDS="4",
             REPRO_SHARD_STRICT="1"),
        _run(FIGR_SNIPPET, PYTHONHASHSEED="31337", REPRO_SHARDS="4",
             REPRO_SHARD_STRICT="1"),
    }
    assert len(outputs) == 1, \
        f"recovery timeline diverges across hash seeds/shards: {outputs}"
