"""Tests for the Linux baseline machine."""

import pytest

from repro.linuxsim import LinuxMachine
from repro.linuxsim.machine import LinuxError, O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY


def run(machine, proc, limit=10**13):
    return machine.sim.run_until_event(proc.exit_event, limit=limit)


def test_process_runs_and_exits():
    m = LinuxMachine()
    out = []

    def prog(api):
        yield from api.compute(1000)
        out.append(api.sim.now)

    p = m.spawn("p", prog)
    run(m, p)
    assert out and p.state == "exited"


def test_noop_syscall_costs_about_1800_cycles():
    """Figure 6 anchor: a no-op Linux syscall ~ 1.8k cycles at 80 MHz."""
    m = LinuxMachine()
    out = {}

    def prog(api):
        yield from api.noop_syscall()  # warm
        start = api.sim.now
        for _ in range(10):
            yield from api.noop_syscall()
        out["cy"] = (api.sim.now - start) / 10 / m.clock.period_ps

    run(m, m.spawn("p", prog))
    assert 1500 <= out["cy"] <= 2400


def test_yield_pair_costs_like_m3v_local_rpc():
    """Figure 6: two yields (two context switches) ~ 5k cycles."""
    m = LinuxMachine()
    out = {}

    def ponger(api):
        for _ in range(25):
            yield from api.sched_yield()

    def pinger(api):
        for _ in range(5):
            yield from api.sched_yield()  # warm
        start = api.sim.now
        for _ in range(10):
            yield from api.sched_yield()  # partner yields back: 2 switches
        out["cy"] = (api.sim.now - start) / 10 / m.clock.period_ps

    m.spawn("ponger", ponger)
    p = m.spawn("pinger", pinger)
    run(m, p)
    assert 4000 <= out["cy"] <= 7500


def test_tmpfs_write_read_roundtrip():
    m = LinuxMachine()
    out = {}

    def prog(api):
        fd = yield from api.open("/f", O_WRONLY | O_CREAT)
        yield from api.write(fd, b"linux data" * 50)
        yield from api.close(fd)
        fd = yield from api.open("/f")
        out["data"] = yield from api.read(fd, 10)
        st = yield from api.stat("/f")
        out["size"] = st["size"]

    run(m, m.spawn("p", prog))
    assert out["data"] == b"linux data"
    assert out["size"] == 500


def test_every_read_is_a_syscall():
    """Unlike m3fs extent grants, Linux pays a trap per read (6.3)."""
    m = LinuxMachine()

    def prog(api):
        fd = yield from api.open("/f", O_WRONLY | O_CREAT)
        yield from api.write(fd, b"x" * 16384)
        yield from api.close(fd)
        fd = yield from api.open("/f")
        for _ in range(4):
            yield from api.read(fd, 4096)

    before = m.stats.counter_value("linux/syscalls")
    run(m, m.spawn("p", prog))
    # open+write+close+open+4 reads, each at least one trap
    assert m.stats.counter_value("linux/syscalls") - before >= 8


def test_dirs_and_readdir():
    m = LinuxMachine()
    out = {}

    def prog(api):
        yield from api.mkdir("/d")
        fd = yield from api.open("/d/one", O_CREAT | O_WRONLY)
        yield from api.close(fd)
        out["names"] = yield from api.readdir("/d")
        yield from api.unlink("/d/one")
        out["after"] = yield from api.readdir("/d")

    run(m, m.spawn("p", prog))
    assert out["names"] == ["one"] and out["after"] == []


def test_missing_file_raises():
    m = LinuxMachine()
    out = {}

    def prog(api):
        try:
            yield from api.open("/nope")
        except LinuxError as exc:
            out["err"] = str(exc)

    run(m, m.spawn("p", prog))
    assert "no such file" in out["err"]


def test_getrusage_splits_user_and_system():
    m = LinuxMachine()
    out = {}

    def prog(api):
        yield from api.compute(100_000)  # pure user time
        fd = yield from api.open("/f", O_CREAT | O_WRONLY)
        yield from api.write(fd, b"y" * 8192)
        yield from api.close(fd)
        out["usage"] = api.getrusage()

    run(m, m.spawn("p", prog))
    usage = out["usage"]
    assert usage["user_s"] > 0
    assert usage["sys_s"] > 0
    # 100k user cycles at 80 MHz = 1.25 ms
    assert usage["user_s"] == pytest.approx(100_000 / 80e6, rel=0.05)


def test_udp_echo_roundtrip_linux():
    m = LinuxMachine(with_net=True)
    m.remote.echo_ports.add(7)
    out = {}

    def prog(api):
        sid = yield from api.socket()
        yield from api.bind(sid, 6000)
        start = api.sim.now
        yield from api.sendto(sid, 7, b"p", 1)
        reply = yield from api.recvfrom(sid)
        out["rtt_us"] = (api.sim.now - start) / 1e6
        out["reply"] = reply

    run(m, m.spawn("p", prog))
    assert out["reply"]["data"] == b"p"
    # Figure 8 ballpark: hundreds of microseconds at 80 MHz
    assert 100 <= out["rtt_us"] <= 1500


def test_scheduler_interleaves_two_spinners():
    m = LinuxMachine()
    progress = {"a": 0, "b": 0}

    def spinner(tag):
        def prog(api):
            for _ in range(30):
                yield from api.compute(50_000)
                progress[tag] += 1
        return prog

    m.spawn("a", spinner("a"))
    p = m.spawn("b", spinner("b"))
    m.sim.run(until=25_000_000_000)  # 25 ms: both must have run
    assert progress["a"] > 0 and progress["b"] > 0
    run(m, p)


def test_socket_requires_net():
    m = LinuxMachine()  # no networking
    out = {}

    def prog(api):
        try:
            yield from api.socket()
        except LinuxError as exc:
            out["err"] = str(exc)

    run(m, m.spawn("p", prog))
    assert "without networking" in out["err"]
