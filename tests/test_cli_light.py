"""Cheap CLI entry points: ``repro --version`` and ``repro lint`` must
work without importing the experiment stack (platform, runner, numpy-
heavy report code).  The CI lint gate runs on every push, so its
startup cost is part of the interface."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# module prefixes whose import means the heavy stack was loaded
HEAVY = ("repro.core", "repro.sim", "repro.runner", "repro.dtu",
         "repro.kernel", "repro.obs", "numpy")

_PROBE = """
import sys
import repro.cli
try:
    repro.cli.main({argv!r})
except SystemExit as exc:
    if exc.code not in (0, None):
        raise
heavy = sorted(m for m in sys.modules if m.startswith({heavy!r}))
print("HEAVY:" + ",".join(heavy))
"""


def run_probe(argv):
    return subprocess.run(
        [sys.executable, "-c", _PROBE.format(argv=argv, heavy=HEAVY)],
        capture_output=True, text=True, cwd=str(REPO),
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})


def test_version_is_light():
    result = run_probe(["--version"])
    assert result.returncode == 0, result.stderr
    assert "HEAVY:\n" in result.stdout.replace("\r", "")


def test_lint_help_is_light():
    result = run_probe(["lint", "--help"])
    assert result.returncode == 0, result.stderr
    assert "HEAVY:\n" in result.stdout.replace("\r", "")
    assert "--write-baseline" in result.stdout


def test_lint_run_is_light():
    """A real lint run over one file stays off the experiment stack."""
    result = run_probe(["lint", "--no-baseline",
                        "src/repro/analysis/core.py"])
    assert result.returncode == 0, result.stderr
    assert "HEAVY:\n" in result.stdout.replace("\r", "")


def test_version_matches_package():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--version"],
        capture_output=True, text=True, cwd=str(REPO),
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})
    assert result.returncode == 0
    from repro import __version__
    assert result.stdout.strip() == f"repro {__version__}"


def test_lazy_package_exports_still_resolve():
    """PEP 562 re-exports keep the legacy surface working."""
    import repro
    assert repro.PlatformConfig is not None
    assert callable(repro.M3vPlatform)
    assert "PlatformConfig" in dir(repro)
