"""Unit tests for the m3fs on-disk structures."""

import pytest

from repro.services.fsdata import (
    BLOCK_SIZE,
    BlockAllocator,
    FsError,
    FsImage,
    InodeKind,
)


def test_create_and_lookup():
    fs = FsImage(128)
    fs.create("/a")
    assert fs.lookup("/a").kind is InodeKind.FILE


def test_nested_paths_need_parents():
    fs = FsImage(128)
    with pytest.raises(FsError):
        fs.create("/no/such/dir/file")
    fs.mkdir("/no")
    fs.mkdir("/no/such")
    fs.mkdir("/no/such/dir")
    fs.create("/no/such/dir/file")
    assert fs.lookup("/no/such/dir/file").kind is InodeKind.FILE


def test_duplicate_create_rejected():
    fs = FsImage(128)
    fs.create("/x")
    with pytest.raises(FsError):
        fs.create("/x")


def test_readdir_sorted():
    fs = FsImage(128)
    fs.mkdir("/d")
    for name in ("c", "a", "b"):
        fs.create(f"/d/{name}")
    assert fs.readdir("/d") == ["a", "b", "c"]


def test_readdir_on_file_rejected():
    fs = FsImage(128)
    fs.create("/f")
    with pytest.raises(FsError):
        fs.readdir("/f")


def test_unlink_frees_blocks():
    fs = FsImage(128)
    inode = fs.create("/f")
    fs.append_extent(inode, want_blocks=10, max_blocks=64)
    used = fs.alloc.used_blocks
    assert used == 10
    fs.unlink("/f")
    assert fs.alloc.used_blocks == 0


def test_unlink_nonempty_dir_rejected():
    fs = FsImage(128)
    fs.mkdir("/d")
    fs.create("/d/f")
    with pytest.raises(FsError):
        fs.unlink("/d")
    fs.unlink("/d/f")
    fs.unlink("/d")
    assert not any(name == "d" for name in fs.readdir("/"))


def test_extent_at_walks_extents():
    fs = FsImage(128)
    inode = fs.create("/f")
    e1 = fs.append_extent(inode, 2, 64)
    e2 = fs.append_extent(inode, 3, 64)
    extent, into = inode.extent_at(0)
    assert extent == e1 and into == 0
    extent, into = inode.extent_at(2 * BLOCK_SIZE + 5)
    assert extent == e2 and into == 5
    assert inode.extent_at(5 * BLOCK_SIZE) is None


def test_extent_length_capped():
    fs = FsImage(1024)
    inode = fs.create("/f")
    extent = fs.append_extent(inode, want_blocks=200, max_blocks=64)
    assert extent.blocks == 64


def test_allocator_full_raises():
    alloc = BlockAllocator(4)
    alloc.alloc_extent(4, 64)
    with pytest.raises(FsError):
        alloc.alloc_extent(1, 64)


def test_allocator_returns_shorter_run_when_fragmented():
    alloc = BlockAllocator(8)
    a = alloc.alloc_extent(3, 64)
    b = alloc.alloc_extent(3, 64)
    alloc.free_extent(a)
    # only fragmented space: a 3-run and a 2-run; asking for 5 gets less
    extent = alloc.alloc_extent(5, 64)
    assert extent.blocks in (2, 3)


def test_walk_visits_everything():
    fs = FsImage(128)
    fs.mkdir("/d")
    fs.create("/d/f")
    fs.create("/g")
    paths = {path for path, _ in fs.walk()}
    assert {"/", "/d", "/d/f", "/g"} <= paths


def test_sequential_allocations_are_contiguous():
    """The rotating pointer gives sequential writers long runs."""
    fs = FsImage(256)
    inode = fs.create("/f")
    extents = [fs.append_extent(inode, 16, 64) for _ in range(4)]
    for a, b in zip(extents, extents[1:]):
        assert b.start == a.start + a.blocks
