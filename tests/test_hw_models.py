"""Tests for the Table 1 area model and the SLOC complexity report."""

import pytest

from repro.dtu.params import DtuParams
from repro.hw import (
    PAPER_SLOC,
    complexity_report,
    count_package_sloc,
    estimate_vdtu_area,
    table1,
)


def test_table1_headline_numbers():
    t = table1()
    assert t["BOOM"].kluts == 143.8
    assert t["Rocket"].kluts == 46.6
    assert t["vDTU"].kluts == 15.2
    assert t["vDTU"].brams == 0.5


def test_vdtu_children_sum_to_vdtu():
    t = table1()
    assert t.check_additivity("vDTU")


def test_cmd_ctrl_is_unpriv_plus_priv():
    t = table1()
    assert t.check_additivity("CMD CTRL")
    assert t.check_additivity("Control Unit")


def test_vdtu_fraction_of_cores_matches_paper():
    """Section 6.1: 10.6% of BOOM, 32.6% of Rocket."""
    t = table1()
    assert t.vdtu_fraction_of("BOOM") == pytest.approx(0.106, abs=0.002)
    assert t.vdtu_fraction_of("Rocket") == pytest.approx(0.326, abs=0.002)


def test_virtualization_costs_about_six_percent():
    """Section 6.1: the privileged interface grows the DTU logic ~6%."""
    t = table1()
    assert t.virtualization_overhead() == pytest.approx(0.063, abs=0.01)


def test_dtu_variants_shrink():
    t = table1()
    plain = t.dtu_area()
    memory = t.dtu_area(memory_tile=True)
    assert memory < plain < t["vDTU"].kluts


def test_brams_negligible_vs_cores():
    """The vDTU holds no memories: BRAMs are negligible next to cores."""
    t = table1()
    assert t["vDTU"].brams / t["Rocket"].brams < 0.01


def test_table_rows_are_indented_hierarchy():
    rows = table1().table_rows()
    names = [r["component"] for r in rows]
    assert "vDTU" in names
    assert any(n.startswith("    ") for n in names)  # nested sub-components


def test_estimator_reproduces_measured_config():
    assert estimate_vdtu_area(DtuParams()) == pytest.approx(15.2, abs=0.01)


def test_estimator_scales_with_endpoints():
    small = estimate_vdtu_area(DtuParams(num_endpoints=32))
    big = estimate_vdtu_area(DtuParams(num_endpoints=256))
    assert small < 15.2 < big


def test_estimator_scales_with_tlb():
    assert estimate_vdtu_area(DtuParams(tlb_entries=8)) \
        < estimate_vdtu_area(DtuParams(tlb_entries=64))


def test_sloc_counter_counts_this_repo():
    kernel = count_package_sloc("repro.kernel")
    mux = count_package_sloc("repro.mux")
    assert kernel > 500
    assert mux > 300


def test_complexity_report_has_both_ratios():
    report = complexity_report()
    assert report["controller"]["paper_sloc"] == 11_500
    assert report["tilemux"]["paper_sloc"] == 1_700
    ratio = report["tilemux_to_controller_ratio"]
    # the tile-local multiplexer is a small fraction of the controller
    assert ratio["paper"] < 0.25
    assert 0 < ratio["ours"] < 1.5


def test_paper_sloc_constants():
    assert PAPER_SLOC["nova"]["sloc"] == 9_000
