"""Unit tests for DES channels."""

import pytest

from repro.sim import Channel, ChannelClosed, Simulator


def test_put_then_get_fifo_order():
    sim = Simulator()
    ch = Channel(sim)
    got = []

    def producer():
        for i in range(4):
            yield ch.put(i)
            yield sim.timeout(1)

    def consumer():
        for _ in range(4):
            got.append((yield ch.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3]


def test_get_blocks_until_put():
    sim = Simulator()
    ch = Channel(sim)
    got = []

    def consumer():
        got.append(((yield ch.get()), sim.now))

    def producer():
        yield sim.timeout(25)
        yield ch.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("late", 25)]


def test_bounded_put_blocks_until_space():
    sim = Simulator()
    ch = Channel(sim, capacity=1)
    log = []

    def producer():
        yield ch.put("a")
        log.append(("put a", sim.now))
        yield ch.put("b")
        log.append(("put b", sim.now))

    def consumer():
        yield sim.timeout(10)
        item = yield ch.get()
        log.append((f"got {item}", sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put a", 0) in log
    assert ("put b", 10) in log  # unblocked only after the get


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, capacity=0)


def test_try_put_respects_capacity():
    sim = Simulator()
    ch = Channel(sim, capacity=2)
    assert ch.try_put(1)
    assert ch.try_put(2)
    assert not ch.try_put(3)
    assert len(ch) == 2


def test_try_get_nonblocking():
    sim = Simulator()
    ch = Channel(sim)
    ok, item = ch.try_get()
    assert not ok
    ch.try_put("x")
    ok, item = ch.try_get()
    assert ok and item == "x"


def test_handoff_to_waiting_getter_bypasses_queue():
    sim = Simulator()
    ch = Channel(sim, capacity=1)
    got = []

    def consumer():
        got.append((yield ch.get()))

    def producer():
        yield sim.timeout(1)
        assert ch.try_put("direct")
        assert len(ch) == 0  # went straight to the getter

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == ["direct"]


def test_close_fails_pending_getters():
    sim = Simulator()
    ch = Channel(sim, name="q")
    outcome = []

    def consumer():
        try:
            yield ch.get()
        except ChannelClosed:
            outcome.append("closed")

    def closer():
        yield sim.timeout(5)
        ch.close()

    sim.process(consumer())
    sim.process(closer())
    sim.run()
    assert outcome == ["closed"]


def test_put_after_close_fails():
    sim = Simulator()
    ch = Channel(sim)
    ch.close()
    outcome = []

    def producer():
        try:
            yield ch.put(1)
        except ChannelClosed:
            outcome.append("refused")

    sim.process(producer())
    sim.run()
    assert outcome == ["refused"]


def test_try_put_after_close_raises():
    sim = Simulator()
    ch = Channel(sim)
    ch.close()
    with pytest.raises(ChannelClosed):
        ch.try_put(1)


def test_many_producers_single_consumer():
    sim = Simulator()
    ch = Channel(sim, capacity=4)
    got = []

    def producer(tag):
        for i in range(5):
            yield ch.put((tag, i))

    def consumer():
        for _ in range(15):
            got.append((yield ch.get()))
            yield sim.timeout(1)

    for tag in "abc":
        sim.process(producer(tag))
    sim.process(consumer())
    sim.run()
    assert len(got) == 15
    # per-producer order is preserved
    for tag in "abc":
        seq = [i for (t, i) in got if t == tag]
        assert seq == sorted(seq)
