"""Serial/parallel parity: the runner's core correctness contract.

For fig6 and fig8 (the golden-trace workloads of PR 1), the parallel
runner at ``jobs>=2`` must produce

* the exact same reduced figure structures as the serial
  ``run_fig6``/``run_fig8`` entry points, and
* identical canonical golden-trace digests *per point*
  (:mod:`repro.testing.golden`) — i.e. every simulated event is
  byte-identical whether the point ran in this process or a worker.
"""

import os

import pytest

from repro.core.exps.fig6 import Fig6Params, run_fig6
from repro.core.exps.fig8 import Fig8Params, run_fig8
from repro.runner import Runner, get_sweep, make_specs

JOBS = max(2, int(os.environ.get("REPRO_JOBS", "2")))

# miniature workloads (the golden-trace sizes, so runs stay fast)
SMALL = {
    "fig6": (Fig6Params(iterations=10, warmup=2), run_fig6),
    "fig8": (Fig8Params(repetitions=5, warmup=1), run_fig8),
}


def _serial_and_parallel(name):
    params, serial_fn = SMALL[name]
    specs = make_specs(name, params)
    serial = Runner(jobs=1, trace=True)
    serial_out = serial.run_points(specs)
    parallel = Runner(jobs=JOBS, trace=True)
    parallel_out = parallel.run_points(specs)
    return params, serial_fn, serial_out, parallel_out


@pytest.mark.parametrize("name", ["fig6", "fig8"])
def test_parallel_reduction_equals_serial_run(name):
    params, serial_fn, _, parallel_out = _serial_and_parallel(name)
    reduced = get_sweep(name).reduce(params,
                                     [o.value for o in parallel_out])
    assert reduced == serial_fn(params)


@pytest.mark.parametrize("name", ["fig6", "fig8"])
def test_per_point_values_and_golden_digests_match(name):
    _, _, serial_out, parallel_out = _serial_and_parallel(name)
    assert len(serial_out) == len(parallel_out)
    for ser, par in zip(serial_out, parallel_out):
        assert ser.spec == par.spec
        assert ser.value == par.value
        # full golden digest: event counts per kind AND the sha256 of
        # the canonical JSON — any divergence in any event fails here
        assert ser.trace_digest is not None
        assert ser.trace_digest["sha256"] == par.trace_digest["sha256"]
        assert ser.trace_digest == par.trace_digest


def test_parallel_run_counts_points_as_simulated():
    runner = Runner(jobs=JOBS)
    result = runner.run_sweep("fig6", SMALL["fig6"][0])
    assert runner.simulated == 4 and runner.served == 0
    assert set(result) == {"linux_yield_2x", "linux_syscall",
                           "m3v_local", "m3v_remote"}
