"""Differential testing: calendar queue vs the reference heap scheduler.

The calendar event queue replaced the global heap as the default
scheduler for throughput; its contract is *exact* behavioral equality —
same pop order (FIFO within a timestamp), same process interleaving,
same traces.  These tests drive hypothesis-generated schedules through
both ``Simulator(scheduler="calendar")`` and ``scheduler="heap"`` and
assert the observable histories are identical, covering the cases where
a bucketed queue could plausibly diverge from a ``(time, seq)`` heap:

* many events colliding on one timestamp (FIFO tie-order),
* events succeeded/failed with and without delay, defused failures,
* processes interrupted mid-wait (their pending resume is retracted),
* reschedules: new events created for times already drained past,
  equal to ``now``, and far in the future,
* ``run(until=...)`` stopping between buckets.
"""

from inspect import getgeneratorstate

from hypothesis import given, settings, strategies as st

from repro.sim import Channel, Interrupt, Simulator
from repro.sim.channel import ChannelClosed
from repro.sim.trace import capture
from repro.testing.golden import canonical_json

SCHEDULERS = ("calendar", "heap")


# -- schedule scripts ---------------------------------------------------------
#
# A script is data, interpreted identically on every simulator: a list
# of per-process action lists.  Actions reference shared events and
# channels by index, so the generated program is scheduler-agnostic.

_ACTION = st.one_of(
    st.tuples(st.just("delay"), st.integers(0, 3)),         # int fast path
    st.tuples(st.just("timeout"), st.integers(0, 5)),       # Timeout event
    st.tuples(st.just("wait"), st.integers(0, 3)),          # shared event
    st.tuples(st.just("fire"), st.integers(0, 3),           # succeed(delay=d)
              st.integers(0, 4)),
    st.tuples(st.just("fail"), st.integers(0, 3),           # fail + defuse
              st.integers(0, 2)),
    st.tuples(st.just("put"), st.integers(0, 1)),           # channel put
    st.tuples(st.just("get"), st.integers(0, 1)),           # channel get
    st.tuples(st.just("interrupt"), st.integers(0, 5)),     # poke a process
)

_SCRIPT = st.lists(st.lists(_ACTION, min_size=1, max_size=8),
                   min_size=2, max_size=6)


def _run_script(script, scheduler):
    """Interpret ``script``; return the observable history."""
    sim = Simulator(scheduler=scheduler)
    events = [sim.event() for _ in range(4)]
    chans = [Channel(sim, name=f"ch{i}") for i in range(2)]
    history = []
    procs = []

    def runner(pid, actions):
        for step, action in enumerate(actions):
            op = action[0]
            try:
                if op == "delay":
                    yield action[1]
                elif op == "timeout":
                    yield sim.timeout(action[1], value=("t", pid, step))
                elif op == "wait":
                    ev = events[action[1]]
                    if not ev.processed:
                        value = yield ev
                        history.append((sim.now, pid, step, "woke", value))
                elif op == "fire":
                    ev = events[action[1]]
                    if not ev.triggered:
                        ev.succeed(("v", pid, step), delay=action[2])
                elif op == "fail":
                    ev = events[action[1]]
                    if not ev.triggered:
                        ev.fail(RuntimeError(f"boom{pid}.{step}"),
                                delay=action[2])
                        ev.defuse()
                elif op == "put":
                    yield chans[action[1]].put((pid, step))
                elif op == "get":
                    got = chans[action[1]].try_get()
                    history.append((sim.now, pid, step, "got", got))
                elif op == "interrupt":
                    target = procs[action[1] % len(procs)]
                    # unstarted generators cannot absorb a throw; both
                    # schedulers would crash identically, which proves
                    # nothing — restrict to started, parked processes
                    if (target.is_alive and target is not sim._active_process
                            and getgeneratorstate(target.gen) != "GEN_CREATED"):
                        target.interrupt((pid, step))
            except Interrupt as intr:
                history.append((sim.now, pid, step, "intr", intr.cause))
            except ChannelClosed:
                history.append((sim.now, pid, step, "closed"))
            except RuntimeError as exc:
                history.append((sim.now, pid, step, "err", str(exc)))
            history.append((sim.now, pid, step, op))

    for pid, actions in enumerate(script):
        procs.append(sim.process(runner(pid, actions), name=f"p{pid}"))
    # an interrupted process abandons its pending event; if that event
    # carried a failure it pops unabsorbed and stops the run — on both
    # schedulers, at the same point, which is exactly what we compare
    try:
        sim.run(until=200)
    except Exception as exc:
        # type only: messages can embed repr() addresses
        history.append(("run-error", type(exc).__name__))
    # wind down: release anything parked on a never-fired event/channel
    for ev in events:
        if not ev.triggered:
            ev.succeed(("flush",))
    for ch in chans:
        ch.close()
    try:
        sim.run(until=400)
    except Exception as exc:
        history.append(("tail-error", type(exc).__name__))
    return history, sim.now


@given(script=_SCRIPT)
@settings(max_examples=120, deadline=None)
def test_calendar_and_heap_pop_identical_histories(script):
    baseline = _run_script(script, "heap")
    assert _run_script(script, "calendar") == baseline


@given(script=_SCRIPT)
@settings(max_examples=30, deadline=None)
def test_calendar_and_heap_produce_identical_traces(script):
    blobs = []
    for scheduler in SCHEDULERS:
        with capture() as tracer:
            _run_script(script, scheduler)
        blobs.append(canonical_json(tracer))
    assert blobs[0] == blobs[1]


@given(delays=st.lists(st.integers(0, 2), min_size=5, max_size=40))
@settings(max_examples=60, deadline=None)
def test_same_timestamp_ties_pop_fifo(delays):
    """Heavy collisions: every pop order must match the reference."""
    orders = []
    for scheduler in SCHEDULERS:
        sim = Simulator(scheduler=scheduler)
        order = []
        for i, d in enumerate(delays):
            sim.event().succeed(i, delay=d).callbacks.append(
                lambda ev: order.append((sim.now, ev.value)))
        sim.run()
        orders.append(order)
    assert orders[0] == orders[1]
    # and within each timestamp, creation order is preserved
    by_time = {}
    for when, idx in orders[0]:
        by_time.setdefault(when, []).append(idx)
    for when, idxs in by_time.items():
        assert idxs == sorted(idxs), f"tie order broken at t={when}"


@given(until=st.integers(0, 30),
       delays=st.lists(st.integers(0, 25), min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_run_until_stops_identically(until, delays):
    results = []
    for scheduler in SCHEDULERS:
        sim = Simulator(scheduler=scheduler)
        seen = []
        for i, d in enumerate(delays):
            sim.event().succeed(i, delay=d).callbacks.append(
                lambda ev: seen.append((sim.now, ev.value)))
        sim.run(until=until)
        results.append((seen, sim.now, sim.peek))
    assert results[0] == results[1]
