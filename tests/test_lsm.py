"""Tests for the LevelDB-like LSM store (run over the Linux baseline,
which is the fastest host for exercising the store's file traffic)."""

import pytest

from repro.apps.lsm import LsmStore
from repro.linuxsim import LinuxMachine
from repro.posix.vfs import LinuxVfs


def run_store(body, **store_kw):
    machine = LinuxMachine()
    out = {}

    def prog(api):
        store = LsmStore(LinuxVfs(api), api.compute, **store_kw)
        yield from store.open()
        yield from body(store, out)
        yield from store.close()
        out["store"] = store

    proc = machine.spawn("db", prog)
    machine.sim.run_until_event(proc.exit_event, limit=10**16)
    return out


def test_put_get_roundtrip():
    def body(store, out):
        yield from store.put("k1", b"v1")
        out["v"] = yield from store.get("k1")

    assert run_store(body)["v"] == b"v1"


def test_get_missing_returns_none():
    def body(store, out):
        out["v"] = yield from store.get("nope")

    assert run_store(body)["v"] is None


def test_overwrite_returns_latest():
    def body(store, out):
        yield from store.put("k", b"old")
        yield from store.put("k", b"new")
        out["v"] = yield from store.get("k")

    assert run_store(body)["v"] == b"new"


def test_flush_moves_data_to_sstable_and_get_still_works():
    def body(store, out):
        for i in range(60):  # 60 x ~300B blows the 16 KiB memtable
            yield from store.put(f"key{i:03d}", bytes(300))
        out["flushes"] = store.stats["flushes"]
        out["v"] = yield from store.get("key007")
        out["tables"] = len(store.tables)

    out = run_store(body)
    assert out["flushes"] >= 1
    assert out["v"] == bytes(300)
    assert out["tables"] >= 1


def test_model_equivalence_across_flushes():
    """The store must agree with a plain dict across flush/compaction."""
    import random
    rng = random.Random(11)
    keys = [f"k{i:02d}" for i in range(30)]
    ops = [(rng.choice(keys), bytes([rng.randrange(256)]) * rng.randrange(200, 900))
           for _ in range(400)]

    def body(store, out):
        model = {}
        for key, value in ops:
            yield from store.put(key, value)
            model[key] = value
        for key in keys:
            got = yield from store.get(key)
            assert got == model.get(key), key
        out["compactions"] = store.stats["compactions"]

    out = run_store(body)
    assert out["compactions"] >= 1  # enough churn to trigger a compaction


def test_delete_hides_key_even_after_flush():
    def body(store, out):
        yield from store.put("gone", b"x")
        for i in range(60):
            yield from store.put(f"fill{i}", bytes(300))
        yield from store.delete("gone")
        for i in range(60):
            yield from store.put(f"more{i}", bytes(300))
        out["v"] = yield from store.get("gone")

    assert run_store(body)["v"] is None


def test_scan_returns_sorted_range():
    def body(store, out):
        for i in range(40):
            yield from store.put(f"k{i:03d}", f"v{i}".encode())
        out["scan"] = yield from store.scan("k010", 5)

    scan = run_store(body)["scan"]
    assert [k for k, _ in scan] == [f"k{i:03d}" for i in range(10, 15)]
    assert scan[0][1] == b"v10"


def test_scan_merges_memtable_and_tables():
    def body(store, out):
        for i in range(60):  # forces a flush
            yield from store.put(f"k{i:03d}", bytes(300))
        yield from store.put("k000", b"fresh")  # newer value in memtable
        out["scan"] = yield from store.scan("k000", 2)

    scan = run_store(body)["scan"]
    assert scan[0] == ("k000", b"fresh")


def test_compaction_reduces_table_count():
    def body(store, out):
        for batch in range(6):
            for i in range(60):
                yield from store.put(f"b{batch}k{i:03d}", bytes(300))
        out["tables"] = len(store.tables)
        out["compactions"] = store.stats["compactions"]

    out = run_store(body)
    assert out["compactions"] >= 1
    assert out["tables"] < 6


def test_wal_written_on_every_put():
    machine = LinuxMachine()
    out = {}

    def prog(api):
        store = LsmStore(LinuxVfs(api), api.compute)
        yield from store.open()
        before = machine.fs.size("/db/wal") if machine.fs.exists("/db/wal") else 0
        yield from store.put("k", b"payload")
        out["wal"] = machine.fs.size("/db/wal")

    proc = machine.spawn("db", prog)
    machine.sim.run_until_event(proc.exit_event, limit=10**15)
    assert out["wal"] > len(b"payload")
