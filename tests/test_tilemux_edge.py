"""Edge-case tests for TileMux scheduling and the vDTU interplay."""

import pytest

from repro.api import SystemConfig, build_system
from repro.kernel.activity import ActState


def platform(**kw):
    kw.setdefault("n_proc_tiles", 4)
    kw.setdefault("n_mem_tiles", 1)
    return build_system(SystemConfig(kind="m3v"), **kw).platform


def rendezvous(api, env, *keys):
    while any(k not in env for k in keys):
        yield api.sim.timeout(1_000_000)


def test_three_activities_round_robin_on_one_tile():
    plat = platform(timeslice_us=50.0)
    order = []

    def spinner(tag):
        def prog(api):
            for _ in range(6):
                yield from api.compute(5_000)
                order.append(tag)
        return prog

    ctrl = plat.controller
    acts = [plat.run_proc(ctrl.spawn(t, 0, spinner(t))) for t in "abc"]
    for act in acts:
        plat.sim.run_until_event(act.exit_event, limit=10**13)
    # all three made progress interleaved, not strictly sequential
    first_third = order[:6]
    assert len(set(first_third)) >= 2


def test_blocked_activity_wakes_only_on_its_message():
    plat = platform()
    env, log = {}, []

    def waiter(api):
        yield from rendezvous(api, env, "w_rep")
        msg = yield from api.recv(env["w_rep"])
        log.append(("woke", msg.data))

    def other(api):
        yield from rendezvous(api, env, "o_rep")
        msg = yield from api.recv(env["o_rep"])
        log.append(("other", msg.data))

    def sender(api):
        yield from rendezvous(api, env, "to_o", "to_w")
        yield from api.send(env["to_o"], "for-other", 16)
        yield from api.compute(50_000)
        yield from api.send(env["to_w"], "for-waiter", 16)

    ctrl = plat.controller
    w = plat.run_proc(ctrl.spawn("waiter", 2, waiter))
    o = plat.run_proc(ctrl.spawn("other", 2, other))
    s = plat.run_proc(ctrl.spawn("sender", 0, sender))
    to_w, w_rep, _ = plat.run_proc(ctrl.wire_channel(s, w))
    to_o, o_rep, _ = plat.run_proc(ctrl.wire_channel(s, o))
    env.update(w_rep=w_rep, o_rep=o_rep, to_w=to_w, to_o=to_o)
    plat.sim.run_until_event(w.exit_event, limit=10**13)
    plat.sim.run_until_event(o.exit_event, limit=10**13)
    assert ("other", "for-other") in log
    assert ("woke", "for-waiter") in log


def test_exit_during_contention_cleans_up():
    plat = platform()

    def short(api):
        yield from api.compute(1_000)
        yield from api.exit(0)

    def long(api):
        yield from api.compute(500_000)

    ctrl = plat.controller
    a = plat.run_proc(ctrl.spawn("short", 3, short))
    b = plat.run_proc(ctrl.spawn("long", 3, long))
    plat.sim.run_until_event(a.exit_event, limit=10**13)
    plat.sim.run_until_event(b.exit_event, limit=10**13)
    assert plat.mux(3).resident == 0
    # the TLB holds no entries of exited activities
    assert plat.vdtu(3).tlb.invalidate(a.act_id) == 0


def test_tilemux_idle_time_accumulates():
    plat = platform()

    def brief(api):
        yield from api.compute(100)

    act = plat.run_proc(plat.controller.spawn("brief", 0, brief))
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    plat.sim.run(until=plat.sim.now + 5_000_000_000)  # 5 ms of nothing
    # waking TileMux (a new activity arrives) closes the idle interval
    act2 = plat.run_proc(plat.controller.spawn("brief2", 0, brief))
    plat.sim.run_until_event(act2.exit_event, limit=10**13)
    assert plat.mux(0).idle_ps > 4_000_000_000


def test_user_time_accounting_tracks_compute():
    plat = platform()

    def worker(api):
        yield from api.compute(800_000)  # 10 ms at 80 MHz

    act = plat.run_proc(plat.controller.spawn("worker", 0, worker))
    plat.sim.run_until_event(act.exit_event, limit=10**13)
    assert act.user_ps == pytest.approx(10_000_000_000, rel=0.1)


def test_lost_wakeup_counter_exists():
    """The section 3.7 re-check is wired (hard to race deterministically,
    so we only assert the machinery is reachable and zero-initialised)."""
    plat = platform()
    assert plat.stats.counter_value("tilemux/lost_wakeups_averted") == 0
