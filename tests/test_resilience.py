"""Fault injection and recovery (ISSUE: robustness tentpole).

Four layers:

* a hypothesis property: under seeded packet loss/corruption the
  recovery layer still delivers every logical message **exactly once,
  in order**, with the PR-1 invariant suite checking conservation
  online;
* fault-rate zero is the plain model — applying a rate-0 plan leaves
  the execution trace byte-identical, and the rate-0 figR point carries
  zero recovery/fault counters;
* each injector (lossy links, transient EP faults, stuck tiles) against
  a live workload, plus the degraded-mode path: watchdog barks reach
  the controller and repeated fault reports quarantine a tile;
* figR smoke points for both systems at a non-zero rate.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SystemConfig, build_system
from repro.core.exps.figr import FigRPoint, run_figr_point
from repro.faults import (
    HwFaultPlan,
    LossyLinks,
    RecoveryPolicy,
    StuckTile,
    TransientEpFaults,
    enable_recovery,
)
from repro.sim.trace import Tracer, capture
from repro.testing.golden import canonical_json
from repro.testing.invariants import InvariantSuite

LIMIT = 10**13


def rendezvous(api, env, *keys):
    while any(k not in env for k in keys):
        yield api.sim.timeout(1_000_000)


def _echo(plat, n_msgs, rtts):
    """Round-trip echo: client calls 0..n-1, collects RTTs."""
    env = {}

    def server(api):
        yield from rendezvous(api, env, "s_rep")
        for _ in range(n_msgs):
            msg = yield from api.recv(env["s_rep"])
            yield from api.reply(env["s_rep"], msg, msg.data, 32)

    def client(api):
        yield from rendezvous(api, env, "c_sep")
        for i in range(n_msgs):
            t0 = api.sim.now
            value = yield from api.call(env["c_sep"], env["c_rep"], i, 32)
            assert value == i
            rtts.append(api.sim.now - t0)

    ctrl = plat.controller
    srv = plat.run_proc(ctrl.spawn("server", 0, server))
    cli = plat.run_proc(ctrl.spawn("client", 1, client))
    sep, rep, rpl = plat.run_proc(ctrl.wire_channel(cli, srv, credits=2))
    env.update(s_rep=rep, c_sep=sep, c_rep=rpl)
    return cli


# -- at-most-once, in-order delivery under seeded loss ------------------------

@given(rate=st.sampled_from([0.05, 0.1, 0.2]),
       fault_seed=st.integers(0, 10**6))
@settings(max_examples=8, deadline=None)
def test_lossy_delivery_is_exactly_once_in_order(rate, fault_seed):
    plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=2)).platform
    tracer = Tracer(record=False).attach(plat.sim)
    suite = InvariantSuite().attach(tracer)
    enable_recovery(plat, RecoveryPolicy(max_retries=16, seed=fault_seed))
    HwFaultPlan.lossy(f"prop:{fault_seed}", rate).apply(plat)

    n_msgs = 12
    env, received = {}, []

    def server(api):
        yield from rendezvous(api, env, "rep")
        for _ in range(n_msgs):
            msg = yield from api.recv(env["rep"])
            received.append(msg.data)
            yield from api.ack(env["rep"], msg)

    def client(api):
        yield from rendezvous(api, env, "sep")
        for i in range(n_msgs):
            yield from api.send(env["sep"], i, 32)

    ctrl = plat.controller
    srv = plat.run_proc(ctrl.spawn("server", 0, server))
    cli = plat.run_proc(ctrl.spawn("client", 1, client))
    sep, rep, _ = plat.run_proc(ctrl.wire_channel(cli, srv, credits=2))
    env.update(rep=rep, sep=sep)

    plat.sim.run_until_event(srv.exit_event, limit=LIMIT)
    suite.finish()
    # no loss, no duplication, no reordering — despite dropped packets
    assert received == list(range(n_msgs))


def test_lossy_injector_requires_recovery():
    plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=2)).platform
    with pytest.raises(RuntimeError, match="enable_recovery"):
        HwFaultPlan.lossy("nope", 0.1).apply(plat)


# -- fault rate 0 is byte-identical to the plain model ------------------------

def _echo_trace(with_plan: bool):
    with capture(exclude=("evq_pop",)) as tracer:
        plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=2)).platform
        if with_plan:
            HwFaultPlan.lossy("zero", 0.0).apply(plat)
        rtts = []
        cli = _echo(plat, 5, rtts)
        plat.sim.run_until_event(cli.exit_event, limit=LIMIT)
    assert len(rtts) == 5
    return tracer


def test_rate_zero_plan_leaves_trace_byte_identical():
    plain = _echo_trace(with_plan=False)
    planned = _echo_trace(with_plan=True)
    assert canonical_json(plain) == canonical_json(planned)


def test_figr_rate_zero_has_no_recovery_activity():
    value = run_figr_point(FigRPoint("m3v", 0.0, pairs=1, messages=8))
    assert value["round_trips"] == 8
    for counter in ("retransmits", "timeouts", "dedups", "dropped",
                    "corrupted", "failures"):
        assert value[counter] == 0, counter


# -- the individual injectors against a live workload -------------------------

def test_ep_faults_are_ridden_out_by_retries():
    plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=2)).platform
    enable_recovery(plat, RecoveryPolicy(seed=3))
    plan = HwFaultPlan(seed=3)
    plan.add(TransientEpFaults(mean_gap_ps=40_000_000,
                               window_ps=10_000_000))
    plan.apply(plat)
    rtts = []
    cli = _echo(plat, 10, rtts)
    plat.sim.run_until_event(cli.exit_event, limit=LIMIT)
    assert len(rtts) == 10
    assert plat.stats.counter_value("faults/ep_faults") > 0
    assert plat.stats.counter_value("recovery/retransmits") > 0


def test_stuck_tile_episodes_are_survived():
    plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=2)).platform
    enable_recovery(plat, RecoveryPolicy(seed=5))
    plan = HwFaultPlan(seed=5)
    plan.add(StuckTile(mean_gap_ps=150_000_000, stall_ps=40_000_000))
    plan.apply(plat)
    rtts = []
    cli = _echo(plat, 10, rtts)
    plat.sim.run_until_event(cli.exit_event, limit=LIMIT)
    assert len(rtts) == 10
    assert plat.stats.counter_value("faults/stuck_episodes") > 0


def test_corruption_is_detected_and_retransmitted():
    plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=2)).platform
    enable_recovery(plat, RecoveryPolicy(max_retries=16, seed=11))
    plan = HwFaultPlan(seed=11)
    plan.add(LossyLinks(drop=0.0, corrupt=0.2))
    plan.apply(plat)
    rtts = []
    cli = _echo(plat, 12, rtts)
    plat.sim.run_until_event(cli.exit_event, limit=LIMIT)
    assert len(rtts) == 12
    assert plat.stats.counter_value("faults/pkts_corrupted") > 0
    assert plat.stats.counter_value("recovery/retransmits") > 0


# -- degraded mode: watchdog and quarantine -----------------------------------

def test_watchdog_reports_a_spinning_activity():
    plat = build_system(SystemConfig(kind="m3v", timeslice_us=20.0,
                                     n_proc_tiles=2)).platform
    enable_recovery(plat, RecoveryPolicy(watchdog_slices=4))

    def spinner(api):
        # a wedged poll loop: burns whole timeslices without ever
        # trapping to TileMux (no TmCall = no forward progress)
        for _ in range(100):
            yield api.sim.timeout(5_000_000)

    ctrl = plat.controller
    a = plat.run_proc(ctrl.spawn("spin-a", 0, spinner))
    b = plat.run_proc(ctrl.spawn("spin-b", 0, spinner))  # forces preemption
    plat.sim.run_until_event(a.exit_event, limit=LIMIT)
    plat.sim.run_until_event(b.exit_event, limit=LIMIT)
    plat.sim.run(until=plat.sim.now + 10_000_000)  # drain the notify
    assert plat.stats.counter_value("tilemux/watchdog_barks") > 0
    assert plat.stats.counter_value("ctrl/fault_reports") > 0


def test_repeated_faults_quarantine_a_tile_and_steer_spawns():
    plat = build_system(SystemConfig(kind="m3v", n_proc_tiles=3)).platform
    enable_recovery(plat, RecoveryPolicy(quarantine_faults=3))
    ctrl = plat.controller
    for _ in range(3):
        ctrl.report_tile_fault(0, "test")
    assert 0 in ctrl.quarantined
    assert plat.stats.counter_value("ctrl/quarantines") == 1
    assert ctrl.place_tile(0) != 0          # new placements steered away
    assert ctrl.place_tile(1) == 1          # healthy tiles unaffected

    def prog(api):
        yield from api.compute(100)

    act = plat.run_proc(ctrl.spawn("migrant", 0, prog))
    plat.sim.run_until_event(act.exit_event, limit=LIMIT)
    assert act.tile_id != 0
    assert plat.stats.counter_value("ctrl/migrated_spawns") >= 1
    # repeated reports don't quarantine twice
    ctrl.report_tile_fault(0, "test")
    assert plat.stats.counter_value("ctrl/quarantines") == 1


# -- figR smoke ---------------------------------------------------------------

@pytest.mark.parametrize("system", ["m3v", "m3x"])
def test_figr_point_completes_under_faults(system):
    value = run_figr_point(FigRPoint(system, 0.1, pairs=1, messages=8))
    assert value["round_trips"] == 8
    assert value["failures"] == 0
    assert value["goodput_rps"] > 0
    assert value["dropped"] + value["corrupted"] > 0
