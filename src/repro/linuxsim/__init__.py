"""The Linux baseline (section 6: "Linux 5.11").

The paper runs Linux bare-metal on a *single* tile of the FPGA
prototype (tiles are not cache coherent, so Linux cannot use more).
This package models that machine: a monolithic kernel where every
file/socket operation is a system call with trap overhead and an
i-cache refill penalty, tmpfs as the in-memory file system, an
in-kernel UDP stack driving the same NIC/wire models as M3v, a
round-robin scheduler with ``yield``, and getrusage-style user/system
time accounting.
"""

from repro.linuxsim.machine import LinuxApi, LinuxMachine, LinuxProcess
from repro.linuxsim.tmpfs import TmpFs

__all__ = ["LinuxMachine", "LinuxProcess", "LinuxApi", "TmpFs"]
