"""The single-tile Linux machine model.

Execution model mirrors the M3v tile executor: processes are
generators that yield simulation events (compute) or :class:`Sys`
markers (system calls).  The kernel charges every syscall its trap
overhead plus an i-cache refill penalty scaled to the subsystem it
touches — the cost structure the paper holds responsible for Linux's
behaviour in Figures 6, 7, 8 and 10.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, List, Optional

from repro.linuxsim.tmpfs import TmpFs, TmpFsError
from repro.sim import Simulator
from repro.sim.engine import Event
from repro.sim.stats import StatRegistry
from repro.tiles.costs import LinuxCosts
from repro.tiles.nic import EthFrame, EthernetWire, NicDevice, RemoteHost

_pids = itertools.count(1)

O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 64
O_TRUNC = 512

# syscall work costs beyond trap + refill (cycles)
FS_OP_CY = 700           # VFS path walk, fd table
FS_ALLOC_PAGE_CY = 1700  # tmpfs page allocation, zeroing, accounting
NET_OP_CY = 1200         # socket layer
NET_STACK_CY = 10000     # UDP/IP + skb + driver per packet
SCHED_TICK_MS = 10


class LinuxError(Exception):
    pass


@dataclass
class Sys:
    """A system-call marker yielded by process generators."""

    op: str
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass
class LinuxProcess:
    name: str
    pid: int = field(default_factory=lambda: next(_pids))
    gen: Optional[Generator] = None
    state: str = "ready"       # ready | running | blocked | exited
    user_ps: int = 0
    sys_ps: int = 0
    exit_event: Any = None
    exit_code: int = 0
    _resume_value: Any = None


@dataclass
class _LinuxSocket:
    sid: int
    owner: int
    port: int = 0
    rx: List[EthFrame] = field(default_factory=list)
    waiter: Optional[LinuxProcess] = None


class LinuxApi:
    """What a Linux process sees (the libc, essentially)."""

    COMPUTE_CHUNK_CYCLES = 100_000

    def __init__(self, machine: "LinuxMachine", proc: LinuxProcess):
        self.machine = machine
        self.proc = proc
        self.sim = machine.sim
        self.clock = machine.costs.clock

    def compute(self, cycles: int) -> Generator:
        remaining = int(cycles)
        while remaining > 0:
            chunk = min(remaining, self.COMPUTE_CHUNK_CYCLES)
            yield self.clock.cycles_to_ps(chunk)
            remaining -= chunk

    def compute_us(self, us: float) -> Generator:
        yield from self.compute(round(self.clock.us_to_cycles(us)))

    # every libc wrapper is one Sys yield; the kernel returns the result
    def syscall(self, op: str, **args) -> Generator:
        result = yield Sys(op, args)
        if isinstance(result, LinuxError):
            raise result
        return result

    def noop_syscall(self):
        return self.syscall("noop")

    def open(self, path, flags=O_RDONLY):
        return self.syscall("open", path=path, flags=flags)

    def read(self, fd, n):
        return self.syscall("read", fd=fd, n=n)

    def write(self, fd, data):
        return self.syscall("write", fd=fd, data=data)

    def close(self, fd):
        return self.syscall("close", fd=fd)

    def lseek(self, fd, pos):
        return self.syscall("lseek", fd=fd, pos=pos)

    def stat(self, path):
        return self.syscall("stat", path=path)

    def mkdir(self, path):
        return self.syscall("mkdir", path=path)

    def readdir(self, path):
        return self.syscall("readdir", path=path)

    def unlink(self, path):
        return self.syscall("unlink", path=path)

    def socket(self):
        return self.syscall("socket")

    def bind(self, sid, port=0):
        return self.syscall("bind", sid=sid, port=port)

    def sendto(self, sid, dst_port, data, size):
        return self.syscall("sendto", sid=sid, dst_port=dst_port,
                            data=data, size=size)

    def recvfrom(self, sid) -> Generator:
        """Blocking receive: the kernel parks us until a frame arrives,
        then the wakeup re-enters the syscall to copy the data out."""
        while True:
            result = yield from self.syscall("recvfrom", sid=sid)
            if result is not None:
                return result

    def sched_yield(self):
        return self.syscall("yield")

    def getrusage(self) -> Dict[str, float]:
        """User/system time in seconds, like getrusage(2)."""
        return {"user_s": self.proc.user_ps / 1e12,
                "sys_s": self.proc.sys_ps / 1e12}

    def exit(self, code: int = 0):
        return self.syscall("exit", code=code)


class LinuxMachine:
    """One 80 MHz core running the whole stack."""

    def __init__(self, sim: Optional[Simulator] = None,
                 costs: Optional[LinuxCosts] = None,
                 stats: Optional[StatRegistry] = None,
                 with_net: bool = False, wire_latency_us: float = 2.0,
                 remote_proc_us: float = 25.0):
        self.sim = sim or Simulator()
        self.costs = costs or LinuxCosts()
        self.clock = self.costs.clock
        self.stats = stats or StatRegistry()
        self.fs = TmpFs()
        self.procs: Dict[int, LinuxProcess] = {}
        self.run_queue: Deque[LinuxProcess] = deque()
        self.current: Optional[LinuxProcess] = None
        self._fds: Dict[int, tuple] = {}  # fd -> (path, pos, flags)
        self._next_fd = 3
        self.socks: Dict[int, _LinuxSocket] = {}
        self._by_port: Dict[int, _LinuxSocket] = {}
        self._next_sid = 1
        self._next_port = 41000
        self._wake: Event = self.sim.event()
        self.timeslice_ps = SCHED_TICK_MS * 1_000_000_000

        self.wire = self.remote = self.nic = None
        if with_net:
            self.wire = EthernetWire(self.sim, latency_us=wire_latency_us)
            self.remote = RemoteHost(self.sim, self.wire,
                                     proc_us=remote_proc_us)
            self.nic = NicDevice(self.sim, self.wire)
            self.nic.attach_driver(self._nic_irq)

        self._proc = self.sim.process(self._main_loop(), name="linux")

    # ------------------------------------------------------------- spawning

    def spawn(self, name: str, program) -> LinuxProcess:
        proc = LinuxProcess(name=name)
        proc.exit_event = self.sim.event()
        api = LinuxApi(self, proc)
        proc.gen = program(api)
        self.procs[proc.pid] = proc
        self.run_queue.append(proc)
        self._kick()
        return proc

    def _kick(self) -> None:
        if not self._wake.triggered:
            self._wake.succeed()

    def _nic_irq(self) -> None:
        # bottom half: deliver frames to sockets, wake sleepers
        while self.nic.has_rx:
            frame = self.nic.pop_rx()
            sock = self._by_port.get(frame.dst_port)
            if sock is None:
                continue
            sock.rx.append(frame)
            if sock.waiter is not None and sock.waiter.state == "blocked":
                sock.waiter.state = "ready"
                self.run_queue.append(sock.waiter)
                sock.waiter = None
        self._kick()

    def _charge_sys(self, proc: LinuxProcess, cycles: int) -> Generator:
        ps = self.clock.cycles_to_ps(cycles)
        proc.sys_ps += ps
        self.stats.counter("linux/syscalls").add()
        yield ps

    # ------------------------------------------------------------- main loop

    def _main_loop(self) -> Generator:
        while True:
            if not self.run_queue:
                if self._wake.triggered:
                    self._wake = self.sim.event()
                yield self._wake
                continue
            proc = self.run_queue.popleft()
            yield from self._dispatch(proc)

    def _dispatch(self, proc: LinuxProcess) -> Generator:
        if self.current is not proc and self.current is not None:
            pass  # context-switch cost charged at the switch point below
        self.current = proc
        proc.state = "running"
        slice_end = self.sim.now + self.timeslice_ps
        inject = proc._resume_value
        proc._resume_value = None
        user_start = self.sim.now

        def account_user():
            nonlocal user_start
            proc.user_ps += self.sim.now - user_start
            user_start = self.sim.now

        while True:
            if self.sim.now >= slice_end and self.run_queue:
                account_user()
                yield from self._charge_sys(proc, self.costs.sched_pick
                                            + self.costs.ctx_switch)
                proc.state = "ready"
                proc._resume_value = inject
                self.run_queue.append(proc)
                break
            try:
                item = proc.gen.send(inject)
            except StopIteration:
                account_user()
                self._exit(proc, 0)
                break
            inject = None
            if type(item) is int or isinstance(item, Event):
                # ints are the engine's timeout fast path; forward as-is
                inject = yield item
            elif isinstance(item, Sys):
                account_user()
                inject, keep = yield from self._syscall(proc, item)
                user_start = self.sim.now
                if not keep:
                    break
            elif item is None:
                pass
            else:
                raise RuntimeError(f"process {proc.name} yielded {item!r}")
        account_user()
        self.current = None

    def _exit(self, proc: LinuxProcess, code: int) -> None:
        proc.state = "exited"
        proc.exit_code = code
        self.procs.pop(proc.pid, None)
        if proc.exit_event and not proc.exit_event.triggered:
            proc.exit_event.succeed(code)

    # -------------------------------------------------------------- syscalls

    def _syscall(self, proc: LinuxProcess, call: Sys) -> Generator:
        """Returns (resume_value, keep_running)."""
        op, args = call.op, call.args
        c = self.costs
        refill = c.icache_refill_noop
        if op in ("open", "read", "write", "close", "lseek", "stat",
                  "mkdir", "readdir", "unlink"):
            refill = c.icache_refill_fs
        elif op in ("socket", "bind", "sendto", "recvfrom"):
            refill = c.icache_refill_net
        elif op == "yield":
            refill = 300  # the scheduler path stays hot in the i-cache
        yield from self._charge_sys(proc, c.syscall_overhead(refill))
        try:
            handler = getattr(self, f"_sys_{op}")
            return (yield from handler(proc, args))
        except (TmpFsError, LinuxError) as exc:
            return LinuxError(str(exc)), True

    def _sys_noop(self, proc, args) -> Generator:
        return None, True
        yield  # pragma: no cover

    def _sys_exit(self, proc, args) -> Generator:
        self._exit(proc, args.get("code", 0))
        return None, False
        yield  # pragma: no cover

    def _sys_yield(self, proc, args) -> Generator:
        yield from self._charge_sys(proc, self.costs.sched_pick
                                    + self.costs.ctx_switch)
        proc.state = "ready"
        self.run_queue.append(proc)
        return None, False

    # -- files ------------------------------------------------------------

    def _sys_open(self, proc, args) -> Generator:
        yield from self._charge_sys(proc, FS_OP_CY)
        path, flags = args["path"], args.get("flags", O_RDONLY)
        if not self.fs.exists(path):
            if not flags & O_CREAT:
                raise TmpFsError(f"{path}: no such file")
            self.fs.create(path)
        elif flags & O_TRUNC:
            self.fs.truncate(path)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = [path, 0, flags]
        return fd, True

    def _fd(self, fd: int):
        entry = self._fds.get(fd)
        if entry is None:
            raise LinuxError(f"bad fd {fd}")
        return entry

    def _sys_read(self, proc, args) -> Generator:
        entry = self._fd(args["fd"])
        data = self.fs.read(entry[0], entry[1], args["n"])
        # copy_to_user
        yield from self._charge_sys(proc, FS_OP_CY + len(data)
                                    // self.costs.copy_bytes_per_cycle)
        entry[1] += len(data)
        return data, True

    def _sys_write(self, proc, args) -> Generator:
        entry = self._fd(args["fd"])
        data = args["data"]
        new_pages = self.fs.write(entry[0], entry[1], data)
        yield from self._charge_sys(
            proc, FS_OP_CY + len(data) // self.costs.copy_bytes_per_cycle
            + new_pages * FS_ALLOC_PAGE_CY)
        entry[1] += len(data)
        return len(data), True

    def _sys_lseek(self, proc, args) -> Generator:
        entry = self._fd(args["fd"])
        entry[1] = args["pos"]
        return args["pos"], True
        yield  # pragma: no cover

    def _sys_close(self, proc, args) -> Generator:
        self._fds.pop(args["fd"], None)
        return None, True
        yield  # pragma: no cover

    def _sys_stat(self, proc, args) -> Generator:
        yield from self._charge_sys(proc, FS_OP_CY)
        path = args["path"]
        if not self.fs.exists(path):
            raise TmpFsError(f"{path}: no such file")
        return {"size": self.fs.size(path),
                "kind": "dir" if self.fs.is_dir(path) else "file"}, True

    def _sys_mkdir(self, proc, args) -> Generator:
        yield from self._charge_sys(proc, FS_OP_CY)
        self.fs.mkdir(args["path"])
        return None, True

    def _sys_readdir(self, proc, args) -> Generator:
        names = self.fs.listdir(args["path"])
        yield from self._charge_sys(proc, FS_OP_CY + 80 * max(1, len(names)))
        return names, True

    def _sys_unlink(self, proc, args) -> Generator:
        yield from self._charge_sys(proc, FS_OP_CY)
        self.fs.unlink(args["path"])
        return None, True

    # -- sockets -----------------------------------------------------------

    def _require_net(self) -> None:
        if self.nic is None:
            raise LinuxError("machine built without networking")

    def _sys_socket(self, proc, args) -> Generator:
        self._require_net()
        yield from self._charge_sys(proc, NET_OP_CY)
        sock = _LinuxSocket(self._next_sid, owner=proc.pid)
        self._next_sid += 1
        self.socks[sock.sid] = sock
        return sock.sid, True

    def _socket(self, args) -> _LinuxSocket:
        sock = self.socks.get(args["sid"])
        if sock is None:
            raise LinuxError(f"bad socket {args.get('sid')}")
        return sock

    def _sys_bind(self, proc, args) -> Generator:
        yield from self._charge_sys(proc, NET_OP_CY)
        sock = self._socket(args)
        port = args.get("port") or self._next_port
        self._next_port += 1
        if port in self._by_port:
            raise LinuxError(f"port {port} in use")
        sock.port = port
        self._by_port[port] = sock
        return port, True

    def _sys_sendto(self, proc, args) -> Generator:
        self._require_net()
        sock = self._socket(args)
        size = args["size"]
        yield from self._charge_sys(
            proc, NET_STACK_CY + size // self.costs.copy_bytes_per_cycle)
        self.nic.transmit(EthFrame(payload=args.get("data"), size=size,
                                   src_port=sock.port,
                                   dst_port=args["dst_port"]))
        return size, True

    def _sys_recvfrom(self, proc, args) -> Generator:
        sock = self._socket(args)
        if not sock.rx:
            yield from self._charge_sys(proc, NET_OP_CY
                                        + self.costs.ctx_switch)
            sock.waiter = proc
            proc.state = "blocked"
            return None, False
        frame = sock.rx.pop(0)
        yield from self._charge_sys(
            proc, NET_STACK_CY + frame.size // self.costs.copy_bytes_per_cycle)
        return {"data": frame.payload, "size": frame.size,
                "from_port": frame.src_port}, True
