"""tmpfs: the in-memory file system of the Linux baseline.

Page-granular backing like the real tmpfs: writes allocate and zero
pages before copying, which is the "allocate, clear, append" cost the
paper points at for the write/read asymmetry (section 6.3).
"""

from __future__ import annotations

from typing import Dict, List

PAGE = 4096


class TmpFsError(Exception):
    pass


class TmpFs:
    """A minimal but real tmpfs: hierarchical namespace + page store."""

    def __init__(self):
        self._files: Dict[str, bytearray] = {}
        self._dirs = {"/"}
        self.pages_allocated = 0

    @staticmethod
    def _norm(path: str) -> str:
        parts = [p for p in path.split("/") if p]
        return "/" + "/".join(parts)

    def _parent(self, path: str) -> str:
        return self._norm(path.rsplit("/", 1)[0] or "/")

    def exists(self, path: str) -> bool:
        path = self._norm(path)
        return path in self._files or path in self._dirs

    def is_dir(self, path: str) -> bool:
        return self._norm(path) in self._dirs

    def create(self, path: str) -> None:
        path = self._norm(path)
        if path in self._files or path in self._dirs:
            raise TmpFsError(f"{path}: exists")
        if self._parent(path) not in self._dirs:
            raise TmpFsError(f"{path}: no such directory")
        self._files[path] = bytearray()

    def mkdir(self, path: str) -> None:
        path = self._norm(path)
        if self.exists(path):
            raise TmpFsError(f"{path}: exists")
        if self._parent(path) not in self._dirs:
            raise TmpFsError(f"{path}: no such directory")
        self._dirs.add(path)

    def unlink(self, path: str) -> None:
        path = self._norm(path)
        if path in self._files:
            data = self._files.pop(path)
            self.pages_allocated -= (len(data) + PAGE - 1) // PAGE
            return
        if path in self._dirs:
            if any(p.startswith(path + "/") for p in
                   list(self._files) + list(self._dirs - {path})):
                raise TmpFsError(f"{path}: not empty")
            self._dirs.discard(path)
            return
        raise TmpFsError(f"{path}: no such file")

    def listdir(self, path: str) -> List[str]:
        path = self._norm(path)
        if path not in self._dirs:
            raise TmpFsError(f"{path}: not a directory")
        prefix = path.rstrip("/") + "/"
        names = set()
        for p in list(self._files) + list(self._dirs):
            if p != path and p.startswith(prefix):
                names.add(p[len(prefix):].split("/")[0])
        return sorted(names)

    def size(self, path: str) -> int:
        path = self._norm(path)
        if path in self._dirs:
            return 0
        data = self._files.get(path)
        if data is None:
            raise TmpFsError(f"{path}: no such file")
        return len(data)

    def truncate(self, path: str) -> None:
        path = self._norm(path)
        if path not in self._files:
            raise TmpFsError(f"{path}: no such file")
        self._files[path] = bytearray()

    def read(self, path: str, offset: int, n: int) -> bytes:
        data = self._files.get(self._norm(path))
        if data is None:
            raise TmpFsError(f"{path}: no such file")
        return bytes(data[offset:offset + n])

    def write(self, path: str, offset: int, chunk: bytes) -> int:
        """Write; returns the number of *new* pages allocated (to cost)."""
        path = self._norm(path)
        data = self._files.get(path)
        if data is None:
            raise TmpFsError(f"{path}: no such file")
        old_pages = (len(data) + PAGE - 1) // PAGE
        end = offset + len(chunk)
        if end > len(data):
            data.extend(b"\x00" * (end - len(data)))
        data[offset:end] = chunk
        new_pages = (len(data) + PAGE - 1) // PAGE
        self.pages_allocated += new_pages - old_pages
        return new_pages - old_pages
