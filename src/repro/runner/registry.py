"""The sweep registry: a figure as data.

A :class:`Sweep` declares an experiment as a list of points plus a
reducer: ``points(params)`` expands sweep-level parameters into frozen
per-point configs, ``point_fn(config)`` simulates exactly one point
(pure, picklable — it builds its own platforms), and
``reduce(params, values)`` assembles the figure's result structure from
the point values *in points order*.  The scheduler
(:mod:`repro.runner.scheduler`) only ever sees this interface, so
fanning a figure out over worker processes cannot change its results.

``fingerprint_paths`` lists the source files whose contents are hashed
into every cache key of the sweep (:mod:`repro.runner.cache`); by
default the experiment module itself plus the cost calibration
(``repro/tiles/costs.py``) — the two inputs that determine simulated
numbers for a fixed config.  Editing either re-simulates the sweep's
points; unrelated sweeps keep their cache entries.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Sweep", "get_sweep", "register", "sweep_names", "unregister"]


@dataclass(frozen=True)
class Sweep:
    name: str
    points: Callable[[Any], List[Any]]
    point_fn: Callable[[Any], Any]
    reduce: Callable[[Any, List[Any]], Any]
    params_cls: Optional[type] = None
    fingerprint_paths: Tuple[str, ...] = field(default_factory=tuple)


SWEEPS: Dict[str, Sweep] = {}
_BUILTIN_LOADED = False


def register(sweep: Sweep, replace: bool = False) -> Sweep:
    if sweep.name in SWEEPS and not replace:
        raise ValueError(f"sweep {sweep.name!r} already registered")
    SWEEPS[sweep.name] = sweep
    return sweep


def unregister(name: str) -> None:
    SWEEPS.pop(name, None)


def default_fingerprint_paths(point_fn: Callable) -> Tuple[str, ...]:
    """The experiment module defining ``point_fn`` + the cost model."""
    from repro.tiles import costs

    return (inspect.getsourcefile(point_fn), costs.__file__)


def get_sweep(name: str) -> Sweep:
    _load_builtin()
    try:
        return SWEEPS[name]
    except KeyError:
        raise KeyError(f"unknown sweep {name!r}; known: "
                       f"{', '.join(sorted(SWEEPS))}") from None


def sweep_names() -> List[str]:
    _load_builtin()
    return sorted(SWEEPS)


def _load_builtin() -> None:
    """Register the paper's figures on first use (import-cycle safe)."""
    global _BUILTIN_LOADED
    if _BUILTIN_LOADED:
        return
    _BUILTIN_LOADED = True
    from repro.core import exps

    builtin = [
        ("fig6", exps.Fig6Params, exps.fig6_points, exps.run_fig6_point,
         exps.reduce_fig6),
        ("fig7", exps.Fig7Params, exps.fig7_points, exps.run_fig7_point,
         exps.reduce_fig7),
        ("fig8", exps.Fig8Params, exps.fig8_points, exps.run_fig8_point,
         exps.reduce_fig8),
        ("fig9", exps.Fig9Params, exps.fig9_points, exps.run_fig9_point,
         exps.reduce_fig9),
        ("fig10", exps.Fig10Params, exps.fig10_points, exps.run_fig10_point,
         exps.reduce_fig10),
        ("voice", exps.VoiceParams, exps.voice_points, exps.run_voice_point,
         exps.reduce_voice),
        ("figR", exps.FigRParams, exps.figr_points, exps.run_figr_point,
         exps.reduce_figr),
        ("figS", exps.FigSParams, exps.figs_points, exps.run_figs_point,
         exps.reduce_figs),
    ]
    for name, params_cls, points, point_fn, reduce in builtin:
        if name in SWEEPS:       # a test replaced it before first load
            continue
        paths = default_fingerprint_paths(point_fn)
        if name == "figR":
            # figR numbers also depend on the injectors + recovery layer
            from repro import faults
            from repro.mux import recovery

            paths = paths + (faults.__file__, recovery.__file__)
        elif name == "figS":
            # figS additionally depends on the serving stack, the
            # open-loop workload, the MPMC channel backend, the
            # scheduling/placement layer behind the adaptive arms, and
            # (like figR) the fault/recovery layer it runs under
            from repro import faults
            from repro.kernel import rebalance
            from repro.mux import mpmc, recovery
            from repro.mux import sched as mux_sched
            from repro.services import serving as serving_stack
            from repro.workloads import serving as serving_wl

            paths = paths + (faults.__file__, recovery.__file__,
                             serving_stack.__file__, serving_wl.__file__,
                             mpmc.__file__, mux_sched.__file__,
                             rebalance.__file__)
        register(Sweep(name=name, points=points, point_fn=point_fn,
                       reduce=reduce, params_cls=params_cls,
                       fingerprint_paths=paths))
