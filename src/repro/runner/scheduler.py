"""The process-pool scheduler.

:class:`Runner` fans point specs out over ``jobs`` worker processes
(``concurrent.futures.ProcessPoolExecutor``) and collects results *in
submission order*, so the values handed to a sweep's reducer are
positionally identical to what the serial path produces.  Three
properties make parallel == serial exact:

* point functions are pure — each builds its own platforms, and trace
  canonicalization (:mod:`repro.testing.golden`) renumbers the
  process-global counters, so a point behaves identically in a fresh
  worker and mid-way through a serial run;
* every point's RNG is seeded from ``(sweep, index)`` before it runs
  (:func:`repro.runner.points.point_seed`), never from inherited
  process state, so worker assignment and completion order are
  invisible;
* results are placed by the position their spec was submitted at, not
  by completion order.

With a :class:`~repro.runner.cache.ResultCache` attached, points whose
key already has an entry are served without simulating; the rest run
and are written back.  ``trace=True`` additionally captures each
point's canonical trace digest (the golden-trace machinery), which the
parity tests compare between serial and parallel executions.
"""

from __future__ import annotations

import random
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.report import progress_line
from repro.runner import registry
from repro.runner.cache import ResultCache, cache_key, canonical_value, \
    file_fingerprint
from repro.runner.points import PointSpec, make_specs

__all__ = ["PointOutcome", "Runner", "run_point"]


@dataclass
class PointOutcome:
    """One executed (or cache-served) point, in submission order.

    ``error`` is None for a successful point; for a point that raised
    (twice — every failure is retried once with its original seed) it
    holds the formatted exception, ``value`` is None, and nothing was
    cached, so a later run re-attempts exactly that point."""

    spec: PointSpec
    value: Any
    cached: bool
    elapsed_s: float
    key: Optional[str] = None
    trace_digest: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    metrics: Optional[Dict[str, Any]] = None
    profile: Optional[Dict[str, Any]] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def run_point(spec: PointSpec, with_trace: bool = False,
              with_metrics: bool = False, with_profile: bool = False
              ) -> Tuple[Any, Optional[Dict[str, Any]], float,
                         Optional[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """Execute one point: seed its RNG, simulate, optionally observe.

    Returns ``(value, trace_digest, wall_seconds, metrics, profile)``;
    the last three are None unless the matching flag is set.  This is
    the single execution path for both the serial (``jobs=1``) and the
    pooled case — workers call it via :func:`_pool_run`; metrics and
    profile snapshots cross the pool as their JSON-safe dict forms.
    """
    sweep = registry.get_sweep(spec.sweep)
    random.seed(spec.seed)
    metrics_reg = profiler = None
    start = time.perf_counter()
    with ExitStack() as stack:
        if with_metrics:
            from repro.obs import capture_metrics

            metrics_reg = stack.enter_context(capture_metrics())
        if with_profile:
            from repro.obs import capture_profile

            profiler = stack.enter_context(capture_profile())
        if with_trace:
            from repro.sim.trace import capture
            from repro.testing.golden import digest

            with capture(exclude=("evq_pop",)) as tracer:
                value = sweep.point_fn(spec.config)
            trace_digest = digest(tracer)
        else:
            value = sweep.point_fn(spec.config)
            trace_digest = None
    elapsed = time.perf_counter() - start
    return (value, trace_digest, elapsed,
            metrics_reg.as_dict() if metrics_reg is not None else None,
            profiler.stop().as_dict() if profiler is not None else None)


def _pool_run(args: Tuple[PointSpec, bool, bool, bool]):
    spec, with_trace, with_metrics, with_profile = args
    return run_point(spec, with_trace, with_metrics, with_profile)


class Runner:
    """Schedules point specs over a process pool, with caching.

    ``jobs=1`` runs everything in-process (the serial path).  Counters:
    ``simulated`` points actually executed, ``served`` points answered
    from cache, ``failed`` points that raised twice (their outcomes
    carry ``error`` and are listed in ``failures``);
    ``cache_hits``/``cache_misses`` mirror the attached cache's
    counters.  A failing point never aborts the sweep: its siblings
    run (and cache) normally and the reducer sees ``None`` in its
    position.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 trace: bool = False, progress: bool = False,
                 stream=None, metrics: bool = False, profile: bool = False):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.trace = trace
        self.metrics = metrics
        self.profile = profile
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        self.simulated = 0
        self.served = 0
        self.failed = 0
        self.failures: List[PointOutcome] = []
        self.last_outcomes: List[PointOutcome] = []
        self.all_outcomes: List[PointOutcome] = []
        self._fingerprints: Dict[str, str] = {}

    # -- cache plumbing -------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    @property
    def total_points(self) -> int:
        return self.simulated + self.served

    def _fingerprint(self, sweep_name: str) -> str:
        fp = self._fingerprints.get(sweep_name)
        if fp is None:
            sweep = registry.get_sweep(sweep_name)
            fp = file_fingerprint(sweep.fingerprint_paths)
            self._fingerprints[sweep_name] = fp
        return fp

    # -- execution ------------------------------------------------------------

    def run_sweep(self, name: str, params: Optional[Any] = None) -> Any:
        """Run a whole sweep and return its reduced figure structure."""
        sweep = registry.get_sweep(name)
        outcomes = self.run_points(make_specs(name, params))
        return sweep.reduce(params, [o.value for o in outcomes])

    def run_points(self, specs: Sequence[PointSpec]) -> List[PointOutcome]:
        """Execute ``specs``; outcomes are ordered like ``specs``."""
        outcomes: List[Optional[PointOutcome]] = [None] * len(specs)
        pending: List[Tuple[int, PointSpec, Optional[str]]] = []

        for pos, spec in enumerate(specs):
            key = None
            if self.cache is not None:
                key = cache_key(spec, self._fingerprint(spec.sweep),
                                trace=self.trace)
                entry = self.cache.get(key)
                if entry is not None:
                    metrics = None
                    if self.metrics:
                        metrics = self.cache.get_artifact(key, "metrics")
                        if metrics is None:
                            # hit without its metrics sidecar: re-simulate
                            # so the caller gets the artifact it asked for
                            self.cache.hits -= 1
                            self.cache.misses += 1
                            pending.append((pos, spec, key))
                            continue
                    outcomes[pos] = PointOutcome(
                        spec, entry["value"], True, 0.0, key,
                        entry.get("trace_digest"), metrics=metrics)
                    self.served += 1
                    continue
            pending.append((pos, spec, key))

        started = time.perf_counter()
        done = 0

        def finish(pos: int, spec: PointSpec, key: Optional[str],
                   value: Any, trace_digest, elapsed: float,
                   metrics=None, profile=None) -> None:
            nonlocal done
            outcomes[pos] = PointOutcome(spec, value, False, elapsed, key,
                                         trace_digest, metrics=metrics,
                                         profile=profile)
            self.simulated += 1
            done += 1
            if self.cache is not None and key is not None:
                entry = {"sweep": spec.sweep, "index": spec.index,
                         "seed": spec.seed,
                         "config": canonical_value(spec.config),
                         "value": value, "elapsed_s": elapsed}
                if trace_digest is not None:
                    entry["trace_digest"] = trace_digest
                self.cache.put(key, entry)
                if metrics is not None:
                    self.cache.put_artifact(key, "metrics", metrics)
            if self.progress:
                wall = time.perf_counter() - started
                remaining = len(pending) - done
                rate = wall / done
                eta = rate * remaining / min(self.jobs, max(1, remaining))
                print(progress_line(spec.sweep, done, len(pending),
                                    len(specs) - len(pending), wall, eta),
                      file=self.stream, flush=True)

        def fail(pos: int, spec: PointSpec, key: Optional[str],
                 exc: BaseException) -> None:
            nonlocal done
            error = f"{type(exc).__name__}: {exc}"
            outcome = PointOutcome(spec, None, False, 0.0, key, None,
                                   error=error)
            outcomes[pos] = outcome
            self.failed += 1
            self.failures.append(outcome)
            done += 1
            print(f"warning: point {spec.sweep}[{spec.index}] failed after "
                  f"retry: {error}", file=self.stream, flush=True)

        def retry_then_fail(pos: int, spec: PointSpec,
                            key: Optional[str]) -> None:
            """One in-process retry with the point's original seed
            (deterministic: a genuine crash crashes again; a killed
            worker or transient host issue gets a second chance)."""
            try:
                result = run_point(spec, self.trace, self.metrics,
                                   self.profile)
            except Exception as exc:
                fail(pos, spec, key, exc)
            else:
                finish(pos, spec, key, *result)

        if pending and self.jobs == 1:
            for pos, spec, key in pending:
                try:
                    result = run_point(spec, self.trace, self.metrics,
                                       self.profile)
                except Exception:
                    retry_then_fail(pos, spec, key)
                else:
                    finish(pos, spec, key, *result)
        elif pending:
            # futures that raise — a crashing point, or every sibling of
            # a worker the OS killed (BrokenProcessPool) — are retried
            # in-process after the pool winds down
            to_retry: List[Tuple[int, PointSpec, Optional[str]]] = []
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {
                    pool.submit(_pool_run,
                                (spec, self.trace, self.metrics,
                                 self.profile)): (pos, spec, key)
                    for pos, spec, key in pending}
                for future in as_completed(futures):
                    pos, spec, key = futures[future]
                    try:
                        result = future.result()
                    except Exception:
                        to_retry.append((pos, spec, key))
                    else:
                        finish(pos, spec, key, *result)
            for pos, spec, key in to_retry:
                retry_then_fail(pos, spec, key)

        self.last_outcomes = outcomes  # type: ignore[assignment]
        self.all_outcomes.extend(outcomes)  # type: ignore[arg-type]
        return outcomes  # type: ignore[return-value]
