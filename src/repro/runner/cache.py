"""Content-addressed on-disk result cache.

A point's cache key is the SHA-256 of a canonical-JSON document
covering everything that determines its result:

* the sweep name and the per-point seed,
* the point config, canonicalized (dict order never matters, integral
  floats collapse to ints, tuples to lists — so a config that
  round-trips through JSON or ``dataclasses.asdict`` keys identically),
* a *code fingerprint*: the hash of the sweep's fingerprint source
  files (by default the experiment module and ``tiles/costs.py``),
* whether the point ran under trace capture (traced and untraced
  results live in separate namespaces).

Entries are JSON files under ``.repro-cache/<k[:2]>/<key>.json``,
written atomically so concurrent workers never serve torn entries.
Because keys are content-addressed there is no invalidation protocol:
editing a fingerprint file simply makes affected points miss, while
every other sweep's entries keep hitting.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "cache_key",
    "canonical_json",
    "canonical_value",
    "file_fingerprint",
]

CACHE_VERSION = 1
DEFAULT_CACHE_DIR = ".repro-cache"


def canonical_value(obj: Any) -> Any:
    """JSON-safe canonical form: equal configs => equal documents.

    bools stay bools (``True`` is not ``1``); integral floats collapse
    to ints (``1.0`` keys like ``1``); tuples/lists both become lists;
    sets are sorted; dataclasses become plain field dicts; dict keys
    are stringified (ordering is handled by ``sort_keys`` at dump
    time).
    """
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, float):
        if math.isfinite(obj) and obj.is_integer():
            return int(obj)
        return obj
    if isinstance(obj, int):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: canonical_value(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): canonical_value(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        return [canonical_value(v) for v in sorted(obj)]
    if isinstance(obj, (list, tuple)):
        return [canonical_value(v) for v in obj]
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for a "
                    f"cache key: {obj!r}")


def canonical_json(obj: Any) -> str:
    return json.dumps(canonical_value(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def file_fingerprint(paths: Iterable[str]) -> str:
    """SHA-256 over the names and contents of ``paths`` (in order)."""
    h = hashlib.sha256()
    for path in paths:
        p = Path(path)
        h.update(p.name.encode())
        h.update(b"\0")
        h.update(p.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def cache_key(spec, code_fingerprint: str, trace: bool = False) -> str:
    """The content address of one point's result."""
    payload = {
        "version": CACHE_VERSION,
        "sweep": spec.sweep,
        "seed": spec.seed,
        "config": canonical_value(spec.config),
        "code": code_fingerprint,
        "trace": bool(trace),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


class ResultCache:
    """Keyed JSON entries on disk, with hit/miss counters.

    ``refresh=True`` makes every lookup miss (forcing re-simulation)
    while still writing fresh entries — the ``--refresh-cache`` flag.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 refresh: bool = False):
        self.root = Path(root)
        self.refresh = refresh
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry for ``key``, or None (a miss).

        A missing file is a plain miss.  A file that exists but cannot
        be parsed — truncated by a crash or a full disk, garbled by
        manual editing — is *also* a miss, with a warning on stderr: the
        point silently re-simulates instead of aborting the sweep, and
        the eventual ``put`` overwrites the bad entry.  An entry missing
        the ``value`` field counts as corrupt too (schema guard)."""
        if not self.refresh:
            path = self._path(key)
            try:
                with open(path) as fh:
                    entry = json.load(fh)
            except FileNotFoundError:
                pass
            except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
                self.corrupt += 1
                print(f"warning: unreadable cache entry {path}: {exc}; "
                      f"re-simulating", file=sys.stderr)
            else:
                if isinstance(entry, dict) and "value" in entry:
                    self.hits += 1
                    return entry
                self.corrupt += 1
                print(f"warning: malformed cache entry {path} (no 'value' "
                      f"field); re-simulating", file=sys.stderr)
        self.misses += 1
        return None

    def put(self, key: str, entry: Dict[str, Any]) -> Path:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w") as fh:
            json.dump(entry, fh, sort_keys=True)
            fh.write("\n")
        tmp.replace(path)       # atomic: readers see whole entries only
        return path

    # -- sidecar artifacts -----------------------------------------------------
    #
    # Larger per-point payloads (metrics snapshots) live next to the
    # result entry as `<key>.<name>.json`.  They share the entry's
    # content address, so invalidation stays free; a hit whose needed
    # artifact is missing is treated as a miss by the runner.

    def artifact_path(self, key: str, name: str) -> Path:
        return self.root / key[:2] / f"{key}.{name}.json"

    def get_artifact(self, key: str, name: str) -> Optional[Any]:
        """The ``name`` sidecar for ``key``, or None (missing/unreadable)."""
        if self.refresh:
            return None
        try:
            with open(self.artifact_path(key, name)) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    def put_artifact(self, key: str, name: str, obj: Any) -> Path:
        path = self.artifact_path(key, name)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w") as fh:
            json.dump(obj, fh, sort_keys=True)
            fh.write("\n")
        tmp.replace(path)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultCache({self.root}, hits={self.hits}, "
                f"misses={self.misses})")
