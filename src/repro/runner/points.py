"""Point specs: the unit of work the scheduler fans out.

A :class:`PointSpec` names one point of one sweep: the sweep, the
point's position within it, its frozen config, and a deterministic
per-point RNG seed.  The seed is derived from ``(sweep name, index)``
— *not* from process-global RNG state — so a point produces the same
result no matter which worker runs it or in what order points are
submitted.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.runner.registry import get_sweep

__all__ = ["PointSpec", "make_specs", "point_seed"]


@dataclass(frozen=True)
class PointSpec:
    sweep: str
    index: int
    config: Any
    seed: int


def point_seed(sweep: str, index: int) -> int:
    """Deterministic 64-bit seed for point ``index`` of ``sweep``."""
    blob = f"{sweep}:{index}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def make_specs(sweep_name: str, params: Optional[Any] = None
               ) -> List[PointSpec]:
    """Expand a sweep's params into the ordered list of point specs."""
    sweep = get_sweep(sweep_name)
    return [PointSpec(sweep_name, i, config, point_seed(sweep_name, i))
            for i, config in enumerate(sweep.points(params))]
