"""Parallel experiment runner with content-addressed result caching.

The paper's evaluation is a set of *sweeps* — independent simulation
points per figure — and this package runs them the way the paper's own
system runs activities: no serialized central bottleneck.  A figure is
declared as points + a reducer (:mod:`repro.runner.registry`), points
fan out over a process pool and results are collected in order
(:mod:`repro.runner.scheduler`), and every point's result is cached on
disk under a content address covering its config and the code that
produced it (:mod:`repro.runner.cache`).

The determinism contract: for every sweep, ``Runner(jobs=N)`` returns
bit-identical reduced results — and, under ``trace=True``, identical
canonical golden-trace digests per point — to the serial
``run_<figure>()`` entry points, for any ``N`` and any submission
order.  ``tests/test_runner_parity.py`` enforces this.
"""

from repro.runner.cache import (
    CACHE_VERSION,
    DEFAULT_CACHE_DIR,
    ResultCache,
    cache_key,
    canonical_json,
    canonical_value,
    file_fingerprint,
)
from repro.runner.points import PointSpec, make_specs, point_seed
from repro.runner.registry import (
    Sweep,
    default_fingerprint_paths,
    get_sweep,
    register,
    sweep_names,
    unregister,
)
from repro.runner.scheduler import PointOutcome, Runner, run_point

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "PointOutcome",
    "PointSpec",
    "ResultCache",
    "Runner",
    "Sweep",
    "cache_key",
    "canonical_json",
    "canonical_value",
    "default_fingerprint_paths",
    "file_fingerprint",
    "get_sweep",
    "make_specs",
    "point_seed",
    "register",
    "run_point",
    "sweep_names",
    "unregister",
]
