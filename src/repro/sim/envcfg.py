"""The single home for ``REPRO_*`` environment-variable reads.

Every knob the simulator accepts from the environment is declared and
read here; ``repro.api.env_overrides()`` exposes the resolved snapshot
at the facade.  The REP003 ``env-config`` lint (``repro.analysis.
layering``) forbids any other ``repro.*`` module from reading a
``REPRO_*`` variable directly — scattered ``os.environ`` reads are how
configuration precedence rules rot.

Parsing and validation intentionally stay with the consumers
(:mod:`repro.sim.parallel` knows what a legal shard count is); this
module only owns *which* variables exist and the raw string access.
"""

from __future__ import annotations

import os
from typing import Dict

__all__ = ["ENV_VARS", "raw", "snapshot"]

# name -> one-line documentation; the only REPRO_* variables that exist
ENV_VARS: Dict[str, str] = {
    "REPRO_SCHEDULER": "event-queue for new Simulators (calendar|heap)",
    "REPRO_SHARDS": "conservative-parallel shard count (empty/0 = serial)",
    "REPRO_SHARD_BACKEND": "shard executor backend (inline|threads)",
    "REPRO_SHARD_STRICT": "raise on cross-shard causality violations (1|0)",
    "REPRO_NOC_BATCH": "batch NoC hop charging (1, default; 0 = per-hop)",
    "REPRO_SCHED": "default TileMux policy (rr|edf|lottery|autotune); "
                   "applies when SystemConfig.sched is None",
    "REPRO_BENCH_HANDICAP_S": "synthetic bench regression: name=secs[,...]",
}


def raw(name: str, default: str = "") -> str:
    """The raw string value of a *declared* REPRO_* variable."""
    if name not in ENV_VARS:
        raise KeyError(f"{name} is not a declared repro env var; "
                       f"add it to repro.sim.envcfg.ENV_VARS first")
    return os.environ.get(name, default)


def snapshot() -> Dict[str, str]:
    """All declared variables and their current raw values (unset = '')."""
    return {name: os.environ.get(name, "") for name in sorted(ENV_VARS)}
