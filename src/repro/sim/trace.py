"""Deterministic execution tracing (opt-in).

A :class:`Tracer` collects typed :class:`TraceEvent` records from the
simulation kernel and the hardware/OS models.  Tracing is **off by
default**: every emit site guards on ``sim.tracer is not None``, so a
disabled tracer costs one attribute load per hook.  With a tracer
attached, the same seed and workload produce the same event sequence —
the foundation of the golden-trace conformance tests
(:mod:`repro.testing.golden`) and the online invariant checkers
(:mod:`repro.testing.invariants`).

Event kinds and their fields (the trace schema)
-----------------------------------------------

===================  ======================================================
kind                 fields
===================  ======================================================
``evq_pop``          ``cls`` — class name of the popped simulator event
``noc_inject``       ``src, dst, pkt, size, pid`` — packet entered fabric
``noc_deliver``      ``src, dst, pkt, pid, qlen`` — packet accepted by the
                     destination tile's input queue (after backpressure)
``msg_send``         ``tile, ep, dst_tile, dst_ep, size, uid, reply``
``msg_bounce``       ``tile, uid, error`` — send failed at the receiver
``msg_deliver``      ``tile, ep, act, uid, unread`` — deposited into a
                     receive endpoint (``unread`` = count after deposit)
``msg_fetch``        ``tile, ep, act, uid, unread``
``msg_ack``          ``tile, ep, act, uid, unread, freed_unread``
``ep_install``       ``tile, ep, ep_kind, act, unread`` — endpoint (re)configured
                     (controller external interface or M3x restore)
``ep_use``           ``tile, ep, owner, cur_act`` — vDTU endpoint validated
                     for use by the current activity (section 3.5)
``cur_inc``          ``tile, act, cur`` — CUR_ACT unread count incremented
                     by a fast-path deposit (section 3.7)
``cur_dec``          ``tile, act, cur`` — CUR_ACT count decremented by FETCH
``core_req_enq``     ``tile, act, ep, qlen, cap`` — core request queued
``core_req_stall``   ``tile, qlen`` — queue full; deposit stalls the NoC
                     ejection port (section 3.8)
``core_req_ack``     ``tile, qlen`` — TileMux popped the head request
``core_req_route``   ``tile, act, to_cur, count`` — TileMux accounted the
                     request (``to_cur``: into live CUR_ACT vs. act.msgs)
``act_switch``       ``tile, old_act, old_msgs, new_act, new_msgs`` —
                     atomic CUR_ACT exchange (section 3.7)
``act_block``        ``tile, act`` — multiplexer committed a block
``act_wake``         ``tile, act, reason`` — blocked activity made ready
``act_exit``         ``tile, act`` — activity left the tile
``preempt``          ``tile, act`` — time-slice preemption
``tlb_fill``         ``tile, act, vpage, ppage``
``tlb_evict``        ``tile, act, vpage``
``pkt_drop``         ``src, dst, pkt, uid`` — fault injector swallowed a
                     packet (``uid`` is None for acknowledgements)
``pkt_corrupt``      ``src, dst, uid`` — payload corrupted on a link; the
                     receiver bounces it with ``PKT_CORRUPT``
``msg_dedup``        ``tile, ep, uid`` — retransmitted duplicate dropped
                     by the receive endpoint's sequence store
``msg_timeout``      ``tile, uid`` — no acknowledgement within the
                     recovery policy's ack-timeout window
``ep_fault``         ``tile, ep`` — transient endpoint glitch injected
``tile_stuck``       ``tile, until`` — tile stops draining its inbox
``watchdog``         ``tile, act, slices`` — TileMux watchdog reported a
                     stuck activity to the controller
``tile_quarantine``  ``tile, faults`` — controller quarantined a tile
===================  ======================================================

``uid``, ``pid`` and activity-id values (``act``, ``owner``,
``cur_act``, ``old_act``, ``new_act``) come from process-global
counters, so they are unique but not stable across repeated runs in
one interpreter; the canonical serializer
(:func:`repro.testing.golden.canonical_json`) renumbers them by first
appearance (activity ids 0/``ACT_INVALID`` are reserved and kept).
"""

from __future__ import annotations

from collections import Counter as _KindCounter
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = ["TraceEvent", "Tracer", "capture", "install", "uninstall"]


class TraceEvent:
    """One typed trace record.

    ``seq`` is the tracer-local sequence number, ``ts`` the simulated
    time (picoseconds), ``sim`` the index of the emitting simulator
    (workloads may build several platforms), ``kind`` one of the schema
    kinds above and ``fields`` the kind-specific payload (JSON-safe
    scalars only).
    """

    __slots__ = ("seq", "ts", "sim", "kind", "fields")

    def __init__(self, seq: int, ts: int, sim: int, kind: str,
                 fields: Dict[str, Any]):
        self.seq = seq
        self.ts = ts
        self.sim = sim
        self.kind = kind
        self.fields = fields

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def as_dict(self) -> Dict[str, Any]:
        d = {"seq": self.seq, "ts": self.ts, "sim": self.sim,
             "kind": self.kind}
        d.update(self.fields)
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"<TraceEvent #{self.seq} t={self.ts} {self.kind} {inner}>"


class Tracer:
    """Collects trace events and dispatches them to subscribers.

    ``exclude`` filters event kinds at the source (``evq_pop`` is by far
    the noisiest; golden traces drop it).  ``record=False`` keeps no
    event list — useful when only online invariant checkers consume the
    stream and memory should stay flat.
    """

    def __init__(self, exclude: Iterable[str] = (), record: bool = True):
        self.exclude = frozenset(exclude)
        self.record = record
        self.events: List[TraceEvent] = []
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self._seq = 0
        self._sims = 0

    # -- wiring ---------------------------------------------------------------

    def register_sim(self) -> int:
        """Called by each Simulator that picks this tracer up; returns
        the simulator's index within the trace."""
        sim_id = self._sims
        self._sims += 1
        return sim_id

    def attach(self, sim) -> "Tracer":
        """Explicitly attach to an already built simulator."""
        sim.tracer = self
        sim.trace_id = self.register_sim()
        return self

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        self._subscribers.append(callback)

    # -- emission -------------------------------------------------------------

    def emit(self, sim, kind: str, **fields: Any) -> None:
        if kind in self.exclude:
            return
        event = TraceEvent(self._seq, sim.now, sim.trace_id, kind, fields)
        self._seq += 1
        if self.record:
            self.events.append(event)
        for callback in self._subscribers:
            callback(event)

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def kinds(self) -> Dict[str, int]:
        """Event counts by kind (for digests and quick looks)."""
        return dict(_KindCounter(ev.kind for ev in self.events))

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        want = frozenset(kinds)
        return [ev for ev in self.events if ev.kind in want]


# -- global installation ------------------------------------------------------
#
# Experiment entry points (fig6, fig8, ...) build their platforms
# internally; `install`/`capture` make every Simulator constructed while
# active pick up the tracer, without threading it through the builders.

def install(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the default for newly created Simulators."""
    from repro.sim import engine

    engine.set_default_tracer(tracer)
    return tracer


def uninstall() -> None:
    from repro.sim import engine

    engine.set_default_tracer(None)


@contextmanager
def capture(exclude: Iterable[str] = (), record: bool = True,
            tracer: Optional[Tracer] = None):
    """Context manager: trace every simulator built inside the block.

    >>> with capture(exclude=("evq_pop",)) as tracer:
    ...     run_fig6(Fig6Params(iterations=10, warmup=2))
    >>> len(tracer.events)
    """
    tracer = tracer if tracer is not None else Tracer(exclude=exclude,
                                                      record=record)
    install(tracer)
    try:
        yield tracer
    finally:
        uninstall()
