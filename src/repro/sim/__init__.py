"""Discrete-event simulation engine.

A lean, generator-based DES kernel in the style of simpy, built from
scratch for this reproduction.  Everything in the platform simulation
(NoC, DTU, cores, OS components) is expressed as :class:`Process`es that
yield :class:`Event`s to a :class:`Simulator`.

Public surface::

    sim = Simulator()
    proc = sim.process(my_generator())
    sim.run(until=1_000_000)

Inside a process generator::

    yield sim.timeout(100)          # sleep 100 time units
    value = yield some_event        # wait for an event, receive its value
    yield channel.put(item)         # blocking put into a bounded channel
    item = yield channel.get()      # blocking get
"""

from repro.sim.engine import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.channel import Channel, ChannelClosed
from repro.sim.parallel import (
    GLOBAL_SHARD,
    CausalityError,
    ShardPlan,
    ShardedEventQueue,
    partition_tiles,
)
from repro.sim.stats import Counter, Histogram, StatRegistry, TimeWeighted
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "TraceEvent",
    "Tracer",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Channel",
    "ChannelClosed",
    "CausalityError",
    "Counter",
    "GLOBAL_SHARD",
    "Histogram",
    "ShardPlan",
    "ShardedEventQueue",
    "StatRegistry",
    "TimeWeighted",
    "partition_tiles",
]
