"""The discrete-event simulation kernel.

The design mirrors simpy's condition-free core: a :class:`Simulator` owns
a priority queue of triggered events; a :class:`Process` wraps a Python
generator and advances it each time an event it waited on fires.

Time is a plain integer (we use picoseconds-free abstract "cycles" or
nanoseconds depending on the embedding; the engine does not care).
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter as _perf_counter
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation API."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event state markers
_PENDING = object()

# Default tracer picked up by newly constructed Simulators (see
# repro.sim.trace).  None keeps tracing entirely off: the only cost is
# one attribute load + None check per emit site.
_default_tracer = None


def set_default_tracer(tracer) -> None:
    """Install (or clear, with None) the tracer for new Simulators."""
    global _default_tracer
    _default_tracer = tracer


# Default metrics registry / self-profiler, same contract as the tracer:
# picked up by newly constructed Simulators, None keeps the hooks free
# (see repro.obs).
_default_metrics = None
_default_profiler = None


def set_default_metrics(metrics) -> None:
    """Install (or clear, with None) the metrics registry for new
    Simulators."""
    global _default_metrics
    _default_metrics = metrics


def set_default_profiler(profiler) -> None:
    """Install (or clear, with None) the self-profiler for new
    Simulators."""
    global _default_profiler
    _default_profiler = profiler


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`.  Callbacks attached before the
    trigger run when the simulator pops the event off its queue.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._processed = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.sim._enqueue(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.  If no
        process waits, the simulator raises it at the end of the step
        (unless :meth:`defuse` was called).
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._value = exception
        self._ok = False
        self.sim._enqueue(self, delay)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if nobody waits on it."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay; created pre-triggered."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._ok = True
        sim._enqueue(self, delay)


class Process(Event):
    """Drives a generator; is itself an event that fires on termination.

    The generator may yield:

    * an :class:`Event` — the process resumes when it triggers, receiving
      its value (or having its exception raised inside the generator).
    * ``None`` — the process resumes on the next simulator step (a
      cooperative yield at the current time).
    """

    __slots__ = ("gen", "name", "_target", "_resume_handle")

    def __init__(self, sim: "Simulator", gen: Generator, name: Optional[str] = None):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", None) or repr(gen)
        self._target: Optional[Event] = None
        # bootstrap: resume on next step
        boot = Event(sim)
        boot.succeed(None)
        self._wait_on(boot)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        kick = Event(self.sim)
        kick.fail(Interrupt(cause))
        kick.defuse()
        self._wait_on(kick)

    # -- internal machinery -------------------------------------------------

    def _wait_on(self, event: Event) -> None:
        self._target = event
        if event.callbacks is None:
            # already processed: schedule immediate resume
            kick = Event(self.sim)
            if event._ok:
                kick.succeed(event._value)
            else:
                event._defused = True
                kick.fail(event._value)
                kick.defuse()
            kick.callbacks.append(self._resume)
        else:
            event.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        self._target = None
        self.sim._active_process = self
        try:
            if event._ok:
                result = self.gen.send(event._value)
            else:
                event._defused = True
                result = self.gen.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self.fail(exc)
            return
        self.sim._active_process = None

        if result is None:
            result = Timeout(self.sim, 0)
        if not isinstance(result, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {result!r}, expected Event or None"
            )
        if result.sim is not self.sim:
            raise SimulationError("yielded event belongs to another simulator")
        self._wait_on(result)


class Simulator:
    """The event loop.  Owns simulated time and the pending-event heap."""

    def __init__(self, start: int = 0):
        self.now: int = start
        self._heap: List = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        self.tracer = _default_tracer
        self.trace_id = (_default_tracer.register_sim()
                         if _default_tracer is not None else 0)
        self.metrics = _default_metrics
        self.profiler = _default_profiler

    # -- factories -----------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when the first of ``events`` fires.

        Value is the ``(event, value)`` pair of the winner.  Losing
        events are left untouched (their values remain retrievable).
        """
        events = list(events)
        result = Event(self)

        def _on_fire(ev: Event) -> None:
            if result.triggered:
                return
            if ev._ok:
                result.succeed((ev, ev._value))
            else:
                ev._defused = True
                result.fail(ev._value)
                result.defuse()

        for ev in events:
            if ev.callbacks is None:
                _on_fire(ev)
                break
            ev.callbacks.append(_on_fire)
        return result

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when all of ``events`` have fired."""
        events = list(events)
        result = Event(self)
        remaining = [len(events)]
        if not events:
            result.succeed([])
            return result

        def _on_fire(ev: Event) -> None:
            if result.triggered:
                return
            if not ev._ok:
                ev._defused = True
                result.fail(ev._value)
                result.defuse()
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                result.succeed([e._value for e in events])

        for ev in events:
            if ev.callbacks is None:
                _on_fire(ev)
            else:
                ev.callbacks.append(_on_fire)
        return result

    # -- scheduling ----------------------------------------------------------

    def _enqueue(self, event: Event, delay: int) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), event))

    def step(self) -> None:
        """Process the next triggered event."""
        when, _, event = heapq.heappop(self._heap)
        self.now = when
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(self, "evq_pop", cls=type(event).__name__)
        metrics = self.metrics
        if metrics is not None:
            metrics.on_step(self, event)
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        profiler = self.profiler
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            profiler.on_step()
            clock = _perf_counter
            for callback in callbacks:
                t0 = clock()
                callback(event)
                profiler.record(getattr(callback, "__self__", None),
                                clock() - t0)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[int] = None) -> None:
        """Run until the heap drains or simulated time reaches ``until``."""
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} lies in the past (now={self.now})")
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until

    def run_until_event(self, event: Event, limit: Optional[int] = None) -> Any:
        """Run until ``event`` triggers; returns its value.

        ``limit`` guards against runaway simulations.
        """
        while not event.triggered:
            if not self._heap:
                raise SimulationError("simulation starved before event triggered")
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(f"event did not trigger before t={limit}")
            self.step()
        if not event._ok:
            event._defused = True
            raise event._value
        return event._value

    @property
    def peek(self) -> Optional[int]:
        """Time of the next pending event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None
