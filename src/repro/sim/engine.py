"""The discrete-event simulation kernel.

The design mirrors simpy's condition-free core: a :class:`Simulator` owns
a queue of triggered events; a :class:`Process` wraps a Python generator
and advances it each time an event it waited on fires.

Time is a plain integer (we use picoseconds-free abstract "cycles" or
nanoseconds depending on the embedding; the engine does not care).

Scheduler
---------

Two event-queue implementations share one contract (pop strictly by
timestamp, FIFO among events scheduled for the same instant):

* :class:`CalendarEventQueue` (default) — a calendar queue: a dict
  mapping each distinct timestamp to a list of events in enqueue order,
  plus a min-heap of the distinct timestamps.  Platform workloads
  schedule many events per instant (MMIO charges, DMA completions and
  NoC hops all quantize to the same picosecond grid), so the heap
  shrinks from one entry per *event* to one entry per *distinct time*,
  and no ``(time, seq, event)`` tuple is allocated per enqueue.
* :class:`HeapEventQueue` — the original global ``heapq`` ordered by
  ``(time, seq)`` with a monotone sequence counter.  Kept as the
  reference implementation for differential testing
  (``tests/test_engine_equivalence.py``).

Both produce the same pop order: the sequence counter is assigned in
enqueue order, so within one timestamp the heap's seq order equals the
calendar bucket's append order.  This tie-order invariant is what keeps
the committed golden trace digests byte-identical across schedulers
(DESIGN.md section 13).

Select with ``Simulator(scheduler="heap")``, the ``REPRO_SCHEDULER``
environment variable, or :func:`set_default_scheduler`.

Fast paths
----------

* A process may ``yield <int>`` to sleep that many time units: the
  engine reuses one pre-allocated per-process tick event instead of
  constructing a :class:`Timeout` per sleep.  ``yield None`` is the
  ``yield 0`` cooperative yield.  Both consume exactly one queue entry
  at the same instant as the equivalent ``yield sim.timeout(n)``, so
  traces are unchanged.
* ``run``/``run_until_event`` pick a specialized drain loop per call:
  with tracer, metrics and profiler all ``None`` (the default) the loop
  inlines the calendar queue and touches no hook, so the all-off cost
  is a single attribute check per *run call* instead of a chain of
  ``if`` guards per event.  Hooked runs use a loop with the hook
  objects hoisted into locals.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager
from time import perf_counter as _perf_counter
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.sim import envcfg

# Shard id of unpinned context (mirrors repro.sim.parallel.GLOBAL_SHARD;
# duplicated as a literal because parallel imports this module).
_GLOBAL_SHARD = -1


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation API."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event state markers
_PENDING = object()

# Default tracer picked up by newly constructed Simulators (see
# repro.sim.trace).  None keeps tracing entirely off: the only cost is
# one attribute load + None check per emit site.
_default_tracer = None


def set_default_tracer(tracer) -> None:
    """Install (or clear, with None) the tracer for new Simulators."""
    global _default_tracer
    _default_tracer = tracer


# Default metrics registry / self-profiler, same contract as the tracer:
# picked up by newly constructed Simulators, None keeps the hooks free
# (see repro.obs).
_default_metrics = None
_default_profiler = None


def set_default_metrics(metrics) -> None:
    """Install (or clear, with None) the metrics registry for new
    Simulators."""
    global _default_metrics
    _default_metrics = metrics


def set_default_profiler(profiler) -> None:
    """Install (or clear, with None) the self-profiler for new
    Simulators."""
    global _default_profiler
    _default_profiler = profiler


# Process-global count of events processed across all simulators; the
# bench harness (repro.bench) reads deltas of this to compute events/sec
# without installing any per-step hook.
_events_processed = 0


def events_processed() -> int:
    """Total simulator events processed in this interpreter."""
    return _events_processed


# -- event queues -------------------------------------------------------------

class HeapEventQueue:
    """Reference scheduler: one ``(time, seq, event)`` heap entry per event.

    The monotone ``seq`` breaks same-time ties in enqueue order; this is
    the original implementation and the ground truth the calendar queue
    is differentially tested against.
    """

    __slots__ = ("_heap", "_seq")

    name = "heap"

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, "Event"]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, when: int, event: "Event") -> None:
        heapq.heappush(self._heap, (when, next(self._seq), event))

    def pop(self) -> Tuple[int, "Event"]:
        when, _, event = heapq.heappop(self._heap)
        return when, event

    def peek(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None


class CalendarEventQueue:
    """Calendar queue: per-timestamp buckets + a heap of distinct times.

    ``_buckets`` maps an absolute timestamp to the events scheduled for
    it — a bare event while the instant holds one (the common case:
    ~64% of fig9's timestamps are singletons), upgraded to a list in
    enqueue order on the first collision.  ``_times`` is a min-heap of
    the distinct timestamps present.  ``_head`` is the drain index into
    the minimum list bucket (only the minimum bucket is ever partially
    drained — events cannot be scheduled in the past, so earlier
    buckets cannot appear).  List buckets are removed lazily once
    drained, which keeps the queue coherent even if an event callback
    raises mid-bucket; singletons are removed eagerly at pop.
    """

    __slots__ = ("_buckets", "_times", "_head", "_len")

    name = "calendar"

    def __init__(self) -> None:
        self._buckets: dict = {}
        self._times: List[int] = []
        self._head = 0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def push(self, when: int, event: "Event") -> None:
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = event
            heapq.heappush(self._times, when)
        elif type(bucket) is list:
            bucket.append(event)
        else:
            self._buckets[when] = [bucket, event]
        self._len += 1

    def pop(self) -> Tuple[int, "Event"]:
        times = self._times
        buckets = self._buckets
        while True:
            when = times[0]
            bucket = buckets[when]
            if type(bucket) is not list:
                del buckets[when]
                heapq.heappop(times)
                self._len -= 1
                return when, bucket
            head = self._head
            if head < len(bucket):
                self._head = head + 1
                self._len -= 1
                return when, bucket[head]
            # minimum bucket fully drained: retire it and look again
            del buckets[when]
            heapq.heappop(times)
            self._head = 0

    def peek(self) -> Optional[int]:
        times = self._times
        buckets = self._buckets
        while times:
            when = times[0]
            bucket = buckets[when]
            if type(bucket) is not list or self._head < len(bucket):
                return when
            del buckets[when]
            heapq.heappop(times)
            self._head = 0
        return None


_SCHEDULERS = {"calendar": CalendarEventQueue, "heap": HeapEventQueue}

DEFAULT_SCHEDULER = "calendar"
_default_scheduler = envcfg.raw("REPRO_SCHEDULER") or DEFAULT_SCHEDULER


def set_default_scheduler(name: Optional[str]) -> None:
    """Select the event queue for new Simulators ("calendar" or "heap").

    ``None`` restores the built-in default (or ``REPRO_SCHEDULER``).
    """
    global _default_scheduler
    if name is None:
        name = envcfg.raw("REPRO_SCHEDULER") or DEFAULT_SCHEDULER
    if name not in _SCHEDULERS:
        raise ValueError(f"unknown scheduler {name!r} "
                         f"(choose from {sorted(_SCHEDULERS)})")
    _default_scheduler = name


def default_scheduler() -> str:
    """The scheduler new Simulators get ("calendar" or "heap")."""
    return _default_scheduler


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`.  Callbacks attached before the
    trigger run when the simulator pops the event off its queue.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "_defused",
                 "shard")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._processed = False
        self._defused = False
        # shard affinity: inherited from the creating context (the event
        # being executed, or an explicit Simulator.shard_scope()); only
        # the sharded queue reads it, serial queues ignore it
        self.shard = sim._active_shard

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        sim = self.sim
        eq = sim._eq
        if eq.__class__ is CalendarEventQueue:
            # inlined CalendarEventQueue.push — succeed() is the hottest
            # scheduling entry point (every channel op and callback chain)
            when = sim.now + delay
            buckets = eq._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = self
                heapq.heappush(eq._times, when)
            elif bucket.__class__ is list:
                bucket.append(self)
            else:
                buckets[when] = [bucket, self]
            eq._len += 1
        else:
            eq.push(sim.now + delay, self)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.  If no
        process waits, the simulator raises it at the end of the step
        (unless :meth:`defuse` was called).
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._value = exception
        self._ok = False
        sim = self.sim
        sim._eq.push(sim.now + delay, self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if nobody waits on it."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay; created pre-triggered."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._ok = True
        sim._eq.push(sim.now + delay, self)


class Process(Event):
    """Drives a generator; is itself an event that fires on termination.

    The generator may yield:

    * an :class:`Event` — the process resumes when it triggers, receiving
      its value (or having its exception raised inside the generator).
    * an ``int`` — sleep that many time units (equivalent to yielding
      ``sim.timeout(n)``, without allocating a Timeout).
    * ``None`` — the process resumes on the next simulator step (a
      cooperative yield at the current time).
    """

    __slots__ = ("gen", "name", "_target", "_resume_handle", "_tick",
                 "_tick_cbs")

    def __init__(self, sim: "Simulator", gen: Generator, name: Optional[str] = None):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", None) or repr(gen)
        # bootstrap: resume on the next step via the reusable tick event
        tick = Event(sim)
        tick._value = None
        tick.callbacks.append(self._resume)
        self._tick = tick
        self._tick_cbs = tick.callbacks
        self._target: Optional[Event] = tick
        sim._eq.push(sim.now, tick)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        kick = Event(self.sim)
        kick.fail(Interrupt(cause))
        kick.defuse()
        self._wait_on(kick)

    # -- internal machinery -------------------------------------------------

    def _wait_on(self, event: Event) -> None:
        self._target = event
        if event.callbacks is None:
            # already processed: schedule immediate resume
            kick = Event(self.sim)
            if event._ok:
                kick.succeed(event._value)
            else:
                event._defused = True
                kick.fail(event._value)
                kick.defuse()
            kick.callbacks.append(self._resume)
        else:
            event.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        self._target = None
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                result = self.gen.send(event._value)
            else:
                event._defused = True
                result = self.gen.throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            self.fail(exc)
            return
        sim._active_process = None

        if type(result) is int:
            delay = result
            if delay < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {delay}")
        elif result is None:
            delay = 0
        else:
            if not isinstance(result, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {result!r}, "
                    f"expected Event, int or None"
                )
            if result.sim is not sim:
                raise SimulationError("yielded event belongs to another simulator")
            self._wait_on(result)
            return

        # int / None fast path: sleep on the reusable tick event.  Safe to
        # reuse only once the previous incarnation left the queue
        # (_processed); an interrupt can orphan a still-queued tick, in
        # which case a fresh event replaces it.
        tick = self._tick
        if tick._processed:
            tick._value = None
            tick._ok = True
            tick._processed = False
            tick._defused = False
            # the callback list survives pops untouched (drain loops
            # detach it before running it); an interrupt() may have
            # emptied it via remove(), so top it back up
            cbs = self._tick_cbs
            if not cbs:
                cbs.append(self._resume)
            tick.callbacks = cbs
        else:
            tick = Event(sim)
            tick._value = None
            tick.callbacks.append(self._resume)
            self._tick = tick
            self._tick_cbs = tick.callbacks
        self._target = tick
        eq = sim._eq
        when = sim.now + delay
        if eq.__class__ is CalendarEventQueue:
            # inlined CalendarEventQueue.push — every process tick lands here
            buckets = eq._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = tick
                heapq.heappush(eq._times, when)
            elif bucket.__class__ is list:
                bucket.append(tick)
            else:
                buckets[when] = [bucket, tick]
            eq._len += 1
        else:
            eq.push(when, tick)


class Simulator:
    """The event loop.  Owns simulated time and the pending-event queue.

    ``shards`` > 0 switches the queue to the conservative sharded
    scheduler (:mod:`repro.sim.parallel`): events carry the shard of
    the context that created them, per-shard lanes merge
    deterministically on ``(time, seq)``, and cross-shard pushes inside
    the lookahead window are flagged (or raised, with
    ``shard_strict``).  ``shards=None`` (the default) consults the
    ``REPRO_SHARDS`` environment variable, so any suite can be re-run
    sharded without code changes.  The serial pop order is preserved
    exactly — see DESIGN.md §15.
    """

    def __init__(self, start: int = 0, scheduler: Optional[str] = None,
                 shards: Optional[int] = None, lookahead: Optional[int] = None,
                 shard_strict: Optional[bool] = None,
                 shard_backend: Optional[str] = None):
        self.now: int = start
        self.scheduler = scheduler or _default_scheduler
        if self.scheduler not in _SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {self.scheduler!r} "
                f"(choose from {sorted(_SCHEDULERS)})")
        self._active_process: Optional[Process] = None
        self._active_shard: int = _GLOBAL_SHARD
        self.shard_plan = None
        self._shard_executor = None
        if shards is None:
            from repro.sim.parallel import shards_from_env

            shards = shards_from_env()
        if shards:
            from repro.sim import parallel

            self.shards = shards
            self.shard_backend = (shard_backend or
                                  parallel.backend_from_env())
            strict = (parallel.strict_from_env() if shard_strict is None
                      else shard_strict)
            self._eq = parallel.ShardedEventQueue(
                shards, base=self.scheduler,
                lookahead=(lookahead if lookahead is not None
                           else parallel.DEFAULT_LOOKAHEAD),
                strict=strict)
            self._eq.sim = self
        else:
            self.shards = 0
            self.shard_backend = "inline"
            self._eq = _SCHEDULERS[self.scheduler]()
        self.tracer = _default_tracer
        self.trace_id = (_default_tracer.register_sim()
                         if _default_tracer is not None else 0)
        self.metrics = _default_metrics
        self.profiler = _default_profiler

    # -- sharding ------------------------------------------------------------

    @contextmanager
    def shard_scope(self, shard: int):
        """Create events/processes under ``shard``'s affinity.

        Platform assembly wraps each tile's construction in its shard's
        scope; the NoC fabric scopes arrival events to the destination
        tile.  A no-op (beyond the attribute swap) on serial runs.
        """
        prev = self._active_shard
        self._active_shard = shard
        try:
            yield self
        finally:
            self._active_shard = prev

    def set_shard_plan(self, plan) -> None:
        """Install the tile→shard plan (and its lookahead bound)."""
        self.shard_plan = plan
        if plan is not None and self.shards:
            self._eq.lookahead = plan.lookahead

    @property
    def shard_stats(self):
        """Sharded-run counters, or None on serial runs."""
        return self._eq.stats if self.shards else None

    # -- factories -----------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when the first of ``events`` fires.

        Value is the ``(event, value)`` pair of the winner.  Losing
        events are left untouched (their values remain retrievable).
        """
        events = list(events)
        result = Event(self)

        def _on_fire(ev: Event) -> None:
            if result.triggered:
                return
            if ev._ok:
                result.succeed((ev, ev._value))
            else:
                ev._defused = True
                result.fail(ev._value)
                result.defuse()

        for ev in events:
            if ev.callbacks is None:
                _on_fire(ev)
                break
            ev.callbacks.append(_on_fire)
        return result

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when all of ``events`` have fired."""
        events = list(events)
        result = Event(self)
        remaining = [len(events)]
        if not events:
            result.succeed([])
            return result

        def _on_fire(ev: Event) -> None:
            if result.triggered:
                return
            if not ev._ok:
                ev._defused = True
                result.fail(ev._value)
                result.defuse()
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                result.succeed([e._value for e in events])

        for ev in events:
            if ev.callbacks is None:
                _on_fire(ev)
            else:
                ev.callbacks.append(_on_fire)
        return result

    # -- scheduling ----------------------------------------------------------

    def _enqueue(self, event: Event, delay: int) -> None:
        self._eq.push(self.now + delay, event)

    def step(self) -> None:
        """Process the next triggered event (single-step API)."""
        global _events_processed
        when, event = self._eq.pop()
        self.now = when
        self._active_shard = event.shard
        _events_processed += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(self, "evq_pop", cls=type(event).__name__)
        metrics = self.metrics
        if metrics is not None:
            metrics.on_step(self, event)
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        profiler = self.profiler
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            profiler.on_step()
            clock = _perf_counter  # repro: noqa[REP001] host-clock self-profiling
            for callback in callbacks:
                t0 = clock()
                callback(event)
                profiler.record(getattr(callback, "__self__", None),
                                clock() - t0)
        self._active_shard = _GLOBAL_SHARD
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} lies in the past (now={self.now})")
        if self.shards:
            if self.shard_backend == "threads" and self.metrics is None:
                self._run_windows(until)
            else:
                self._run_sharded(until)
        elif (self.tracer is None and self.metrics is None
                and self.profiler is None
                and type(self._eq) is CalendarEventQueue):
            self._run_plain(until)
        else:
            self._run_hooked(until)
        if until is not None:
            self.now = until

    def run_until_event(self, event: Event, limit: Optional[int] = None) -> Any:
        """Run until ``event`` triggers; returns its value.

        ``limit`` guards against runaway simulations.  On sharded runs
        this always uses the inline deterministic drain (the threads
        backend has no bounded-by-event window shape).
        """
        if event._value is _PENDING:
            if self.shards:
                self._run_until_sharded(event, limit)
            elif (self.tracer is None and self.metrics is None
                    and self.profiler is None
                    and type(self._eq) is CalendarEventQueue):
                self._run_until_plain(event, limit)
            else:
                self._run_until_hooked(event, limit)
        if not event._ok:
            event._defused = True
            raise event._value
        return event._value

    # -- drain loops ---------------------------------------------------------
    #
    # Four specializations of one loop.  The *plain* pair runs with
    # tracer/metrics/profiler all None and the calendar queue, inlining
    # the queue internals; the *hooked* pair hoists the hook objects
    # into locals and works against any queue via peek/pop.  All of
    # them process an event exactly like step().

    def _run_plain(self, until: Optional[int]) -> None:
        # The queue's _head/_len are only read by pop()/peek()/len(), none
        # of which can run while this loop owns the queue (hooks are off),
        # so both are maintained in locals and written back on exit.
        global _events_processed
        q = self._eq
        buckets = q._buckets
        times = q._times
        pop_time = heapq.heappop
        head = q._head
        n = 0
        try:
            while times:
                when = times[0]
                bucket = buckets[when]
                if type(bucket) is not list:
                    if until is not None and when > until:
                        return
                    self.now = when
                    del buckets[when]
                    pop_time(times)
                    event = bucket
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    n += 1
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    continue
                if head >= len(bucket):
                    del buckets[when]
                    pop_time(times)
                    head = 0
                    continue
                if until is not None and when > until:
                    return
                self.now = when
                while head < len(bucket):
                    event = bucket[head]
                    head += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    n += 1
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                del buckets[when]
                pop_time(times)
                head = 0
        finally:
            q._head = head
            q._len -= n
            _events_processed += n

    def _run_until_plain(self, ev: Event, limit: Optional[int]) -> None:
        global _events_processed
        q = self._eq
        buckets = q._buckets
        times = q._times
        pop_time = heapq.heappop
        pending = _PENDING
        head = q._head
        n = 0
        try:
            while ev._value is pending:
                if not times:
                    raise SimulationError(
                        "simulation starved before event triggered")
                when = times[0]
                bucket = buckets[when]
                if type(bucket) is not list:
                    if limit is not None and when > limit:
                        raise SimulationError(
                            f"event did not trigger before t={limit}")
                    self.now = when
                    del buckets[when]
                    pop_time(times)
                    event = bucket
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    n += 1
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    continue
                if head >= len(bucket):
                    del buckets[when]
                    pop_time(times)
                    head = 0
                    continue
                if limit is not None and when > limit:
                    raise SimulationError(f"event did not trigger before t={limit}")
                self.now = when
                while head < len(bucket):
                    event = bucket[head]
                    head += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    n += 1
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if ev._value is not pending:
                        return
                del buckets[when]
                pop_time(times)
                head = 0
        finally:
            q._head = head
            q._len -= n
            _events_processed += n

    def _run_hooked(self, until: Optional[int]) -> None:
        global _events_processed
        q = self._eq
        tracer = self.tracer
        metrics = self.metrics
        profiler = self.profiler
        clock = _perf_counter  # repro: noqa[REP001] host-clock self-profiling
        n = 0
        try:
            while True:
                when = q.peek()
                if when is None or (until is not None and when > until):
                    return
                when, event = q.pop()
                self.now = when
                n += 1
                if tracer is not None:
                    tracer.emit(self, "evq_pop", cls=type(event).__name__)
                if metrics is not None:
                    metrics.on_step(self, event)
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                if profiler is None:
                    for callback in callbacks:
                        callback(event)
                else:
                    profiler.on_step()
                    for callback in callbacks:
                        t0 = clock()
                        callback(event)
                        profiler.record(getattr(callback, "__self__", None),
                                        clock() - t0)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            _events_processed += n

    def _run_until_hooked(self, ev: Event, limit: Optional[int]) -> None:
        global _events_processed
        q = self._eq
        tracer = self.tracer
        metrics = self.metrics
        profiler = self.profiler
        clock = _perf_counter  # repro: noqa[REP001] host-clock self-profiling
        pending = _PENDING
        n = 0
        try:
            while ev._value is pending:
                when = q.peek()
                if when is None:
                    raise SimulationError(
                        "simulation starved before event triggered")
                if limit is not None and when > limit:
                    raise SimulationError(f"event did not trigger before t={limit}")
                when, event = q.pop()
                self.now = when
                n += 1
                if tracer is not None:
                    tracer.emit(self, "evq_pop", cls=type(event).__name__)
                if metrics is not None:
                    metrics.on_step(self, event)
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                if profiler is None:
                    for callback in callbacks:
                        callback(event)
                else:
                    profiler.on_step()
                    for callback in callbacks:
                        t0 = clock()
                        callback(event)
                        profiler.record(getattr(callback, "__self__", None),
                                        clock() - t0)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            _events_processed += n

    # -- sharded drain loops --------------------------------------------------
    #
    # The inline sharded pair mirrors the hooked pair against the
    # deterministic (time, seq) merge, additionally switching the
    # active-shard context per event and accounting conservative
    # windows.  _run_windows is the threads backend: it batches each
    # window onto per-shard workers via the ThreadShardExecutor and
    # falls back to the inline drain whenever a window contains
    # global-lane work (which may touch any shard).

    def _run_sharded(self, until: Optional[int],
                     horizon: Optional[int] = None) -> None:
        global _events_processed
        q = self._eq
        stats = q.stats
        lookahead = q.lookahead
        tracer = self.tracer
        metrics = self.metrics
        profiler = self.profiler
        clock = _perf_counter  # repro: noqa[REP001] host-clock self-profiling
        window_end = None
        wcount = 0
        n = 0
        per_shard: Dict[int, int] = {}
        try:
            while True:
                when = q.peek()
                if (when is None or (until is not None and when > until)
                        or (horizon is not None and when >= horizon)):
                    return
                if window_end is None or when >= window_end:
                    window_end = when + lookahead
                    stats.windows += 1
                    if wcount > stats.max_window_events:
                        stats.max_window_events = wcount
                    wcount = 0
                when, event = q.pop()
                self.now = when
                shard = event.shard
                self._active_shard = shard
                n += 1
                wcount += 1
                per_shard[shard] = per_shard.get(shard, 0) + 1
                if tracer is not None:
                    tracer.emit(self, "evq_pop", cls=type(event).__name__)
                if metrics is not None:
                    metrics.on_step(self, event)
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                if profiler is None:
                    for callback in callbacks:
                        callback(event)
                else:
                    profiler.on_step()
                    for callback in callbacks:
                        t0 = clock()
                        callback(event)
                        dt = clock() - t0
                        profiler.record(getattr(callback, "__self__", None),
                                        dt)
                        profiler.record_shard(shard, dt)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            stats.events += n
            if wcount > stats.max_window_events:
                stats.max_window_events = wcount
            stats.count_shards(per_shard)
            if metrics is not None:
                metrics.inc("sim/shards/violations", 0)  # surface even at 0
                for s, cnt in per_shard.items():
                    metrics.inc(f"sim/shards/{s}/events", cnt)
            self._active_shard = _GLOBAL_SHARD
            _events_processed += n

    def _run_until_sharded(self, ev: Event, limit: Optional[int]) -> None:
        global _events_processed
        q = self._eq
        stats = q.stats
        tracer = self.tracer
        metrics = self.metrics
        profiler = self.profiler
        clock = _perf_counter  # repro: noqa[REP001] host-clock self-profiling
        pending = _PENDING
        n = 0
        per_shard: Dict[int, int] = {}
        try:
            while ev._value is pending:
                when = q.peek()
                if when is None:
                    raise SimulationError(
                        "simulation starved before event triggered")
                if limit is not None and when > limit:
                    raise SimulationError(f"event did not trigger before t={limit}")
                when, event = q.pop()
                self.now = when
                shard = event.shard
                self._active_shard = shard
                n += 1
                per_shard[shard] = per_shard.get(shard, 0) + 1
                if tracer is not None:
                    tracer.emit(self, "evq_pop", cls=type(event).__name__)
                if metrics is not None:
                    metrics.on_step(self, event)
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                if profiler is None:
                    for callback in callbacks:
                        callback(event)
                else:
                    profiler.on_step()
                    for callback in callbacks:
                        t0 = clock()
                        callback(event)
                        dt = clock() - t0
                        profiler.record(getattr(callback, "__self__", None),
                                        dt)
                        profiler.record_shard(shard, dt)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            stats.events += n
            stats.count_shards(per_shard)
            if metrics is not None:
                metrics.inc("sim/shards/violations", 0)  # surface even at 0
                for s, cnt in per_shard.items():
                    metrics.inc(f"sim/shards/{s}/events", cnt)
            self._active_shard = _GLOBAL_SHARD
            _events_processed += n

    def _run_windows(self, until: Optional[int]) -> None:
        global _events_processed
        q = self._eq
        stats = q.stats
        profiler = self.profiler
        clock = _perf_counter  # repro: noqa[REP001] host-clock self-profiling
        executor = self._shard_executor
        if executor is None:
            from repro.sim.parallel import ThreadShardExecutor

            executor = self._shard_executor = ThreadShardExecutor(self)
        n_lanes = q.n_lanes
        while True:
            when = q.peek()
            if when is None or (until is not None and when > until):
                return
            horizon = when + q.lookahead
            if until is not None and horizon > until + 1:
                horizon = until + 1
            heads = [q.lane_head(lane) for lane in range(n_lanes)]
            lanes = [lane for lane in range(1, n_lanes)
                     if heads[lane] is not None and heads[lane][0] < horizon]
            stats.windows += 1
            if ((heads[0] is not None and heads[0][0] < horizon)
                    or len(lanes) < 2):
                # global-lane context in the window (may touch any
                # shard), or nothing to parallelize: deterministic
                # inline drain below the horizon
                self._run_sharded(until, horizon=horizon)
                stats.windows -= 1  # _run_sharded counted its own
                continue
            if profiler is not None:
                t0 = clock()
                cb0 = sum(w for w, _ in profiler.buckets.values())
            n = executor.run_window(horizon, lanes)
            if n > stats.max_window_events:
                stats.max_window_events = n
            stats.events += n
            _events_processed += n
            if profiler is not None:
                cb1 = sum(w for w, _ in profiler.buckets.values())
                # sync stall: window wall not spent inside callbacks —
                # thread start/join, lock waits, and the barrier merge
                profiler.record_sync(max(0.0, (clock() - t0) - (cb1 - cb0)))

    @property
    def peek(self) -> Optional[int]:
        """Time of the next pending event, or None if the queue is empty."""
        return self._eq.peek()
