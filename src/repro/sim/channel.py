"""Bounded FIFO channels for inter-process communication in the DES.

Channels model queues with optional capacity: ``put`` blocks while the
channel is full, ``get`` blocks while it is empty.  They are used for
software-level mailboxes in the simulation (e.g. the controller's
request queue); hardware queues with flow control (NoC, DTU receive
buffers) have their own richer models.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, Simulator


class ChannelClosed(Exception):
    """Raised in getters/putters when the channel is closed."""


class Channel:
    """A FIFO queue with blocking, event-based put/get.

    ``capacity=None`` means unbounded (puts never block).
    """

    __slots__ = ("sim", "capacity", "name", "_items", "_getters",
                 "_putters", "_closed")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is enqueued."""
        ev = Event(self.sim)
        if self._closed:
            ev.fail(ChannelClosed(self.name))
            return ev
        if self._getters:
            # hand the item straight to the longest-waiting getter
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif not self.full:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def put_then(self, item: Any, callback) -> None:
        """``put()`` and invoke ``callback(event)`` once delivery completes.

        When the item is handed straight to a waiting getter, the
        callback rides on the getter's event (which pops immediately
        after the getter's own resume — exactly where the separate put
        event would have popped, since both are appended back-to-back
        at the same timestamp) instead of scheduling a second event.
        The buffered and blocked (backpressure) cases fall back to the
        two-event path.
        """
        if self._getters and not self._closed:
            getter = self._getters.popleft()
            getter.succeed(item)
            getter.callbacks.append(callback)
            return
        self.put(item).callbacks.append(callback)

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the channel is full."""
        if self._closed:
            raise ChannelClosed(self.name)
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.full:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
            self._admit_putter()
        elif self._closed:
            ev.fail(ChannelClosed(self.name))
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple:
        """Non-blocking get; returns ``(ok, item)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def close(self) -> None:
        """Close the channel; pending and future waiters fail."""
        if self._closed:
            return
        self._closed = True
        while self._getters:
            ev = self._getters.popleft()
            ev.fail(ChannelClosed(self.name))
            ev.defuse()
        while self._putters:
            ev, _ = self._putters.popleft()
            ev.fail(ChannelClosed(self.name))
            ev.defuse()

    def _admit_putter(self) -> None:
        if self._putters and not self.full:
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.succeed(None)
