"""Measurement infrastructure for simulation runs.

Every experiment collects its numbers through these primitives so the
benchmark harness can print uniform tables:

* :class:`Counter` — monotonic event counts (messages sent, switches).
* :class:`Histogram` — latency samples with quantiles.
* :class:`TimeWeighted` — time-integrated values (utilization, queue depth).
* :class:`StatRegistry` — a namespace of the above, attached to a system.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} decremented by {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Collects scalar samples; reports mean/stdev/quantiles."""

    def __init__(self, name: str):
        self.name = name
        self.samples: List[float] = []

    def record(self, sample: float) -> None:
        self.samples.append(sample)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean; NaN when no samples were recorded (renderers
        show it as an em-dash instead of crashing a whole report).
        Clamped to [min, max]: float summation can land one ulp outside
        the sample range (e.g. three identical samples)."""
        if not self.samples:
            return float("nan")
        raw = sum(self.samples) / len(self.samples)
        return min(max(raw, self.min), self.max)

    @property
    def stdev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1))

    @property
    def min(self) -> float:
        return min(self.samples) if self.samples else float("nan")

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else float("nan")

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile, q in [0, 1]; NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} out of range")
        if not self.samples:
            return float("nan")
        xs = sorted(self.samples)
        pos = q * (len(xs) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return xs[lo]
        frac = pos - lo
        # one-sided form: exact when both endpoints are equal (the
        # symmetric lerp can round past them and break monotonicity)
        return xs[lo] + (xs[hi] - xs[lo]) * frac

    def __repr__(self) -> str:
        if not self.samples:
            return f"Histogram({self.name}, empty)"
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.1f})"


class TimeWeighted:
    """Integrates a piecewise-constant value over simulated time."""

    def __init__(self, name: str, now: int = 0, initial: float = 0.0):
        self.name = name
        self._value = initial
        self._last_change = now
        self._area = 0.0
        self._start = now

    def set(self, value: float, now: int) -> None:
        self._area += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def adjust(self, delta: float, now: int) -> None:
        self.set(self._value + delta, now)

    @property
    def current(self) -> float:
        return self._value

    def mean(self, now: int) -> float:
        """Time-weighted mean from creation until ``now``."""
        span = now - self._start
        if span <= 0:
            return self._value
        return (self._area + self._value * (now - self._last_change)) / span


class StatRegistry:
    """A flat namespace of named statistics."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, TimeWeighted] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def gauge(self, name: str, now: int = 0) -> TimeWeighted:
        if name not in self._gauges:
            self._gauges[name] = TimeWeighted(name, now)
        return self._gauges[name]

    def counter_value(self, name: str) -> int:
        return self._counters[name].value if name in self._counters else 0

    def histogram_or_none(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def snapshot(self) -> Dict[str, float]:
        """A flat dict of counter values and histogram means, for reports."""
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[f"count/{name}"] = c.value
        for name, h in self._histograms.items():
            if h.samples:
                out[f"mean/{name}"] = h.mean
                out[f"n/{name}"] = h.count
        return out
