"""Conservative parallel DES across tile shards.

The platform's tiles are partitioned into **shards**; every simulator
event carries the shard of the context that created it, and the
:class:`ShardedEventQueue` keeps one sub-queue (*lane*) per shard.
Shards synchronize with the classic conservative (null-message /
lookahead) argument: a tile can only affect another tile through the
NoC, and the fabric cannot deliver a packet across tiles in less than
the NoC's lookahead bound (:meth:`repro.noc.NocParams.lookahead_ps`) —
two link traversals (injection + ejection) of a header-only packet.  Events on different shards closer
together than that bound are therefore causally independent, which is
what lets each shard drain a whole **window** of events without
consulting the others.

Determinism
-----------

The cross-shard merge is keyed on ``(time, seq)`` where ``seq`` is the
global enqueue order — exactly the tie-break the serial
:class:`~repro.sim.engine.HeapEventQueue` uses (and, per the tie-order
invariant of DESIGN.md §13, the calendar queue's bucket-append order).
Pop order through the merge is therefore *provably identical* to the
serial engine for every workload, which is why the committed golden
trace digests stay byte-identical under ``REPRO_SHARDS`` ∈ {1, 2, 4}
(differentially enforced by ``tests/test_parallel_equivalence.py``).
Window boundaries, per-shard accounting and the cross-shard causality
check ride on top of that order without perturbing it.

Backends
--------

``inline`` (default)
    One OS thread drains the merged order directly, switching the
    active shard context per event and accounting conservative windows
    as it goes.  This is the deterministic reference; golden replays
    and CI run it.

``threads``
    One worker thread per shard-with-work per window.  The coordinator
    computes the conservative horizon ``H = t_head + lookahead``; each
    worker drains its own lane strictly below ``H`` (including
    same-shard events its callbacks schedule into the window),
    buffering trace emissions; at the barrier the buffers replay into
    the real tracer in deterministic ``(time, seq)`` order.  Sequence
    numbers assigned inside a window are *strided* per lane
    (``base + k·n_lanes + lane``) so they do not depend on thread
    interleaving — the backend is deterministic with respect to
    itself, but same-instant ties across shards may order differently
    than serial, so golden byte-identity is only claimed for
    ``inline``.  On CPython with the GIL, callback execution is
    additionally serialized by an execution lock (which also keeps
    ``sim.now`` coherent), so this backend is about protocol
    correctness — it is differentially tested against ``inline`` — not
    wall-clock; a free-threaded build could narrow the lock to the
    shared-queue operations.

A process-per-shard backend is deliberately **not** offered: the
platform model is a shared object graph, and slicing it across address
spaces is the job of :mod:`repro.runner`, which already parallelizes
across sweep points.  See DESIGN.md §15 for the full argument.

Causality checking
------------------

A push that crosses tile shards (the pushing context's shard differs
from the event's shard) closer than the lookahead bound would be
unsafe in a distributed run — it means some model code bypassed the
NoC.  Such pushes are counted in :class:`ShardStats.violations`; with
``REPRO_SHARD_STRICT=1`` (or ``Simulator(shard_strict=True)``) they
raise :class:`CausalityError` immediately.  The REP004 lint rule flags
the static shape of the same mistake.
"""

from __future__ import annotations

import heapq
import threading
from time import perf_counter as _perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim import envcfg
from repro.sim.engine import SimulationError

__all__ = [
    "GLOBAL_SHARD",
    "CausalityError",
    "ShardPlan",
    "ShardStats",
    "ShardedEventQueue",
    "ThreadShardExecutor",
    "backend_from_env",
    "partition_tiles",
    "shards_from_env",
    "strict_from_env",
]

#: Shard id of context not pinned to any tile: experiment driver
#: processes, boot-time setup, bare engine-level workloads.  Global
#: events may touch any shard's state, so windows containing one are
#: drained inline.
GLOBAL_SHARD = -1

#: Fallback conservative lookahead when no NoC parameters are known
#: (bare engine workloads that opt into sharding): one abstract time
#: unit, i.e. only true same-instant independence is exploited.
DEFAULT_LOOKAHEAD = 1


class CausalityError(SimulationError):
    """A cross-shard event was scheduled inside the lookahead window.

    In a distributed conservative run the destination shard may already
    have drained past that timestamp — some model code bypassed the
    NoC merge protocol (see REP004).
    """


def shards_from_env(default: int = 0) -> int:
    """Shard count requested via ``REPRO_SHARDS`` (0 = sharding off)."""
    raw = envcfg.raw("REPRO_SHARDS")
    if not raw:
        return default
    try:
        n = int(raw)
    except ValueError:
        raise SimulationError(f"REPRO_SHARDS={raw!r} is not an integer") from None
    if n < 0:
        raise SimulationError(f"REPRO_SHARDS={n} is negative")
    return n


def backend_from_env(default: str = "inline") -> str:
    """Shard executor backend from ``REPRO_SHARD_BACKEND``."""
    backend = envcfg.raw("REPRO_SHARD_BACKEND") or default
    if backend not in ("inline", "threads"):
        raise SimulationError(
            f"unknown shard backend {backend!r} (choose inline or threads); "
            f"process-per-shard is intentionally unsupported — use the "
            f"repro.runner process pool across sweep points instead")
    return backend


def strict_from_env(default: bool = False) -> bool:
    """Whether causality violations raise, from ``REPRO_SHARD_STRICT``."""
    raw = envcfg.raw("REPRO_SHARD_STRICT")
    if not raw:
        return default
    return raw not in ("0", "false", "no")


def partition_tiles(tile_ids: Sequence[int], n_shards: int,
                    policy: str = "block") -> Dict[int, int]:
    """Deterministic tile → shard map.

    ``block`` keeps contiguous tile-id ranges together (neighbours in
    the star-mesh share routers, so this minimizes cross-shard links);
    ``modulo`` stripes tiles round-robin (balances heterogeneous tile
    mixes).  Both are pure functions of the sorted tile-id list.
    """
    tiles = sorted(tile_ids)
    if n_shards <= 0:
        raise SimulationError(f"n_shards must be positive, got {n_shards}")
    n_shards = min(n_shards, len(tiles)) or 1
    mapping: Dict[int, int] = {}
    if policy == "block":
        per = (len(tiles) + n_shards - 1) // n_shards
        for i, tid in enumerate(tiles):
            mapping[tid] = i // per
    elif policy == "modulo":
        for i, tid in enumerate(tiles):
            mapping[tid] = i % n_shards
    else:
        raise SimulationError(
            f"unknown shard policy {policy!r} (choose block or modulo)")
    return mapping


class ShardPlan:
    """Frozen description of one sharded run: tile map + lookahead."""

    __slots__ = ("n_shards", "policy", "tile_to_shard", "lookahead")

    def __init__(self, n_shards: int, tile_to_shard: Dict[int, int],
                 lookahead: int, policy: str = "block"):
        self.n_shards = n_shards
        self.policy = policy
        self.tile_to_shard = dict(tile_to_shard)
        self.lookahead = lookahead

    @classmethod
    def for_tiles(cls, tile_ids: Sequence[int], n_shards: int,
                  lookahead: int, policy: str = "block") -> "ShardPlan":
        mapping = partition_tiles(tile_ids, n_shards, policy)
        real = max(mapping.values()) + 1 if mapping else 1
        return cls(real, mapping, lookahead, policy)

    def shard_of(self, tile_id: int) -> int:
        return self.tile_to_shard.get(tile_id, GLOBAL_SHARD)

    def tiles_of(self, shard: int) -> List[int]:
        return sorted(t for t, s in self.tile_to_shard.items() if s == shard)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardPlan {self.n_shards} shards policy={self.policy} "
                f"lookahead={self.lookahead}ps tiles={len(self.tile_to_shard)}>")


class ShardStats:
    """Counters the sharded drain maintains (cheap; always on)."""

    __slots__ = ("windows", "events", "cross_pushes", "violations",
                 "max_window_events", "barrier_events", "events_by_shard")

    def __init__(self) -> None:
        self.windows = 0            # conservative windows opened
        self.events = 0             # events drained through the merge
        self.cross_pushes = 0       # pushes that crossed tile shards
        self.violations = 0         # cross-shard pushes inside lookahead
        self.max_window_events = 0  # largest single window
        self.barrier_events = 0     # events executed via worker barriers
        self.events_by_shard: Dict[int, int] = {}

    def count_shards(self, per_shard: Dict[int, int]) -> None:
        """Merge one drain's per-shard event tallies."""
        by = self.events_by_shard
        for shard, n in per_shard.items():
            by[shard] = by.get(shard, 0) + n

    def as_dict(self) -> Dict[str, int]:
        d = {s: getattr(self, s) for s in self.__slots__
             if s != "events_by_shard"}
        d["events_by_shard"] = dict(sorted(self.events_by_shard.items()))
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = " ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<ShardStats {inner}>"


# -- the sharded event queue --------------------------------------------------

class ShardedEventQueue:
    """Per-shard sub-queues merged deterministically on ``(time, seq)``.

    Lane 0 holds :data:`GLOBAL_SHARD` events; lane ``s + 1`` holds tile
    shard ``s``.  Each push is stamped with a globally monotone ``seq``
    — assigned in enqueue order exactly like the serial heap scheduler
    — and entered both into its lane heap and into the merge heap, so
    :meth:`pop` returns the *serial* order while :meth:`lane_head` /
    :meth:`pop_lane_upto` let the window executor drain one lane
    independently.

    ``base`` records which serial scheduler flavor the run was
    configured with ("calendar" or "heap"); lanes are always plain
    ``(time, seq, event)`` heaps — the merge needs the per-entry seq
    either way, and the two serial flavors pop identically by the
    tie-order invariant, so there is nothing to emulate.

    During a threads-backend window (:meth:`begin_window` ..
    :meth:`end_window`) pushes take an internal lock and draw their
    seq from a per-lane stride (``base + k·n_lanes + lane`` for the
    *pushing worker's* lane), keeping seq assignment deterministic
    under arbitrary thread interleaving.
    """

    name = "sharded"

    __slots__ = ("_lanes", "_merge", "_seq", "_len", "sim", "stats",
                 "lookahead", "strict", "_n_lanes", "base", "_lock",
                 "_window", "_window_base", "_window_counts", "_tls")

    def __init__(self, n_shards: int, base: str = "calendar",
                 lookahead: int = DEFAULT_LOOKAHEAD,
                 strict: bool = False) -> None:
        self._n_lanes = n_shards + 1
        self._lanes: List[list] = [[] for _ in range(self._n_lanes)]
        self._merge: List[Tuple[int, int, int]] = []   # (time, seq, lane)
        self._seq = 0
        self._len = 0
        self.sim = None                # back-reference, set by Simulator
        self.stats = ShardStats()
        self.lookahead = lookahead
        self.strict = strict
        self.base = base
        self._lock = threading.Lock()
        self._window = False           # inside a threads-backend window?
        self._window_base = 0
        self._window_counts: List[int] = []
        self._tls = threading.local()  # .lane = the worker's lane id

    # the queue contract ------------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def push(self, when: int, event) -> None:
        shard = getattr(event, "shard", GLOBAL_SHARD)
        lane = shard + 1
        if lane < 0 or lane >= self._n_lanes:
            lane = 0
        sim = self.sim
        if sim is not None:
            src = sim._active_shard
            if (src != shard and src != GLOBAL_SHARD
                    and shard != GLOBAL_SHARD):
                self.stats.cross_pushes += 1
                if when < sim.now + self.lookahead:
                    self._violation(shard, src, when, sim.now)
        if not self._window:
            seq = self._seq
            self._seq = seq + 1
            heapq.heappush(self._lanes[lane], (when, seq, event))
            heapq.heappush(self._merge, (when, seq, lane))
            self._len += 1
            return
        # threads-backend window: deterministic per-lane seq stride,
        # shared heaps guarded by the lock
        src_lane = getattr(self._tls, "lane", 0)
        if lane == 0 and src_lane != 0:
            # a worker minted global-lane work mid-window: it would only
            # drain *next* window, possibly behind later-time events —
            # the conservative protocol cannot order it
            self._violation(GLOBAL_SHARD, src_lane - 1, when,
                            sim.now if sim is not None else when)
        counts = self._window_counts
        k = counts[src_lane]
        counts[src_lane] = k + 1
        seq = self._window_base + k * self._n_lanes + src_lane
        with self._lock:
            heapq.heappush(self._lanes[lane], (when, seq, event))
            heapq.heappush(self._merge, (when, seq, lane))
            self._len += 1

    def _violation(self, shard: int, src: int, when: int, now: int) -> None:
        self.stats.violations += 1
        sim = self.sim
        if sim is not None and sim.metrics is not None:
            sim.metrics.inc("sim/shards/violations")
        if self.strict:
            raise CausalityError(
                f"event for shard {shard} scheduled at t={when} from "
                f"shard {src} at t={now}: inside the lookahead bound "
                f"({self.lookahead} ps); cross-shard effects must go "
                f"through the NoC")

    def pop(self):
        when, seq, lane = heapq.heappop(self._merge)
        # the merge top is the global (time, seq) minimum; it lives in
        # ``lane``, where it is also the lane minimum — pop must agree
        lwhen, lseq, event = heapq.heappop(self._lanes[lane])
        if lwhen != when or lseq != seq:  # pragma: no cover - invariant
            raise SimulationError(
                f"sharded queue desynchronized: merge head ({when},{seq}) "
                f"!= lane {lane} head ({lwhen},{lseq})")
        self._len -= 1
        return when, event

    def peek(self) -> Optional[int]:
        return self._merge[0][0] if self._merge else None

    # window-executor surface -------------------------------------------------

    @property
    def n_lanes(self) -> int:
        return self._n_lanes

    def lane_head(self, lane: int) -> Optional[Tuple[int, int]]:
        q = self._lanes[lane]
        return (q[0][0], q[0][1]) if q else None

    def lane_len(self, lane: int) -> int:
        return len(self._lanes[lane])

    def begin_window(self) -> None:
        """Enter concurrent mode: locked pushes, strided seq assignment."""
        # round the stride base up to a lane multiple so strided seqs
        # stay unique w.r.t. everything assigned before the window
        self._window_base = self._seq + (-self._seq) % self._n_lanes
        self._window_counts = [0] * self._n_lanes
        self._window = True

    def end_window(self) -> None:
        """Leave concurrent mode; advance ``seq`` past every strided id."""
        self._window = False
        kmax = max(self._window_counts, default=0)
        if kmax:
            self._seq = self._window_base + kmax * self._n_lanes

    def bind_worker(self, lane: int) -> None:
        """Declare the calling thread as lane ``lane``'s window worker."""
        self._tls.lane = lane

    def pop_lane_upto(self, lane: int, horizon: int):
        """Pop the lane head if it lies strictly below ``horizon``.

        Used by window workers; the merge-heap entry of the popped
        event is retired later by :meth:`compact`.
        """
        with self._lock:
            q = self._lanes[lane]
            if not q or q[0][0] >= horizon:
                return None
            self._len -= 1
            return heapq.heappop(q)

    def compact(self, drained_seqs) -> None:
        """Drop the merge entries of worker-executed events (barrier)."""
        merge = self._merge
        while merge and merge[0][1] in drained_seqs:
            heapq.heappop(merge)
        if drained_seqs and merge:
            live = [e for e in merge if e[1] not in drained_seqs]
            if len(live) != len(merge):
                self._merge = live
                heapq.heapify(live)


# -- the thread-per-shard executor --------------------------------------------

class _WindowTraceBuffer:
    """Tracer stand-in during a window: records emits for barrier replay.

    Entries carry the ``(time, seq)`` of the event whose callbacks
    emitted them plus an emission index, so the barrier can replay them
    into the real tracer in exactly the deterministic merge order.
    Workers call :meth:`set_key` (under the execution lock) before
    running an event's callbacks; emissions therefore never race.
    """

    __slots__ = ("entries", "_key")

    def __init__(self) -> None:
        self.entries: List[Tuple[int, int, int, int, str, dict]] = []
        self._key = (0, 0)

    def set_key(self, when: int, seq: int) -> None:
        self._key = (when, seq)

    def emit(self, sim, kind: str, **fields: Any) -> None:
        when, seq = self._key
        self.entries.append((when, seq, len(self.entries), sim.trace_id,
                             kind, fields))


class ThreadShardExecutor:
    """Worker-per-shard window executor (the ``threads`` backend).

    Protocol per window (driven by ``Simulator._run_windows``):

    1. the coordinator computes the conservative horizon
       ``H = t_head + lookahead``;
    2. windows whose head includes a :data:`GLOBAL_SHARD` event — or
       with fewer than two lanes holding work — drain inline through
       the deterministic merge instead;
    3. otherwise each involved lane gets a worker that drains the lane
       strictly below ``H``, including same-lane events scheduled into
       the window by its own callbacks;
    4. barrier: buffered trace emissions replay into the real tracer in
       ``(time, seq)`` order (with ``sim.now`` rolled to each entry's
       timestamp so records carry correct times), stale merge entries
       retire, and the strided seq window closes.

    Callback execution is serialized by ``_exec_lock``: it keeps
    ``sim.now`` (read by every ``Event.succeed``) coherent and makes
    all model-state mutation race-free on any build.  Under the GIL
    this costs nothing extra; a free-threaded port would shrink this
    lock to the queue and clock only.
    """

    def __init__(self, sim):
        self.sim = sim
        self._exec_lock = threading.Lock()

    def _drain_lane(self, lane: int, horizon: int, buffer, failures,
                    drained: list, profiler) -> None:
        sim = self.sim
        eq = sim._eq
        eq.bind_worker(lane)
        shard = lane - 1
        clock = None
        if profiler is not None:
            clock = _perf_counter  # repro: noqa[REP001] host-clock self-profiling
        while True:
            entry = eq.pop_lane_upto(lane, horizon)
            if entry is None:
                return
            when, seq, event = entry
            drained.append((when, seq))
            with self._exec_lock:
                sim.now = when
                sim._active_shard = shard
                if buffer is not None:
                    buffer.set_key(when, seq)
                    buffer.emit(sim, "evq_pop", cls=type(event).__name__)
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                try:
                    if profiler is None:
                        for callback in callbacks:
                            callback(event)
                    else:
                        profiler.on_step()
                        for callback in callbacks:
                            t0 = clock()
                            callback(event)
                            dt = clock() - t0
                            profiler.record(
                                getattr(callback, "__self__", None), dt)
                            profiler.record_shard(shard, dt)
                    if not event._ok and not event._defused:
                        raise event._value
                except BaseException as exc:  # surfaced after the barrier
                    failures.append((when, seq, exc))
                    return

    def run_window(self, horizon: int, lanes: List[int]) -> int:
        """Drain one window across ``lanes``; returns events executed."""
        sim = self.sim
        eq = sim._eq
        tracer = sim.tracer
        profiler = sim.profiler
        buffer = _WindowTraceBuffer() if tracer is not None else None
        failures: List[Tuple[int, int, BaseException]] = []
        drained: List[Tuple[int, int]] = []
        # model emit sites read sim.tracer — point them at the buffer so
        # window-time emissions are captured for the barrier replay
        sim.tracer = buffer
        eq.begin_window()
        try:
            threads = [threading.Thread(
                target=self._drain_lane,
                args=(lane, horizon, buffer, failures, drained, profiler),
                name=f"repro-shard-{lane - 1}", daemon=True)
                for lane in lanes]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            eq.end_window()
            sim.tracer = tracer
            sim._active_shard = GLOBAL_SHARD
        if drained:
            sim.now = max(w for w, _ in drained)
        # barrier: deterministic replay of buffered trace emissions
        if buffer is not None and buffer.entries:
            end_now = sim.now
            for when, _seq, _idx, _tid, kind, fields in sorted(
                    buffer.entries, key=lambda e: (e[0], e[1], e[2])):
                sim.now = when
                tracer.emit(sim, kind, **fields)
            sim.now = end_now
        eq.compact({s for _, s in drained})
        eq.stats.barrier_events += len(drained)
        per_shard: Dict[int, int] = {}
        for _, s in drained:
            per_shard[s] = per_shard.get(s, 0) + 1
        eq.stats.count_shards(per_shard)
        if failures:
            failures.sort(key=lambda f: (f[0], f[1]))
            raise failures[0][2]
        return len(drained)
