"""Analyzer infrastructure: findings, policy, suppressions, the runner.

Everything here is stdlib-only and import-cheap — the CI gate invokes
``repro lint`` on every push, so startup must not drag the experiment
stack in (see ``tests/test_cli_light.py``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "DEFAULT_TARGETS",
    "Finding",
    "LintContext",
    "all_rules",
    "collect_files",
    "run_lint",
]


# -- policy -------------------------------------------------------------------
#
# The rules need to know which modules *matter* for determinism.  Two
# orthogonal classifications:
#
# * sim-critical — modules that schedule events or emit trace records;
#   an unordered iteration here can reorder the event queue and break
#   every golden digest.
# * host-side — modules that legitimately touch wall-clock time or the
#   process RNG: the runner's per-point seeding, the bench harness'
#   fingerprinting/timing, and the observability layer's self-profiler.
#
# Examples and benchmarks build platforms and schedule events, so they
# count as sim-critical; tests are sim-critical for iteration hazards
# but may use seeded randomness freely (the entropy check is scoped to
# library code under src/).

SIM_CRITICAL_PREFIXES = (
    "repro.sim", "repro.dtu", "repro.noc", "repro.mux", "repro.kernel",
    "repro.tiles", "repro.services", "repro.apps", "repro.posix",
    "repro.linuxsim", "repro.core.exps", "repro.faults", "repro.workloads",
    "repro.testing",
)

HOST_MODULE_PREFIXES = (
    "repro.runner", "repro.bench", "repro.obs", "repro.analysis",
    "repro.cli", "repro.hw", "repro.core.report",
)

# Package layer order for REP003: an import whose target ranks *above*
# the importing package goes upward through the stack and is flagged.
# Equal ranks may import each other (kernel <-> mux <-> services form
# the OS layer; core <-> api <-> testing form the experiment layer).
LAYER_RANKS = {
    "sim": 0,
    "noc": 1, "obs": 1,
    "dtu": 2,
    "tiles": 3, "hw": 3, "linuxsim": 3,
    "kernel": 4, "mux": 4, "services": 4, "posix": 4, "workloads": 4,
    "faults": 5, "apps": 5,
    "core": 6, "api": 6, "testing": 6,
    "bench": 7, "runner": 7,
    "cli": 8, "analysis": 8, "__main__": 8, "__init__": 8,
}

# Default lint targets, relative to the repo root.
DEFAULT_TARGETS = ("src", "tests", "examples", "benchmarks", "scripts")

# Directories never collected when walking the default targets (fixture
# files *are* lintable when named explicitly — the tests do exactly
# that).
EXCLUDED_DIR_NAMES = {
    "__pycache__", ".git", ".repro-cache", ".pytest_cache",
    "lint_fixtures", "golden",
}

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule family, sub-check, and precise location."""

    rule: str          # e.g. "REP001"
    check: str         # e.g. "unordered-iter"
    path: str          # repo-relative posix path
    line: int
    col: int
    message: str
    symbol: str = ""   # enclosing def/class qualname (baseline key)

    def key(self) -> str:
        """Line-number-free identity used by the committed baseline.

        Keyed on (rule, check, path, symbol) so entries survive
        unrelated edits that shift line numbers; multiple findings
        sharing a key are baselined by count.
        """
        return f"{self.rule}::{self.check}::{self.path}::{self.symbol}"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class LintContext:
    """Everything a rule needs to analyze one file."""

    def __init__(self, path: Path, root: Path, source: str):
        self.abs_path = path
        self.root = root
        try:
            rel = path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = path
        self.path = rel.as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.module = module_name_for(self.path)
        self._scopes = _scope_spans(self.tree)

    # -- policy queries -------------------------------------------------------

    @property
    def is_sim_critical(self) -> bool:
        if self.module.startswith(SIM_CRITICAL_PREFIXES):
            return True
        top = self.path.split("/", 1)[0]
        return top in ("examples", "benchmarks", "tests")

    @property
    def is_host_module(self) -> bool:
        return self.module.startswith(HOST_MODULE_PREFIXES)

    @property
    def is_library_code(self) -> bool:
        """True for modules under ``src/repro`` (the shipped library)."""
        return self.module.startswith("repro")

    # -- helpers --------------------------------------------------------------

    def qualname_at(self, line: int) -> str:
        """Innermost def/class qualname containing ``line`` ('' = module)."""
        best = ""
        best_span = None
        for start, end, name in self._scopes:
            if start <= line <= end:
                if best_span is None or (end - start) < best_span:
                    best, best_span = name, end - start
        return best

    def finding(self, rule: str, check: str, node: ast.AST,
                message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(rule=rule, check=check, path=self.path, line=line,
                       col=col, message=message,
                       symbol=self.qualname_at(line))

    def suppressed_rules(self, line: int) -> Optional[Set[str]]:
        """Rule IDs silenced on ``line`` (empty set = all), or None."""
        if not (1 <= line <= len(self.lines)):
            return None
        m = _NOQA_RE.search(self.lines[line - 1])
        if m is None:
            return None
        rules = m.group("rules")
        if rules is None:
            return set()
        return {r.strip().upper() for r in rules.split(",") if r.strip()}

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressed_rules(finding.line)
        if rules is None:
            return False
        return not rules or finding.rule in rules


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``; files outside
    ``src`` keep their top directory as the root package
    (``tests.test_noc``, ``examples.quickstart``).
    """
    p = Path(rel_path)
    parts = list(p.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _scope_spans(tree: ast.Module) -> List[Tuple[int, int, str]]:
    spans: List[Tuple[int, int, str]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                end = getattr(child, "end_lineno", child.lineno)
                spans.append((child.lineno, end, qual))
                visit(child, qual)
            else:
                visit(child, prefix)

    visit(tree, "")
    return spans


# -- rule registry ------------------------------------------------------------

@dataclass
class Rule:
    """One rule family: an ID, a description, and a checker callable."""

    id: str
    name: str
    description: str
    checker: object = field(repr=False, default=None)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return self.checker(ctx)


_REGISTRY: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule


def all_rules() -> Dict[str, Rule]:
    """The registry (id -> Rule), loading the rule modules on demand."""
    if not _REGISTRY:
        from repro.analysis import concurrency, determinism, layering, sharding

        register(determinism.RULE)
        register(concurrency.RULE)
        register(layering.RULE)
        register(sharding.RULE)
    return dict(_REGISTRY)


# -- collection and the runner ------------------------------------------------

def collect_files(targets: Sequence[str], root: Path) -> List[Path]:
    """Python files under ``targets`` (files or directories).

    Directory walks skip ``EXCLUDED_DIR_NAMES``; explicitly named files
    are always included, which is how the fixture tests lint
    known-bad snippets that live inside an excluded directory.
    """
    files: List[Path] = []
    seen = set()
    for target in targets:
        p = Path(target)
        if not p.is_absolute():
            p = root / p
        if p.is_file():
            if p not in seen:
                seen.add(p)
                files.append(p)
            continue
        if not p.is_dir():
            continue
        for f in sorted(p.rglob("*.py")):
            # exclusion is judged below the walk target, so a fixture
            # mini-tree can be linted by naming it as the target even
            # though default walks skip it
            if any(part in EXCLUDED_DIR_NAMES
                   for part in f.relative_to(p).parts):
                continue
            if f not in seen:
                seen.add(f)
                files.append(f)
    return files


def run_lint(targets: Sequence[str] = DEFAULT_TARGETS,
             root: Optional[Path] = None,
             select: Optional[Iterable[str]] = None,
             ignore: Optional[Iterable[str]] = None) -> List[Finding]:
    """Run every enabled rule over ``targets``; returns sorted findings.

    ``select`` keeps only the named rule IDs; ``ignore`` drops the
    named ones.  ``# repro: noqa`` suppressions are applied here, so
    callers only ever see actionable findings.
    """
    root = Path.cwd() if root is None else Path(root)
    rules = all_rules()
    enabled = set(rules)
    if select is not None:
        wanted = {s.upper() for s in select}
        unknown = wanted - enabled
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
        enabled &= wanted
    if ignore is not None:
        enabled -= {s.upper() for s in ignore}

    findings: List[Finding] = []
    for path in collect_files(targets, root):
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError):
            continue
        try:
            ctx = LintContext(path, root, source)
        except SyntaxError:
            findings.append(Finding(
                rule="REP000", check="syntax-error", path=str(path), line=1,
                col=1, message="file does not parse; skipped"))
            continue
        for rule_id in sorted(enabled):
            for finding in rules[rule_id].check(ctx):
                if not ctx.is_suppressed(finding):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.check))
    return findings
