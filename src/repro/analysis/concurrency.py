"""REP002 — sim-concurrency hazards.

The engine (:mod:`repro.sim.engine`) catches most of these at runtime,
but only on the path actually executed; a rarely-taken branch that
yields a string or re-triggers an event survives every test until a
workload finds it.  Four sub-checks:

``bad-yield``
    A process generator yields a constant that is not an ``Event``,
    ``int`` or ``None`` (the only things the engine accepts): strings,
    floats, bytes, or container literals.  ``yield 2.5`` reads like
    "sleep 2.5 units" but raises ``SimulationError`` mid-simulation.

``double-trigger``
    ``Event.succeed()``/``fail()`` called twice on the same name along
    one straight-line statement sequence.  An event triggers exactly
    once; the second call raises — and if the first call's callback
    chain already ran, the damage (a lost wakeup's mirror image) is
    unrecoverable.  The check is conservative: only top-level calls in
    the same statement list count, so ``if/else`` arms never
    interfere.

``nongen-process``
    A non-generator callable handed to ``Simulator.process(...)`` /
    ``sim.process(...)``: a lambda (lambdas cannot contain ``yield``)
    or a function defined in the same file without any ``yield``.
    ``process`` needs an *already-called* generator; passing a plain
    callable fails only when the process is first resumed.

``blocking-call``
    Host-blocking operations inside a process generator: ``time.sleep``
    (stalls the host, not simulated time), builtin ``open``/``input``,
    ``socket``/``subprocess``/``requests``/``os.system``.  Process
    bodies run inside the event loop; host I/O there destroys both
    performance measurements and (for anything timing-sensitive)
    reproducibility.  Simulated file I/O goes through the vfs/m3fs
    layers, which are generators themselves.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.core import Finding, LintContext, Rule

_BLOCKING_MODULES = {"socket", "subprocess", "requests", "urllib"}

RULE_ID = "REP002"


def check(ctx: LintContext) -> Iterator[Finding]:
    yield from _check_bad_yield(ctx)
    yield from _check_double_trigger(ctx)
    yield from _check_nongen_process(ctx)
    yield from _check_blocking_call(ctx)


# -- bad-yield ----------------------------------------------------------------

def _is_data_iterator(func: ast.AST) -> bool:
    """Generators that are *not* process bodies: data iterators
    (annotated ``Iterator``/``Iterable``/``Generator[X, ...]`` with a
    non-Event yield type is still flagged conservatively only via the
    annotation name) and decorator-driven generators (pytest fixtures,
    contextmanagers), whose yielded value goes to the framework, not
    the engine."""
    returns = getattr(func, "returns", None)
    ann = ""
    if isinstance(returns, ast.Name):
        ann = returns.id
    elif isinstance(returns, ast.Subscript) and isinstance(returns.value,
                                                           ast.Name):
        ann = returns.value.id
    elif isinstance(returns, ast.Constant) and isinstance(returns.value, str):
        ann = returns.value.split("[", 1)[0].strip()
    if ann in ("Iterator", "Iterable", "AsyncIterator", "AsyncIterable"):
        return True
    for dec in getattr(func, "decorator_list", []):
        node = dec.func if isinstance(dec, ast.Call) else dec
        name = (node.attr if isinstance(node, ast.Attribute)
                else node.id if isinstance(node, ast.Name) else "")
        if name in ("fixture", "contextmanager", "asynccontextmanager"):
            return True
    return False


def _check_bad_yield(ctx: LintContext) -> Iterator[Finding]:
    if not ctx.is_sim_critical:
        return
    exempt_lines: Set[int] = set()
    for func in ast.walk(ctx.tree):
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and _is_data_iterator(func):
            end = getattr(func, "end_lineno", func.lineno)
            exempt_lines.update(range(func.lineno, end + 1))
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Yield) or node.value is None:
            continue
        if node.lineno in exempt_lines:
            continue
        v = node.value
        bad = ""
        if isinstance(v, ast.Constant):
            if isinstance(v.value, bool) or v.value is None:
                pass  # None is the cooperative yield
            elif isinstance(v.value, int):
                pass  # sleep-n fast path
            else:
                bad = f"constant {v.value!r}"
        elif isinstance(v, (ast.List, ast.Dict, ast.Set, ast.JoinedStr)):
            bad = f"a {type(v).__name__.lower()} literal"
        elif isinstance(v, ast.Tuple):
            bad = "a tuple literal"
        if bad:
            yield ctx.finding(
                RULE_ID, "bad-yield", node,
                f"process yields {bad}; the engine accepts only an Event, "
                f"an int delay, or None (SimulationError at runtime)")


# -- double-trigger -----------------------------------------------------------

def _target_key(func: ast.Attribute) -> str:
    """Dotted receiver of ``<recv>.succeed`` as text, '' if dynamic."""
    parts: List[str] = []
    node: ast.AST = func.value
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _assigned_names(stmt: ast.stmt) -> Set[str]:
    names: Set[str] = set()
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for t in targets:
            for sub in ast.walk(t):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def _scan_block(ctx: LintContext, body: List[ast.stmt]) -> Iterator[Finding]:
    triggered: Dict[str, int] = {}
    for stmt in body:
        # reassigning the base name starts a fresh event
        for name in _assigned_names(stmt):
            for key in [k for k in triggered
                        if k == name or k.startswith(name + ".")]:
                del triggered[key]
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            f = call.func
            if (isinstance(f, ast.Attribute)
                    and f.attr in ("succeed", "fail")):
                key = _target_key(f)
                if key:
                    if key in triggered:
                        yield ctx.finding(
                            RULE_ID, "double-trigger", call,
                            f"{key}.{f.attr}() but {key} was already "
                            f"triggered on this path (line "
                            f"{triggered[key]}); an event fires exactly "
                            f"once")
                    else:
                        triggered[key] = stmt.lineno
        # recurse into nested statement lists with fresh tracking
        for attr in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, attr, None)
            if nested:
                yield from _scan_block(ctx, nested)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _scan_block(ctx, handler.body)


def _check_double_trigger(ctx: LintContext) -> Iterator[Finding]:
    if not ctx.is_sim_critical:
        return
    yield from _scan_block(ctx, ctx.tree.body)
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _scan_block(ctx, node.body)


# -- nongen-process -----------------------------------------------------------

def _plain_functions(tree: ast.Module) -> Set[str]:
    """Names of same-file functions that contain no yield."""
    plain: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            has_yield = any(isinstance(sub, (ast.Yield, ast.YieldFrom))
                            for sub in ast.walk(node))
            if not has_yield:
                plain.add(node.name)
            else:
                plain.discard(node.name)
    return plain


def _check_nongen_process(ctx: LintContext) -> Iterator[Finding]:
    if not ctx.is_sim_critical:
        return
    plain = _plain_functions(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "process" and node.args):
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Lambda):
            yield ctx.finding(
                RULE_ID, "nongen-process", arg,
                "lambda passed to process(): lambdas cannot contain "
                "yield, so this is never a generator")
        elif isinstance(arg, ast.Name) and arg.id in plain:
            yield ctx.finding(
                RULE_ID, "nongen-process", arg,
                f"{arg.id} has no yield and is passed to process() "
                f"uncalled; process() needs a generator object "
                f"(call it, or make it a generator)")


# -- blocking-call ------------------------------------------------------------

def _check_blocking_call(ctx: LintContext) -> Iterator[Finding]:
    if not (ctx.is_sim_critical and ctx.is_library_code):
        return
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        has_yield = any(isinstance(sub, (ast.Yield, ast.YieldFrom))
                        for sub in ast.walk(func))
        if not has_yield:
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            f = node.func
            desc = ""
            if isinstance(f, ast.Name) and f.id in ("open", "input"):
                desc = f"builtin {f.id}()"
            elif isinstance(f, ast.Attribute) and isinstance(f.value,
                                                             ast.Name):
                mod, attr = f.value.id, f.attr
                if mod == "time" and attr == "sleep":
                    desc = "time.sleep()"
                elif mod == "os" and attr == "system":
                    desc = "os.system()"
                elif mod in _BLOCKING_MODULES:
                    desc = f"{mod}.{attr}()"
            if desc:
                yield ctx.finding(
                    RULE_ID, "blocking-call", node,
                    f"{desc} inside a process generator blocks the host "
                    f"event loop; use simulated time (yield a delay) or "
                    f"the vfs layer for I/O")


RULE = Rule(
    id=RULE_ID,
    name="sim-concurrency-hazards",
    description=("non-Event yields, double Event triggers, non-generator "
                 "process targets, blocking host calls in process bodies"),
    checker=check,
)
