"""REP001 — determinism hazards.

Four sub-checks, each targeting a way reproducibility has actually
been lost in discrete-event simulators:

``unordered-iter``
    Iteration over a ``set``/``frozenset`` in a sim-critical module,
    or a ``for`` loop over a dict view (``.keys()``/``.values()``/
    ``.items()``) whose body schedules events or yields.  Set order
    depends on insertion history and — for str elements — on
    ``PYTHONHASHSEED``; feeding it into the event queue reorders the
    trace.  Dict views preserve insertion order, so they are only
    flagged where the loop body visibly reaches the scheduler.
    Fix: wrap the iterable in ``sorted(...)``.

``entropy``
    Use of the process-global RNG (``random.random()`` and friends),
    wall-clock time (``time.time``/``perf_counter``/``sleep``...),
    ``uuid``, or ``os.urandom`` in library code outside the sanctioned
    host-side modules (``repro.runner`` seeding, ``repro.bench``
    fingerprinting, ``repro.obs`` profiling).  Seeded
    ``random.Random(seed)`` instances are the supported way to be
    random and are never flagged.

``id-ordering``
    ``id()``/``hash()`` calls in sim-critical library code (outside
    ``__repr__``/``__str__``/``__hash__``).  ``id()`` is an address —
    different every run; ``hash(str)`` is salted.  Either used as a
    tie-break or dict key that reaches trace output breaks digests.

``float-simtime``
    A float-producing expression (true division, a float literal, or
    ``float()``) flowing directly into simulated time: a ``timeout``
    argument, a ``delay=`` keyword of ``succeed``/``fail``, or a
    ``yield`` inside a process generator.  Simulated time is an
    integer (DESIGN.md section 5); floats drift and compare
    unpredictably.  Wrapping in ``round()``/``int()`` (or using
    ``//``) converts at a well-defined point and is accepted.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.core import Finding, LintContext, Rule

# random.* callables that tap the process-global RNG.  Constructing a
# seeded generator (Random/SystemRandom is its own finding elsewhere if
# misused) is fine.
_RANDOM_OK = {"Random"}
_TIME_BAD = {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns", "process_time", "process_time_ns", "sleep"}
_OS_BAD = {"urandom", "getrandom"}

# Callables whose result does not depend on iteration order: a set
# iterated straight into one of these is harmless.
_ORDER_INSENSITIVE = {"sum", "len", "min", "max", "any", "all", "sorted",
                      "set", "frozenset", "Counter"}

# Method names that reach the event queue or the trace stream.  A dict
# view driven loop whose body calls one of these schedules work in
# iteration order.
_SCHEDULING_NAMES = {
    "succeed", "fail", "process", "timeout", "put", "put_then", "send",
    "push", "spawn", "run_proc", "emit", "wake", "interrupt", "transmit",
    "deliver", "configure", "inject",
}

_REPR_LIKE = {"__repr__", "__str__", "__hash__", "__format__"}


def check(ctx: LintContext) -> Iterator[Finding]:
    yield from _check_unordered_iteration(ctx)
    yield from _check_entropy(ctx)
    yield from _check_id_ordering(ctx)
    yield from _check_float_simtime(ctx)


# -- unordered-iter -----------------------------------------------------------

def _set_like_names(tree: ast.Module) -> Set[str]:
    """Variable/attribute names this file visibly binds to sets."""
    names: Set[str] = set()

    def target_name(t: ast.AST) -> str:
        if isinstance(t, ast.Name):
            return t.id
        if isinstance(t, ast.Attribute):
            return t.attr
        return ""

    def is_set_expr(v: ast.AST) -> bool:
        if isinstance(v, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(v, ast.Call) and isinstance(v.func, ast.Name)
                and v.func.id in ("set", "frozenset"))

    def is_set_annotation(a: ast.AST) -> bool:
        if isinstance(a, ast.Name):
            return a.id in ("set", "frozenset")
        if isinstance(a, ast.Subscript):
            base = a.value
            if isinstance(base, ast.Name):
                return base.id in ("set", "frozenset", "Set", "FrozenSet")
        if isinstance(a, ast.Constant) and isinstance(a.value, str):
            return a.value.lstrip().startswith(("set", "Set", "frozenset",
                                                "FrozenSet"))
        return False

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and is_set_expr(node.value):
            for t in node.targets:
                n = target_name(t)
                if n:
                    names.add(n)
        elif isinstance(node, ast.AnnAssign):
            n = target_name(node.target)
            if n and (is_set_annotation(node.annotation)
                      or (node.value is not None and is_set_expr(node.value))):
                names.add(n)
    return names


def _is_set_iterable(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.Attribute) and node.attr in set_names:
        return True
    return False


def _is_dict_view(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and not node.args
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "values", "items"))


def _body_schedules(node: ast.For) -> str:
    """The first scheduling construct in the loop body, or ''."""
    for stmt in node.body + node.orelse:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return "yield"
            if isinstance(sub, ast.Call):
                f = sub.func
                name = (f.attr if isinstance(f, ast.Attribute)
                        else f.id if isinstance(f, ast.Name) else "")
                if name in _SCHEDULING_NAMES:
                    return f"{name}()"
    return ""


def _order_insensitive_consumers(tree: ast.Module) -> Set[int]:
    """ids of comprehension/genexp nodes passed straight to an
    order-insensitive callable (``sum(x for x in s)`` and friends)."""
    ok: Set[int] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE):
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                    ast.SetComp)):
                    ok.add(id(arg))
    return ok


def _check_unordered_iteration(ctx: LintContext) -> Iterator[Finding]:
    if not ctx.is_sim_critical:
        return
    set_names = _set_like_names(ctx.tree)
    benign = _order_insensitive_consumers(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For):
            if _is_set_iterable(node.iter, set_names):
                yield ctx.finding(
                    "REP001", "unordered-iter", node.iter,
                    "iteration over a set in a sim-critical module; "
                    "wrap in sorted(...) to fix the order")
            elif _is_dict_view(node.iter):
                sched = _body_schedules(node)
                if sched:
                    attr = node.iter.func.attr  # type: ignore[union-attr]
                    yield ctx.finding(
                        "REP001", "unordered-iter", node.iter,
                        f"loop over .{attr}() schedules events ({sched}) "
                        f"in iteration order; iterate sorted(...) so the "
                        f"event-queue order cannot depend on insertion "
                        f"history")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            if id(node) in benign or isinstance(node, ast.SetComp):
                continue
            for comp in node.generators:
                if _is_set_iterable(comp.iter, set_names):
                    yield ctx.finding(
                        "REP001", "unordered-iter", comp.iter,
                        "comprehension over a set in a sim-critical "
                        "module produces order-dependent results; wrap "
                        "in sorted(...)")


# -- entropy ------------------------------------------------------------------

def _entropy_import_aliases(tree: ast.Module) -> dict:
    """Local names bound to nondeterministic callables via imports."""
    aliases = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or node.level:
            continue
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "random" and alias.name not in _RANDOM_OK:
                aliases[bound] = f"random.{alias.name}"
            elif node.module == "time" and alias.name in _TIME_BAD:
                aliases[bound] = f"time.{alias.name}"
            elif node.module == "uuid" and alias.name.startswith("uuid"):
                aliases[bound] = f"uuid.{alias.name}"
            elif node.module == "os" and alias.name in _OS_BAD:
                aliases[bound] = f"os.{alias.name}"
            elif (node.module == "datetime"
                  and alias.name in ("datetime", "date")):
                aliases[bound] = f"datetime.{alias.name}"
    return aliases


def _check_entropy(ctx: LintContext) -> Iterator[Finding]:
    # Scoped to library code: tests/examples may use seeded randomness
    # however they like; host-side modules own the process RNG/clock.
    if not ctx.is_library_code or ctx.is_host_module:
        return
    aliases = _entropy_import_aliases(ctx.tree)
    seen_lines = set()

    def emit(node: ast.AST, what: str) -> Finding:
        seen_lines.add(node.lineno)
        return ctx.finding(
            "REP001", "entropy", node,
            f"{what} is a nondeterministic source; simulation code must "
            f"draw randomness from a seeded random.Random and never read "
            f"the host clock (allowed only in repro.runner/repro.bench/"
            f"repro.obs)")

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Attribute) and isinstance(node.value,
                                                          ast.Name):
            mod, attr = node.value.id, node.attr
            if node.lineno in seen_lines:
                continue
            if mod == "random" and attr not in _RANDOM_OK \
                    and attr[:1].islower():
                yield emit(node, f"random.{attr}")
            elif mod == "time" and attr in _TIME_BAD:
                yield emit(node, f"time.{attr}")
            elif mod == "uuid" and attr.startswith("uuid"):
                yield emit(node, f"uuid.{attr}")
            elif mod == "os" and attr in _OS_BAD:
                yield emit(node, f"os.{attr}")
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in aliases and node.lineno not in seen_lines:
                yield emit(node, aliases[node.id])


# -- id-ordering --------------------------------------------------------------

def _check_id_ordering(ctx: LintContext) -> Iterator[Finding]:
    if not (ctx.is_sim_critical and ctx.is_library_code):
        return
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("id", "hash")):
            continue
        qual = ctx.qualname_at(node.lineno)
        leaf = qual.rsplit(".", 1)[-1] if qual else ""
        if leaf in _REPR_LIKE:
            continue
        yield ctx.finding(
            "REP001", "id-ordering", node,
            f"{node.func.id}() varies across runs (addresses / salted "
            f"hashes); never use it for ordering, tie-breaks, or keys "
            f"that can reach trace output")


# -- float-simtime ------------------------------------------------------------

def _float_hazard(expr: ast.AST) -> str:
    """'' if ``expr`` stays integral, else a description of the hazard.

    ``round()``/``int()`` calls and floor division produce ints, so
    their subtrees are not descended into.
    """
    stack: List[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Name) and f.id in ("int", "round", "len"):
                continue  # result is integral; arguments may be float
            if isinstance(f, ast.Name) and f.id == "float":
                return "float() call"
            # other calls: unknown return type, do not descend
            continue
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return "true division (/)"
            stack.extend((node.left, node.right))
            continue
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return f"float literal {node.value!r}"
        stack.extend(ast.iter_child_nodes(node))
    return ""


def _check_float_simtime(ctx: LintContext) -> Iterator[Finding]:
    if not ctx.is_sim_critical:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Yield) and node.value is not None:
            hazard = _float_hazard(node.value)
            if hazard:
                yield ctx.finding(
                    "REP001", "float-simtime", node,
                    f"{hazard} in a yielded delay: simulated time is an "
                    f"integer; convert with round()/int() or use //")
        elif isinstance(node, ast.Call):
            f = node.func
            name = (f.attr if isinstance(f, ast.Attribute)
                    else f.id if isinstance(f, ast.Name) else "")
            if name == "timeout" and node.args:
                hazard = _float_hazard(node.args[0])
                if hazard:
                    yield ctx.finding(
                        "REP001", "float-simtime", node.args[0],
                        f"{hazard} in a timeout() delay: simulated time "
                        f"is an integer; convert with round()/int() or "
                        f"use //")
            elif name in ("succeed", "fail"):
                for kw in node.keywords:
                    if kw.arg == "delay":
                        hazard = _float_hazard(kw.value)
                        if hazard:
                            yield ctx.finding(
                                "REP001", "float-simtime", kw.value,
                                f"{hazard} in a {name}(delay=...) value: "
                                f"simulated time is an integer; convert "
                                f"with round()/int() or use //")


RULE = Rule(
    id="REP001",
    name="determinism-hazards",
    description=("unordered set/dict iteration, nondeterministic sources, "
                 "id()/hash() ordering, float simulated time"),
    checker=check,
)
