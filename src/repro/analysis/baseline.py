"""Grandfathered-findings baseline for the lint gate.

``lint_baseline.json`` is committed at the repo root and maps finding
keys (:meth:`repro.analysis.core.Finding.key`, which deliberately
excludes line numbers) to occurrence counts.  The CI gate fails only
on findings *not* covered by the baseline, so the tree is ratcheted:
existing debt is frozen, new debt is rejected, and deleting an entry
once fixed shrinks the file monotonically.

Schema (``repro-lint-baseline/1``)::

    {
      "schema": "repro-lint-baseline/1",
      "entries": { "<rule>::<check>::<path>::<symbol>": <count>, ... }
    }
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.core import Finding

SCHEMA = "repro-lint-baseline/1"
DEFAULT_BASELINE = "lint_baseline.json"

__all__ = ["DEFAULT_BASELINE", "SCHEMA", "baseline_entries",
           "diff_against_baseline", "load_baseline", "write_baseline"]


def baseline_entries(findings: Iterable[Finding]) -> Dict[str, int]:
    """Baseline entry dict for ``findings`` (key -> count)."""
    return dict(sorted(Counter(f.key() for f in findings).items()))


def load_baseline(path: "str | Path") -> Dict[str, int]:
    """Entries of the baseline file; empty when the file is absent."""
    p = Path(path)
    if not p.exists():
        return {}
    with open(p) as fh:
        data = json.load(fh)
    if data.get("schema") != SCHEMA:
        raise ValueError(f"{p}: unknown baseline schema "
                         f"{data.get('schema')!r} (expected {SCHEMA})")
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"{p}: 'entries' must be an object")
    return {str(k): int(v) for k, v in entries.items()}


def write_baseline(path: "str | Path", findings: Iterable[Finding]) -> Path:
    p = Path(path)
    payload = {"schema": SCHEMA, "entries": baseline_entries(findings)}
    with open(p, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return p


def diff_against_baseline(
        findings: List[Finding],
        baseline: Dict[str, int]) -> Tuple[List[Finding], List[str]]:
    """Split findings into (new, stale-baseline-keys).

    A finding is *new* when its key's occurrence count exceeds the
    baselined count.  Keys present in the baseline but no longer
    produced are *stale* — the debt was paid and the entry should be
    deleted (``repro lint --write-baseline`` does this).
    """
    budget = dict(baseline)
    new: List[Finding] = []
    for f in findings:
        key = f.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            new.append(f)
    current = Counter(f.key() for f in findings)
    stale = sorted(k for k, n in baseline.items()
                   if current.get(k, 0) < n)
    return new, stale
