"""REP004 — cross-shard isolation hazards.

The conservative parallel engine (:mod:`repro.sim.parallel`) is only
correct if cross-shard interaction flows through its merge protocol:
events carry a shard affinity stamped at creation, cross-shard sends go
through the lookahead-checked queue push, and the window internals are
driven exclusively by the engine.  Python will happily let model code
poke another shard's state directly — which works under the inline
backend (it is serial) and silently corrupts under the threads backend.
Four sub-checks police the boundary statically:

``foreign-tile-store``
    An attribute *store* through a ``.tiles[...]`` subscript
    (``plat.tiles[tid].mux = ...``) outside :mod:`repro.core.platform`.
    Tile objects belong to their shard; mutating one from outside the
    platform constructor shares state across shards with no merge
    protocol.  Reads are fine — construction-time wiring and test
    assertions do them everywhere.

``active-shard``
    Any reference to ``_active_shard`` outside the engine, the parallel
    module, and the NoC fabric (the one sanctioned cross-shard
    boundary).  Shard affinity is scoped with
    ``Simulator.shard_scope(...)``; writing the field directly bypasses
    the save/restore discipline and leaks affinity into later events.

``window-protocol``
    Calls to the sharded queue's window internals (``begin_window``,
    ``end_window``, ``bind_worker``, ``pop_lane_upto``, ``lane_head``,
    ``lane_len``) outside :mod:`repro.sim.parallel` /
    :mod:`repro.sim.engine`.  These are the executor's half of the
    barrier handshake; model code calling them desynchronizes the
    per-lane sequence allocator.

``event-shard-store``
    Assignment to an ``Event``'s ``.shard`` attribute outside
    :mod:`repro.sim.engine`.  Affinity is stamped once at creation from
    the active scope; re-stamping a live event can place it in a lane
    the merge heap no longer agrees with (the pop-desync invariant).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, LintContext, Rule

RULE_ID = "REP004"

# Exact module names — prefixes would exempt sibling modules (and the
# fixture mini-tree, which deliberately lives under repro.sim).
_ACTIVE_SHARD_MODULES = frozenset((
    "repro.sim.engine", "repro.sim.parallel", "repro.noc.fabric",
))
_WINDOW_MODULES = frozenset(("repro.sim.parallel", "repro.sim.engine"))
_TILE_STORE_MODULES = frozenset(("repro.core.platform",))
_EVENT_SHARD_MODULES = frozenset(("repro.sim.engine",))

_WINDOW_METHODS = frozenset((
    "begin_window", "end_window", "bind_worker", "pop_lane_upto",
    "lane_head", "lane_len",
))


def check(ctx: LintContext) -> Iterator[Finding]:
    if not ctx.is_sim_critical:
        return
    yield from _check_foreign_tile_store(ctx)
    yield from _check_active_shard(ctx)
    yield from _check_window_protocol(ctx)
    yield from _check_event_shard_store(ctx)


def _is_tiles_subscript(node: ast.AST) -> bool:
    """``<expr>.tiles[...]`` or ``tiles[...]``."""
    if not isinstance(node, ast.Subscript):
        return False
    value = node.value
    if isinstance(value, ast.Attribute):
        return value.attr == "tiles"
    return isinstance(value, ast.Name) and value.id == "tiles"


def _store_targets(node: ast.AST) -> Iterator[ast.expr]:
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        yield node.target


def _check_foreign_tile_store(ctx: LintContext) -> Iterator[Finding]:
    if ctx.module in _TILE_STORE_MODULES:
        return
    for node in ast.walk(ctx.tree):
        for target in _store_targets(node):
            # peel attribute chains: plat.tiles[t].dtu.stats = ...
            inner = target
            while isinstance(inner, (ast.Attribute, ast.Subscript)):
                if isinstance(inner, ast.Attribute) \
                        and _is_tiles_subscript(inner.value):
                    yield ctx.finding(
                        RULE_ID, "foreign-tile-store", target,
                        "attribute store through a .tiles[...] subscript "
                        "mutates another shard's tile object without the "
                        "merge protocol; wire tiles in "
                        "repro.core.platform (under shard_scope) or add "
                        "an explicit cross-shard message")
                    break
                inner = inner.value


def _check_active_shard(ctx: LintContext) -> Iterator[Finding]:
    if ctx.module in _ACTIVE_SHARD_MODULES:
        return
    for node in ast.walk(ctx.tree):
        name = None
        if isinstance(node, ast.Attribute) and node.attr == "_active_shard":
            name = node
        elif isinstance(node, ast.Name) and node.id == "_active_shard":
            name = node
        if name is not None:
            yield ctx.finding(
                RULE_ID, "active-shard", name,
                "_active_shard is engine-internal; scope shard affinity "
                "with Simulator.shard_scope(...) so the save/restore "
                "discipline holds")


def _check_window_protocol(ctx: LintContext) -> Iterator[Finding]:
    if ctx.module in _WINDOW_MODULES:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _WINDOW_METHODS:
            yield ctx.finding(
                RULE_ID, "window-protocol", node,
                f"{node.func.attr}() is part of the sharded queue's "
                f"window handshake, driven only by the engine and the "
                f"executor in repro.sim.parallel")


def _check_event_shard_store(ctx: LintContext) -> Iterator[Finding]:
    if ctx.module in _EVENT_SHARD_MODULES:
        return
    for node in ast.walk(ctx.tree):
        for target in _store_targets(node):
            if isinstance(target, ast.Attribute) and target.attr == "shard":
                yield ctx.finding(
                    RULE_ID, "event-shard-store", target,
                    "event shard affinity is stamped once at creation "
                    "from the active scope; create the event under "
                    "shard_scope(...) instead of re-stamping it")


RULE = Rule(
    id=RULE_ID,
    name="cross-shard-isolation",
    description=("tile-object stores outside the platform, _active_shard "
                 "access outside the engine, window-protocol calls from "
                 "model code, event shard re-stamping"),
    checker=check,
)
