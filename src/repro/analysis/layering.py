"""REP003 — layering violations.

The package stack is layered (DESIGN.md section 4): the simulation
kernel knows nothing about hardware models, hardware models know
nothing about the OS layer, and everything reaches experiments through
the ``repro.api`` facade.  Two sub-checks:

``upward-import``
    An import whose target package ranks *above* the importing package
    in :data:`repro.analysis.core.LAYER_RANKS` — e.g. ``repro.sim``
    importing from ``repro.dtu``.  Upward imports create cycles,
    defeat differential testing of the kernel, and let hardware-model
    details leak into the scheduler.  Imports guarded by
    ``if TYPE_CHECKING:`` are annotation-only and exempt.

``facade-bypass``
    Experiments, examples, or benchmarks constructing systems through
    the removed legacy builders (``build_m3v``/``build_m3``/
    ``build_m3x``) or by instantiating the platform classes directly
    instead of going through ``repro.api.build_system``.  The shims
    themselves are deleted; the name check stays so stale code fails
    review with a pointer to the facade, not an AttributeError.
    White-box unit tests under ``tests/`` are exempt — they
    legitimately poke platform internals.

``env-config``
    A ``repro.*`` module reading a ``REPRO_*`` environment variable
    directly (``os.environ[...]``, ``os.environ.get``, ``os.getenv``)
    instead of going through :func:`repro.sim.envcfg.raw`.  Scattered
    environment reads are how configuration precedence rules rot;
    ``repro.sim.envcfg`` is the single declared home (and the facade
    exposes the resolved snapshot as ``repro.api.env_overrides()``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.core import LAYER_RANKS, Finding, LintContext, Rule

RULE_ID = "REP003"

_LEGACY_BUILDERS = {"build_m3v", "build_m3", "build_m3x"}
_PLATFORM_CLASSES = {"M3vPlatform", "M3Platform", "M3xPlatform",
                     "LinuxMachine"}

# Modules allowed to touch the builders/platform classes: the facade
# itself, the layer that defines them, and the package root's legacy
# re-exports.
_FACADE_ALLOWED_PREFIXES = ("repro.core", "repro.api", "repro.linuxsim")
_FACADE_ALLOWED_MODULES = ("repro", "repro.__init__")


def check(ctx: LintContext) -> Iterator[Finding]:
    yield from _check_upward_imports(ctx)
    yield from _check_facade_bypass(ctx)
    yield from _check_env_config(ctx)


# -- upward-import ------------------------------------------------------------

def _type_checking_lines(tree: ast.Module) -> Set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` blocks."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = (test.id if isinstance(test, ast.Name)
                else test.attr if isinstance(test, ast.Attribute) else "")
        if name == "TYPE_CHECKING":
            end = getattr(node, "end_lineno", node.lineno)
            lines.update(range(node.lineno, end + 1))
    return lines


def _package_of(module: str) -> str:
    """Second dotted component of a repro module ('' otherwise)."""
    parts = module.split(".")
    if parts[0] != "repro":
        return ""
    return parts[1] if len(parts) > 1 else "__init__"


def _check_upward_imports(ctx: LintContext) -> Iterator[Finding]:
    src_pkg = _package_of(ctx.module)
    if src_pkg not in LAYER_RANKS:
        return
    src_rank = LAYER_RANKS[src_pkg]
    annotation_only = _type_checking_lines(ctx.tree)
    for node in ast.walk(ctx.tree):
        targets = []
        if isinstance(node, ast.Import):
            targets = [a.name for a in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module \
                and not node.level:
            if node.module == "repro":
                # `from repro import faults` imports the submodule, not
                # the package root; resolve each alias that names a
                # known layer
                targets = [f"repro.{a.name}" for a in node.names
                           if a.name in LAYER_RANKS]
            else:
                targets = [node.module]
        for target in targets:
            if not target.startswith("repro"):
                continue
            tgt_pkg = _package_of(target)
            tgt_rank = LAYER_RANKS.get(tgt_pkg)
            if tgt_rank is None or tgt_pkg == src_pkg:
                continue
            if tgt_rank > src_rank and node.lineno not in annotation_only:
                yield ctx.finding(
                    RULE_ID, "upward-import", node,
                    f"repro.{src_pkg} (layer {src_rank}) imports "
                    f"{target} (layer {tgt_rank}): lower layers must "
                    f"not depend on higher ones; invert the dependency "
                    f"or gate it behind TYPE_CHECKING")


# -- facade-bypass ------------------------------------------------------------

def _facade_applies(ctx: LintContext) -> bool:
    top = ctx.path.split("/", 1)[0]
    if top == "tests":
        return False
    if ctx.module.startswith(_FACADE_ALLOWED_PREFIXES):
        return False
    if ctx.module in _FACADE_ALLOWED_MODULES:
        return False
    return True


def _check_facade_bypass(ctx: LintContext) -> Iterator[Finding]:
    if not _facade_applies(ctx):
        return
    annotation_only = _type_checking_lines(ctx.tree)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module \
                and node.module.startswith("repro") and not node.level:
            if node.lineno in annotation_only:
                continue
            for alias in node.names:
                if alias.name in _LEGACY_BUILDERS:
                    yield ctx.finding(
                        RULE_ID, "facade-bypass", node,
                        f"import of deprecated builder {alias.name}; "
                        f"construct systems via repro.api.build_system("
                        f"SystemConfig(...)) so every layer is attached "
                        f"uniformly")
        elif isinstance(node, ast.Call):
            f = node.func
            name = (f.id if isinstance(f, ast.Name)
                    else f.attr if isinstance(f, ast.Attribute) else "")
            if name in _LEGACY_BUILDERS:
                # the import was flagged above; flagging the call too
                # would double-report, so only catch attribute-style
                # calls (repro.core.build_m3v(...)) here
                if isinstance(f, ast.Attribute):
                    yield ctx.finding(
                        RULE_ID, "facade-bypass", node,
                        f"call to deprecated builder {name}; use "
                        f"repro.api.build_system(SystemConfig(...))")
            elif name in _PLATFORM_CLASSES and isinstance(f, ast.Name):
                yield ctx.finding(
                    RULE_ID, "facade-bypass", node,
                    f"direct {name}(...) construction bypasses the "
                    f"repro.api facade; use build_system(SystemConfig("
                    f"kind=...)) instead")


# -- env-config ---------------------------------------------------------------

# The single module allowed to read REPRO_* variables directly.
_ENV_HOME = "repro.sim.envcfg"


def _is_os_environ(node: ast.expr) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == "environ"
            and isinstance(node.value, ast.Name) and node.value.id == "os")


def _repro_var(node: ast.expr) -> str:
    """The REPRO_* name if ``node`` is such a string constant, else ''."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str) \
            and node.value.startswith("REPRO_"):
        return node.value
    return ""


def _check_env_config(ctx: LintContext) -> Iterator[Finding]:
    if not ctx.module.startswith("repro.") or ctx.module == _ENV_HOME:
        return
    for node in ast.walk(ctx.tree):
        var = ""
        if isinstance(node, ast.Subscript) and _is_os_environ(node.value) \
                and isinstance(node.ctx, ast.Load):
            var = _repro_var(node.slice)
        elif isinstance(node, ast.Call) and node.args:
            f = node.func
            if isinstance(f, ast.Attribute) and (
                    (f.attr == "get" and _is_os_environ(f.value))
                    or (f.attr == "getenv" and isinstance(f.value, ast.Name)
                        and f.value.id == "os")):
                var = _repro_var(node.args[0])
        if var:
            yield ctx.finding(
                RULE_ID, "env-config", node,
                f"direct read of {var}; all REPRO_* environment "
                f"access goes through repro.sim.envcfg.raw() so the "
                f"declared-knob list and precedence rules stay in one "
                f"place")


RULE = Rule(
    id=RULE_ID,
    name="layering",
    description=("upward imports against the package layer order; "
                 "system construction bypassing the repro.api facade; "
                 "REPRO_* env reads outside repro.sim.envcfg"),
    checker=check,
)
