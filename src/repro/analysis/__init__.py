"""``repro.analysis`` — a determinism & sim-concurrency static analyzer.

The whole reproduction rests on byte-identical determinism (golden
trace digests, exact-event-count perf gates) and on subtle
sim-concurrency protocols (the section 3.7 lost-wakeup race the M3v
design avoids).  None of those properties are visible to a generic
linter: one unordered ``set`` iteration feeding the event queue, one
stray ``random.random()`` outside the seeded plumbing, or one
``id()``-based tie-break silently breaks every golden digest.  This
package is an AST-based linter purpose-built for this codebase; it
runs as ``repro lint`` and as a hard CI gate
(``scripts/check_lint.sh``).

Rule families
-------------

========  ============================================================
REP001    determinism hazards: unordered ``set``/``frozenset``/dict
          iteration in sim-critical modules, nondeterministic sources
          (``random``/``time``/``uuid``/``os.urandom``) outside the
          sanctioned host-side modules, ``id()``/``hash()`` ordering,
          float arithmetic flowing into simulated-time scheduling
REP002    sim-concurrency hazards: yielding non-``Event``/int values
          from process generators, double ``Event.succeed``/``fail``
          on one static path, non-generator callables passed to
          ``Simulator.process``, blocking host calls inside process
          bodies
REP003    layering: upward imports against the package layer order,
          and experiments bypassing the ``repro.api`` facade
========  ============================================================

Suppression and baselining
--------------------------

A finding on a line carrying ``# repro: noqa[REP001]`` (or a bare
``# repro: noqa``) is suppressed.  Findings recorded in the committed
``lint_baseline.json`` are *grandfathered*: the gate fails only on
findings not covered by the baseline, so the tree can be cleaned
incrementally without ever regressing.  See DESIGN.md section 14.
"""

from repro.analysis.baseline import (
    baseline_entries,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import (
    DEFAULT_TARGETS,
    Finding,
    LintContext,
    all_rules,
    collect_files,
    run_lint,
)
from repro.analysis.report import findings_to_json, format_human

__all__ = [
    "DEFAULT_TARGETS",
    "Finding",
    "LintContext",
    "all_rules",
    "baseline_entries",
    "collect_files",
    "diff_against_baseline",
    "findings_to_json",
    "format_human",
    "load_baseline",
    "run_lint",
    "write_baseline",
]
