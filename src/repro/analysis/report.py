"""Human and JSON rendering of lint findings.

The JSON schema (``repro-lint/1``) is what the CI job uploads as an
artifact; its shape is pinned by ``tests/test_analysis.py``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.analysis.core import Finding

JSON_SCHEMA = "repro-lint/1"

__all__ = ["JSON_SCHEMA", "findings_to_json", "format_human"]


def findings_to_json(findings: Iterable[Finding],
                     new: Optional[Iterable[Finding]] = None,
                     stale: Optional[Iterable[str]] = None) -> str:
    """Canonical JSON for a lint run (sorted keys, stable ordering)."""
    findings = list(findings)
    new_ids = None if new is None else {id(f) for f in new}
    doc: Dict = {
        "schema": JSON_SCHEMA,
        "findings": [
            {
                "rule": f.rule,
                "check": f.check,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "symbol": f.symbol,
                "message": f.message,
                "baselined": (new_ids is not None and id(f) not in new_ids),
            }
            for f in findings
        ],
        "summary": _summary(findings),
    }
    if new_ids is not None:
        doc["summary"]["new"] = len(new_ids)
    if stale is not None:
        doc["stale_baseline_keys"] = sorted(stale)
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _summary(findings: List[Finding]) -> Dict:
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    return {"total": len(findings), "by_rule": dict(sorted(by_rule.items()))}


def format_human(findings: Iterable[Finding],
                 new: Optional[Iterable[Finding]] = None,
                 stale: Optional[Iterable[str]] = None) -> str:
    """One ``path:line:col: RULE[check] message`` line per finding."""
    findings = list(findings)
    new_ids = None if new is None else {id(f) for f in new}
    lines: List[str] = []
    for f in findings:
        tag = ""
        if new_ids is not None:
            tag = " [NEW]" if id(f) in new_ids else " [baselined]"
        lines.append(f"{f.location()}: {f.rule}[{f.check}]{tag} {f.message}")
    if stale:
        lines.append("")
        lines.append(f"{len(list(stale))} stale baseline entr"
                     f"{'y' if len(list(stale)) == 1 else 'ies'} "
                     f"(fixed findings — run `repro lint "
                     f"--write-baseline` to drop):")
        for key in stale:
            lines.append(f"  - {key}")
    if not findings:
        lines.append("lint: no findings")
    else:
        summary = _summary(findings)
        parts = ", ".join(f"{r}: {n}" for r, n in
                          summary["by_rule"].items())
        tail = f"lint: {summary['total']} finding(s) ({parts})"
        if new_ids is not None:
            tail += f"; {len(new_ids)} new vs baseline"
        lines.append(tail)
    return "\n".join(lines) + "\n"
