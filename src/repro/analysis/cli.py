"""The ``repro lint`` subcommand.

Kept in its own module (imported lazily by :mod:`repro.cli`) so that
``repro lint --help`` and the CI gate never pay for the experiment
stack's import time.

Exit codes: 0 — clean (no non-baselined findings); 1 — new findings
(or, with ``--strict-stale``, stale baseline entries); 2 — usage
errors (bad rule id, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import DEFAULT_TARGETS, all_rules, run_lint
from repro.analysis.report import findings_to_json, format_human


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to lint (default: "
                             + " ".join(DEFAULT_TARGETS) + ")")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="output format")
    parser.add_argument("--output", metavar="FILE",
                        help="also write the JSON report to FILE "
                             "(regardless of --format)")
    parser.add_argument("--select", action="append", metavar="REPxxx",
                        help="only run the named rule (repeatable)")
    parser.add_argument("--ignore", action="append", metavar="REPxxx",
                        help="skip the named rule (repeatable)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        metavar="FILE",
                        help=f"grandfathered-findings file "
                             f"(default {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="judge every finding as new")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from this run's "
                             "findings and exit 0")
    parser.add_argument("--strict-stale", action="store_true",
                        help="also fail when baseline entries no longer "
                             "match any finding")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    parser.add_argument("--root", default=".", metavar="DIR",
                        help="repository root (default: cwd)")


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id}  {rule.name}")
            print(f"        {rule.description}")
        return 0

    root = Path(args.root)
    targets = args.paths or list(DEFAULT_TARGETS)
    try:
        findings = run_lint(targets, root=root, select=args.select,
                            ignore=args.ignore)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = root / args.baseline
    if args.write_baseline:
        path = write_baseline(baseline_path, findings)
        print(f"baseline written: {path} ({len(findings)} finding(s))")
        return 0

    baseline = {}
    if not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    new, stale = diff_against_baseline(findings, baseline)

    if args.output:
        out = Path(args.output)
        if out.parent and not out.parent.exists():
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(findings_to_json(findings, new=new, stale=stale))
    if args.format == "json":
        sys.stdout.write(findings_to_json(findings, new=new, stale=stale))
    else:
        sys.stdout.write(format_human(findings, new=new, stale=stale))

    if new:
        return 1
    if stale and args.strict_stale:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & sim-concurrency static analyzer")
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
