"""Clocks and calibrated cycle costs.

Cycle-denominated costs capture core-side software work (traps,
scheduling, marshalling); they scale with the core's clock frequency,
which is how the same software lands at ~5k cycles for a tile-local RPC
both on the 80 MHz BOOM FPGA core and on gem5's 3 GHz x86 core — the
paper reports this operation in cycles for exactly that reason
(section 6.2).  Wire-denominated costs (NoC, DRAM) live with their
devices in nanoseconds.

The anchor points for the calibration are listed in DESIGN.md §6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

PS_PER_SECOND = 10**12


@dataclass(frozen=True)
class CoreClock:
    """Converts a core's cycles into the platform's picosecond time base."""

    freq_mhz: float

    @property
    def period_ps(self) -> int:
        return round(PS_PER_SECOND / (self.freq_mhz * 1e6))

    def cycles_to_ps(self, cycles: int) -> int:
        return cycles * self.period_ps

    def ps_to_cycles(self, ps: int) -> float:
        return ps / self.period_ps

    def us_to_cycles(self, us: float) -> float:
        return us * self.freq_mhz


@dataclass(frozen=True)
class CoreCosts:
    """Calibrated software cost model of one core type (in cycles)."""

    name: str = "generic"
    freq_mhz: float = 80.0

    # --- traps and privileged-mode transitions -------------------------------
    trap_enter: int = 120           # ecall/exception into TileMux
    trap_exit: int = 120            # sret back to the activity
    irq_entry: int = 180            # asynchronous interrupt vectoring

    # --- TileMux work ----------------------------------------------------------
    tmcall_dispatch: int = 60       # decode + validate a TMCall
    core_req_handle: int = 150      # read/ack a core request, mark ready
    sched_pick: int = 150           # round-robin pick + bookkeeping
    ctx_switch: int = 900           # GPR save/restore, address-space switch,
                                    # and first-order cache-warmup effects
    timer_program: int = 40         # re-arm the timeslice timer

    # --- m3 library (userspace) --------------------------------------------------
    lib_send: int = 420             # marshal + issue SEND
    lib_reply: int = 360
    lib_fetch: int = 200            # one fetch attempt incl. ring scan
    lib_ack: int = 60
    lib_poll: int = 150             # one iteration of the poll loop (3.7)
    lib_syscall: int = 300          # build a controller syscall message

    # --- generic compute helpers ---------------------------------------------------
    mem_touch_page: int = 40        # warm access to a mapped page

    @property
    def clock(self) -> CoreClock:
        return CoreClock(self.freq_mhz)

    def with_freq(self, freq_mhz: float) -> "CoreCosts":
        return replace(self, freq_mhz=freq_mhz)


@dataclass(frozen=True)
class LinuxCosts:
    """Cost model of the Linux baseline (section 6, 'Linux 5.11').

    The i-cache pollution term models the effect the paper blames for
    Linux's scan-heavy YCSB loss: the kernel's large code footprint
    evicts the application's working set on every trap (section 6.5.2),
    so each syscall pays a refill proportional to the subsystem it
    touches.
    """

    name: str = "linux"
    freq_mhz: float = 80.0

    syscall_entry: int = 300
    syscall_exit: int = 200
    syscall_dispatch: int = 100
    icache_refill_noop: int = 1200     # pollution of a trivial syscall
    icache_refill_fs: int = 2600       # VFS + tmpfs path
    icache_refill_net: int = 3400      # socket + UDP/IP + driver path
    sched_pick: int = 400
    ctx_switch: int = 1600
    copy_bytes_per_cycle: int = 8      # copy_{to,from}_user bandwidth

    @property
    def clock(self) -> CoreClock:
        return CoreClock(self.freq_mhz)

    def syscall_overhead(self, refill: int) -> int:
        return (self.syscall_entry + self.syscall_dispatch
                + self.syscall_exit + refill)


# Core presets used by the paper's two platforms.
ROCKET = CoreCosts(name="rocket", freq_mhz=100.0)
BOOM = CoreCosts(name="boom", freq_mhz=80.0)
# gem5's 3 GHz out-of-order x86 used for the M3x comparison (section 6.4)
X86_GEM5 = CoreCosts(name="x86-gem5", freq_mhz=3000.0)

_PRESETS = {p.name: p for p in (ROCKET, BOOM, X86_GEM5)}


def core_preset(name: str) -> CoreCosts:
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(f"unknown core preset {name!r}; "
                         f"have {sorted(_PRESETS)}") from None
