"""Tile containers.

A :class:`Tile` bundles the identity, kind, clock and DTU of one tile.
The software that runs on a processing tile (TileMux + activities, the
controller, or the Linux kernel model) is attached by the platform
builder in :mod:`repro.core.platform`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.tiles.costs import CoreClock, CoreCosts


class TileKind(enum.Enum):
    PROCESSING = "processing"    # general-purpose core + vDTU + TileMux
    CONTROLLER = "controller"    # the communication controller (plain DTU)
    MEMORY = "memory"            # DRAM interface (plain DTU)
    ACCELERATOR = "accelerator"  # fixed-function logic (plain DTU)
    NIC = "nic"                  # processing tile with an attached NIC


@dataclass
class Tile:
    """One tile of the platform."""

    tile_id: int
    kind: TileKind
    costs: Optional[CoreCosts] = None   # None for memory tiles
    dtu: Any = None                     # Dtu / VDtu / MemoryDtu
    mux: Any = None                     # TileMux instance (processing tiles)
    device: Any = None                  # NIC device, accelerator logic, ...

    @property
    def clock(self) -> CoreClock:
        if self.costs is None:
            raise ValueError(f"tile {self.tile_id} ({self.kind.value}) has no core")
        return self.costs.clock

    @property
    def is_processing(self) -> bool:
        return self.kind in (TileKind.PROCESSING, TileKind.NIC)

    def __repr__(self) -> str:
        core = self.costs.name if self.costs else "-"
        return f"Tile({self.tile_id}, {self.kind.value}, {core})"
