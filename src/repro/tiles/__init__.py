"""Tiles: cores with clocks and cost models, and tile containers.

A tile couples a DTU/vDTU with either a core (plus the software that
runs on it), a memory interface, an accelerator, or a NIC.  Cores are
not instruction-level models; they are *cost models*: software charges
calibrated cycle counts for traps, scheduling, marshalling and compute,
which the clock converts into the platform's picosecond time base.
"""

from repro.tiles.costs import (
    BOOM,
    CoreClock,
    CoreCosts,
    ROCKET,
    X86_GEM5,
    core_preset,
)
from repro.tiles.tile import Tile, TileKind

__all__ = [
    "CoreClock",
    "CoreCosts",
    "ROCKET",
    "BOOM",
    "X86_GEM5",
    "core_preset",
    "Tile",
    "TileKind",
]
