"""NIC device, Ethernet wire and the remote peer host.

The FPGA platform attaches an AXI-Ethernet NIC to one selected
processing tile (section 4.1); the net service always runs on that
tile and drives the NIC through DMA and interrupts (section 4.4).
The wire connects to a fast external machine (an AMD Ryzen in the
paper's benchmarks) which echoes or sinks packets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.sim import Simulator

PS_PER_US = 1_000_000

ETH_HEADER = 14
IP_HEADER = 20
UDP_HEADER = 8
MIN_FRAME = 64
UDP_OVERHEAD = ETH_HEADER + IP_HEADER + UDP_HEADER


@dataclass
class EthFrame:
    """One Ethernet frame carrying a UDP datagram."""

    payload: Any
    size: int                 # UDP payload bytes
    src_port: int = 0
    dst_port: int = 0

    @property
    def wire_bytes(self) -> int:
        return max(MIN_FRAME, self.size + UDP_OVERHEAD)


class EthernetWire:
    """A full-duplex point-to-point gigabit link with optional loss.

    The loss knob reproduces the methodological footnote of section
    6.5.1: with real TCP the FPGA/Ryzen speed mismatch caused packet
    drops, so the paper (and we) measure UDP and optionally simulate
    the lossy behaviour.
    """

    def __init__(self, sim: Simulator, latency_us: float = 2.0,
                 gbps: float = 1.0, drop_prob: float = 0.0,
                 seed: int = 42):
        self.sim = sim
        self.latency_ps = round(latency_us * PS_PER_US)
        self.bytes_per_ps = gbps / 8 / 1e3  # bytes per picosecond
        self.drop_prob = drop_prob
        self._rng = random.Random(seed)
        self._busy_until = {"up": 0, "down": 0}
        self.to_host: Optional[Callable[[EthFrame], None]] = None
        self.to_device: Optional[Callable[[EthFrame], None]] = None
        self.dropped = 0
        self.transferred = 0

    def _serialize_ps(self, frame: EthFrame) -> int:
        return round(frame.wire_bytes / self.bytes_per_ps)

    def transmit(self, frame: EthFrame, up: bool) -> None:
        """Put a frame on the wire; 'up' means device -> host."""
        if self.drop_prob and self._rng.random() < self.drop_prob:
            self.dropped += 1
            return
        direction = "up" if up else "down"
        start = max(self.sim.now, self._busy_until[direction])
        self._busy_until[direction] = start + self._serialize_ps(frame)
        arrival = self._busy_until[direction] + self.latency_ps
        self.transferred += 1
        self.sim.process(self._deliver(frame, up, arrival - self.sim.now),
                         name="eth-frame")

    def _deliver(self, frame: EthFrame, up: bool, delay: int):
        yield delay
        sink = self.to_host if up else self.to_device
        if sink is not None:
            sink(frame)


class NicDevice:
    """The AXI-Ethernet NIC on the net tile.

    RX frames land in a descriptor ring; the device wakes the driver
    activity (interrupt-driven access, section 4.1).
    """

    RING_SLOTS = 32

    def __init__(self, sim: Simulator, wire: EthernetWire):
        self.sim = sim
        self.wire = wire
        wire.to_device = self._on_rx
        self.rx_queue: List[EthFrame] = []
        self.rx_overruns = 0
        self._wake: Optional[Callable[[], None]] = None

    def attach_driver(self, wake: Callable[[], None]) -> None:
        """Register the driver's wake callback (the interrupt line)."""
        self._wake = wake

    def _on_rx(self, frame: EthFrame) -> None:
        if len(self.rx_queue) >= self.RING_SLOTS:
            self.rx_overruns += 1
            return
        self.rx_queue.append(frame)
        if self._wake is not None:
            self._wake()

    @property
    def has_rx(self) -> bool:
        return bool(self.rx_queue)

    def pop_rx(self) -> Optional[EthFrame]:
        return self.rx_queue.pop(0) if self.rx_queue else None

    def transmit(self, frame: EthFrame) -> None:
        self.wire.transmit(frame, up=True)


class RemoteHost:
    """The machine on the other end of the cable (AMD Ryzen 7 2700X).

    Fast relative to the 80 MHz FPGA cores: a fixed small processing
    delay per packet.  ``echo_ports`` answer with the same payload;
    everything else is sunk (and counted) — the voice assistant and
    YCSB benchmarks only ship data out.
    """

    def __init__(self, sim: Simulator, wire: EthernetWire,
                 proc_us: float = 25.0):
        self.sim = sim
        self.wire = wire
        wire.to_host = self._on_frame
        self.proc_ps = round(proc_us * PS_PER_US)
        self.echo_ports = set()
        self.sunk_frames = 0
        self.sunk_bytes = 0
        self.received: List[EthFrame] = []

    def _on_frame(self, frame: EthFrame) -> None:
        self.sim.process(self._handle(frame), name="remote-host")

    def _handle(self, frame: EthFrame):
        yield self.proc_ps
        if frame.dst_port in self.echo_ports:
            self.wire.transmit(EthFrame(payload=frame.payload,
                                        size=frame.size,
                                        src_port=frame.dst_port,
                                        dst_port=frame.src_port), up=False)
        else:
            self.sunk_frames += 1
            self.sunk_bytes += frame.size
            if len(self.received) < 10_000:
                self.received.append(frame)
