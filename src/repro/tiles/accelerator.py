"""Accelerator tiles (M3 semantics).

M3v keeps M3/M3x's unified integration of fixed-function accelerators:
an accelerator tile carries a plain (non-virtualized) DTU and works on
one context; it can be chained "autonomously" with other accelerators
and services — the `decode | fft | mul | ifft` shell pipeline of
Figure 2.  Multiplexing accelerators is explicitly future work in the
paper (section 8), so exactly one context per accelerator is enforced.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.dtu.dtu import Dtu
from repro.dtu.endpoints import ReceiveEndpoint, SendEndpoint
from repro.sim import Simulator

# Fixed endpoint layout on accelerator tiles.
EP_IN = 8     # receive gate for input data
EP_OUT = 9    # send gate towards the next pipeline stage

PS_PER_NS = 1_000


class StreamAccelerator:
    """A fixed-function streaming accelerator.

    ``logic`` transforms each input payload (bytes -> bytes);
    ``bytes_per_ns`` models the accelerator's processing throughput and
    ``setup_ns`` its per-message kick-off cost.  Messages stream in on
    :data:`EP_IN` and results go out on :data:`EP_OUT` (configured by
    the controller like any other channel).
    """

    def __init__(self, sim: Simulator, dtu: Dtu, name: str,
                 logic: Callable[[bytes], bytes],
                 bytes_per_ns: float = 4.0, setup_ns: int = 500):
        self.sim = sim
        self.dtu = dtu
        self.name = name
        self.logic = logic
        self.bytes_per_ns = bytes_per_ns
        self.setup_ns = setup_ns
        self.processed = 0
        self._bound = False
        self._proc = sim.process(self._run(), name=f"accel-{name}")

    def bind_context(self) -> None:
        """Accelerators hold exactly one context (section 8)."""
        if self._bound:
            raise RuntimeError(f"accelerator {self.name} already has a context")
        self._bound = True

    def _run(self) -> Generator:
        wake = self.sim.event()
        self.dtu.msg_callback = lambda ep: (wake.succeed()
                                            if not wake.triggered else None)
        while True:
            msg = yield from self.dtu.cmd_fetch(EP_IN)
            if msg is None:
                if wake.triggered:
                    wake = self.sim.event()
                    self.dtu.msg_callback = lambda ep: (
                        wake.succeed() if not wake.triggered else None)
                    continue
                yield wake
                continue
            data = msg.data if isinstance(msg.data, (bytes, bytearray)) \
                else bytes(msg.size)
            yield (self.setup_ns * PS_PER_NS
                   + round(len(data) / self.bytes_per_ns) * PS_PER_NS)
            result = self.logic(bytes(data))
            yield from self.dtu.cmd_ack(EP_IN, msg)
            out = self.dtu.eps[EP_OUT]
            if isinstance(out, SendEndpoint):
                yield from self.dtu.cmd_send(EP_OUT, result, len(result))
            self.processed += 1

    # -- boot-time wiring ---------------------------------------------------

    def wire_input(self, slots: int = 4, slot_size: int = 4096) -> None:
        self.dtu.configure(EP_IN, ReceiveEndpoint(slots=slots,
                                                  slot_size=slot_size))

    def wire_output(self, dst_tile: int, dst_ep: int,
                    credits: int = 4, max_msg_size: int = 4096) -> None:
        self.dtu.configure(EP_OUT, SendEndpoint(
            dst_tile=dst_tile, dst_ep=dst_ep, label=0,
            max_msg_size=max_msg_size, credits=credits, max_credits=credits))
