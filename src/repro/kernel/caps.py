"""Capability-based access control (section 3.3).

The controller decides which communication channels exist via
capabilities [Miller 2006].  Capabilities form a derivation tree:
delegating or deriving creates children, and revocation removes an
entire subtree, deactivating any DTU endpoints that were activated
from revoked capabilities.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.dtu.endpoints import Perm


class CapError(Exception):
    """Illegal capability operation (bad selector, kind mismatch, ...)."""


class CapKind(enum.Enum):
    ACTIVITY = "activity"
    RGATE = "rgate"      # receive gate: the right to receive on a channel
    SGATE = "sgate"      # send gate: the right to send to one rgate
    MGATE = "mgate"      # memory gate: a window into physical memory
    SERVICE = "service"  # a named service activities can open sessions at
    SESSION = "session"  # an open session with a service


# ---------------------------------------------------------------------------
# Kernel objects referenced by capabilities
# ---------------------------------------------------------------------------

_obj_ids = itertools.count(1)


@dataclass
class RGateObj:
    """A receive gate; becomes a receive endpoint once activated."""

    slots: int
    slot_size: int
    oid: int = field(default_factory=lambda: next(_obj_ids))
    # filled at activation time
    tile: Optional[int] = None
    ep: Optional[int] = None
    owner_act: Optional[int] = None

    @property
    def activated(self) -> bool:
        return self.ep is not None


@dataclass
class SGateObj:
    """A send gate targeting one receive gate."""

    rgate: RGateObj
    label: int
    credits: int
    oid: int = field(default_factory=lambda: next(_obj_ids))
    # set at activation
    tile: Optional[int] = None
    ep: Optional[int] = None


@dataclass
class MGateObj:
    """A window into physical memory on a memory tile."""

    mem_tile: int
    base: int
    size: int
    perm: Perm
    oid: int = field(default_factory=lambda: next(_obj_ids))
    tile: Optional[int] = None
    ep: Optional[int] = None

    def derive(self, offset: int, size: int, perm: Perm) -> "MGateObj":
        if offset < 0 or offset + size > self.size:
            raise CapError(f"derive [{offset}, {offset + size}) exceeds "
                           f"mgate of size {self.size}")
        if (perm & self.perm) != perm:
            raise CapError("derive cannot widen permissions")
        return MGateObj(mem_tile=self.mem_tile, base=self.base + offset,
                        size=size, perm=perm)


@dataclass
class ServiceObj:
    """A registered service (file system, pager, net, ...)."""

    name: str
    rgate: RGateObj
    oid: int = field(default_factory=lambda: next(_obj_ids))
    meta: Dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Capabilities and tables
# ---------------------------------------------------------------------------

_cap_ids = itertools.count(1)


@dataclass
class Capability:
    """A reference to a kernel object held by one activity."""

    kind: CapKind
    owner: int                      # act id of the holding activity
    sel: int                        # selector within the owner's table
    obj: Any
    parent: Optional["Capability"] = None
    children: List["Capability"] = field(default_factory=list)
    revoked: bool = False
    cid: int = field(default_factory=lambda: next(_cap_ids))

    def subtree(self) -> Iterator["Capability"]:
        """This capability and all capabilities derived from it."""
        yield self
        for child in self.children:
            yield from child.subtree()


class CapTable:
    """Per-activity selector space."""

    def __init__(self, act_id: int):
        self.act_id = act_id
        self._caps: Dict[int, Capability] = {}
        self._next_sel = 0

    def alloc_sel(self) -> int:
        sel = self._next_sel
        self._next_sel += 1
        return sel

    def insert(self, kind: CapKind, obj: Any,
               parent: Optional[Capability] = None,
               sel: Optional[int] = None) -> Capability:
        if sel is None:
            sel = self.alloc_sel()
        elif sel in self._caps:
            raise CapError(f"selector {sel} already in use by act {self.act_id}")
        else:
            self._next_sel = max(self._next_sel, sel + 1)
        cap = Capability(kind=kind, owner=self.act_id, sel=sel, obj=obj,
                         parent=parent)
        if parent is not None:
            parent.children.append(cap)
        self._caps[sel] = cap
        return cap

    def get(self, sel: int, kind: Optional[CapKind] = None) -> Capability:
        cap = self._caps.get(sel)
        if cap is None or cap.revoked:
            raise CapError(f"act {self.act_id}: no capability at selector {sel}")
        if kind is not None and cap.kind is not kind:
            raise CapError(f"act {self.act_id}: capability {sel} is "
                           f"{cap.kind.value}, expected {kind.value}")
        return cap

    def __contains__(self, sel: int) -> bool:
        cap = self._caps.get(sel)
        return cap is not None and not cap.revoked

    def __len__(self) -> int:
        return sum(1 for c in self._caps.values() if not c.revoked)

    def remove(self, cap: Capability) -> None:
        self._caps.pop(cap.sel, None)


def delegate(cap: Capability, target: CapTable,
             sel: Optional[int] = None) -> Capability:
    """Hand a capability to another activity (child in the tree)."""
    if cap.revoked:
        raise CapError("cannot delegate a revoked capability")
    return target.insert(cap.kind, cap.obj, parent=cap, sel=sel)


def revoke(cap: Capability, tables: Dict[int, CapTable],
           on_revoke: Optional[Callable[[Capability], None]] = None) -> int:
    """Revoke ``cap`` and its entire derivation subtree.

    ``on_revoke`` is the controller's hook that deactivates endpoints
    configured from the revoked capability.  Returns the number of
    capabilities removed.
    """
    count = 0
    for victim in list(cap.subtree()):
        if victim.revoked:
            continue
        victim.revoked = True
        table = tables.get(victim.owner)
        if table is not None:
            table.remove(victim)
        if on_revoke is not None:
            on_revoke(victim)
        count += 1
    if cap.parent is not None:
        cap.parent.children.remove(cap)
    return count
