"""Wire protocols between activities, TileMux instances and the controller.

All of these travel as DTU messages; the dataclasses are the payloads.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

_seq = itertools.count(1)


class Syscall(enum.Enum):
    """Controller system calls (sent as DTU messages, section 3.3)."""

    CREATE_RGATE = "create_rgate"
    CREATE_SGATE = "create_sgate"
    CREATE_MGATE = "create_mgate"
    DERIVE_MGATE = "derive_mgate"
    ACTIVATE = "activate"
    DELEGATE = "delegate"          # push one of my caps to another activity
    CREATE_SRV = "create_srv"
    OPEN_SESS = "open_sess"
    REVOKE = "revoke"
    MAP = "map"                    # pager: map pages into a client's AS
    NOOP = "noop"                  # for microbenchmarks
    FORWARD = "forward"            # M3x slow path: deliver a message to a
                                   # non-running activity via the controller


@dataclass
class SyscallMsg:
    op: Syscall
    args: Dict[str, Any] = field(default_factory=dict)
    seq: int = field(default_factory=lambda: next(_seq))

    SIZE = 128  # bytes on the wire


@dataclass
class SyscallReply:
    seq: int
    ok: bool
    value: Any = None
    error: str = ""

    SIZE = 64


class TmuxOp(enum.Enum):
    """Controller -> TileMux requests (section 3.3)."""

    CREATE_ACT = "create_act"
    KILL_ACT = "kill_act"
    MAP = "map"
    UNMAP = "unmap"
    M3X_SAVE = "m3x_save"      # M3x: save the current context's registers
    M3X_RESUME = "m3x_resume"  # M3x: install and run a context
    MIGRATE_OUT = "migrate_out"  # detach an activity for live migration
    MIGRATE_IN = "migrate_in"    # adopt a migrated activity


@dataclass
class TmuxReq:
    op: TmuxOp
    args: Dict[str, Any] = field(default_factory=dict)
    seq: int = field(default_factory=lambda: next(_seq))

    SIZE = 96


@dataclass
class TmuxReply:
    seq: int
    ok: bool
    error: str = ""

    SIZE = 32


class TmuxNotify(enum.Enum):
    """TileMux -> controller notifications."""

    EXIT = "exit"
    BLOCKED = "blocked"  # M3x: current activity blocked; please schedule
    WAKEUP = "wakeup"    # M3x: a descheduled activity's sleep timer fired
    FAULT = "fault"      # recovery: watchdog/fault report for health tracking
    LOAD = "load"        # rebalancing: periodic runnable-depth beacon


@dataclass
class NotifyMsg:
    kind: TmuxNotify
    args: Dict[str, Any] = field(default_factory=dict)

    SIZE = 48


class PagerOp(enum.Enum):
    """TileMux/client -> pager service."""

    PAGEFAULT = "pagefault"
    CLONE = "clone"


@dataclass
class RpcMsg:
    """Generic request payload for service RPCs (fs, net, pager)."""

    op: Any
    args: Dict[str, Any] = field(default_factory=dict)
    seq: int = field(default_factory=lambda: next(_seq))

    SIZE = 64


@dataclass
class RpcReply:
    seq: int
    ok: bool
    value: Any = None
    error: str = ""

    SIZE = 64
