"""Activities and address spaces.

An *activity* is the M3 equivalent of a process (section 2.1): code on
a general-purpose tile (or a context on an accelerator).  The
controller knows all activities; TileMux schedules the ones resident on
its tile.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.dtu.endpoints import Perm

PAGE_SIZE = 4096

_act_ids = itertools.count(1)  # 0 is ACT_TILEMUX


class ActState(enum.Enum):
    INIT = "init"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"          # waiting for a message (TMCall block)
    BLOCKED_PF = "blocked_pf"    # waiting for the pager to resolve a fault
    EXITED = "exited"


class PageFault(Exception):
    """Raised when a virtual page is neither mapped nor pager-backed."""

    def __init__(self, act: int, virt: int, perm: Perm):
        super().__init__(f"act {act}: unhandled fault at {virt:#x} ({perm})")
        self.virt = virt
        self.perm = perm


@dataclass
class LazyRegion:
    """A demand-paged region, populated by the pager on first touch."""

    base: int
    size: int
    perm: Perm

    def contains(self, virt: int) -> bool:
        return self.base <= virt < self.base + self.size


class AddressSpace:
    """A per-activity page table plus a trivial virtual allocator.

    Physical pages live inside PMP windows granted by the controller,
    so the physical addresses stored here are already offset into the
    global physical layout (PMP endpoint index in the upper bits).
    """

    HEAP_BASE = 0x100000

    def __init__(self, act_id: int):
        self.act_id = act_id
        self._pages: Dict[int, Tuple[int, Perm]] = {}
        self._lazy: list = []
        self._brk = self.HEAP_BASE
        self._phys_alloc: Optional[Callable[[], int]] = None

    # -- mapping ---------------------------------------------------------------

    def map_page(self, vpage: int, ppage: int, perm: Perm) -> None:
        self._pages[vpage] = (ppage, perm)

    def unmap_page(self, vpage: int) -> bool:
        return self._pages.pop(vpage, None) is not None

    def lookup(self, virt: int, perm: Perm) -> Optional[int]:
        """Page-table walk; returns the physical page or None."""
        entry = self._pages.get(virt // PAGE_SIZE)
        if entry is None:
            return None
        ppage, p = entry
        if (perm & p) != perm:
            return None
        return ppage

    def add_lazy_region(self, base: int, size: int, perm: Perm) -> LazyRegion:
        region = LazyRegion(base, size, perm)
        self._lazy.append(region)
        return region

    def lazy_region_of(self, virt: int) -> Optional[LazyRegion]:
        for region in self._lazy:
            if region.contains(virt):
                return region
        return None

    @property
    def mapped_pages(self) -> int:
        return len(self._pages)

    # -- virtual allocation --------------------------------------------------------

    def alloc_virt(self, size: int) -> int:
        """Bump-allocate virtual space (page aligned)."""
        size = (size + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE
        virt = self._brk
        self._brk += size
        return virt


@dataclass
class Activity:
    """One activity as the controller and TileMux see it."""

    name: str
    tile_id: int
    program: Optional[Callable] = None   # Program(api) -> Generator
    act_id: int = field(default_factory=lambda: next(_act_ids))
    state: ActState = ActState.INIT
    addrspace: AddressSpace = None
    # TileMux's in-memory unread-message counter while not current (3.7)
    msgs: int = 0
    # endpoints the controller allocated for this activity on its tile
    sysc_sep: Optional[int] = None       # send EP towards the controller
    sysc_rep: Optional[int] = None       # receive EP for syscall replies
    # scheduling state
    slice_end: int = 0
    # advisory scheduling inputs (repro.mux.sched): an EDF deadline set
    # by the workload layer, lottery tickets, and the autotuned slice
    deadline_ps: Optional[int] = None
    tickets: int = 1
    sched_slice_ps: Optional[int] = None
    # simulation plumbing
    gen: Optional[Generator] = None      # bound program generator
    api: Any = None                      # ActivityApi bound at CREATE_ACT
                                         # (rebound on live migration)
    exit_event: Any = None               # sim Event, fires with exit code
    exit_code: Optional[int] = None
    pager_session: Any = None            # session with the pager service
    # accounting (user/system split for Figure 10)
    user_ps: int = 0
    sys_ps: int = 0
    # value the mux injects into gen on the next dispatch (set on preempt)
    _resume_value: Any = None

    def __post_init__(self) -> None:
        if self.addrspace is None:
            self.addrspace = AddressSpace(self.act_id)

    @property
    def runnable(self) -> bool:
        return self.state in (ActState.READY, ActState.RUNNING)

    def __repr__(self) -> str:
        return f"Activity({self.act_id}:{self.name}@{self.tile_id} {self.state.value})"
