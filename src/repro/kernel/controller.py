"""The M3v communication controller (sections 2.1, 3.3, 4.3).

The controller runs alone on a dedicated tile (a Rocket core in the
FPGA platform).  It is single-threaded: system calls and TileMux
notifications are processed one at a time — the property that makes
M3x-style remote multiplexing a bottleneck (section 6.4) and that M3v
sidesteps by keeping context switches tile-local.

Responsibilities:
* knows all activities; creates them by asking the target tile's
  TileMux (``CREATE_ACT``);
* owns the capability system; establishes channels by configuring DTU
  endpoints over the external interface;
* owns physical memory: grants per-tile PMP windows and memory gates;
* forwards page mappings from the pager to the responsible TileMux.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.dtu import (
    ACT_TILEMUX,
    DtuFault,
    MemoryEndpoint,
    Perm,
    ReceiveEndpoint,
    SendEndpoint,
)
from repro.dtu.dtu import Dtu, ExtOp, ExtRequest
from repro.dtu.endpoints import UNLIMITED_CREDITS
from repro.kernel.activity import ActState, Activity, AddressSpace, PAGE_SIZE
from repro.kernel.caps import (
    CapError,
    CapKind,
    CapTable,
    Capability,
    MGateObj,
    RGateObj,
    SGateObj,
    ServiceObj,
    delegate,
    revoke,
)
from repro.kernel.memalloc import OutOfMemory, PhysAllocator, PhysRegion
from repro.kernel.protocol import (
    NotifyMsg,
    RpcMsg,
    RpcReply,
    Syscall,
    SyscallMsg,
    SyscallReply,
    TmuxNotify,
    TmuxOp,
    TmuxReply,
    TmuxReq,
)
from repro.noc.packet import Packet, PacketKind
from repro.sim import Channel
from repro.tiles.costs import CoreCosts, ROCKET

# Fixed endpoint layout on the controller tile.
EP_SYSCALL = 0      # receive gate for system calls
EP_NOTIFY = 1       # receive gate for TileMux notifications
EP_REPLY = 2        # receive gate for replies to controller requests
EP_DYN_BASE = 3     # dynamically allocated send gates

# Fixed endpoint layout on processing tiles (vDTU).
EP_PMP_BASE = 0     # endpoints 0..3 are PMP windows (section 4.1)
EP_TMUX_SEP = 4     # TileMux -> controller notifications
EP_TMUX_REP = 5     # controller -> TileMux requests
EP_TMUX_REPLY = 6   # TileMux's reply/pager-RPC receive gate
EP_TMUX_PAGER = 7   # TileMux -> pager send gate (configured on demand)
EP_USER_BASE = 8    # dynamically allocated endpoints

# Per-activity and per-tile memory grants (boot-time policy).
TILEMUX_REGION_BYTES = 64 * 1024
TILE_WINDOW_BYTES = 8 * 1024 * 1024
DEFAULT_HEAP_BYTES = 512 * 1024

_ext_tags = itertools.count(10_000_000)


class SyscallError(Exception):
    """A system call failed; carried back to the caller in the reply."""


class Controller:
    """The single-threaded communication controller."""

    # cycle costs of controller software paths (calibrated, see DESIGN.md)
    SYSCALL_BASE_CY = 600        # decode, cap-table work, reply build
    EXT_REQ_CY = 120             # issue one external request
    SPAWN_CY = 4000              # image setup, cap bootstrap
    FORWARD_CY = 3500            # M3x slow-path bookkeeping (per message)
    MIGRATE_CY = 2500            # migration orchestration bookkeeping

    def __init__(self, sim, tile_id: int, dtu: Dtu, costs: CoreCosts = ROCKET,
                 stats=None):
        self.sim = sim
        self.tile_id = tile_id
        self.dtu = dtu
        self.costs = costs
        self.clock = costs.clock
        self.stats = stats if stats is not None else dtu.stats

        self.acts: Dict[int, Activity] = {}
        self.tables: Dict[int, CapTable] = {}
        self.services: Dict[str, ServiceObj] = {}
        self._srv_seps: Dict[str, int] = {}      # service name -> our send EP

        self.phys: Optional[PhysAllocator] = None
        self._tile_windows: Dict[int, List[PhysRegion]] = {}  # PMP windows
        self._window_brk: Dict[int, int] = {}    # bump offset in window 1
        self._tmux_seps: Dict[int, int] = {}     # tile -> our send EP
        self._ep_alloc: Dict[int, int] = {}      # tile -> next free user EP
        self._tilemuxes: Dict[int, Any] = {}     # tile -> TileMux (for boot)

        self._wake_waiters: List[Any] = []
        self._msg_latch = False
        self.dtu.msg_callback = self._on_msg
        self._req_lock = Channel(sim, capacity=1, name="ctrl-req-lock")
        self._req_lock.try_put(None)  # one token = one outstanding request
        self.busy_ps = 0             # total time spent processing (Fig. 9)
        self._proc = None

        # tile health tracking (repro.mux.recovery): fault reports per
        # tile, and tiles quarantined after repeated reports.  Inert
        # unless a recovery policy is installed and reports arrive.
        self.recovery = None
        self.tile_faults: Dict[int, int] = {}
        self.quarantined: set = set()

        # live-migration bookkeeping (repro.kernel.rebalance).  All of
        # it is plain-Python recording on paths that already run, so the
        # static-placement default costs no events.  EP ids are
        # *preserved* across migration — the controller reserves the
        # same id range on the target tile (and refuses the migration if
        # the target's allocator already passed it), which keeps every
        # EP id an activity's program captured at boot valid for life.
        self._act_tiles: Dict[int, int] = {}     # act -> current tile
        self._mig_eps: Dict[int, List[int]] = {}  # act -> its EP ids
        self._links: List[Dict[str, int]] = []   # channel records for
                                                 # peer send-EP retargets
        self._pending_retargets: List[Dict[str, Any]] = []
        self._tile_load: Dict[int, int] = {}     # LOAD beacon mailbox

    # ------------------------------------------------------------------ boot

    def boot(self, memories: List[Tuple[int, int]],
             n_tiles: int = 0) -> None:
        """Initialize memory and our own endpoints.

        ``memories`` is a list of (mem_tile_id, dram_size) pairs.
        Runs at platform-build time (before the simulation starts), so
        it configures endpoints directly without ext requests.
        ``n_tiles`` sizes the syscall/notify receive buffers: past 32
        processing tiles the default 64 slots can fill with every tile
        forwarding a syscall at once (m3x slow path), which would turn
        boot-storm NACK retries into the bottleneck.
        """
        slots = max(64, 2 * n_tiles)
        self.phys = PhysAllocator([PhysRegion(t, 0, s) for t, s in memories])
        self.dtu.configure(EP_SYSCALL, ReceiveEndpoint(slots=slots,
                                                       slot_size=512))
        self.dtu.configure(EP_NOTIFY, ReceiveEndpoint(slots=slots,
                                                      slot_size=256))
        self.dtu.configure(EP_REPLY, ReceiveEndpoint(slots=8, slot_size=512))
        self._proc = self.sim.process(self._main_loop(), name="controller")

    def boot_wire_tile(self, tile_id: int, tilemux) -> None:
        """Wire a processing tile's TileMux to the controller (boot time)."""
        vdtu = tilemux.vdtu
        self._tilemuxes[tile_id] = tilemux
        # PMP window 0: TileMux's own region; window 1: activity memory
        mux_region = self.phys.alloc(TILEMUX_REGION_BYTES)
        act_region = self.phys.alloc(TILE_WINDOW_BYTES)
        self._tile_windows[tile_id] = [mux_region, act_region]
        self._window_brk[tile_id] = 0
        vdtu.configure(EP_PMP_BASE + 0, MemoryEndpoint(
            act=ACT_TILEMUX, dst_tile=mux_region.mem_tile,
            base=mux_region.base, size=mux_region.size, perm=Perm.RW))
        vdtu.configure(EP_PMP_BASE + 1, MemoryEndpoint(
            act=ACT_TILEMUX, dst_tile=act_region.mem_tile,
            base=act_region.base, size=act_region.size, perm=Perm.RW))
        # TileMux <-> controller channels
        vdtu.configure(EP_TMUX_SEP, SendEndpoint(
            act=ACT_TILEMUX, dst_tile=self.tile_id, dst_ep=EP_NOTIFY,
            label=tile_id, credits=8, max_credits=8))
        vdtu.configure(EP_TMUX_REP, ReceiveEndpoint(
            act=ACT_TILEMUX, slots=4, slot_size=512))
        vdtu.configure(EP_TMUX_REPLY, ReceiveEndpoint(
            act=ACT_TILEMUX, slots=4, slot_size=512))
        sep = EP_DYN_BASE + len(self._tmux_seps)
        self.dtu.configure(sep, SendEndpoint(
            dst_tile=tile_id, dst_ep=EP_TMUX_REP, label=tile_id,
            credits=4, max_credits=4))
        self._tmux_seps[tile_id] = sep
        self._ep_alloc[tile_id] = EP_USER_BASE

    # ------------------------------------------------------------ primitives

    def _on_msg(self, ep_id: int) -> None:
        self._msg_latch = True
        waiters, self._wake_waiters = self._wake_waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()

    def _wait_for_msg(self) -> Generator:
        """Sleep until a message arrives; latch avoids lost wake-ups for
        deposits that raced with the preceding fetches."""
        if self._msg_latch:
            self._msg_latch = False
            return
        ev = self.sim.event()
        self._wake_waiters.append(ev)
        yield ev
        self._msg_latch = False

    def _charge(self, cycles: int) -> Generator:
        yield self._charge_ps(cycles)

    def _charge_ps(self, cycles: int) -> int:
        """Account ``cycles`` of controller occupancy; returns the delay."""
        ps = self.clock.cycles_to_ps(cycles)
        self.busy_ps += ps
        return ps

    def _ext(self, tile_id: int, op: ExtOp, args: Dict[str, Any]) -> Generator:
        """One external-interface request to a tile's DTU."""
        yield self._charge_ps(self.EXT_REQ_CY)
        req = Packet(PacketKind.EXT_REQ, src=self.tile_id, dst=tile_id,
                     size=48, payload=ExtRequest(op, args), tag=next(_ext_tags))
        result = yield from self.dtu._await_response(req)
        self.stats.counter("ctrl/ext_reqs").add()
        return result

    def config_ep(self, tile_id: int, ep_id: int, endpoint) -> Generator:
        yield from self._ext(tile_id, ExtOp.CONFIG_EP,
                             {"ep_id": ep_id, "endpoint": endpoint})

    def register_act_ep(self, act: Activity, ep_id: int,
                        endpoint=None, rgate: bool = False) -> None:
        """Record that ``ep_id`` belongs to ``act`` (M3x overrides this
        to save/restore endpoint sets; M3v uses it for migration)."""
        self._record_ep(act.act_id, ep_id)

    def _record_ep(self, act_id: int, ep_id: int) -> None:
        """Remember an EP id as part of ``act_id``'s migratable set."""
        eps = self._mig_eps.setdefault(act_id, [])
        if ep_id not in eps:
            eps.append(ep_id)

    def finalize_eps(self, act: Activity) -> Generator:
        """Hook after boot-time wiring of an activity's endpoints
        (M3x absorbs them into the snapshot if the activity is not
        currently scheduled; a no-op on M3v)."""
        return
        yield  # pragma: no cover

    def alloc_ep(self, tile_id: int) -> int:
        ep = self._ep_alloc[tile_id]
        self._ep_alloc[tile_id] = ep + 1
        if ep >= self.dtu.params.num_endpoints:
            raise SyscallError(f"tile {tile_id} out of endpoints")
        return ep

    def tmux_request(self, tile_id: int, op: TmuxOp,
                     args: Dict[str, Any]) -> Generator:
        """Send a request to a TileMux and await its reply."""
        yield self._req_lock.get()  # serialize: single-threaded controller
        try:
            req = TmuxReq(op, args)
            yield self._charge_ps(self.EXT_REQ_CY)
            yield from self.dtu.cmd_send(self._tmux_seps[tile_id], req,
                                         size=TmuxReq.SIZE, reply_ep=EP_REPLY)
            reply = yield from self._await_reply(req.seq)
        finally:
            self._req_lock.try_put(None)
        if not reply.ok:
            raise SyscallError(f"TileMux {tile_id} rejected {op.value}: "
                               f"{reply.error}")
        return reply

    def _await_reply(self, seq: int):
        while True:
            msg = yield from self.dtu.cmd_fetch(EP_REPLY)
            if msg is None:
                yield from self._wait_for_msg()
                continue
            yield from self.dtu.cmd_ack(EP_REPLY, msg)
            if msg.data.seq == seq:
                return msg.data
            # a reply for someone else cannot happen: requests are serialized
            raise RuntimeError(f"unexpected reply seq {msg.data.seq}")

    # ------------------------------------------------------------- main loop

    def _main_loop(self) -> Generator:
        """Process notifications and system calls, one at a time.

        Notifications (exits, M3x block reports) are drained first so a
        stream of system calls cannot starve the small notify gate.
        """
        while True:
            metrics = self.sim.metrics
            if metrics is not None:
                metrics.sample("ctrl/sysc_q", self.sim.now,
                               getattr(self.dtu.eps[EP_SYSCALL], "unread", 0)
                               + getattr(self.dtu.eps[EP_NOTIFY], "unread", 0))
            note = yield from self.dtu.cmd_fetch(EP_NOTIFY)
            if note is not None:
                yield from self._handle_notify(note)
                continue
            msg = yield from self.dtu.cmd_fetch(EP_SYSCALL)
            if msg is not None:
                yield from self._handle_syscall(msg)
                continue
            yield from self._wait_for_msg()

    def _handle_notify(self, msg) -> Generator:
        note: NotifyMsg = msg.data
        yield self._charge_ps(self.SYSCALL_BASE_CY)
        if note.kind is TmuxNotify.EXIT:
            act = self.acts.get(note.args["act_id"])
            if act is not None:
                act.state = ActState.EXITED
                act.exit_code = note.args.get("code", 0)
                self._act_tiles.pop(act.act_id, None)  # off the migration radar
                if act.exit_event is not None and not act.exit_event.triggered:
                    act.exit_event.succeed(act.exit_code)
                self.stats.counter("ctrl/exits").add()
        elif note.kind is TmuxNotify.FAULT:
            self.report_tile_fault(note.args.get("tile", msg.label),
                                   note.args.get("reason", "unknown"))
        elif note.kind is TmuxNotify.LOAD:
            self._tile_load[note.args["tile"]] = note.args["depth"]
        yield from self.dtu.cmd_ack(EP_NOTIFY, msg)

    # --------------------------------------------------------- tile health

    def report_tile_fault(self, tile_id: int, reason: str = "report") -> None:
        """Record one fault report; quarantine the tile when they pile up.

        Called from the notify path (TileMux watchdog barks) and directly
        by fault-detection machinery standing in for a machine-check
        interrupt.  Quarantine is degraded-mode operation: already-placed
        activities keep running (faults are transient and bounded), but
        :meth:`spawn` steers *new* activities to healthy tiles.
        """
        count = self.tile_faults.get(tile_id, 0) + 1
        self.tile_faults[tile_id] = count
        self.stats.counter("ctrl/fault_reports").add()
        threshold = (self.recovery.quarantine_faults
                     if self.recovery is not None else 3)
        if count == threshold and tile_id not in self.quarantined:
            self.quarantined.add(tile_id)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(self.sim, "tile_quarantine", tile=tile_id,
                            faults=count)
            self.stats.counter("ctrl/quarantines").add()

    def place_tile(self, preferred: int) -> int:
        """The tile a new activity should land on, honoring quarantine.

        Falls back to the preferred tile when every wired tile is
        quarantined — running degraded beats refusing to run.
        """
        if preferred not in self.quarantined:
            return preferred
        for tid in sorted(self._tmux_seps):
            if tid not in self.quarantined:
                self.stats.counter("ctrl/migrated_spawns").add()
                return tid
        return preferred

    def _handle_syscall(self, msg) -> Generator:
        call: SyscallMsg = msg.data
        caller = msg.label  # the controller stamped the act id as label
        yield self._charge_ps(self.SYSCALL_BASE_CY)
        self.stats.counter("ctrl/syscalls").add()
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.series_inc("ctrl/syscalls", self.sim.now)
        try:
            handler = getattr(self, f"_sys_{call.op.value}")
            value = yield from handler(caller, call.args)
            reply = SyscallReply(call.seq, ok=True, value=value)
        except (SyscallError, CapError, DtuFault, OutOfMemory) as exc:
            reply = SyscallReply(call.seq, ok=False, error=str(exc))
            self.stats.counter("ctrl/syscall_errors").add()
        yield from self._send_syscall_reply(caller, msg, reply)

    def _send_syscall_reply(self, caller: int, msg, reply) -> Generator:
        yield from self.dtu.cmd_reply(EP_SYSCALL, msg, reply, SyscallReply.SIZE)

    # ------------------------------------------------------------- syscalls

    def _table(self, act_id: int) -> CapTable:
        table = self.tables.get(act_id)
        if table is None:
            raise SyscallError(f"unknown activity {act_id}")
        return table

    def _sys_noop(self, caller: int, args) -> Generator:
        return None
        yield  # pragma: no cover

    def _sys_create_rgate(self, caller: int, args) -> Generator:
        obj = RGateObj(slots=args.get("slots", 8),
                       slot_size=args.get("slot_size", 512))
        cap = self._table(caller).insert(CapKind.RGATE, obj)
        return cap.sel
        yield  # pragma: no cover

    def _sys_create_sgate(self, caller: int, args) -> Generator:
        rcap = self._table(caller).get(args["rgate_sel"], CapKind.RGATE)
        obj = SGateObj(rgate=rcap.obj, label=args.get("label", 0),
                       credits=args.get("credits", 1))
        cap = self._table(caller).insert(CapKind.SGATE, obj, parent=rcap)
        return cap.sel
        yield  # pragma: no cover

    def _sys_create_mgate(self, caller: int, args) -> Generator:
        size = args["size"]
        region = self.phys.alloc(size)
        obj = MGateObj(mem_tile=region.mem_tile, base=region.base,
                       size=region.size, perm=args.get("perm", Perm.RW))
        cap = self._table(caller).insert(CapKind.MGATE, obj)
        return cap.sel
        yield  # pragma: no cover

    def _sys_derive_mgate(self, caller: int, args) -> Generator:
        parent = self._table(caller).get(args["mgate_sel"], CapKind.MGATE)
        obj = parent.obj.derive(args["offset"], args["size"],
                                args.get("perm", parent.obj.perm))
        cap = self._table(caller).insert(CapKind.MGATE, obj, parent=parent)
        return cap.sel
        yield  # pragma: no cover

    def _sys_delegate(self, caller: int, args) -> Generator:
        """Delegate one of the caller's caps to another activity.

        Authority note: real M3 requires the caller to hold an activity
        capability for the target or to exchange over a session; we
        accept the target act id directly and charge the same costs.
        """
        cap = self._table(caller).get(args["sel"])
        target = self._table(args["target_act"])
        child = delegate(cap, target, sel=args.get("target_sel"))
        return child.sel
        yield  # pragma: no cover

    def _sys_activate(self, caller: int, args) -> Generator:
        """Configure a DTU endpoint from a capability (the only way
        communication channels come into existence)."""
        act = self.acts[caller]
        cap = self._table(caller).get(args["sel"])
        ep_id = args.get("ep_id")
        if ep_id is None:
            ep_id = self.alloc_ep(act.tile_id)
        obj = cap.obj
        if cap.kind is CapKind.RGATE:
            endpoint = ReceiveEndpoint(act=caller, slots=obj.slots,
                                       slot_size=obj.slot_size)
            obj.tile, obj.ep, obj.owner_act = act.tile_id, ep_id, caller
        elif cap.kind is CapKind.SGATE:
            if not obj.rgate.activated:
                raise SyscallError("target rgate not activated yet")
            endpoint = SendEndpoint(act=caller, dst_tile=obj.rgate.tile,
                                    dst_ep=obj.rgate.ep, label=obj.label,
                                    max_msg_size=obj.rgate.slot_size,
                                    credits=obj.credits, max_credits=obj.credits)
            obj.tile, obj.ep = act.tile_id, ep_id
        elif cap.kind is CapKind.MGATE:
            endpoint = MemoryEndpoint(act=caller, dst_tile=obj.mem_tile,
                                      base=obj.base, size=obj.size,
                                      perm=obj.perm)
            obj.tile, obj.ep = act.tile_id, ep_id
        else:
            raise SyscallError(f"cannot activate a {cap.kind.value} capability")
        yield from self._install_ep(act, ep_id, endpoint)
        self._record_ep(caller, ep_id)
        if cap.kind is CapKind.SGATE and obj.rgate.owner_act is not None:
            self._links.append({"src_act": caller, "send_ep": ep_id,
                                "dst_act": obj.rgate.owner_act,
                                "recv_ep": obj.rgate.ep})
        return ep_id

    def _install_ep(self, act: Activity, ep_id: int, endpoint) -> Generator:
        """Write an endpoint for ``act`` (M3x redirects this into the
        saved endpoint state when the activity is descheduled)."""
        yield from self.config_ep(act.tile_id, ep_id, endpoint)

    def _sys_create_srv(self, caller: int, args) -> Generator:
        name = args["name"]
        if name in self.services:
            raise SyscallError(f"service {name!r} already registered")
        rcap = self._table(caller).get(args["rgate_sel"], CapKind.RGATE)
        if not rcap.obj.activated:
            raise SyscallError("service rgate must be activated first")
        srv = ServiceObj(name=name, rgate=rcap.obj)
        self.services[name] = srv
        self._table(caller).insert(CapKind.SERVICE, srv)
        # controller's own channel to the service (for OPEN_SESS forwarding)
        sep = EP_DYN_BASE + 64 + len(self._srv_seps)
        self.dtu.configure(sep, SendEndpoint(
            dst_tile=srv.rgate.tile, dst_ep=srv.rgate.ep, label=0,
            credits=2, max_credits=2))
        self._srv_seps[name] = sep
        return None
        yield  # pragma: no cover

    def _sys_open_sess(self, caller: int, args) -> Generator:
        """Open a session: forwarded to the service, which replies with
        whatever bootstrap information the client needs."""
        name = args["name"]
        srv = self.services.get(name)
        if srv is None:
            raise SyscallError(f"no service {name!r}")
        req = RpcMsg(op="open_sess", args={"client": caller,
                                           "args": args.get("args", {})})
        yield self._req_lock.get()
        try:
            yield from self.dtu.cmd_send(self._srv_seps[name], req,
                                         size=RpcMsg.SIZE, reply_ep=EP_REPLY)
            reply = yield from self._await_reply(req.seq)
        finally:
            self._req_lock.try_put(None)
        if not reply.ok:
            raise SyscallError(f"service {name!r}: {reply.error}")
        sess_cap = self._table(caller).insert(CapKind.SESSION, reply.value)
        return sess_cap.sel

    def _sys_revoke(self, caller: int, args) -> Generator:
        cap = self._table(caller).get(args["sel"])
        victims = [c for c in cap.subtree()]
        count = revoke(cap, self.tables)
        # deactivate every endpoint configured from a revoked capability
        for victim in victims:
            obj = victim.obj
            if getattr(obj, "ep", None) is not None and victim.kind in (
                    CapKind.RGATE, CapKind.SGATE, CapKind.MGATE):
                yield from self._ext(obj.tile, ExtOp.INVAL_EP,
                                     {"ep_id": obj.ep})
                obj.ep = None
        return count

    def _sys_map(self, caller: int, args) -> Generator:
        """Map pages into a client's address space (pager requests this).

        The controller validates the memory capability, then forwards
        the mapping to the TileMux responsible for the client — it does
        not touch page tables itself (section 4.3).
        """
        mcap = self._table(caller).get(args["mgate_sel"], CapKind.MGATE)
        target = self.acts.get(args["act_id"])
        if target is None:
            raise SyscallError(f"unknown activity {args['act_id']}")
        pages = args["pages"]
        offset = args.get("offset", 0)
        if offset + pages * PAGE_SIZE > mcap.obj.size:
            raise SyscallError("mapping exceeds the memory capability")
        # translate the mgate window into the tile's PMP phys space
        phys_page = self._phys_page_for(target.tile_id, mcap.obj, offset)
        yield from self.tmux_request(target.tile_id, TmuxOp.MAP, {
            "act_id": target.act_id,
            "virt_page": args["virt"] // PAGE_SIZE,
            "phys_page": phys_page,
            "pages": pages,
            "perm": args.get("perm", Perm.RW),
        })
        return None

    def _phys_page_for(self, tile_id: int, mgate: MGateObj, offset: int) -> int:
        """Physical page number in the tile's PMP address space."""
        window = self._tile_windows[tile_id][1]
        if (mgate.mem_tile == window.mem_tile
                and window.base <= mgate.base + offset < window.base + window.size):
            in_window = mgate.base + offset - window.base
            return ((1 << 30) + in_window) // PAGE_SIZE
        # outside the activity window: fall back to window-2 style identity
        return ((2 << 30) + mgate.base + offset) // PAGE_SIZE

    # --------------------------------------------------------------- spawning

    def spawn(self, name: str, tile_id: int, program,
              pager: Optional[str] = None,
              heap_bytes: int = DEFAULT_HEAP_BYTES) -> Generator:
        """Create an activity on ``tile_id`` running ``program``.

        A generator: run it in a simulation process.  Returns the
        :class:`Activity`.  With ``pager`` set to a service name, the
        heap is demand-paged through that pager; otherwise all pages
        are mapped eagerly (like the voice assistant's scanner, 6.5.1).
        """
        tile_id = self.place_tile(tile_id)
        act = Activity(name=name, tile_id=tile_id, program=program)
        act.exit_event = self.sim.event()
        self.acts[act.act_id] = act
        self.tables[act.act_id] = CapTable(act.act_id)
        yield self._charge_ps(self.SPAWN_CY)

        # heap memory: carve frames out of the tile's PMP window
        brk = self._window_brk[tile_id]
        if brk + heap_bytes > TILE_WINDOW_BYTES:
            raise SyscallError(f"tile {tile_id} PMP window exhausted")
        self._window_brk[tile_id] = brk + heap_bytes
        heap_phys_page = ((1 << 30) + brk) // PAGE_SIZE
        n_pages = heap_bytes // PAGE_SIZE
        if pager is None:
            for i in range(n_pages):
                act.addrspace.map_page(
                    AddressSpace.HEAP_BASE // PAGE_SIZE + i,
                    heap_phys_page + i, Perm.RW)
        else:
            act.addrspace.add_lazy_region(AddressSpace.HEAP_BASE,
                                          heap_bytes, Perm.RW)
            srv = self.services.get(pager)
            if srv is None:
                raise SyscallError(f"pager service {pager!r} not registered")
            pager_service = srv.meta.get("service")
            if pager_service is None or srv.rgate.owner_act is None:
                raise SyscallError(f"pager service {pager!r} not booted")
            # session setup: the pager gets a memory gate over the client's
            # frames and records the demand-paged region
            window = self._tile_windows[tile_id][1]
            mgate = MGateObj(mem_tile=window.mem_tile,
                             base=window.base + brk, size=heap_bytes,
                             perm=Perm.RW)
            pager_cap = self._table(srv.rgate.owner_act).insert(
                CapKind.MGATE, mgate)
            from repro.services.pager import PagerClient
            pager_service.register(PagerClient(
                act_id=act.act_id, mgate_sel=pager_cap.sel,
                base_virt=AddressSpace.HEAP_BASE, frames=n_pages))
            act.pager_session = {"service": pager}
            yield self._charge_ps(2 * self.SYSCALL_BASE_CY)

        # syscall channel endpoints
        sep = self.alloc_ep(tile_id)
        rep = self.alloc_ep(tile_id)
        act.sysc_sep, act.sysc_rep = sep, rep
        self._act_tiles[act.act_id] = tile_id
        self._record_ep(act.act_id, sep)
        self._record_ep(act.act_id, rep)
        yield from self.config_ep(tile_id, rep, ReceiveEndpoint(
            act=act.act_id, slots=1, slot_size=256))
        yield from self.config_ep(tile_id, sep, SendEndpoint(
            act=act.act_id, dst_tile=self.tile_id, dst_ep=EP_SYSCALL,
            label=act.act_id, max_msg_size=SyscallMsg.SIZE,
            credits=1, max_credits=1))

        yield from self.tmux_request(tile_id, TmuxOp.CREATE_ACT,
                                     {"activity": act})
        self.stats.counter("ctrl/spawns").add()
        return act

    # ------------------------------------------------------- boot-time channels

    def wire_channel(self, src_act: Activity, dst_act: Activity,
                     slots: int = 8, slot_size: int = 512, credits: int = 1,
                     label: int = 0) -> Generator:
        """Boot-style channel setup: rgate at dst, sgate at src.

        Returns ``(send_ep, recv_ep, reply_ep)``; the reply gate is
        created at the source so RPC-style request/response works.
        Charged like the equivalent sequence of system calls.
        """
        yield self._charge_ps(3 * self.SYSCALL_BASE_CY)
        recv_ep = self.alloc_ep(dst_act.tile_id)
        yield from self.config_ep(dst_act.tile_id, recv_ep, ReceiveEndpoint(
            act=dst_act.act_id, slots=slots, slot_size=slot_size))
        reply_ep = self.alloc_ep(src_act.tile_id)
        yield from self.config_ep(src_act.tile_id, reply_ep, ReceiveEndpoint(
            act=src_act.act_id, slots=max(2, credits), slot_size=slot_size))
        send_ep = self.alloc_ep(src_act.tile_id)
        yield from self.config_ep(src_act.tile_id, send_ep, SendEndpoint(
            act=src_act.act_id, dst_tile=dst_act.tile_id, dst_ep=recv_ep,
            label=label or src_act.act_id, max_msg_size=slot_size,
            credits=credits, max_credits=credits))
        self._record_ep(dst_act.act_id, recv_ep)
        self._record_ep(src_act.act_id, reply_ep)
        self._record_ep(src_act.act_id, send_ep)
        self._links.append({"src_act": src_act.act_id, "send_ep": send_ep,
                            "dst_act": dst_act.act_id, "recv_ep": recv_ep})
        return send_ep, recv_ep, reply_ep

    def wire_memory(self, act: Activity, mem_tile: int, base: int, size: int,
                    perm: Perm = Perm.RW, ep_id: Optional[int] = None) -> Generator:
        """Boot-style memory endpoint for ``act`` (e.g. the fs image)."""
        yield self._charge_ps(self.SYSCALL_BASE_CY)
        if ep_id is None:
            ep_id = self.alloc_ep(act.tile_id)
        yield from self.config_ep(act.tile_id, ep_id, MemoryEndpoint(
            act=act.act_id, dst_tile=mem_tile, base=base, size=size, perm=perm))
        self._record_ep(act.act_id, ep_id)
        return ep_id

    # ------------------------------------------------------------- migration

    def migrate(self, act_id: int, dst_tile: int) -> Generator:
        """Live-migrate an activity to ``dst_tile``; returns True on success.

        Protocol (exactly-once and in-order across the move):

        1. ``MIGRATE_OUT`` detaches the activity from its TileMux; the
           tile-side re-validation is authoritative (running/sleeping
           activities are refused, nothing has changed on refusal).
        2. ``MIGRATE_EPS`` atomically snapshots + invalidates the
           activity's endpoints at the source vDTU *and* installs
           holding forward stubs in the same instant — no packet can
           slip between drain and forwarding.
        3. ``WRITE_EPS`` installs the snapshot at the target (same EP
           ids), then ``MIGRATE_IN`` hands the context to the target
           TileMux, which recounts unread messages from the live EP
           table — a forwarded packet may land between the snapshot
           and the handoff, so the snapshot's count is only a hint.
        4. ``RELEASE_FWD`` flushes held packets in arrival order; from
           here the stubs relay live.  Peers' send EPs are lazily
           repointed via :meth:`drain_retargets`.

        Refused for service owners (sessions would dangle), pager-backed
        activities (the pager's frame gate pins the source window), and
        when the target tile's EP allocator already passed the
        activity's EP id range.
        """
        act = self.acts.get(act_id)
        src_tile = self._act_tiles.get(act_id)
        eps = sorted(self._mig_eps.get(act_id, ()))
        if (act is None or act.state is ActState.EXITED or not eps
                or src_tile is None or src_tile == dst_tile
                or dst_tile not in self._tmux_seps
                or act.pager_session is not None
                or any(srv.rgate.owner_act == act_id
                       for srv in self.services.values())
                or eps[0] < self._ep_alloc[dst_tile]):
            self.stats.counter("ctrl/migrate_refused").add()
            return False
        # Reserve the same EP ids on the target *before* the first yield:
        # no id translation, so every EP id the program captured at boot
        # stays valid — and a spawn racing with the MIGRATE_OUT round
        # trip must not hand out ids inside the incoming range (it would
        # be silently clobbered by WRITE_EPS).  On refusal the skipped
        # ids are leaked, which is harmless: the allocator is monotonic
        # and the table is large.
        self._ep_alloc[dst_tile] = eps[-1] + 1
        yield self._charge_ps(self.MIGRATE_CY)
        try:
            yield from self.tmux_request(src_tile, TmuxOp.MIGRATE_OUT,
                                         {"act_id": act_id})
        except SyscallError:
            self.stats.counter("ctrl/migrate_refused").add()
            return False
        fwd = {ep: (dst_tile, ep) for ep in eps}
        snap = yield from self._ext(src_tile, ExtOp.MIGRATE_EPS,
                                    {"ep_ids": eps, "fwd": fwd})
        msgs = sum(ep.unread for ep in snap.values()
                   if isinstance(ep, ReceiveEndpoint))
        yield from self._ext(dst_tile, ExtOp.WRITE_EPS, {"eps": snap})
        yield from self.tmux_request(dst_tile, TmuxOp.MIGRATE_IN,
                                     {"activity": act, "msgs": msgs})
        yield from self._ext(src_tile, ExtOp.RELEASE_FWD, {"ep_ids": eps})
        self._act_tiles[act_id] = dst_tile
        for link in self._links:
            if link["dst_act"] == act_id:
                self._queue_retarget(link, src_tile, dst_tile)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(self.sim, "migrate", tile=self.tile_id, act=act_id,
                        src=src_tile, dst=dst_tile)
        self.stats.counter("ctrl/migrations").add()
        return True

    def _queue_retarget(self, link: Dict[str, int], src_tile: int,
                        dst_tile: int) -> None:
        for pend in self._pending_retargets:
            if pend["link"] is link:
                # migrated again before the peer caught up: the peer's EP
                # still points at the *original* location, so keep old_*
                pend["new_tile"] = dst_tile
                return
        self._pending_retargets.append({"link": link, "old_tile": src_tile,
                                        "new_tile": dst_tile, "tries": 0})

    def drain_retargets(self) -> Generator:
        """Repoint peers' send EPs at migrated receive EPs.

        A retarget succeeds only when every credit of the peer's send EP
        is home (nothing in flight, so no reordering); until then the
        source tile's forward stub keeps the channel correct and we
        retry on a later tick.  Permanently-busy or unlimited-credit
        channels keep their stub forever — an extra hop, not an error.
        """
        pending, self._pending_retargets = self._pending_retargets, []
        for pend in pending:
            link = pend["link"]
            peer_tile = self._act_tiles.get(link["src_act"])
            if peer_tile is None:
                continue  # peer exited; nothing left to repoint
            ok = yield from self._ext(peer_tile, ExtOp.RETARGET_EP, {
                "ep_id": link["send_ep"], "old_tile": pend["old_tile"],
                "old_ep": link["recv_ep"], "new_tile": pend["new_tile"],
                "new_ep": link["recv_ep"]})
            if ok:
                self.stats.counter("ctrl/retargets").add()
                continue
            pend["tries"] += 1
            if pend["tries"] < 64:
                self._pending_retargets.append(pend)
            else:
                self.stats.counter("ctrl/retargets_dropped").add()
