"""The communication controller ("kernel" in earlier M3 papers).

The controller runs on a dedicated tile, knows every activity in the
system, and is the only component allowed to establish communication
channels: it owns the capability system and configures DTU endpoints
through the external interface (sections 2.1, 3.3).
"""

from repro.kernel.caps import (
    CapKind,
    CapTable,
    Capability,
    CapError,
    MGateObj,
    RGateObj,
    SGateObj,
    ServiceObj,
)
from repro.kernel.activity import ActState, Activity, AddressSpace
from repro.kernel.memalloc import PhysAllocator, PhysRegion
from repro.kernel.controller import Controller, Syscall, SyscallError

__all__ = [
    "CapKind",
    "Capability",
    "CapTable",
    "CapError",
    "RGateObj",
    "SGateObj",
    "MGateObj",
    "ServiceObj",
    "ActState",
    "Activity",
    "AddressSpace",
    "PhysAllocator",
    "PhysRegion",
    "Controller",
    "Syscall",
    "SyscallError",
]
