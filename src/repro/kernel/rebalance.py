"""Controller-side activity rebalancing (adaptive placement).

The :class:`Rebalancer` is a simulation process on the controller tile
that closes the loop the obs layer opened: each interval it looks at
the per-tile runnable depth (reported by every TileMux as
``TmuxNotify.LOAD`` beacons over the notify channel, and mirrored into
the ``tileN/sched/ready_depth`` StatRegistry gauge on sim time) and at
the controller's quarantine set, and live-migrates activities off hot
or quarantined tiles via :meth:`repro.kernel.controller.Controller.migrate`.

Determinism: every input the rebalancer consumes lives in the
controller's shard — quarantine state, the LOAD beacon mailbox (fed by
NoC messages), and its own cooldown table.  It never reads another
shard's mux or gauge state directly (REP004), so its decisions are
identical under serial and sharded execution.  Scans walk tiles and
activities in sorted-id order for the same reason.

The policy itself is deliberately simple (the figS experiment measures
the *mechanism*): evacuate quarantined tiles first, then move one
activity per tick from the hottest tile to the coolest when the
imbalance exceeds a threshold.  Refused migrations (the tile-side
re-validation owns the truth: running, sleeping, or already-exited
activities stay put) are simply retried on a later tick via cooldown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

__all__ = ["PlacementSpec", "Rebalancer"]


@dataclass(frozen=True)
class PlacementSpec:
    """Frozen adaptive-placement configuration (m3v only).

    Attaching a spec turns on the TileMux load beacons and the
    controller rebalancer; the default ``SystemConfig`` leaves it off,
    so the fault-free static-placement path runs zero extra events.
    """

    interval_us: float = 500.0     # beacon + rebalance tick period
    hot_depth: int = 3             # runnable depth that marks a tile hot
    spread: int = 2                # min hot-cool gap before moving one
    cooldown_us: float = 2000.0    # per-activity migration cooldown
    max_migrations: int = 32       # campaign-level migration budget
    evacuate_quarantined: bool = True

    def __post_init__(self):
        if self.interval_us <= 0:
            raise ValueError(f"placement interval {self.interval_us} us "
                             f"must be positive")
        if self.hot_depth < 1 or self.spread < 1:
            raise ValueError("hot_depth and spread must be >= 1")


class Rebalancer:
    """Periodic migration controller; one instance per platform."""

    def __init__(self, sim, controller, spec: PlacementSpec,
                 proc_tile_ids: List[int]):
        self.sim = sim
        self.controller = controller
        self.spec = spec
        self.tiles = sorted(proc_tile_ids)
        self.interval_ps = round(spec.interval_us * 1_000_000)
        self.cooldown_ps = round(spec.cooldown_us * 1_000_000)
        self.migrations = 0
        self._cooldown: Dict[int, int] = {}    # act_id -> earliest next try
        self._proc = sim.process(self._run(), name="rebalancer")

    # ------------------------------------------------------------------ loop

    def _run(self) -> Generator:
        while True:
            yield self.interval_ps
            yield from self.controller.drain_retargets()
            if self.migrations >= self.spec.max_migrations:
                continue
            yield from self._tick()

    def _tick(self) -> Generator:
        ctrl = self.controller
        load = {t: ctrl._tile_load.get(t, 0) for t in self.tiles}
        healthy = [t for t in self.tiles if t not in ctrl.quarantined]
        if not healthy:
            return
        if self.spec.evacuate_quarantined:
            for tile in sorted(ctrl.quarantined):
                if tile not in load:
                    continue
                for act_id in self._residents(tile):
                    target = min(healthy, key=lambda t: (load[t], t))
                    moved = yield from self._try_migrate(act_id, target)
                    if moved:
                        load[target] += 1
                    if self.migrations >= self.spec.max_migrations:
                        return
        hot = max(healthy, key=lambda t: (load[t], -t))
        cool = min(healthy, key=lambda t: (load[t], t))
        if (load[hot] < self.spec.hot_depth
                or load[hot] - load[cool] < self.spec.spread):
            return
        for act_id in self._residents(hot):
            moved = yield from self._try_migrate(act_id, cool)
            if moved:
                return

    # --------------------------------------------------------------- helpers

    def _residents(self, tile: int) -> List[int]:
        """Activity ids the *controller* places on ``tile``, sorted.

        Uses the controller's own placement table (not the activities'
        live state, which belongs to other shards) so the scan order is
        shard-independent.
        """
        now = self.sim.now
        return [act_id for act_id, tid
                in sorted(self.controller._act_tiles.items())
                if tid == tile and self._cooldown.get(act_id, 0) <= now]

    def _try_migrate(self, act_id: int, target: int) -> Generator:
        self._cooldown[act_id] = self.sim.now + self.cooldown_ps
        moved = yield from self.controller.migrate(act_id, target)
        if moved:
            self.migrations += 1
        return moved
