"""Physical-memory management.

The controller owns all physical memory (sections 4.1, 4.3): it grants
per-tile PMP regions at boot and carves memory gates out of the
remaining DRAM.  A simple first-fit free-list allocator is sufficient —
and mirrors the controller's actual role of handing out contiguous
regions for memory endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


class OutOfMemory(Exception):
    pass


@dataclass(frozen=True)
class PhysRegion:
    """A contiguous region on one memory tile."""

    mem_tile: int
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size


class PhysAllocator:
    """First-fit allocator over the DRAM of the platform's memory tiles."""

    def __init__(self, regions: List[PhysRegion]):
        # free list per memory tile, sorted by base
        self._free: List[PhysRegion] = sorted(regions, key=lambda r: (r.mem_tile, r.base))
        self._total = sum(r.size for r in regions)
        self._allocated = 0

    @property
    def free_bytes(self) -> int:
        return self._total - self._allocated

    def alloc(self, size: int, align: int = 4096) -> PhysRegion:
        """Allocate ``size`` bytes (aligned); first fit across tiles."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        size = (size + align - 1) // align * align
        for idx, region in enumerate(self._free):
            base = (region.base + align - 1) // align * align
            if base + size <= region.end:
                self._carve(idx, region, base, size)
                self._allocated += size
                return PhysRegion(region.mem_tile, base, size)
        raise OutOfMemory(f"no region of {size} bytes available "
                          f"({self.free_bytes} free, fragmented)")

    def _carve(self, idx: int, region: PhysRegion, base: int, size: int) -> None:
        pieces = []
        if base > region.base:
            pieces.append(PhysRegion(region.mem_tile, region.base, base - region.base))
        if base + size < region.end:
            pieces.append(PhysRegion(region.mem_tile, base + size,
                                     region.end - (base + size)))
        self._free[idx:idx + 1] = pieces

    def free(self, region: PhysRegion) -> None:
        """Return a region; coalesces with adjacent free space."""
        self._allocated -= region.size
        self._free.append(region)
        self._free.sort(key=lambda r: (r.mem_tile, r.base))
        merged: List[PhysRegion] = []
        for r in self._free:
            if (merged and merged[-1].mem_tile == r.mem_tile
                    and merged[-1].end == r.base):
                merged[-1] = PhysRegion(r.mem_tile, merged[-1].base,
                                        merged[-1].size + r.size)
            else:
                merged.append(r)
        self._free = merged
