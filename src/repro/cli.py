"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``area``      print Table 1 and the derived ratios
``sloc``      print the section-6.1 complexity report
``fig6|fig7|fig8|fig9|fig10|figR|figS|voice``
              run one experiment (shortened workloads; ``--paper`` for
              the full parameters) and print its ASCII figure.  All of
              these go through the parallel runner: ``--jobs N`` fans
              the sweep's points over N worker processes, and results
              are served from the content-addressed ``.repro-cache/``
              unless ``--no-cache`` (``--refresh-cache`` re-simulates
              and rewrites the entries)
``stats <sweep>``
              run a sweep with the metrics layer on and print per-point
              time series (queue depths, context switches, rates) plus
              aggregate counters; ``--quick`` shrinks the workload
``profile <sweep>``
              run a sweep serially with the simulator self-profiler and
              print wall-clock per subsystem + events/sec
``report <results.json>``
              render a full run_experiments.py dump + shape checks
``trace fig6|fig8``
              record a deterministic execution trace of a golden
              workload; ``--diff`` checks it against the committed
              golden digest, ``--refresh`` rewrites the golden file,
              ``--out`` dumps the full canonical JSON, ``--spans`` /
              ``--chrome`` export activity timelines
``lint``      run the repo's own static analyzer (REP001 determinism,
              REP002 sim-concurrency, REP003 layering) against the
              committed ``lint_baseline.json``; exit 1 on new findings

Experiment modules import lazily: ``repro --version`` and ``repro
lint`` never load the platform stack.

Every subcommand shares one option set (runner options plus
``--metrics``/``--metrics-out``), so ``repro <cmd> --help`` reads the
same everywhere; commands that do not run sweeps simply ignore the
runner options.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__

SWEEPS = ("fig6", "fig7", "fig8", "fig9", "fig10", "figR", "figS", "voice")


def _open_out(path):
    """Open ``path`` for writing, creating missing parent directories."""
    p = Path(path)
    if p.parent and not p.parent.exists():
        p.parent.mkdir(parents=True, exist_ok=True)
    return open(p, "w")


def _make_runner(args, metrics: bool = False, profile: bool = False):
    from repro.runner import ResultCache, Runner

    cache = None
    if not args.no_cache and not profile:  # profiles are never cached
        cache = ResultCache(root=args.cache_dir,
                            refresh=args.refresh_cache)
    jobs = 1 if profile else args.jobs     # self-profiling stays in-process
    return Runner(jobs=jobs, cache=cache, metrics=metrics, profile=profile,
                  progress=jobs > 1 and sys.stderr.isatty())


def _config_label(config) -> str:
    label = repr(config)
    return label if len(label) <= 72 else label[:69] + "..."


def _emit_metrics(args, runner) -> None:
    """Handle ``--metrics`` (stdout summary) and ``--metrics-out`` (one
    JSON snapshot per point) after a metered sweep."""
    from repro.obs import MetricsRegistry

    outcomes = [o for o in runner.last_outcomes
                if o is not None and o.metrics is not None]
    if getattr(args, "metrics_out", None):
        out_dir = Path(args.metrics_out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for o in outcomes:
            path = out_dir / f"{o.spec.sweep}-{o.spec.index}.metrics.json"
            with open(path, "w") as fh:
                json.dump(o.metrics, fh, sort_keys=True)
                fh.write("\n")
        print(f"metrics: {len(outcomes)} snapshot(s) written to "
              f"{out_dir}/", file=sys.stderr)
    if getattr(args, "metrics", False):
        merged = MetricsRegistry.merge_dicts(o.metrics for o in outcomes)
        counters = merged["counters"]
        print(f"metrics — aggregate counters over {len(outcomes)} point(s):")
        for name, value in sorted(counters.items()):
            print(f"  {name:<44} {value:>12,}")
        if not counters:
            print("  (none recorded)")


def _sweep_result(name: str, params, args):
    """Run one figure's sweep through the runner (CLI plumbing)."""
    want_metrics = bool(getattr(args, "metrics", False)
                        or getattr(args, "metrics_out", None))
    runner = _make_runner(args, metrics=want_metrics)
    result = runner.run_sweep(name, params)
    if want_metrics:
        _emit_metrics(args, runner)
    return result


def _cmd_area(_args) -> int:
    from repro.hw import table1

    model = table1()
    print(f"{'Component':28s} {'LUTs[k]':>8s} {'FFs[k]':>7s} {'BRAMs':>6s}")
    for row in model.table_rows():
        print(f"{row['component']:28s} {row['kluts']:8.1f} "
              f"{row['kffs']:7.1f} {row['brams']:6.1f}")
    print(f"\nvDTU / BOOM:   {model.vdtu_fraction_of('BOOM'):.1%}")
    print(f"vDTU / Rocket: {model.vdtu_fraction_of('Rocket'):.1%}")
    print(f"virtualization overhead: {model.virtualization_overhead():.1%}")
    return 0


def _cmd_sloc(_args) -> int:
    from repro.hw import complexity_report

    report = complexity_report()
    for role in ("controller", "tilemux"):
        r = report[role]
        print(f"{role:11s} paper {r['paper_sloc']:6d} SLOC   "
              f"this repo {r['ours_sloc']:6d} SLOC")
    ratio = report["tilemux_to_controller_ratio"]
    print(f"ratio tilemux/controller: paper {ratio['paper']:.2f} / "
          f"ours {ratio['ours']:.2f}")
    return 0


# -- per-sweep parameter scaling ----------------------------------------------

def _sweep_params(name: str, args):
    """Parameters for ``name`` at the requested scale.

    ``--paper`` selects the full paper workloads, ``--quick`` the
    golden/smoke scale; the default is the shortened CLI scale.
    """
    paper = getattr(args, "paper", False)
    quick = getattr(args, "quick", False)
    if name == "fig6":
        from repro.core.exps.fig6 import Fig6Params
        if paper:
            return Fig6Params()
        return (Fig6Params(iterations=10, warmup=2) if quick
                else Fig6Params(iterations=150, warmup=15))
    if name == "fig7":
        from repro.core.exps.fig7 import Fig7Params
        if paper:
            return Fig7Params()
        return (Fig7Params(file_bytes=128 * 1024, runs=1, warmup=1) if quick
                else Fig7Params(file_bytes=512 * 1024, runs=2, warmup=1))
    if name == "fig8":
        from repro.core.exps.fig8 import Fig8Params
        if paper:
            return Fig8Params()
        return (Fig8Params(repetitions=5, warmup=1) if quick
                else Fig8Params(repetitions=15, warmup=3))
    if name == "fig9":
        from repro.core.exps.fig9 import Fig9Params
        trace = getattr(args, "trace", "find") or "find"
        if paper:
            return Fig9Params(trace=trace)
        if quick:
            return Fig9Params(trace=trace, tile_counts=[1, 2], runs=1,
                              find_dirs=4, find_files=6, sqlite_txns=4)
        return Fig9Params(trace=trace, find_dirs=6, find_files=10,
                          sqlite_txns=8)
    if name == "fig10":
        from repro.core.exps.fig10 import Fig10Params
        mix = getattr(args, "mix", "scan") or "scan"
        if paper:
            return Fig10Params(runs=8, warmup=2, mixes=(mix,))
        if quick:
            return Fig10Params(records=30, operations=30, runs=1,
                               warmup=0, mixes=(mix,))
        return Fig10Params(records=60, operations=60, runs=1, warmup=0,
                           mixes=(mix,))
    if name == "figR":
        from repro.core.exps.figr import FigRParams
        if paper:
            return FigRParams()
        return (FigRParams(messages=10, fault_rates=[0.0, 0.1]) if quick
                else FigRParams(messages=15, fault_rates=[0.0, 0.05, 0.1]))
    if name == "figS":
        from repro.core.exps.figs import FigSParams
        if paper:
            return FigSParams()
        if quick:
            return FigSParams(requests=10, loads=[0.7, 2.0],
                              ablation_loads=[2.0], backend_loads=[2.0])
        return FigSParams(requests=30, loads=[0.7, 1.0, 1.5, 2.0],
                          ablation_loads=[2.0], backend_loads=[2.0])
    if name == "voice":
        from repro.core.exps.voice import VoiceParams
        if paper:
            return VoiceParams(triggers=8)
        return VoiceParams(triggers=2 if quick else 4)
    raise ValueError(f"unknown sweep {name!r}")


def _cmd_fig6(args) -> int:
    from repro.core.report import bar_chart

    rows = _sweep_result("fig6", _sweep_params("fig6", args), args)
    print(bar_chart("Figure 6 — no-op round trips (k cycles)",
                    {k: v["kcycles"] for k, v in rows.items()}, unit="kcy"))
    return 0


def _cmd_fig7(args) -> int:
    from repro.core.report import bar_chart

    print(bar_chart("Figure 7 — file throughput (MiB/s)",
                    _sweep_result("fig7", _sweep_params("fig7", args), args),
                    unit="MiB/s"))
    return 0


def _cmd_fig8(args) -> int:
    from repro.core.report import bar_chart

    print(bar_chart("Figure 8 — UDP RTT (us)",
                    _sweep_result("fig8", _sweep_params("fig8", args), args),
                    unit="us"))
    return 0


def _cmd_fig9(args) -> int:
    from repro.core.report import series_chart

    data = _sweep_result("fig9", _sweep_params("fig9", args), args)
    print(series_chart(f"Figure 9 — {args.trace} (runs/s)", data))
    return 0


def _cmd_fig10(args) -> int:
    data = _sweep_result("fig10", _sweep_params("fig10", args), args)
    for system, row in data[args.mix].items():
        print(f"{system:14s} total={row['total_s']:.3f}s "
              f"user={row['user_s']:.3f}s sys={row['sys_s']:.3f}s")
    return 0


def _cmd_figr(args) -> int:
    data = _sweep_result("figR", _sweep_params("figR", args), args)
    print("Figure R — goodput and tail latency vs NoC fault rate")
    for system, by_rate in data.items():
        print(f"  {system}:")
        for rate, row in sorted(by_rate.items()):
            if row is None:
                print(f"    rate {rate:4.0%}  FAILED")
                continue
            print(f"    rate {rate:4.0%}  {row['goodput_rps']:8.0f} rps  "
                  f"p50 {row['p50_us']:7.1f} us  p99 {row['p99_us']:7.1f} us  "
                  f"retx {row['retransmits']:3d}  "
                  f"slow {row['slow_paths']:3d}  "
                  f"failed {row['failures']:2d}")
    return 0


def _cmd_figs(args) -> int:
    data = _sweep_result("figS", _sweep_params("figS", args), args)
    print("Figure S — goodput and tail latency vs offered load "
          "(multi-tenant serving under faults)")
    for arm, by_load in data.items():
        print(f"  {arm}:")
        for load, row in sorted(by_load.items()):
            if row is None:
                print(f"    load {load:4.1f}x  FAILED")
                continue
            print(f"    load {load:4.1f}x  offered {row['offered_rps']:7.0f} "
                  f"rps  goodput {row['goodput_rps']:7.0f} rps  "
                  f"p50 {row['p50_us']:8.1f} us  p99 {row['p99_us']:8.1f} us  "
                  f"p99.9 {row['p999_us']:8.1f} us  "
                  f"shed {row['shed']:3d}  bp {row['backpressure']:4d}  "
                  f"slow {row['slow_paths']:4d}")
    return 0


def _cmd_voice(args) -> int:
    data = _sweep_result("voice", _sweep_params("voice", args), args)
    print(f"isolated {data['isolated_ms']:.1f} ms / "
          f"shared {data['shared_ms']:.1f} ms "
          f"(+{data['overhead_pct']:.1f}%, paper +3.6%)")
    return 0


# -- observability commands ---------------------------------------------------

def _series_line(name: str, points) -> str:
    values = [v for _, v in points]
    if not values:
        return f"  {name:<40} (empty)"
    mean = sum(values) / len(values)
    return (f"  {name:<40} n={len(values):<5d} min={min(values):<10g} "
            f"mean={mean:<10.6g} max={max(values):<10g} last={values[-1]:g}")


def _cmd_stats(args) -> int:
    """Run ``<sweep>`` with metrics on; print per-point time series
    (queue depths, context-switch rates) and aggregate counters."""
    from repro.obs import MetricsRegistry

    runner = _make_runner(args, metrics=True)
    runner.run_sweep(args.sweep, _sweep_params(args.sweep, args))
    outcomes = [o for o in runner.last_outcomes
                if o is not None and o.metrics is not None]
    filters = args.series or []
    for o in outcomes:
        print(f"== {o.spec.sweep}[{o.spec.index}] "
              f"{_config_label(o.spec.config)}")
        gauges = dict(o.metrics.get("gauges", {}))
        if o.metrics.get("evq_depth"):
            gauges["sim/evq_depth"] = o.metrics["evq_depth"]
        shown = 0
        for name in sorted(gauges):
            if filters and not any(f in name for f in filters):
                continue
            print(_series_line(name, gauges[name]))
            shown += 1
        for name, summary in sorted(o.metrics.get("histograms", {}).items()):
            if filters and not any(f in name for f in filters):
                continue
            if summary.get("count"):
                print(f"  {name:<40} count={summary['count']:<7d} "
                      f"p50={summary['p50']:<12g} p99={summary['p99']:<12g} "
                      f"max={summary['max']:g}")
                shown += 1
        if not shown:
            print("  (no series matched)")
    merged = MetricsRegistry.merge_dicts(o.metrics for o in outcomes)
    print(f"== aggregate counters ({len(outcomes)} point(s))")
    for name, value in sorted(merged["counters"].items()):
        if filters and not any(f in name for f in filters):
            continue
        print(f"  {name:<44} {value:>12,}")
    if getattr(args, "metrics_out", None):
        _emit_metrics(args, runner)
    return 0


def _cmd_profile(args) -> int:
    """Run ``<sweep>`` serially under the self-profiler; print
    wall-clock per subsystem and events/sec."""
    from repro.obs import SelfProfiler

    runner = _make_runner(args, profile=True)
    runner.run_sweep(args.sweep, _sweep_params(args.sweep, args))
    profiles = [o.profile for o in runner.last_outcomes
                if o is not None and o.profile is not None]
    merged = SelfProfiler()
    for p in profiles:
        merged.merge(p)
    print(f"profile — {args.sweep}, {len(profiles)} point(s), "
          f"simulated in-process (jobs=1, no cache):")
    print(merged.table())
    return 0


def _cmd_trace(args) -> int:
    from repro.testing.golden import (
        canonical_json,
        diff_digest,
        digest,
        golden_path,
        load_golden,
        record_trace,
        write_golden,
    )

    tracer = record_trace(args.workload)
    actual = digest(tracer)
    print(f"{args.workload}: {actual['n_events']} events, "
          f"sha256 {actual['sha256'][:16]}…")
    if args.out:
        with _open_out(args.out) as fh:
            fh.write(canonical_json(tracer))
            fh.write("\n")
        print(f"canonical trace written to {args.out}")
    if args.spans or args.chrome:
        from repro.obs import SpanCollector

        collector = SpanCollector()
        collector.feed(tracer.events)
        collector.finish()
        if args.spans:
            with _open_out(args.spans) as fh:
                fh.write(collector.to_json())
                fh.write("\n")
            print(f"{len(collector.spans)} spans written to {args.spans}")
        if args.chrome:
            with _open_out(args.chrome) as fh:
                fh.write(collector.to_chrome())
                fh.write("\n")
            print(f"chrome trace written to {args.chrome} "
                  f"(load via chrome://tracing or https://ui.perfetto.dev)")
    if args.refresh:
        path = write_golden(args.workload, tracer)
        print(f"golden digest refreshed: {path}")
        return 0
    if args.diff:
        path = golden_path(args.workload)
        if not path.exists():
            print(f"no golden file at {path} (record one with --refresh)")
            return 1
        problems = diff_digest(load_golden(args.workload), actual)
        if problems:
            print("trace DIVERGES from golden:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("trace matches golden")
    return 0


def _cmd_report(args) -> int:
    from repro.core.report import render_report, shape_checks

    with open(args.results) as handle:
        results = json.load(handle)
    print(render_report(results))
    failures = shape_checks(results)
    if failures:
        print("\nSHAPE CHECKS FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall shape checks passed")
    return 0


def _cmd_bench(args) -> int:
    from repro import bench

    paths = bench.write_bench_files(args.out_dir, args.runs, args.which)
    for path in paths:
        print(f"wrote {path}")
    if args.against:
        problems = bench.check_against(args.against, args.out_dir,
                                       args.threshold)
        if problems:
            print("PERF GATE FAILED:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"perf gate passed (threshold {args.threshold:.0%})")
    return 0


def _cmd_chaos(args) -> int:
    """Run the seeded chaos campaigns (fault storms + overload bursts
    over the figS serving topology) and gate on their verdicts."""
    from repro.testing.chaos import run_campaigns, standard_campaigns

    campaigns = standard_campaigns(requests=args.requests)
    if args.campaign:
        wanted = set(args.campaign)
        known = {c.name for c in campaigns}
        unknown = wanted - known
        if unknown:
            print(f"unknown campaign(s): {', '.join(sorted(unknown))}; "
                  f"known: {', '.join(sorted(known))}", file=sys.stderr)
            return 2
        campaigns = [c for c in campaigns if c.name in wanted]
    results = run_campaigns(campaigns)
    for result in results:
        print(result.summary())
    failed = [r for r in results if not r.ok]
    print(f"\nchaos: {len(results) - len(failed)}/{len(results)} "
          f"campaign(s) passed")
    return 1 if failed else 0


def _cmd_lint(args) -> int:
    from repro.analysis import cli as lint_cli

    return lint_cli.run(args)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="M3v reproduction experiment runner")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    # one option set shared by every subcommand: runner options plus the
    # observability flags; commands that do not run sweeps ignore them
    common = argparse.ArgumentParser(add_help=False)
    runner_group = common.add_argument_group("runner options")
    runner_group.add_argument("--jobs", type=int, default=1, metavar="N",
                              help="worker processes for the sweep's points")
    runner_group.add_argument("--no-cache", action="store_true",
                              help="disable the content-addressed result "
                                   "cache")
    runner_group.add_argument("--refresh-cache", action="store_true",
                              help="ignore cached results but write fresh "
                                   "ones")
    runner_group.add_argument("--cache-dir", default=".repro-cache",
                              help="cache location (default .repro-cache)")
    obs_group = common.add_argument_group("observability options")
    obs_group.add_argument("--metrics", action="store_true",
                           help="meter the sweep and print aggregate "
                                "counters")
    obs_group.add_argument("--metrics-out", metavar="DIR",
                           help="write one metrics JSON snapshot per point "
                                "into DIR (created if missing)")

    sub.add_parser("area", parents=[common]).set_defaults(func=_cmd_area)
    sub.add_parser("sloc", parents=[common]).set_defaults(func=_cmd_sloc)
    for name, func in (("fig6", _cmd_fig6), ("fig7", _cmd_fig7),
                       ("fig8", _cmd_fig8), ("figR", _cmd_figr),
                       ("figS", _cmd_figs), ("voice", _cmd_voice)):
        p = sub.add_parser(name, parents=[common])
        p.add_argument("--quick", action="store_true",
                       help="golden/smoke-scale workload")
        p.add_argument("--paper", action="store_true",
                       help="full paper-scale parameters")
        p.set_defaults(func=func)
    p = sub.add_parser("fig9", parents=[common])
    p.add_argument("--trace", choices=("find", "sqlite"), default="find")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--paper", action="store_true")
    p.set_defaults(func=_cmd_fig9)
    p = sub.add_parser("fig10", parents=[common])
    p.add_argument("--mix", choices=("read", "insert", "update",
                                     "mixed", "scan"), default="scan")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--paper", action="store_true")
    p.set_defaults(func=_cmd_fig10)

    for name, func, doc in (
            ("stats", _cmd_stats,
             "run a sweep with metrics on; print time series + counters"),
            ("profile", _cmd_profile,
             "run a sweep under the self-profiler; print wall-clock per "
             "subsystem")):
        p = sub.add_parser(name, parents=[common], help=doc)
        p.add_argument("sweep", choices=SWEEPS)
        p.add_argument("--quick", action="store_true",
                       help="golden/smoke-scale workload")
        p.add_argument("--paper", action="store_true",
                       help="full paper-scale parameters")
        p.add_argument("--trace", choices=("find", "sqlite"),
                       default="find", help="fig9 trace selection")
        p.add_argument("--mix", choices=("read", "insert", "update",
                                         "mixed", "scan"), default="scan",
                       help="fig10 mix selection")
        if name == "stats":
            p.add_argument("--series", action="append", metavar="SUBSTR",
                           help="only print series/counters whose name "
                                "contains SUBSTR (repeatable)")
        p.set_defaults(func=func)

    p = sub.add_parser(
        "chaos", parents=[common],
        help="run seeded fault-storm + overload-burst campaigns against "
             "SLO floors and the invariant checkers")
    p.add_argument("--campaign", action="append", metavar="NAME",
                   help="run only this campaign (repeatable)")
    p.add_argument("--requests", type=int, default=10, metavar="N",
                   help="requests per gateway per phase (default 10)")
    p.set_defaults(func=_cmd_chaos)
    p = sub.add_parser("report", parents=[common])
    p.add_argument("results", help="JSON from scripts/run_experiments.py")
    p.set_defaults(func=_cmd_report)
    p = sub.add_parser("trace", parents=[common])
    p.add_argument("workload", choices=("fig6", "fig8"))
    p.add_argument("--diff", action="store_true",
                   help="compare against the committed golden digest")
    p.add_argument("--refresh", action="store_true",
                   help="rewrite the golden digest from this run")
    p.add_argument("--out", metavar="FILE",
                   help="write the full canonical trace JSON to FILE")
    p.add_argument("--spans", metavar="FILE",
                   help="export activity timeline spans as JSON to FILE")
    p.add_argument("--chrome", metavar="FILE",
                   help="export a Chrome trace_event file to FILE")
    p.set_defaults(func=_cmd_trace)
    p = sub.add_parser("bench", parents=[common])
    p.add_argument("--out-dir", default=".", metavar="DIR",
                   help="where to write BENCH_engine.json / BENCH_figs.json "
                        "(default: current directory)")
    p.add_argument("--runs", type=int, default=3, metavar="N",
                   help="timed runs per benchmark; the best is kept")
    p.add_argument("--which", choices=("all", "engine", "figs"),
                   default="all", help="which BENCH file(s) to produce")
    p.add_argument("--against", metavar="DIR",
                   help="compare against the committed BENCH_*.json in DIR "
                        "and exit 1 on regression")
    p.add_argument("--threshold", type=float,
                   default=float(os.environ.get("PERF_THRESHOLD", "0.25")),
                   help="tolerated events/sec drop vs the committed "
                        "trajectory (default 0.25)")
    p.set_defaults(func=_cmd_bench)

    # deliberately NOT parented on `common`: lint must stay importable
    # without the runner/observability stacks
    from repro.analysis.cli import add_lint_arguments
    p = sub.add_parser(
        "lint", help="static analyzer: determinism, sim-concurrency, "
                     "layering (REP001-REP003)")
    add_lint_arguments(p)
    p.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
