"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``area``      print Table 1 and the derived ratios
``sloc``      print the section-6.1 complexity report
``fig6|fig7|fig8|fig9|fig10|figR|voice``
              run one experiment (shortened workloads; ``--paper`` for
              the full parameters) and print its ASCII figure.  All of
              these go through the parallel runner: ``--jobs N`` fans
              the sweep's points over N worker processes, and results
              are served from the content-addressed ``.repro-cache/``
              unless ``--no-cache`` (``--refresh-cache`` re-simulates
              and rewrites the entries)
``report <results.json>``
              render a full run_experiments.py dump + shape checks
``trace fig6|fig8``
              record a deterministic execution trace of a golden
              workload; ``--diff`` checks it against the committed
              golden digest, ``--refresh`` rewrites the golden file,
              ``--out`` dumps the full canonical JSON
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.report import bar_chart, render_report, shape_checks


def _sweep_result(name: str, params, args):
    """Run one figure's sweep through the runner (CLI plumbing)."""
    from repro.runner import ResultCache, Runner

    cache = None
    if not args.no_cache:
        cache = ResultCache(root=args.cache_dir,
                            refresh=args.refresh_cache)
    runner = Runner(jobs=args.jobs, cache=cache,
                    progress=args.jobs > 1 and sys.stderr.isatty())
    return runner.run_sweep(name, params)


def _cmd_area(_args) -> int:
    from repro.hw import table1

    model = table1()
    print(f"{'Component':28s} {'LUTs[k]':>8s} {'FFs[k]':>7s} {'BRAMs':>6s}")
    for row in model.table_rows():
        print(f"{row['component']:28s} {row['kluts']:8.1f} "
              f"{row['kffs']:7.1f} {row['brams']:6.1f}")
    print(f"\nvDTU / BOOM:   {model.vdtu_fraction_of('BOOM'):.1%}")
    print(f"vDTU / Rocket: {model.vdtu_fraction_of('Rocket'):.1%}")
    print(f"virtualization overhead: {model.virtualization_overhead():.1%}")
    return 0


def _cmd_sloc(_args) -> int:
    from repro.hw import complexity_report

    report = complexity_report()
    for role in ("controller", "tilemux"):
        r = report[role]
        print(f"{role:11s} paper {r['paper_sloc']:6d} SLOC   "
              f"this repo {r['ours_sloc']:6d} SLOC")
    ratio = report["tilemux_to_controller_ratio"]
    print(f"ratio tilemux/controller: paper {ratio['paper']:.2f} / "
          f"ours {ratio['ours']:.2f}")
    return 0


def _cmd_fig6(args) -> int:
    from repro.core.exps.fig6 import Fig6Params

    p = Fig6Params() if args.paper else Fig6Params(iterations=150, warmup=15)
    rows = _sweep_result("fig6", p, args)
    print(bar_chart("Figure 6 — no-op round trips (k cycles)",
                    {k: v["kcycles"] for k, v in rows.items()}, unit="kcy"))
    return 0


def _cmd_fig7(args) -> int:
    from repro.core.exps.fig7 import Fig7Params

    p = Fig7Params() if args.paper else Fig7Params(file_bytes=512 * 1024,
                                                   runs=2, warmup=1)
    print(bar_chart("Figure 7 — file throughput (MiB/s)",
                    _sweep_result("fig7", p, args), unit="MiB/s"))
    return 0


def _cmd_fig8(args) -> int:
    from repro.core.exps.fig8 import Fig8Params

    p = Fig8Params() if args.paper else Fig8Params(repetitions=15, warmup=3)
    print(bar_chart("Figure 8 — UDP RTT (us)",
                    _sweep_result("fig8", p, args), unit="us"))
    return 0


def _cmd_fig9(args) -> int:
    from repro.core.exps.fig9 import Fig9Params
    from repro.core.report import series_chart

    if args.paper:
        p = Fig9Params(trace=args.trace)
    else:
        p = Fig9Params(trace=args.trace, find_dirs=6, find_files=10,
                       sqlite_txns=8)
    data = _sweep_result("fig9", p, args)
    print(series_chart(f"Figure 9 — {args.trace} (runs/s)", data))
    return 0


def _cmd_fig10(args) -> int:
    from repro.core.exps.fig10 import Fig10Params

    if args.paper:
        p = Fig10Params(runs=8, warmup=2, mixes=(args.mix,))
    else:
        p = Fig10Params(records=60, operations=60, runs=1, warmup=0,
                        mixes=(args.mix,))
    data = _sweep_result("fig10", p, args)
    for system, row in data[args.mix].items():
        print(f"{system:14s} total={row['total_s']:.3f}s "
              f"user={row['user_s']:.3f}s sys={row['sys_s']:.3f}s")
    return 0


def _cmd_figr(args) -> int:
    from repro.core.exps.figr import FigRParams

    if args.paper:
        p = FigRParams()
    else:
        p = FigRParams(messages=15, fault_rates=[0.0, 0.05, 0.1])
    data = _sweep_result("figR", p, args)
    print("Figure R — goodput and tail latency vs NoC fault rate")
    for system, by_rate in data.items():
        print(f"  {system}:")
        for rate, row in sorted(by_rate.items()):
            if row is None:
                print(f"    rate {rate:4.0%}  FAILED")
                continue
            print(f"    rate {rate:4.0%}  {row['goodput_rps']:8.0f} rps  "
                  f"p50 {row['p50_us']:7.1f} us  p99 {row['p99_us']:7.1f} us  "
                  f"retx {row['retransmits']:3d}  "
                  f"slow {row['slow_paths']:3d}  "
                  f"failed {row['failures']:2d}")
    return 0


def _cmd_voice(args) -> int:
    from repro.core.exps.voice import VoiceParams

    p = VoiceParams(triggers=8 if args.paper else 4)
    data = _sweep_result("voice", p, args)
    print(f"isolated {data['isolated_ms']:.1f} ms / "
          f"shared {data['shared_ms']:.1f} ms "
          f"(+{data['overhead_pct']:.1f}%, paper +3.6%)")
    return 0


def _cmd_trace(args) -> int:
    from repro.testing.golden import (
        canonical_json,
        diff_digest,
        digest,
        golden_path,
        load_golden,
        record_trace,
        write_golden,
    )

    tracer = record_trace(args.workload)
    actual = digest(tracer)
    print(f"{args.workload}: {actual['n_events']} events, "
          f"sha256 {actual['sha256'][:16]}…")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(canonical_json(tracer))
            fh.write("\n")
        print(f"canonical trace written to {args.out}")
    if args.refresh:
        path = write_golden(args.workload, tracer)
        print(f"golden digest refreshed: {path}")
        return 0
    if args.diff:
        path = golden_path(args.workload)
        if not path.exists():
            print(f"no golden file at {path} (record one with --refresh)")
            return 1
        problems = diff_digest(load_golden(args.workload), actual)
        if problems:
            print("trace DIVERGES from golden:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("trace matches golden")
    return 0


def _cmd_report(args) -> int:
    with open(args.results) as handle:
        results = json.load(handle)
    print(render_report(results))
    failures = shape_checks(results)
    if failures:
        print("\nSHAPE CHECKS FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall shape checks passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="M3v reproduction experiment runner")
    sub = parser.add_subparsers(dest="command", required=True)

    # runner options shared by every figure command
    runner_opts = argparse.ArgumentParser(add_help=False)
    runner_opts.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="worker processes for the sweep's points")
    runner_opts.add_argument("--no-cache", action="store_true",
                             help="disable the content-addressed result "
                                  "cache")
    runner_opts.add_argument("--refresh-cache", action="store_true",
                             help="ignore cached results but write fresh "
                                  "ones")
    runner_opts.add_argument("--cache-dir", default=".repro-cache",
                             help="cache location (default .repro-cache)")

    sub.add_parser("area").set_defaults(func=_cmd_area)
    sub.add_parser("sloc").set_defaults(func=_cmd_sloc)
    for name, func in (("fig6", _cmd_fig6), ("fig7", _cmd_fig7),
                       ("fig8", _cmd_fig8), ("figR", _cmd_figr),
                       ("voice", _cmd_voice)):
        p = sub.add_parser(name, parents=[runner_opts])
        p.add_argument("--paper", action="store_true",
                       help="full paper-scale parameters")
        p.set_defaults(func=func)
    p = sub.add_parser("fig9", parents=[runner_opts])
    p.add_argument("--trace", choices=("find", "sqlite"), default="find")
    p.add_argument("--paper", action="store_true")
    p.set_defaults(func=_cmd_fig9)
    p = sub.add_parser("fig10", parents=[runner_opts])
    p.add_argument("--mix", choices=("read", "insert", "update",
                                     "mixed", "scan"), default="scan")
    p.add_argument("--paper", action="store_true")
    p.set_defaults(func=_cmd_fig10)
    p = sub.add_parser("report")
    p.add_argument("results", help="JSON from scripts/run_experiments.py")
    p.set_defaults(func=_cmd_report)
    p = sub.add_parser("trace")
    p.add_argument("workload", choices=("fig6", "fig8"))
    p.add_argument("--diff", action="store_true",
                   help="compare against the committed golden digest")
    p.add_argument("--refresh", action="store_true",
                   help="rewrite the golden digest from this run")
    p.add_argument("--out", metavar="FILE",
                   help="write the full canonical trace JSON to FILE")
    p.set_defaults(func=_cmd_trace)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
