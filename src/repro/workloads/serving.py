"""Open-loop multi-tenant serving workload for figS.

An *open-loop* load generator models millions of independent clients:
arrivals follow a Poisson process whose rate does not react to server
latency (clients do not wait for each other), which is what makes
overload dangerous — offered load keeps arriving at full rate while
the system drowns.  Each gateway precomputes its arrival schedule up
front from one seeded RNG, so a run is a pure function of
``(seed, gateway, rate, mix)`` regardless of interleaving,
``PYTHONHASHSEED``, or engine sharding.

Tenants are traffic classes (weight, SLO, read mix, key skew), not
individual clients: a client id is drawn from a large id space
(``clients`` defaults to two million) and only rides along in the
request for accounting, the way a real frontend would tag requests.
Keys come from :class:`~repro.workloads.zipfian.ZipfianGenerator` with
per-tenant skew; the shard for a key is ``key_idx % n_shards``
(explicit index, never ``hash()`` — that would drag
``PYTHONHASHSEED`` into placement).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.workloads.zipfian import ZipfianGenerator

__all__ = ["DEFAULT_TENANTS", "Request", "TenantClass", "open_loop_arrivals"]

#: Default id-space size: "millions of simulated clients".
DEFAULT_CLIENTS = 2_000_000


@dataclass(frozen=True)
class TenantClass:
    """One traffic class sharing the deployment."""

    name: str
    weight: float            # share of offered load
    slo_us: float            # end-to-end deadline per request
    read_fraction: float = 0.8
    theta: float = 0.99      # Zipfian skew of this tenant's keys


#: Three classes in the spirit of the §6.5 voice study: a latency-
#: sensitive majority, a looser bulk class, and a small strict class.
DEFAULT_TENANTS: Tuple[TenantClass, ...] = (
    TenantClass("gold", weight=0.2, slo_us=10_000.0, read_fraction=0.9,
                theta=0.9),
    TenantClass("silver", weight=0.5, slo_us=25_000.0, read_fraction=0.8),
    TenantClass("bulk", weight=0.3, slo_us=60_000.0, read_fraction=0.5,
                theta=0.99),
)


@dataclass(frozen=True)
class Request:
    """One client request, fully determined at generation time."""

    uid: int                 # unique per run (gateway-major)
    tenant: str
    client_id: int
    key_idx: int             # shard = key_idx % n_shards
    op: str                  # "get" | "put"
    arrival_ps: int
    deadline_ps: int
    gateway: int


def open_loop_arrivals(gateway: int, n: int, offered_rps: float,
                       tenants: Sequence[TenantClass] = DEFAULT_TENANTS,
                       keyspace: int = 4096,
                       clients: int = DEFAULT_CLIENTS,
                       seed: int = 1,
                       start_ps: int = 0,
                       skew: float = 0.0,
                       skew_mod: int = 1) -> List[Request]:
    """``n`` Poisson arrivals at ``offered_rps`` for one gateway.

    Inter-arrival gaps are exponential, rounded to a minimum of one
    integer picosecond; tenants are drawn by weight, keys from one
    Zipfian stream per tenant.  ``uid`` embeds the gateway id so uids
    are globally unique across gateways.

    ``skew`` steers that fraction of requests onto the shard-0 residue
    class (``key_idx % skew_mod == 0``, with ``skew_mod`` = the
    deployment's shard count) — the figS hotspot knob.  Zero skew draws
    nothing extra from the RNG, so default schedules are byte-identical
    to pre-skew ones.
    """
    if offered_rps <= 0:
        raise ValueError("offered_rps must be positive")
    rng = random.Random(f"figS:{seed}:{gateway}")
    keys = {t.name: ZipfianGenerator(
                keyspace, theta=t.theta,
                seed=rng.randrange(2**31))
            for t in tenants}
    names = [t.name for t in tenants]
    weights = [t.weight for t in tenants]
    by_name = {t.name: t for t in tenants}
    mean_gap_ps = 1e12 / offered_rps
    now = int(start_ps)
    out: List[Request] = []
    for i in range(n):
        now += max(1, round(rng.expovariate(1.0) * mean_gap_ps))
        tname = rng.choices(names, weights=weights)[0]
        t = by_name[tname]
        op = "get" if rng.random() < t.read_fraction else "put"
        key_idx = keys[tname].next()
        if skew > 0.0 and rng.random() < skew:
            key_idx -= key_idx % skew_mod   # hotspot: primary shard 0
        out.append(Request(
            uid=gateway * 10_000_000 + i,
            tenant=tname,
            client_id=rng.randrange(clients),
            key_idx=key_idx,
            op=op,
            arrival_ps=now,
            deadline_ps=now + int(t.slo_us * 1e6),
            gateway=gateway,
        ))
    return out
