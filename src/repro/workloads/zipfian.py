"""Zipfian key distribution, as used by YCSB (section 6.5.2).

Implements the Gray et al. rejection-free algorithm, the same one the
original YCSB ``ZipfianGenerator`` uses, so key popularity matches the
paper's workloads.
"""

from __future__ import annotations

import math
import random
from typing import Optional


class ZipfianGenerator:
    """Draws integers in [0, n) with Zipfian popularity skew."""

    def __init__(self, n: int, theta: float = 0.99,
                 seed: Optional[int] = None):
        if n <= 0:
            raise ValueError("need at least one item")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        if n <= 2:
            # with n <= 2 the two fast-path branches of next() cover the
            # whole [0, zetan) range, so eta is never used (and its
            # denominator would be zero for n == 2)
            self._eta = 0.0
        else:
            self._eta = ((1 - (2.0 / n) ** (1 - theta))
                         / (1 - self._zeta2 / self._zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1) ** self._alpha)

    def __iter__(self):
        while True:
            yield self.next()
