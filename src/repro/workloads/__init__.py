"""Workload generators: YCSB, Zipfian keys, and syscall traces."""

from repro.workloads.zipfian import ZipfianGenerator
from repro.workloads.ycsb import (
    WORKLOAD_MIXES,
    YcsbOp,
    YcsbWorkload,
    make_workload,
)
from repro.workloads.traces import (
    TraceCall,
    find_trace,
    sqlite_trace,
)

__all__ = [
    "ZipfianGenerator",
    "YcsbOp",
    "YcsbWorkload",
    "WORKLOAD_MIXES",
    "make_workload",
    "TraceCall",
    "find_trace",
    "sqlite_trace",
]
