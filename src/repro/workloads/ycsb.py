"""The Yahoo! Cloud Serving Benchmark workloads of section 6.5.2.

The paper's setup: 200 records created first, then 200 operations with
Zipfian key popularity.  Five mixes:

* read-heavy / insert-heavy / update-heavy: 80-10-10 over
  {read, insert, update} (no scans),
* scan-heavy: 80-10-10 over {scan, read, insert} (no updates),
* mixed: 50-10-30-10 over reads, inserts, updates, scans.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.workloads.zipfian import ZipfianGenerator

DEFAULT_RECORDS = 200
DEFAULT_OPERATIONS = 200
FIELD_BYTES = 100          # YCSB default: 10 fields x 100 B; we scale to
N_FIELDS = 4               # 4 fields to keep FPGA-scale records modest
SCAN_MAX_LEN = 40


class YcsbOp(enum.Enum):
    READ = "read"
    INSERT = "insert"
    UPDATE = "update"
    SCAN = "scan"


# mix name -> proportions
WORKLOAD_MIXES: Dict[str, Dict[YcsbOp, float]] = {
    "read":   {YcsbOp.READ: 0.8, YcsbOp.INSERT: 0.1, YcsbOp.UPDATE: 0.1},
    "insert": {YcsbOp.INSERT: 0.8, YcsbOp.READ: 0.1, YcsbOp.UPDATE: 0.1},
    "update": {YcsbOp.UPDATE: 0.8, YcsbOp.READ: 0.1, YcsbOp.INSERT: 0.1},
    "scan":   {YcsbOp.SCAN: 0.8, YcsbOp.READ: 0.1, YcsbOp.INSERT: 0.1},
    "mixed":  {YcsbOp.READ: 0.5, YcsbOp.INSERT: 0.1, YcsbOp.UPDATE: 0.3,
               YcsbOp.SCAN: 0.1},
}


@dataclass(frozen=True)
class YcsbRequest:
    op: YcsbOp
    key: str
    value: Optional[bytes] = None
    scan_len: int = 0


@dataclass
class YcsbWorkload:
    name: str
    records: List[Tuple[str, bytes]]
    requests: List[YcsbRequest]

    @property
    def load_bytes(self) -> int:
        return sum(len(v) for _, v in self.records)


def _key(i: int) -> str:
    return f"user{i:08d}"


def _value(rng: random.Random) -> bytes:
    return bytes(rng.getrandbits(8) for _ in range(FIELD_BYTES * N_FIELDS))


def make_workload(mix: str, records: int = DEFAULT_RECORDS,
                  operations: int = DEFAULT_OPERATIONS,
                  seed: int = 1) -> YcsbWorkload:
    """Build one of the paper's five workloads deterministically."""
    if mix not in WORKLOAD_MIXES:
        raise ValueError(f"unknown mix {mix!r}; have {sorted(WORKLOAD_MIXES)}")
    rng = random.Random(seed)
    zipf = ZipfianGenerator(records, seed=seed + 1)
    load = [( _key(i), _value(rng)) for i in range(records)]

    proportions = WORKLOAD_MIXES[mix]
    ops, weights = zip(*proportions.items())
    next_insert = records
    requests: List[YcsbRequest] = []
    for _ in range(operations):
        op = rng.choices(ops, weights=weights)[0]
        if op is YcsbOp.INSERT:
            requests.append(YcsbRequest(op, _key(next_insert), _value(rng)))
            next_insert += 1
        elif op is YcsbOp.UPDATE:
            requests.append(YcsbRequest(op, _key(zipf.next()), _value(rng)))
        elif op is YcsbOp.READ:
            requests.append(YcsbRequest(op, _key(zipf.next())))
        else:  # SCAN
            requests.append(YcsbRequest(op, _key(zipf.next()),
                                        scan_len=1 + rng.randrange(SCAN_MAX_LEN)))
    return YcsbWorkload(mix, load, requests)
