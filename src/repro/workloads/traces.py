"""Syscall traces for the traceplayer (section 6.4).

The paper replays Linux-recorded system-call traces of two
communication-heavy applications against a per-tile file-system
instance:

* **find** searches through 24 directories with 40 files each —
  dominated by readdir/stat storms,
* **SQLite** performs 32 database inserts and selects — dominated by
  read/write/fsync sequences on the database file and its journal.

We generate statistically equivalent traces: the same call mix and
counts, with per-call "think time" representing the application's own
computation between calls (calibrated so single-tile M3v throughput
matches Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class TraceCall:
    """One replayed system call."""

    op: str                    # open|close|read|write|stat|readdir|mkdir|unlink|fsync
    path: Optional[str] = None
    fd: int = -1               # index into the player's fd table
    size: int = 0              # bytes for read/write
    think_cycles: int = 0      # app compute before this call


def find_trace(dirs: int = 24, files_per_dir: int = 40,
               think_cycles: int = 25_000) -> List[TraceCall]:
    """The 'find' workload: walk the tree, stat everything."""
    calls: List[TraceCall] = [TraceCall("readdir", path="/",
                                        think_cycles=think_cycles)]
    for d in range(dirs):
        dpath = f"/dir{d:02d}"
        calls.append(TraceCall("stat", path=dpath, think_cycles=think_cycles))
        calls.append(TraceCall("readdir", path=dpath,
                               think_cycles=think_cycles))
        for f in range(files_per_dir):
            calls.append(TraceCall("stat", path=f"{dpath}/f{f:03d}",
                                   think_cycles=think_cycles))
    return calls


def find_tree_spec(dirs: int = 24, files_per_dir: int = 40):
    """The directory tree the find trace expects, as (dirs, files)."""
    dpaths = [f"/dir{d:02d}" for d in range(dirs)]
    fpaths = [f"{d}/f{f:03d}" for d in dpaths for f in range(files_per_dir)]
    return dpaths, fpaths


def sqlite_trace(transactions: int = 32, page_size: int = 1024,
                 think_cycles: int = 30_000) -> List[TraceCall]:
    """The SQLite workload: 32 inserts and selects.

    Each insert follows SQLite's rollback-journal pattern: open the
    journal, write the page being changed, fsync, write the database
    page, fsync, unlink the journal.  Each select reads B-tree pages.
    """
    calls: List[TraceCall] = [
        TraceCall("open", path="/test.db", think_cycles=think_cycles)]
    db_fd = 0
    for txn in range(transactions):
        # INSERT
        calls.append(TraceCall("open", path="/test.db-journal",
                               think_cycles=think_cycles))
        journal_fd = 1
        calls.append(TraceCall("read", fd=db_fd, size=page_size,
                               think_cycles=think_cycles // 4))
        calls.append(TraceCall("write", fd=journal_fd, size=page_size + 8,
                               think_cycles=think_cycles // 4))
        calls.append(TraceCall("fsync", fd=journal_fd))
        calls.append(TraceCall("write", fd=db_fd, size=page_size,
                               think_cycles=think_cycles // 4))
        calls.append(TraceCall("fsync", fd=db_fd))
        calls.append(TraceCall("close", fd=journal_fd))
        calls.append(TraceCall("unlink", path="/test.db-journal"))
        # SELECT: walk a few B-tree pages
        for _ in range(3):
            calls.append(TraceCall("read", fd=db_fd, size=page_size,
                                   think_cycles=think_cycles // 4))
    calls.append(TraceCall("close", fd=db_fd))
    return calls
