"""The activity-side library.

Programs are generator functions ``def program(api): ...`` that yield
either simulation events (synchronous stalls: compute, DTU commands) or
:class:`TmCall` markers, which the tile's multiplexer intercepts and
services (block, yield, exit, translate) — the software equivalent of
the ``ecall`` trap (section 3.3).

The library implements the paper's user-level policies:

* blocking receive consults the multiplexer's shared-memory hint and
  only traps when other activities are ready; otherwise it polls the
  vDTU (section 3.7);
* commands that fail with a translation fault trap to TileMux to fill
  the vDTU TLB, then retry (section 3.6);
* transfers are chunked to a single page (section 3.6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, Tuple

from repro.dtu import DtuError, DtuFault, Perm
from repro.dtu.errors import RETRYABLE_ERRORS
from repro.dtu.message import Message
from repro.kernel.activity import PAGE_SIZE
from repro.kernel.protocol import RpcMsg, RpcReply, Syscall, SyscallMsg

# process-global channel ids for the recovery layer's sequence numbering;
# like WireMsg uids they are only compared for identity, never for order
_chans = itertools.count(1)


@dataclass
class TmCall:
    """A trap into the tile multiplexer."""

    op: str                      # block | yield | exit | translate | wait_dev
    args: Dict[str, Any] = field(default_factory=dict)


class RpcError(Exception):
    """A service RPC or system call returned an error."""


class ActivityApi:
    """Bound to one activity by the multiplexer at CREATE_ACT time."""

    # default chunk after which long computations hit an op boundary
    COMPUTE_CHUNK_CYCLES = 100_000

    def __init__(self, mux, act):
        self.mux = mux
        self.act = act
        self.vdtu = mux.vdtu
        self.sim = mux.sim
        self.costs = mux.costs
        self.clock = mux.costs.clock
        # recovery-layer state, allocated lazily so the fault-free path
        # carries no cost: per-endpoint sequence channels + jitter stream
        self._chans: Dict[Any, Tuple[int, itertools.count]] = {}
        self._jitter_rng = None

    def rebind(self, mux) -> None:
        """Re-point this api at another tile's multiplexer.

        Live migration moves the activity object (and therefore its
        bound generator, which closed over this api) to a new tile; the
        api's mux/vdtu handles must follow.  Recovery channel numbering
        is deliberately preserved — retransmission sequence spaces are
        per logical channel, not per tile.
        """
        self.mux = mux
        self.vdtu = mux.vdtu
        self.sim = mux.sim
        self.costs = mux.costs
        self.clock = mux.costs.clock

    # ------------------------------------------------- fault recovery plumbing

    @property
    def recovery(self):
        """The tile's recovery policy, or None (fault-free operation)."""
        return getattr(self.mux, "recovery", None)

    def _next_seq(self, key: Any) -> Tuple[int, int]:
        """The (channel, sequence) pair for the next logical message.

        One channel per (api, endpoint) direction; the pair is allocated
        once per *logical* message, so every retransmission of it goes
        out under the same numbers and the receiver can dedup.
        """
        if key not in self._chans:
            self._chans[key] = (next(_chans), itertools.count(1))
        chan, counter = self._chans[key]
        return (chan, next(counter))

    def _backoff(self, policy, attempt: int, fault: DtuFault) -> Generator:
        """Wait out one retransmission backoff; raises when exhausted."""
        if attempt > policy.max_retries:
            raise DtuFault(fault.error,
                           f"gave up after {policy.max_retries} "
                           f"retransmissions ({fault.detail})")
        if self._jitter_rng is None:
            self._jitter_rng = policy.jitter_rng(self.mux.tile_id,
                                                 self.act.name)
        self.mux.stats.counter("recovery/retransmits").add()
        delay = policy.backoff_ps(attempt, self._jitter_rng)
        metrics = self.sim.metrics
        if metrics is not None:
            tile = self.mux.tile_id
            metrics.inc(f"tile{tile}/recovery/retransmits")
            metrics.observe(f"tile{tile}/recovery/backoff_ps", delay)
        yield delay

    # ------------------------------------------------------------- compute

    def compute(self, cycles: int) -> Generator:
        """Burn CPU time, chunked so preemption and IRQs stay timely."""
        remaining = int(cycles)
        while remaining > 0:
            chunk = min(remaining, self.COMPUTE_CHUNK_CYCLES)
            yield self.clock.cycles_to_ps(chunk)
            remaining -= chunk

    def compute_us(self, us: float) -> Generator:
        yield from self.compute(round(self.clock.us_to_cycles(us)))

    # --------------------------------------------------------------- memory

    def alloc_buf(self, size: int) -> int:
        """Allocate a virtual buffer (page aligned)."""
        return self.act.addrspace.alloc_virt(size)

    def touch(self, virt: int, perm: Perm = Perm.RW) -> Generator:
        """Ensure a page is mapped + in the vDTU TLB (may page-fault).

        The TMCall returns True once the TLB is filled, None after a
        page fault was resolved by the pager (retry the translation),
        and False for an unresolvable fault.
        """
        while True:
            ok = yield TmCall("translate", {"virt": virt, "perm": perm})
            if ok:
                return
            if ok is False:
                raise RpcError(f"unresolvable fault at {virt:#x}")

    def _retry_translation(self, virt: int, perm: Perm) -> Generator:
        yield from self.touch(virt, perm)

    # -------------------------------------------------------------- messaging

    def send(self, ep: int, data: Any, size: int,
             reply_ep: Optional[int] = None, virt: int = 0) -> Generator:
        """SEND with translation-retry and credit-wait; charges library
        overhead.  Waiting for credits models the library's spin on the
        send endpoint until the consumer acknowledges older messages."""
        yield from self.compute(self.costs.lib_send)
        policy = self.recovery
        seq = None if policy is None else self._next_seq(ep)
        attempt = 0
        while True:
            try:
                yield from self.vdtu.cmd_send(ep, data, size,
                                              reply_ep=reply_ep,
                                              virt_addr=virt, seq=seq)
                return
            except DtuFault as fault:
                if fault.error is DtuError.TRANSLATION_FAULT:
                    yield from self._retry_translation(virt, Perm.R)
                    continue
                if fault.error is DtuError.MISSING_CREDITS:
                    if self.mux.others_ready(self.act):
                        yield TmCall("yield", {})
                    else:
                        yield 5_000_000  # re-poll in 5 us
                    yield from self.compute(self.costs.lib_poll)
                    continue
                if policy is not None and fault.error in RETRYABLE_ERRORS:
                    attempt += 1
                    yield from self._backoff(policy, attempt, fault)
                    continue
                raise

    def send_nowait(self, ep: int, data: Any, size: int,
                    reply_ep: Optional[int] = None,
                    virt: int = 0) -> Generator:
        """SEND that treats credit exhaustion as a signal, not a stall.

        Returns True once the remote DTU stored the message, False when
        the endpoint is out of credits — the consumer has not drained
        older messages, i.e. downstream backpressure.  Overload-aware
        senders (the serving stack's gateways and balancer) use the
        False return to queue, shed, or steer instead of blocking the
        core the way :meth:`send` does.  Translation retries and
        recovery-layer retransmissions behave exactly like ``send``.
        """
        yield from self.compute(self.costs.lib_send)
        policy = self.recovery
        seq = None if policy is None else self._next_seq(ep)
        attempt = 0
        while True:
            try:
                yield from self.vdtu.cmd_send(ep, data, size,
                                              reply_ep=reply_ep,
                                              virt_addr=virt, seq=seq)
                return True
            except DtuFault as fault:
                if fault.error is DtuError.TRANSLATION_FAULT:
                    yield from self._retry_translation(virt, Perm.R)
                    continue
                if fault.error is DtuError.MISSING_CREDITS:
                    return False
                if policy is not None and fault.error in RETRYABLE_ERRORS:
                    attempt += 1
                    yield from self._backoff(policy, attempt, fault)
                    continue
                raise

    def fetch(self, ep: int) -> Generator:
        yield from self.compute(self.costs.lib_fetch)
        policy = self.recovery
        attempt = 0
        while True:
            try:
                msg = yield from self.vdtu.cmd_fetch(ep)
                return msg
            except DtuFault as fault:
                if policy is not None and fault.error is DtuError.EP_FAULT:
                    attempt += 1
                    yield from self._backoff(policy, attempt, fault)
                    continue
                raise

    def recv(self, ep: int) -> Generator:
        """Blocking receive (section 3.7).

        Polls while no other activity is ready (so blocking would only
        idle the core); traps to TileMux to block otherwise.
        """
        refused = 0
        while True:
            msg = yield from self.fetch(ep)
            if msg is not None:
                return msg
            if self.mux.others_ready(self.act):
                blocked = yield TmCall("block", {})
                if blocked is False:
                    # TileMux refused: this activity has unread messages —
                    # but not on *this* endpoint (first refusal may be the
                    # awaited message racing in; re-fetch shows).  Spinning
                    # would burn the whole timeslice, so yield the core.
                    refused += 1
                    if refused >= 2:
                        yield TmCall("yield", {})
                        refused = 0
            else:
                # poll the vDTU (3.7): the core spins on CUR_ACT; waiting
                # on the poll signal models continuous polling without
                # simulating every spin iteration
                yield self.mux.poll_signal()
                yield from self.compute(self.costs.lib_poll)

    def reply(self, ep: int, msg: Message, data: Any, size: int,
              virt: int = 0) -> Generator:
        yield from self.compute(self.costs.lib_reply)
        policy = self.recovery
        seq = None if policy is None else self._next_seq(("reply", ep))
        attempt = 0
        while True:
            try:
                yield from self.vdtu.cmd_reply(ep, msg, data, size,
                                               virt_addr=virt, seq=seq)
                return
            except DtuFault as fault:
                if fault.error is DtuError.TRANSLATION_FAULT:
                    yield from self._retry_translation(virt, Perm.R)
                    continue
                if policy is not None and fault.error in RETRYABLE_ERRORS:
                    attempt += 1
                    yield from self._backoff(policy, attempt, fault)
                    continue
                raise

    def ack(self, ep: int, msg: Message) -> Generator:
        yield from self.compute(self.costs.lib_ack)
        policy = self.recovery
        attempt = 0
        while True:
            try:
                yield from self.vdtu.cmd_ack(ep, msg)
                return
            except DtuFault as fault:
                if policy is not None and fault.error is DtuError.EP_FAULT:
                    attempt += 1
                    yield from self._backoff(policy, attempt, fault)
                    continue
                raise

    def call(self, send_ep: int, reply_ep: int, data: Any, size: int) -> Generator:
        """RPC: send, await the reply, ack it; returns the reply payload."""
        yield from self.send(send_ep, data, size, reply_ep=reply_ep)
        msg = yield from self.recv(reply_ep)
        yield from self.ack(reply_ep, msg)
        return msg.data

    def rpc(self, send_ep: int, reply_ep: int, op: Any,
            args: Optional[Dict[str, Any]] = None,
            size: int = RpcMsg.SIZE) -> Generator:
        """Service RPC with error decoding; returns the reply value."""
        req = RpcMsg(op=op, args=args or {})
        reply: RpcReply = yield from self.call(send_ep, reply_ep, req, size)
        if not reply.ok:
            raise RpcError(f"{op}: {reply.error}")
        return reply.value

    # ------------------------------------------------------------ memory gates

    def read(self, ep: int, offset: int, size: int, virt: int = 0) -> Generator:
        """READ via a memory endpoint, chunked to single pages."""
        chunks = []
        done = 0
        while done < size:
            chunk = min(PAGE_SIZE, size - done)
            while True:
                try:
                    data = yield from self.vdtu.cmd_read(
                        ep, offset + done, chunk, virt_addr=virt)
                    break
                except DtuFault as fault:
                    if fault.error is DtuError.TRANSLATION_FAULT:
                        yield from self._retry_translation(virt, Perm.W)
                        continue
                    raise
            chunks.append(data)
            done += chunk
        return b"".join(chunks)

    def write(self, ep: int, offset: int, data: bytes, virt: int = 0) -> Generator:
        """WRITE via a memory endpoint, chunked to single pages."""
        done = 0
        while done < len(data):
            chunk = data[done:done + PAGE_SIZE]
            while True:
                try:
                    yield from self.vdtu.cmd_write(ep, offset + done, chunk,
                                                   virt_addr=virt)
                    break
                except DtuFault as fault:
                    if fault.error is DtuError.TRANSLATION_FAULT:
                        yield from self._retry_translation(virt, Perm.R)
                        continue
                    raise
            done += len(chunk)

    # --------------------------------------------------------------- syscalls

    def syscall(self, op: Syscall, args: Optional[Dict[str, Any]] = None) -> Generator:
        """A system call to the controller (a DTU message, section 3.3)."""
        yield from self.compute(self.costs.lib_syscall)
        msg = SyscallMsg(op, args or {})
        yield from self.send(self.act.sysc_sep, msg, SyscallMsg.SIZE,
                             reply_ep=self.act.sysc_rep)
        reply_msg = yield from self.recv(self.act.sysc_rep)
        yield from self.ack(self.act.sysc_rep, reply_msg)
        reply = reply_msg.data
        if not reply.ok:
            raise RpcError(f"syscall {op.value}: {reply.error}")
        return reply.value

    # ------------------------------------------------------------- scheduling

    def set_deadline(self, deadline_ps: Optional[int]) -> None:
        """Advise the scheduler of this activity's current deadline.

        A plain register write (no trap, no cost): the EDF policy reads
        it at pick time; every other policy ignores it, so workloads can
        stamp deadlines unconditionally.  ``None`` clears the deadline.
        """
        self.act.deadline_ps = deadline_ps

    def block(self) -> Generator:
        """Block until a message arrives for this activity."""
        yield TmCall("block", {})

    def yield_cpu(self) -> Generator:
        yield TmCall("yield", {})

    def sleep_us(self, us: float) -> Generator:
        """Sleep without occupying the core (device-driver style wait)."""
        yield TmCall("sleep", {"ps": round(us * 1_000_000)})

    def exit(self, code: int = 0) -> Generator:
        yield TmCall("exit", {"code": code})
