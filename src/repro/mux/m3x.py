"""The M3x baseline: remote tile multiplexing by the controller.

M3x (ATC '19, section 2.2 of the M3v paper) multiplexes every tile with
the same mechanism: the *controller* makes all scheduling decisions and
performs all context switches remotely.  The DTU is not virtualized —
only the endpoints of the currently running activity are loaded, so

* switching contexts requires the controller to save and restore the
  DTU endpoint state over the external interface (cost per endpoint),
* a message for a non-running activity bounces (``RECV_GONE``) and must
  take the *slow path*: the sender forwards it to the controller, which
  deposits it into the saved endpoint state and schedules the
  recipient (section 2.2, 3.9).

Because the single-threaded controller serializes every switch in the
system, M3x does not scale with the number of multiplexed tiles — the
effect Figure 9 quantifies.

The tile-local component here (:class:`M3xMux`) models M3x's thin
"RCTMux": it runs whatever context the controller tells it to, saves
and restores register state on command, and reports blocking.  It makes
no scheduling decisions of its own.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.dtu import DtuError, DtuFault
from repro.dtu.dtu import Dtu, ExtOp
from repro.dtu.errors import RETRYABLE_ERRORS
from repro.dtu.endpoints import EndpointKind, ReceiveEndpoint
from repro.dtu.message import Message
from repro.kernel.activity import ActState, Activity
from repro.kernel.controller import Controller, EP_TMUX_REP, EP_TMUX_SEP, SyscallError
from repro.kernel.protocol import (
    NotifyMsg,
    TmuxNotify,
    TmuxOp,
    TmuxReply,
    TmuxReq,
)
from repro.mux.api import ActivityApi, TmCall
from repro.sim.engine import Event
from repro.tiles.costs import CoreCosts


class M3xActivityApi(ActivityApi):
    """M3x flavour of the library: slow-path fallback on sends/replies.

    Transparent multiplexing does *not* hold on M3x (section 3.9): when
    the recipient is not running, the library must detect the error and
    route the message through the controller.
    """

    def send(self, ep: int, data: Any, size: int,
             reply_ep: Optional[int] = None, virt: int = 0) -> Generator:
        yield from self.compute(self.costs.lib_send)
        policy = self.recovery
        seq = None if policy is None else self._next_seq(ep)
        attempt = 0
        while True:
            try:
                yield from self.vdtu.cmd_send(ep, data, size,
                                              reply_ep=reply_ep, seq=seq)
                return
            except DtuFault as fault:
                if fault.error is DtuError.RECV_GONE:
                    # the slow path rides the protected control network,
                    # so it needs no retransmission of its own.  The
                    # controller dedups against the saved endpoint state,
                    # so forwarding a retransmission is safe.  A held
                    # credit (earlier copy's outcome unknown) keeps its
                    # wire linkage: the forwarded deposit carries our
                    # send EP, and whoever acks the surviving copy
                    # returns the credit over the NoC.
                    held = seq is not None and seq in self.vdtu._credit_held
                    yield from self._slow_path_send(
                        ep, data, size, reply_ep, seq,
                        credit_ep=ep if held else None)
                    if held:
                        self.vdtu._credit_held.discard(seq)
                    return
                if policy is not None and fault.error in RETRYABLE_ERRORS:
                    attempt += 1
                    yield from self._backoff(policy, attempt, fault)
                    continue
                raise

    def _slow_path_send(self, ep: int, data: Any, size: int,
                        reply_ep: Optional[int], seq=None,
                        credit_ep: Optional[int] = None) -> Generator:
        send_ep = self.vdtu.eps[ep]
        yield from self.syscall_forward({
            "dst_tile": send_ep.dst_tile,
            "dst_ep": send_ep.dst_ep,
            "label": send_ep.label,
            "data": data,
            "size": size,
            "src_tile": self.vdtu.tile,
            "reply_ep": reply_ep,
            "seq": seq,
            "src_credit_ep": credit_ep,
        })
        self.mux.stats.counter("m3x/slow_paths").add()
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.series_inc(f"tile{self.vdtu.tile}/m3x/slow_paths",
                               self.sim.now)

    def send_nowait(self, ep: int, data: Any, size: int,
                    reply_ep: Optional[int] = None,
                    virt: int = 0) -> Generator:
        """Credit-aware send, M3x flavour: a descheduled recipient is
        not backpressure — the message takes the slow path through the
        controller exactly like :meth:`send`, and only genuine credit
        exhaustion returns False."""
        yield from self.compute(self.costs.lib_send)
        policy = self.recovery
        seq = None if policy is None else self._next_seq(ep)
        attempt = 0
        while True:
            try:
                yield from self.vdtu.cmd_send(ep, data, size,
                                              reply_ep=reply_ep, seq=seq)
                return True
            except DtuFault as fault:
                if fault.error is DtuError.RECV_GONE:
                    held = seq is not None and seq in self.vdtu._credit_held
                    yield from self._slow_path_send(
                        ep, data, size, reply_ep, seq,
                        credit_ep=ep if held else None)
                    if held:
                        self.vdtu._credit_held.discard(seq)
                    return True
                if fault.error is DtuError.MISSING_CREDITS:
                    return False
                if policy is not None and fault.error in RETRYABLE_ERRORS:
                    attempt += 1
                    yield from self._backoff(policy, attempt, fault)
                    continue
                raise

    def reply(self, ep: int, msg: Message, data: Any, size: int,
              virt: int = 0) -> Generator:
        yield from self.compute(self.costs.lib_reply)
        policy = self.recovery
        seq = None if policy is None else self._next_seq(("reply", ep))
        attempt = 0
        while True:
            try:
                yield from self.vdtu.cmd_reply(ep, msg, data, size, seq=seq)
                return
            except DtuFault as fault:
                if fault.error is DtuError.RECV_GONE:
                    # bounced reply: forward it, handing the requester's
                    # send credit along so the controller restores what
                    # the wire reply would have returned (the kernel
                    # half of the slow path).  Retransmissions are safe:
                    # the controller dedups against the saved endpoint
                    # state and skips the credit on duplicates.
                    yield from self.syscall_forward({
                        "dst_tile": msg.src_tile,
                        "dst_ep": msg.reply_ep,
                        "label": msg.label,
                        "data": data,
                        "size": size,
                        "src_tile": self.vdtu.tile,
                        "reply_ep": None,
                        "is_reply": True,
                        "credit_ep": msg.reply_credit,
                        "seq": seq,
                    })
                    self.mux.stats.counter("m3x/slow_paths").add()
                    return
                if policy is not None and fault.error in RETRYABLE_ERRORS:
                    attempt += 1
                    yield from self._backoff(policy, attempt, fault)
                    continue
                raise

    def syscall_forward(self, args: Dict[str, Any]) -> Generator:
        """FORWARD is a raw syscall message (we cannot recurse into
        ``syscall`` because its reply handling uses recv)."""
        from repro.kernel.protocol import Syscall, SyscallMsg

        yield from self.compute(self.costs.lib_syscall)
        msg = SyscallMsg(Syscall.FORWARD, args)
        yield from self.vdtu.cmd_send(self.act.sysc_sep, msg, SyscallMsg.SIZE,
                                      reply_ep=self.act.sysc_rep)
        reply_msg = yield from self.recv(self.act.sysc_rep)
        yield from self.ack(self.act.sysc_rep, reply_msg)
        if not reply_msg.data.ok:
            raise RuntimeError(f"forward failed: {reply_msg.data.error}")


class M3xMux:
    """RCTMux: executes the context chosen by the controller."""

    SAVE_CY = 1200      # save register and FPU state on request
    RESUME_CY = 1200    # restore register state, warm up caches
    SCAN_EP_CY = 25     # per-endpoint unread scan (no CUR_ACT counter!)

    def __init__(self, sim, tile_id: int, dtu: Dtu, costs: CoreCosts,
                 stats=None):
        self.sim = sim
        self.tile_id = tile_id
        self.vdtu = dtu  # name kept for ActivityApi compatibility
        self.costs = costs
        self.clock = costs.clock
        self.stats = stats if stats is not None else dtu.stats
        # hot-path charge constants: the clock never changes after init,
        # and cycles_to_ps is linear, so these are exact
        self._tmcall_enter_ps = self.clock.cycles_to_ps(
            costs.trap_enter + costs.tmcall_dispatch)
        self._trap_exit_ps = self.clock.cycles_to_ps(costs.trap_exit)
        self._scan_ep_ps = self.clock.cycles_to_ps(self.SCAN_EP_CY)

        self.recovery = None  # RecoveryPolicy once enable_recovery() ran
        self.acts: Dict[int, Activity] = {}
        self.current: Optional[Activity] = None
        self._resume_next: Optional[int] = None
        self._wake_pending: list = []   # act ids whose sleep timer fired
                                        # while they were descheduled
        self._wake: Event = sim.event()
        self._wake_waiting = False   # main loop is parked on _wake
        self._poll_waiters: list = []
        self._msg_latch = False
        dtu.msg_callback = self._on_msg
        self._proc = sim.process(self._main_loop(), name=f"m3xmux{tile_id}")

    # the library's 'are others ready' hint: RCTMux only knows residency
    def others_ready(self, act: Activity) -> bool:
        return len(self.acts) > 1

    @property
    def resident(self) -> int:
        return len(self.acts)

    def _on_msg(self, ep_id: int) -> None:
        self._msg_latch = True
        # only schedule a wake event if the main loop is actually parked:
        # the latch alone covers deposits that land while it runs, and an
        # un-waited wake pop is pure event-queue load with no effect
        if self._wake_waiting and not self._wake.triggered:
            self._wake.succeed()
        waiters, self._poll_waiters = self._poll_waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()

    def poll_signal(self):
        """Poll-loop signal (see TileMux.poll_signal): fires on any
        deposit — with the M3x DTU only the current activity's (and
        RCTMux's) endpoints are installed, so any arrival is relevant."""
        ev = self.sim.event()
        if any(ep.kind is EndpointKind.RECEIVE and ep.unread > 0
               for ep in self.vdtu.eps):
            ev.succeed()
            return ev
        self._poll_waiters.append(ev)
        return ev

    def _charge(self, cycles: int) -> Generator:
        yield self.clock.cycles_to_ps(cycles)

    def _notify_ctrl(self, note: NotifyMsg) -> Generator:
        """Send a notification, riding out notify-credit exhaustion.

        The notify pool (8 credits) can transiently run dry when
        activities block in bursts faster than the controller drains;
        credits always come back (the control network is reliable), so
        waiting is safe — but only if we keep answering controller
        requests meanwhile.  The controller may be blocked in a
        ``tmux_request`` to this very tile while our un-acked notifies
        hold all the credits; refusing to service it here would
        deadlock the whole machine."""
        while True:
            try:
                yield from self.vdtu.cmd_send(EP_TMUX_SEP, note,
                                              NotifyMsg.SIZE)
                return
            except DtuFault as fault:
                if fault.error is not DtuError.MISSING_CREDITS:
                    raise
                yield from self._service_ctrl_requests()
                yield 2_000_000  # re-poll in 2 us

    def _emit(self, kind: str, **fields) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(self.sim, kind, tile=self.tile_id, **fields)

    # ------------------------------------------------------------- main loop

    def _main_loop(self) -> Generator:
        while True:
            yield from self._service_ctrl_requests()
            while self._wake_pending:
                act_id = self._wake_pending.pop(0)
                act = self.acts.get(act_id)
                if act is None or act is self.current:
                    continue
                yield from self._notify_ctrl(
                    NotifyMsg(TmuxNotify.WAKEUP, {"tile": self.tile_id,
                                                  "act_id": act_id}))
                self.stats.counter("m3x/wake_notifies").add()
            if self._resume_next is not None:
                nxt = self.acts.get(self._resume_next)
                self._resume_next = None
                if nxt is not None:
                    yield self.clock.cycles_to_ps(self.RESUME_CY)
                    nxt.state = ActState.READY
                    self.current = nxt
            ctx = self.current
            if ctx is None or ctx.state not in (ActState.READY, ActState.RUNNING):
                # check whether a message arrived for the (blocked) current
                if ctx is not None and (yield from self._has_unread(ctx)):
                    ctx.state = ActState.READY
                    self._emit("act_wake", act=ctx.act_id, reason="scan")
                    continue
                if self._msg_latch:
                    self._msg_latch = False  # re-scan: a deposit raced us
                    continue
                if self._wake.triggered:
                    self._wake = self.sim.event()
                self._wake_waiting = True
                yield self._wake
                self._wake_waiting = False
                self._msg_latch = False
                continue
            yield from self._dispatch(ctx)

    def _has_unread(self, ctx: Activity) -> Generator:
        """Scan the installed receive endpoints — M3x's DTU has no
        per-activity message counter, hence the per-EP iteration the
        paper calls undesirable (section 3.7)."""
        eps = self.vdtu.eps
        count = 0
        for i in self.vdtu.recv_ep_indices():
            count += 1
            if eps[i].unread > 0:
                break
        yield self._scan_ep_ps * max(1, count)
        # re-check after the charge: a message may have landed meanwhile
        # (and the EP set itself may have been reconfigured)
        for i in self.vdtu.recv_ep_indices():
            if eps[i].unread > 0:
                return True
        return False

    def _dispatch(self, ctx: Activity) -> Generator:
        ctx.state = ActState.RUNNING
        run_start = self.sim.now
        inject_val = ctx._resume_value
        ctx._resume_value = None
        keep = True
        while keep:
            # controller requests interleave at op boundaries
            if self._ctrl_pending():
                yield from self._service_ctrl_requests()
                if self.current is not ctx or ctx.state is not ActState.RUNNING:
                    ctx._resume_value = inject_val  # re-inject after restore
                    break
            try:
                item = ctx.gen.send(inject_val)
            except StopIteration:
                yield from self._exit(ctx, 0)
                break
            inject_val = None
            if type(item) is int or isinstance(item, Event):
                # ints are the engine's timeout fast path; forward as-is
                inject_val = yield item
            elif isinstance(item, TmCall):
                inject_val, keep = yield from self._tmcall(ctx, item)
            elif item is None:
                pass
            else:
                raise RuntimeError(f"activity {ctx.name} yielded {item!r}")
        ctx.user_ps += self.sim.now - run_start

    # ----------------------------------------------------------------- TMCalls

    def _tmcall(self, ctx: Activity, call: TmCall) -> Generator:
        yield self._tmcall_enter_ps
        op = call.op
        if op == "block":
            if (yield from self._has_unread(ctx)):
                yield self._trap_exit_ps
                return False, True
            ctx.state = ActState.BLOCKED
            self._emit("act_block", act=ctx.act_id)
            if len(self.acts) > 1:
                # tell the controller so it can schedule someone else
                yield from self._notify_ctrl(
                    NotifyMsg(TmuxNotify.BLOCKED, {"tile": self.tile_id,
                                                   "act_id": ctx.act_id}))
                self.stats.counter("m3x/block_notifies").add()
            return None, False
        if op == "yield":
            ctx.state = ActState.READY
            return None, True  # single-context view: nothing else to run here
        if op == "sleep":
            ctx.state = ActState.BLOCKED
            self._emit("act_block", act=ctx.act_id)
            deadline = self.sim.now + call.args["ps"]
            self.sim.process(self._wake_after(ctx, deadline))
            if len(self.acts) > 1:
                # a nap is a block as far as the controller is concerned:
                # without the notify it would never install the
                # co-resident activity for the duration
                yield from self._notify_ctrl(
                    NotifyMsg(TmuxNotify.BLOCKED, {"tile": self.tile_id,
                                                   "act_id": ctx.act_id}))
                self.stats.counter("m3x/block_notifies").add()
            return None, False
        if op == "exit":
            yield from self._exit(ctx, call.args.get("code", 0))
            return None, False
        if op == "translate":
            # M3x's gem5 DTU ran physically addressed in our benchmarks
            yield self._trap_exit_ps
            return True, True
        raise RuntimeError(f"unknown TMCall {op!r}")

    def _wake_after(self, ctx: Activity, deadline: int) -> Generator:
        yield max(0, deadline - self.sim.now)
        if ctx.state is ActState.BLOCKED:
            ctx.state = ActState.READY
            self._emit("act_wake", act=ctx.act_id, reason="sleep")
            if self.current is not ctx and len(self.acts) > 1:
                # descheduled while napping: only the controller can
                # reinstall it, and only RCTMux knows the timer fired —
                # queue a WAKEUP notify for the main loop to send
                self._wake_pending.append(ctx.act_id)
            self._on_msg(-1)

    def _exit(self, ctx: Activity, code: int) -> Generator:
        yield self.clock.cycles_to_ps(400)
        ctx.state = ActState.EXITED
        ctx.exit_code = code
        self._emit("act_exit", act=ctx.act_id)
        self.acts.pop(ctx.act_id, None)
        if self.current is ctx:
            self.current = None
        yield from self._notify_ctrl(
            NotifyMsg(TmuxNotify.EXIT, {"act_id": ctx.act_id, "code": code}))

    # ------------------------------------------------------ controller requests

    def _ctrl_pending(self) -> bool:
        ep = self.vdtu.eps[EP_TMUX_REP]
        return ep.kind is EndpointKind.RECEIVE and ep.unread > 0

    def _service_ctrl_requests(self) -> Generator:
        while True:
            msg = yield from self.vdtu.cmd_fetch(EP_TMUX_REP)
            if msg is None:
                return
            req: TmuxReq = msg.data
            ok, error = True, ""
            if req.op is TmuxOp.CREATE_ACT:
                yield self.clock.cycles_to_ps(2000)
                act: Activity = req.args["activity"]
                api = M3xActivityApi(self, act)
                act.gen = act.program(api)
                act.state = ActState.READY
                self.acts[act.act_id] = act
            elif req.op is TmuxOp.M3X_SAVE:
                yield self.clock.cycles_to_ps(self.SAVE_CY)
                act = self.acts.get(req.args["act_id"])
                if act is not None and act.state is ActState.RUNNING:
                    act.state = ActState.READY
                if self.current is act:
                    self.current = None
                self.stats.counter("m3x/saves").add()
            elif req.op is TmuxOp.M3X_RESUME:
                self._resume_next = req.args["act_id"]
                self.stats.counter("m3x/resumes").add()
            elif req.op is TmuxOp.KILL_ACT:
                act = self.acts.pop(req.args["act_id"], None)
                if act is not None:
                    act.state = ActState.EXITED
            else:
                ok, error = False, f"unsupported op {req.op} on M3x"
            yield from self.vdtu.cmd_reply(EP_TMUX_REP, msg,
                                           TmuxReply(req.seq, ok, error),
                                           TmuxReply.SIZE)


class M3xController(Controller):
    """Controller with M3x's remote-multiplexing machinery.

    Per tile it keeps the scheduling state (current + ready list) and
    the endpoint snapshots of descheduled activities; FORWARD deposits
    messages into those snapshots (the slow path).
    """

    M3X_SWITCH_CY = 9500   # scheduling decision, capability checks,
                           # receive-buffer transfer bookkeeping
    EPS_PER_ACT = 16       # endpoint set saved/restored per context

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._tile_current: Dict[int, Optional[int]] = {}
        self._tile_ready: Dict[int, List[int]] = {}
        self._snapshots: Dict[int, Dict[int, Any]] = {}   # act -> {ep: Endpoint}
        self._act_eps: Dict[int, List[int]] = {}          # act -> ep ids
        self._rgate_owner: Dict[tuple, int] = {}          # (tile, ep) -> act

    # -------------------------------------------------------------- residency

    def register_act_ep(self, act: Activity, ep_id: int,
                        endpoint=None, rgate: bool = False) -> None:
        self._act_eps.setdefault(act.act_id, []).append(ep_id)
        if rgate:
            self._rgate_owner[(act.tile_id, ep_id)] = act.act_id

    def _is_current(self, act: Activity) -> bool:
        return self._tile_current.get(act.tile_id) == act.act_id

    # ------------------------------------------------------------ notifications

    def _handle_notify(self, msg) -> Generator:
        note: NotifyMsg = msg.data
        if note.kind is TmuxNotify.BLOCKED:
            yield self.clock.cycles_to_ps(self.SYSCALL_BASE_CY)
            yield from self.dtu.cmd_ack(1, msg)  # EP_NOTIFY
            yield from self._schedule_tile(note.args["tile"])
            return
        if note.kind is TmuxNotify.WAKEUP:
            yield self.clock.cycles_to_ps(self.SYSCALL_BASE_CY)
            yield from self.dtu.cmd_ack(1, msg)  # EP_NOTIFY
            act = self.acts.get(note.args["act_id"])
            if act is not None:
                if self._blocked(act):
                    act.state = ActState.READY
                    self._emit_wake(act, "wakeup")
                ready = self._tile_ready.setdefault(act.tile_id, [])
                if not self._is_current(act) and act.act_id not in ready:
                    ready.append(act.act_id)
                yield from self._schedule_tile(act.tile_id)
            return
        tile = None
        if note.kind is TmuxNotify.EXIT:
            act = self.acts.get(note.args["act_id"])
            if act is not None:
                tile = act.tile_id
                if self._tile_current.get(tile) == act.act_id:
                    self._tile_current[tile] = None
                ready = self._tile_ready.get(tile, [])
                if act.act_id in ready:
                    ready.remove(act.act_id)
                self._snapshots.pop(act.act_id, None)
        yield from super()._handle_notify(msg)
        if tile is not None:
            yield from self._schedule_tile(tile)

    def _schedule_tile(self, tile: int) -> Generator:
        """Pick and install the next ready activity on ``tile``."""
        ready = self._tile_ready.setdefault(tile, [])
        if not ready:
            return
        yield self.clock.cycles_to_ps(self.M3X_SWITCH_CY)
        cur_id = self._tile_current.get(tile)
        if cur_id is not None:
            cur = self.acts[cur_id]
            if cur.state is ActState.RUNNING:
                return  # mid-dispatch; it will notify when it blocks
            yield from self._save_context(cur)
            if not self._blocked(cur) and cur.act_id not in ready:
                # round-robin a runnable current instead of declining the
                # switch: a napper whose timer beats the (credit-delayed)
                # BLOCKED notify would otherwise starve the ready queue
                # forever — it re-wakes before every scheduling decision
                ready.append(cur.act_id)
        nxt = self.acts[ready.pop(0)]
        yield from self._restore_context(nxt)
        self.stats.counter("m3x/switches").add()
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.series_inc("ctrl/switches", self.sim.now)

    @staticmethod
    def _blocked(act: Activity) -> bool:
        return act.state in (ActState.BLOCKED, ActState.BLOCKED_PF)

    def _emit_wake(self, act: Activity, reason: str) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(self.sim, "act_wake", tile=act.tile_id,
                        act=act.act_id, reason=reason)

    def _save_context(self, act: Activity) -> Generator:
        """Save registers (via RCTMux) and endpoints (via ext IF)."""
        tile = act.tile_id
        yield from self.tmux_request(tile, TmuxOp.M3X_SAVE,
                                     {"act_id": act.act_id})
        ep_ids = self._act_eps.get(act.act_id, [])
        if ep_ids:
            # atomic save-and-invalidate: a separate read + blank write
            # would lose messages deposited between the two requests
            saved = yield from self._ext(tile, ExtOp.SWAP_EPS,
                                         {"ep_ids": ep_ids})
            self._snapshots[act.act_id] = saved
            # a message may have raced in just before the swap: the
            # saved activity is runnable and must requeue, or the
            # captured message would never wake anyone
            if any(ep.kind is EndpointKind.RECEIVE and ep.unread > 0
                   for ep in saved.values()):
                if self._blocked(act):
                    act.state = ActState.READY
                    self._emit_wake(act, "save_scan")
                ready = self._tile_ready.setdefault(tile, [])
                if act.act_id not in ready:
                    ready.append(act.act_id)
        if not self._blocked(act) and act.state is not ActState.EXITED:
            # the sleep timer fired between the BLOCKED notify and the
            # save landing (the activity state is shared with RCTMux, so
            # the post-save check sees it): runnable, must requeue, or it
            # would sit READY in a snapshot nobody ever restores
            ready = self._tile_ready.setdefault(tile, [])
            if act.act_id not in ready:
                ready.append(act.act_id)
        self._tile_current[tile] = None

    def _restore_context(self, act: Activity) -> Generator:
        tile = act.tile_id
        snapshot = self._snapshots.pop(act.act_id, None)
        if snapshot:
            yield from self._ext(tile, ExtOp.WRITE_EPS, {"eps": snapshot})
        self._tile_current[tile] = act.act_id
        if self._blocked(act):
            act.state = ActState.READY
            self._emit_wake(act, "restore")
        yield from self.tmux_request(tile, TmuxOp.M3X_RESUME,
                                     {"act_id": act.act_id})

    def _send_syscall_reply(self, caller: int, msg, reply) -> Generator:
        """Reply to a syscall; if the caller was descheduled while the
        call was in flight, deposit the reply into its saved endpoint
        state instead (the kernel-side half of the slow path)."""
        dst_ep = msg.reply_ep
        try:
            yield from super()._send_syscall_reply(caller, msg, reply)
        except DtuFault as fault:
            if fault.error is not DtuError.RECV_GONE:
                raise
            from repro.kernel.protocol import SyscallReply
            snapshot = self._snapshots.get(caller)
            if snapshot is None or dst_ep not in snapshot:
                raise
            ep = snapshot[dst_ep]
            if ep.kind is not EndpointKind.RECEIVE or ep.free_slots == 0:
                raise
            ep.deposit(Message(label=msg.label, data=reply,
                               size=SyscallReply.SIZE,
                               src_tile=self.tile_id, reply_ep=None,
                               credit_ep=None, credited=True))
            act = self.acts.get(caller)
            # the wire reply would have returned the syscall send credit;
            # restore it in the saved endpoint state instead
            if act is not None and act.sysc_sep in snapshot:
                sep = snapshot[act.sysc_sep]
                if sep.kind is EndpointKind.SEND and not sep.has_credits:
                    sep.return_credit()
            if act is not None and self._blocked(act):
                act.state = ActState.READY
                self._emit_wake(act, "syscall_reply")
                ready = self._tile_ready.setdefault(act.tile_id, [])
                if not self._is_current(act) and act.act_id not in ready:
                    ready.append(act.act_id)
                yield from self._schedule_tile(act.tile_id)

    # ---------------------------------------------------------- spawning/wiring

    def spawn(self, name: str, tile_id: int, program, **kwargs) -> Generator:
        act = yield from super().spawn(name, tile_id, program, **kwargs)
        self.register_act_ep(act, act.sysc_sep)
        self.register_act_ep(act, act.sysc_rep, rgate=True)
        if self._tile_current.get(tile_id) is None:
            self._tile_current[tile_id] = act.act_id
            yield from self.tmux_request(tile_id, TmuxOp.M3X_RESUME,
                                         {"act_id": act.act_id})
        else:
            # not scheduled yet: its endpoints live in the snapshot
            yield from self._absorb_eps(act)
            self._tile_ready.setdefault(tile_id, []).append(act.act_id)
        return act

    def wire_channel(self, src_act: Activity, dst_act: Activity,
                     **kwargs) -> Generator:
        send_ep, recv_ep, reply_ep = yield from super().wire_channel(
            src_act, dst_act, **kwargs)
        self.register_act_ep(dst_act, recv_ep, rgate=True)
        self.register_act_ep(src_act, send_ep)
        self.register_act_ep(src_act, reply_ep, rgate=True)
        for act in (src_act, dst_act):
            if not self._is_current(act):
                yield from self._absorb_eps(act)
        return send_ep, recv_ep, reply_ep

    def finalize_eps(self, act: Activity) -> Generator:
        if not self._is_current(act):
            yield from self._absorb_eps(act)

    def _sys_activate(self, caller: int, args) -> Generator:
        ep_id = yield from super()._sys_activate(caller, args)
        act = self.acts[caller]
        eps = self._act_eps.setdefault(caller, [])
        if ep_id not in eps:
            from repro.kernel.caps import CapKind
            cap = self._table(caller).get(args["sel"])
            self.register_act_ep(act, ep_id,
                                 rgate=cap.kind is CapKind.RGATE)
        return ep_id

    def _install_ep(self, act: Activity, ep_id: int, endpoint) -> Generator:
        """An activity may get descheduled while its syscall is queued;
        in that case the endpoint goes into the saved state, exactly as
        the M3x kernel updates suspended contexts."""
        if self._is_current(act):
            yield from super()._install_ep(act, ep_id, endpoint)
            return
        yield self.clock.cycles_to_ps(self.EXT_REQ_CY)
        self._snapshots.setdefault(act.act_id, {})[ep_id] = endpoint

    def _absorb_eps(self, act: Activity) -> Generator:
        """Move an inactive activity's installed endpoints into its
        snapshot (they were just configured on the tile)."""
        ep_ids = self._act_eps.get(act.act_id, [])
        if not ep_ids:
            return
        saved = yield from self._ext(act.tile_id, ExtOp.SWAP_EPS,
                                     {"ep_ids": ep_ids})
        snapshot = self._snapshots.setdefault(act.act_id, {})
        for ep_id, ep in saved.items():
            if ep.kind is not EndpointKind.INVALID:
                snapshot[ep_id] = ep

    # --------------------------------------------------------------- slow path

    def _sys_forward(self, caller: int, args) -> Generator:
        """Deliver a message to a non-running activity (section 2.2):
        store it in the saved endpoint state and schedule the recipient."""
        yield self.clock.cycles_to_ps(self.FORWARD_CY)
        dst = self._rgate_owner.get((args["dst_tile"], args["dst_ep"]))
        if dst is None:
            raise SyscallError("forward: unknown destination endpoint")
        act = self.acts[dst]
        snapshot = self._snapshots.get(dst)
        seq = args.get("seq")
        if snapshot is not None and args["dst_ep"] in snapshot:
            ep = snapshot[args["dst_ep"]]
            if ep.kind is not EndpointKind.RECEIVE:
                raise SyscallError("forward: receive buffer unavailable")
            if seq is not None and ep.is_duplicate(*seq):
                # retransmitted copy of a message the endpoint already
                # holds (delivered on the wire before the save, or by an
                # earlier forward): deposit nothing, credit nothing —
                # the surviving copy owns both
                self.stats.counter("ctrl/forward_dedups").add()
            else:
                if ep.free_slots == 0:
                    raise SyscallError("forward: receive buffer unavailable")
                src_credit = args.get("src_credit_ep")
                ep.deposit(Message(label=args["label"], data=args["data"],
                                   size=args["size"],
                                   src_tile=args["src_tile"],
                                   reply_ep=args.get("reply_ep"),
                                   credit_ep=src_credit,
                                   credited=(args.get("is_reply", False)
                                             or src_credit is None)))
                if seq is not None:
                    ep.record_seq(*seq)
                # a forwarded reply restores the requester's send credit
                # in the saved state (the wire reply would have returned
                # it)
                credit_ep = args.get("credit_ep")
                if credit_ep is not None and credit_ep in snapshot:
                    sep = snapshot[credit_ep]
                    if (sep.kind is EndpointKind.SEND
                            and sep.credits < sep.max_credits):
                        sep.return_credit()
        else:
            # recipient is (or became) current: deliver directly on the wire,
            # preserving the original sender's reply path
            yield from self._deliver_direct(args)
        if self._blocked(act):
            act.state = ActState.READY
            self._emit_wake(act, "forward")
        ready = self._tile_ready.setdefault(act.tile_id, [])
        if (not self._is_current(act)) and act.act_id not in ready:
            ready.append(act.act_id)
        yield from self._schedule_tile(act.tile_id)
        self.stats.counter("ctrl/forwards").add()
        metrics = self.sim.metrics
        if metrics is not None:
            now = self.sim.now
            metrics.series_inc("ctrl/forwards", now)
            metrics.sample("ctrl/slowpath_q", now,
                           sum(len(r) for r in self._tile_ready.values()))
        return None

    def _deliver_direct(self, args) -> Generator:
        """Re-inject the forwarded message as if sent by the original
        sender, so the recipient's REPLY finds its way back."""
        from repro.dtu.dtu import WireMsg, _tags
        from repro.noc.packet import Packet, PacketKind

        seq = args.get("seq")
        wire = WireMsg(dst_ep=args["dst_ep"], label=args["label"],
                       data=args["data"], size=args["size"],
                       src_tile=args["src_tile"],
                       reply_ep=args.get("reply_ep"),
                       credit_ep=args.get("src_credit_ep"),
                       is_reply=args.get("is_reply", False),
                       credit_return_ep=args.get("credit_ep"),
                       chan=None if seq is None else seq[0],
                       chan_seq=None if seq is None else seq[1])
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(self.sim, "msg_send", tile=args["src_tile"], ep=-1,
                        dst_tile=args["dst_tile"], dst_ep=args["dst_ep"],
                        size=args["size"], uid=wire.uid,
                        reply=wire.is_reply)
        tag = next(_tags)
        done = self.sim.event()
        self.dtu._pending[tag] = done
        self.dtu.fabric.send(Packet(PacketKind.MSG, src=self.tile_id,
                                    dst=args["dst_tile"], size=args["size"],
                                    payload=wire, tag=tag))
        error = yield done
        if error is not DtuError.NONE:
            raise SyscallError(f"forward delivery failed: {error.value}")
