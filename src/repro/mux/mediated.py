"""The rejected first design iteration (section 3.5).

Before virtualizing the DTU, the authors tried letting TileMux mediate
*every* vDTU access — each endpoint use trapped into TileMux, which
validated and forwarded it.  That "degraded the performance of all
communication by an order of magnitude", which is why endpoints got
activity tags and activities drive the vDTU directly.

This API variant reproduces that design for the ablation benchmark:
every DTU command pays a trap + mediation cost.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.dtu.message import Message
from repro.mux.api import ActivityApi

# trap into TileMux, argument validation, register-level forwarding of
# the command, result copy-back, trap exit — per vDTU command
MEDIATION_CY = 2200


class MediatedActivityApi(ActivityApi):
    """Every vDTU interaction goes through TileMux."""

    def _mediate(self) -> Generator:
        yield from self.compute(self.costs.trap_enter
                                + self.costs.tmcall_dispatch
                                + MEDIATION_CY
                                + self.costs.trap_exit)
        self.mux.stats.counter("mediated/traps").add()

    def send(self, ep: int, data: Any, size: int,
             reply_ep: Optional[int] = None, virt: int = 0) -> Generator:
        yield from self._mediate()
        yield from super().send(ep, data, size, reply_ep=reply_ep, virt=virt)

    def fetch(self, ep: int) -> Generator:
        yield from self._mediate()
        return (yield from super().fetch(ep))

    def reply(self, ep: int, msg: Message, data: Any, size: int,
              virt: int = 0) -> Generator:
        yield from self._mediate()
        yield from super().reply(ep, msg, data, size, virt=virt)

    def ack(self, ep: int, msg: Message) -> Generator:
        yield from self._mediate()
        yield from super().ack(ep, msg)

    def read(self, ep: int, offset: int, size: int, virt: int = 0) -> Generator:
        yield from self._mediate()
        return (yield from super().read(ep, offset, size, virt=virt))

    def write(self, ep: int, offset: int, data: bytes, virt: int = 0) -> Generator:
        yield from self._mediate()
        yield from super().write(ep, offset, data, virt=virt)
