"""Tile multiplexing.

* :mod:`repro.mux.tilemux` — M3v's tile-local multiplexer (section 3.3,
  4.2): schedules resident activities, handles TMCalls and core
  requests, maintains the vDTU TLB and page tables.
* :mod:`repro.mux.api` — the activity-side library ("m3 standard
  library"): message gates, RPC, syscalls, blocking receive.
* :mod:`repro.mux.m3x` — the M3x baseline: a thin RCTMux per tile with
  all scheduling and endpoint save/restore performed remotely by the
  controller (section 2.2), including slow-path message forwarding.
"""

from repro.mux.api import ActivityApi, TmCall
from repro.mux.tilemux import TileMux

__all__ = ["ActivityApi", "TmCall", "TileMux"]
