"""The recovery policy: what the software stack does about hardware faults.

A :class:`RecoveryPolicy` is shared configuration for every layer that
participates in fault tolerance:

* the DTU arms an **ack timeout** on every SEND/REPLY transaction, so a
  lost packet (or lost acknowledgement) completes the command with
  ``DtuError.TIMEOUT`` instead of hanging the core forever;
* the mux-level send helpers (:mod:`repro.mux.api`) retransmit timed-out
  or corrupted messages with **bounded retries, exponential backoff and
  seeded jitter**, numbering each logical message so the receiving DTU
  can drop duplicates (at-most-once delivery);
* TileMux runs a **watchdog**: an activity that burns ``watchdog_slices``
  full timeslices without ever blocking or yielding is reported to the
  controller;
* the controller tracks per-tile fault reports and **quarantines** a
  tile after ``quarantine_faults`` of them, steering new activity
  placements away from it (degraded mode instead of a deadlocked run).

Everything defaults to *off*: a platform without a policy installed
behaves — trace-byte for trace-byte — like the plain fault-free model.
Install one with :func:`enable_recovery`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the fault-recovery protocol (see module docstring)."""

    ack_timeout_ps: int = 40_000_000     # 40 us >> any uncontended RTT
    max_retries: int = 6                 # retransmissions per logical message
    backoff_base_ps: int = 2_000_000     # first backoff: 2 us
    backoff_factor: float = 2.0          # exponential growth per attempt
    backoff_cap_ps: int = 50_000_000     # ceiling on the exponential part
    jitter_ps: int = 1_000_000           # uniform [0, jitter) added per wait
    watchdog_slices: int = 4             # TileMux: consecutive full slices
    quarantine_faults: int = 3           # controller: reports before quarantine
    seed: int = 0                        # namespaces the jitter streams

    def backoff_ps(self, attempt: int, rng: random.Random) -> int:
        """Backoff before retransmission ``attempt`` (1-based)."""
        base = self.backoff_base_ps * self.backoff_factor ** (attempt - 1)
        jitter = rng.randrange(self.jitter_ps) if self.jitter_ps > 0 else 0
        return min(int(base), self.backoff_cap_ps) + jitter

    def jitter_rng(self, tile_id: int, name: str) -> random.Random:
        """A deterministic per-actor jitter stream.

        Seeded from a string so the stream is identical across
        interpreters and hash seeds (``random.Random(str)`` hashes the
        bytes deterministically), and independent of any process-global
        id counters — a point re-run in a fresh worker process draws the
        same jitter as a serial run.
        """
        return random.Random(f"recovery:{self.seed}:{tile_id}:{name}")


def enable_recovery(platform, policy: RecoveryPolicy = None) -> RecoveryPolicy:
    """Install ``policy`` on every processing tile of ``platform``.

    Arms the per-DTU ack timers, the mux-level retransmission layer, the
    TileMux watchdog, and the controller's tile-health tracking.  The
    controller and memory tiles keep their plain DTUs: the kernel and
    DMA channels model a protected control network (a dedicated virtual
    channel in real interconnects), which is also why the fault injectors
    in :mod:`repro.faults` never target them.
    """
    if policy is None:
        policy = RecoveryPolicy()
    for tile in platform.proc_tiles():
        tile.dtu.recovery = policy
        if tile.mux is not None:
            tile.mux.recovery = policy
    platform.controller.recovery = policy
    return policy
