"""TileMux — the tile-local multiplexer of M3v (sections 3.3, 4.2).

TileMux runs in the core's privileged mode.  It

* schedules resident activities with a preemptive round-robin scheduler
  and time slices,
* services TMCalls (block, yield, exit, translate, sleep),
* handles core requests from the vDTU (messages for non-running
  activities) and keeps the per-activity unread-message counters,
* maintains page tables and the vDTU's software-loaded TLB, handing
  page faults to the pager service,
* processes controller requests (create/kill activities, apply
  mappings) — it has no control beyond its own tile.

Implementation notes on fidelity: activities are Python generators;
preemption and interrupt delivery happen at yield boundaries, and long
computations are chunked (``ActivityApi.compute``), which bounds timer
skew to one chunk.  The lost-wakeup avoidance of section 3.7 is
implemented literally: TileMux re-checks the message count returned by
the vDTU's atomic activity switch before committing to block a context.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.dtu import ACT_INVALID, ACT_TILEMUX, DtuFault, VDtu
from repro.dtu.endpoints import EndpointKind, Perm
from repro.kernel.activity import ActState, Activity, PageFault, PAGE_SIZE
from repro.kernel.protocol import (
    NotifyMsg,
    PagerOp,
    RpcMsg,
    RpcReply,
    TmuxNotify,
    TmuxOp,
    TmuxReply,
    TmuxReq,
)
from repro.mux.api import ActivityApi, TmCall
from repro.mux.sched import SchedPolicy, SchedSpec, make_policy
from repro.sim.engine import Event
from repro.tiles.costs import CoreCosts

# endpoint layout shared with the controller (import cycle avoided)
EP_TMUX_SEP = 4
EP_TMUX_REP = 5
EP_TMUX_REPLY = 6
EP_TMUX_PAGER = 7

DEFAULT_TIMESLICE_US = 1000.0


class TileMux:
    """One TileMux instance per general-purpose tile."""

    CREATE_ACT_CY = 2000     # address-space setup, context creation
    MAP_BASE_CY = 200        # apply-mapping request overhead
    MAP_PER_PAGE_CY = 30
    EXIT_CY = 400
    MIGRATE_BASE_CY = 1500   # context pack/unpack overhead
    MIGRATE_PER_PAGE_CY = 30  # page-table walk per mapped page

    def __init__(self, sim, tile_id: int, vdtu: VDtu, costs: CoreCosts,
                 stats=None, timeslice_us: float = DEFAULT_TIMESLICE_US,
                 sched: Optional[SchedSpec] = None,
                 beacon_us: Optional[float] = None):
        self.sim = sim
        self.tile_id = tile_id
        self.vdtu = vdtu
        self.costs = costs
        self.clock = costs.clock
        self.stats = stats if stats is not None else vdtu.stats
        self.timeslice_ps = round(timeslice_us * 1_000_000)
        # hot-path charge constants: the clock never changes after init,
        # and cycles_to_ps is linear, so these are exact
        self._tmcall_enter_ps = self.clock.cycles_to_ps(
            costs.trap_enter + costs.tmcall_dispatch)
        self._trap_exit_ps = self.clock.cycles_to_ps(costs.trap_exit)
        self._sched_pick_ps = self.clock.cycles_to_ps(costs.sched_pick)
        self._timer_ps = self.clock.cycles_to_ps(costs.timer_program)
        self._ctr_blocks = self.stats.counter("tilemux/blocks")
        self._ctr_switches = self.stats.counter("tilemux/ctx_switches")

        # API flavour bound to activities at CREATE_ACT (the mediated
        # variant exists for the section-3.5 ablation)
        self.api_class = ActivityApi
        self.acts: Dict[int, Activity] = {}
        # the ready queue is a pluggable policy (repro.mux.sched); the
        # default round-robin behaves exactly like the historical deque
        self.sched_spec = sched if sched is not None else SchedSpec()
        self.ready: SchedPolicy = make_policy(self.sched_spec, tile_id)
        self.current: Optional[Activity] = None
        self._last_dispatched: Optional[Activity] = None
        self._own_msgs = 0                     # TileMux's unread counter
        self._pf_pending: Dict[int, Activity] = {}
        self._poll_waiters: list = []
        self._wake: Event = sim.event()
        self._wake_waiting = False   # main loop is parked in _idle
        self.idle_ps = 0
        # fault-recovery policy (repro.mux.recovery); None = watchdog off
        # and no mux-level retransmission — the fault-free default
        self.recovery = None
        # load beacon (adaptive placement): off unless a PlacementSpec
        # asked for it, so the default path schedules no extra events
        self._beacon_due = False
        self._beacon_ps = None if beacon_us is None else round(
            beacon_us * 1_000_000)
        self._load_gauge = None
        vdtu.irq_handler = self._on_irq
        self._proc = sim.process(self._main_loop(), name=f"tilemux{tile_id}")
        if self._beacon_ps:
            self._load_gauge = self.stats.gauge(
                f"tile{tile_id}/sched/ready_depth")
            sim.process(self._beacon_timer(), name=f"beacon{tile_id}")

    # ----------------------------------------------------------- public hints

    def others_ready(self, act: Activity) -> bool:
        """The shared-memory 'are others ready' hint of section 3.7."""
        return bool(self.ready)

    def poll_signal(self):
        """An event for the library's poll loop (section 3.7): fires when
        a message for the current activity arrives *or* the vDTU raises
        a core request (so TileMux can run and service other events).
        The hardware poll observes CUR_ACT continuously; this keeps the
        simulated detection latency at the poll-iteration cost instead
        of a coarse backoff."""
        ev = self.sim.event()
        if self.vdtu.cur_msgs > 0 or self.vdtu.core_req_pending:
            ev.succeed()
            return ev
        self.vdtu.cur_msg_waiters.append(ev)
        self._poll_waiters.append(ev)
        return ev

    @property
    def resident(self) -> int:
        return len(self.acts)

    # ---------------------------------------------------------------- wiring

    def _on_irq(self) -> None:
        # only schedule a wake event if the main loop is parked in _idle:
        # core_req_pending stays set until serviced (it is re-checked
        # before every wait), and an un-waited wake pop is pure queue load
        if self._wake_waiting and not self._wake.triggered:
            self._wake.succeed()
        waiters, self._poll_waiters = self._poll_waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()

    def _charge(self, cycles: int) -> Generator:
        yield self.clock.cycles_to_ps(cycles)

    def _count_sched(self, name: str) -> None:
        """Per-policy scheduling counter, mirrored into the metrics
        registry so ``repro stats`` surfaces it per point."""
        self.stats.counter(f"tile{self.tile_id}/sched/{name}").add()
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.series_inc(f"tile{self.tile_id}/sched/{name}",
                               self.sim.now)

    def _emit(self, kind: str, **fields) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(self.sim, kind, tile=self.tile_id, **fields)

    # -------------------------------------------------------------- main loop

    def _main_loop(self) -> Generator:
        while True:
            if self.vdtu.core_req_pending:
                yield from self._handle_core_reqs()
                continue
            if self._own_msgs > 0:
                # a controller request landed while CUR_ACT was already
                # ACT_TILEMUX (e.g. during a beacon/watchdog send): the
                # same-act deposit raised no core request, the restoring
                # exchange only recorded the count — service it now or
                # it strands unread while the tile parks
                yield from self._service_own_messages()
                continue
            if self._beacon_due:
                yield from self._beacon_report()
            ctx = yield from self._pick()
            if ctx is None:
                yield from self._idle()
                continue
            yield from self._dispatch(ctx)

    def _pick(self) -> Generator:
        yield self._sched_pick_ps
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.sample(f"tile{self.tile_id}/tilemux/ready_q",
                           self.sim.now, len(self.ready))
        if self.ready:
            return self.ready.popleft()
        return None

    def _idle(self) -> Generator:
        """No runnable activity: park the vDTU so any arrival interrupts."""
        if self.vdtu.cur_act != ACT_INVALID:
            yield from self._switch_vdtu(ACT_INVALID, 0)
            if self.ready:
                # the exchange itself averted a lost wakeup: the message
                # landed while the blocking activity was still CUR_ACT,
                # so no core request (and hence no IRQ) will ever fire —
                # parking now would strand the requeued activity forever
                return
        if self.vdtu.core_req_pending or self._own_msgs > 0:
            return
        if self._wake.triggered:
            self._wake = self.sim.event()
        start = self.sim.now
        self._wake_waiting = True
        yield self._wake
        self._wake_waiting = False
        self.idle_ps += self.sim.now - start

    def _switch_vdtu(self, new_act: int, new_msgs: int) -> Generator:
        """Atomic CUR_ACT exchange + lost-wakeup re-check (section 3.7)."""
        old_act, old_msgs = yield from self.vdtu.priv_xchg_act(new_act, new_msgs)
        if old_act == ACT_TILEMUX:
            self._own_msgs = old_msgs
        elif old_act != ACT_INVALID:
            act = self.acts.get(old_act)
            if act is not None:
                act.msgs = old_msgs
                if act.state is ActState.BLOCKED and old_msgs > 0:
                    # a message slipped in between the check and the switch
                    act.state = ActState.READY
                    self.ready.append(act)
                    self._emit("act_wake", act=old_act, reason="lost_wakeup")
                    self.stats.counter("tilemux/lost_wakeups_averted").add()
        return old_act, old_msgs

    # ------------------------------------------------------------- dispatching

    def _dispatch(self, ctx: Activity) -> Generator:
        if self._last_dispatched is not ctx:
            switch_start = self.sim.now
            yield self.clock.cycles_to_ps(self.costs.ctx_switch)
            self._ctr_switches.add()
            self._last_dispatched = ctx
            yield from self._switch_vdtu(ctx.act_id, ctx.msgs)
            metrics = self.sim.metrics
            if metrics is not None:
                now = self.sim.now
                metrics.series_inc(
                    f"tile{self.tile_id}/tilemux/ctx_switches", now)
                metrics.observe(f"tile{self.tile_id}/tilemux/switch_ps",
                                now - switch_start)
        else:
            yield from self._switch_vdtu(ctx.act_id, ctx.msgs)
        ctx.msgs = 0  # now live in CUR_ACT
        ctx.state = ActState.RUNNING
        self.current = ctx
        ctx.slice_end = self.sim.now + self.ready.slice_ps(ctx,
                                                           self.timeslice_ps)
        yield self._timer_ps

        run_start = self.sim.now
        inject_val: Any = ctx._resume_value
        ctx._resume_value = None
        keep_running = True
        while keep_running:
            # interrupt window between operations
            if self.vdtu.core_req_pending:
                yield from self._handle_core_reqs()
            if self._beacon_due:
                yield from self._beacon_report()
            if getattr(ctx, "_migrated", False):
                # MIGRATE_OUT detached the running activity during the
                # interrupt window above: stop driving its generator (it
                # resumes on the target tile via _resume_value)
                ctx._migrated = False
                ctx._resume_value = inject_val
                break
            if self.sim.now >= ctx.slice_end and self.ready:
                yield self.clock.cycles_to_ps(self.costs.irq_entry
                                        + self.costs.timer_program)
                ctx.state = ActState.READY
                ctx._resume_value = inject_val  # re-inject after preemption
                self.ready.append(ctx)
                if self.ready.on_preempt(ctx):
                    self._count_sched("slice_autotune")
                self._emit("preempt", act=ctx.act_id)
                self.stats.counter("tilemux/preemptions").add()
                self._count_sched("preempts")
                if self.recovery is not None:
                    yield from self._watchdog_tick(ctx)
                break
            try:
                item = ctx.gen.send(inject_val)
            except StopIteration:
                yield from self._exit(ctx, code=0)
                break
            inject_val = None
            if type(item) is int or isinstance(item, Event):
                # ints are the engine's timeout fast path; forward as-is
                inject_val = yield item
            elif isinstance(item, TmCall):
                inject_val, keep_running = yield from self._tmcall(ctx, item)
            elif item is None:
                pass  # cooperative checkpoint
            else:
                raise RuntimeError(f"activity {ctx.name} yielded {item!r}")

        self.current = None
        # All time of this dispatch — including TileMux's own work — is
        # accounted to the activity (the paper accounts TileMux as user
        # time "for implementation-specific reasons", section 6.5.2).
        ctx.user_ps += self.sim.now - run_start

    # ----------------------------------------------------------------- watchdog

    def _watchdog_tick(self, ctx: Activity) -> Generator:
        """Count whole timeslices an activity burned without trapping.

        Any TMCall proves the activity still makes scheduling progress
        and resets the count; ``watchdog_slices`` consecutive full slices
        mean it is likely wedged on a faulty resource, so TileMux reports
        the tile to the controller (best effort: if the notify channel is
        out of credits the report is dropped, not the schedule).
        """
        ctx.wd_slices = getattr(ctx, "wd_slices", 0) + 1
        if ctx.wd_slices != self.recovery.watchdog_slices:
            return
        self._emit("watchdog", act=ctx.act_id, slices=ctx.wd_slices)
        self.stats.counter("tilemux/watchdog_barks").add()
        try:
            yield from self._send_as_tilemux(
                EP_TMUX_SEP,
                NotifyMsg(TmuxNotify.FAULT,
                          {"tile": self.tile_id, "act_id": ctx.act_id,
                           "reason": "watchdog"}),
                NotifyMsg.SIZE)
        except DtuFault:
            self.stats.counter("tilemux/watchdog_notify_dropped").add()

    # ----------------------------------------------------------------- beacon

    def _beacon_timer(self) -> Generator:
        """Periodically flag a load report; the main/dispatch loop sends it.

        The timer never touches CUR_ACT itself — switching endpoints
        concurrently with the dispatch loop would corrupt the unread
        counters — it only raises a flag serviced at the same safe
        points as core requests (the _watchdog_tick pattern).
        """
        while True:
            yield self._beacon_ps
            self._beacon_due = True
            self._on_irq()

    def _beacon_report(self) -> Generator:
        self._beacon_due = False
        depth = len(self.ready) + (1 if self.current is not None else 0)
        self._load_gauge.set(depth, self.sim.now)
        try:
            yield from self._send_as_tilemux(
                EP_TMUX_SEP,
                NotifyMsg(TmuxNotify.LOAD,
                          {"tile": self.tile_id, "depth": depth}),
                NotifyMsg.SIZE)
        except DtuFault:
            # best effort, like the watchdog: a stale sample is fine
            self.stats.counter("tilemux/load_notify_dropped").add()

    # ----------------------------------------------------------------- TMCalls

    def _tmcall(self, ctx: Activity, call: TmCall) -> Generator:
        """Returns (resume_value, keep_running)."""
        ctx.wd_slices = 0  # trapping at all counts as forward progress
        yield self._tmcall_enter_ps
        op = call.op
        if op == "block":
            # atomic check against the live CUR_ACT count: a message may
            # have arrived since the activity's last fetch
            if self.vdtu.cur_msgs > 0:
                yield self._trap_exit_ps
                return False, True  # not blocked; messages await
            if getattr(ctx, "_dev_kick", False):
                ctx._dev_kick = False  # a device interrupt raced the trap
                yield self._trap_exit_ps
                return False, True
            ctx.state = ActState.BLOCKED
            self._emit("act_block", act=ctx.act_id)
            self._ctr_blocks.add()
            self._sched_trap(ctx)
            return None, False
        if op == "yield":
            ctx.state = ActState.READY
            self.ready.append(ctx)
            self._sched_trap(ctx)
            return None, False
        if op == "sleep":
            ctx.state = ActState.BLOCKED
            ctx._sleeping = True
            self._emit("act_block", act=ctx.act_id)
            self._sched_trap(ctx)
            deadline = self.sim.now + call.args["ps"]
            self.sim.process(self._wake_after(ctx, deadline),
                             name=f"sleep-{ctx.name}")
            return None, False
        if op == "exit":
            yield from self._exit(ctx, call.args.get("code", 0))
            return None, False
        if op == "translate":
            ok, blocked = yield from self._translate(ctx, call.args["virt"],
                                                     call.args["perm"])
            if blocked:
                return None, False
            yield self._trap_exit_ps
            return ok, True
        raise RuntimeError(f"unknown TMCall {op!r}")

    def _sched_trap(self, ctx: Activity) -> None:
        """Tell the policy the activity gave up the core early."""
        if self.ready.on_trap(ctx):
            self._count_sched("slice_autotune")

    def _wake_after(self, ctx: Activity, deadline: int) -> Generator:
        yield max(0, deadline - self.sim.now)
        ctx._sleeping = False
        if self.acts.get(ctx.act_id) is not ctx:
            return  # exited (or migrated, which MIGRATE_OUT forbids asleep)
        if ctx.state is ActState.BLOCKED:
            ctx.state = ActState.READY
            ctx.msgs = ctx.msgs  # counter untouched; just runnable again
            self.ready.append(ctx)
            self._emit("act_wake", act=ctx.act_id, reason="sleep")
            self._on_irq()

    def _exit(self, ctx: Activity, code: int) -> Generator:
        yield self.clock.cycles_to_ps(self.EXIT_CY)
        ctx.state = ActState.EXITED
        ctx.exit_code = code
        self._emit("act_exit", act=ctx.act_id)
        self.acts.pop(ctx.act_id, None)
        self.vdtu.tlb.invalidate(ctx.act_id)
        yield from self._send_as_tilemux(
            EP_TMUX_SEP, NotifyMsg(TmuxNotify.EXIT,
                                   {"act_id": ctx.act_id, "code": code}),
            NotifyMsg.SIZE)
        self.stats.counter("tilemux/exits").add()

    # ------------------------------------------------------------- translation

    def _translate(self, ctx: Activity, virt: int, perm: Perm) -> Generator:
        """Fill the vDTU TLB from the page table, or start a page fault.

        Returns (ok, blocked_on_pager).
        """
        ppage = ctx.addrspace.lookup(virt, perm)
        if ppage is not None:
            yield from self.vdtu.priv_insert_tlb(
                ctx.act_id, virt // PAGE_SIZE, ppage, self._page_perm(ctx, virt))
            self.stats.counter("tilemux/tlb_fills").add()
            return True, False
        region = ctx.addrspace.lazy_region_of(virt)
        if region is not None and ctx.pager_session is not None:
            yield from self._start_pagefault(ctx, virt, perm)
            return True, True
        if region is not None:
            raise PageFault(ctx.act_id, virt, perm)
        return False, False

    @staticmethod
    def _page_perm(ctx: Activity, virt: int) -> Perm:
        entry = ctx.addrspace._pages.get(virt // PAGE_SIZE)
        return entry[1] if entry else Perm.RW

    def _start_pagefault(self, ctx: Activity, virt: int, perm: Perm) -> Generator:
        ctx.state = ActState.BLOCKED_PF
        req = RpcMsg(op=PagerOp.PAGEFAULT,
                     args={"act_id": ctx.act_id, "virt": virt, "perm": perm})
        self._pf_pending[req.seq] = ctx
        yield from self._send_as_tilemux(EP_TMUX_PAGER, req, RpcMsg.SIZE,
                                         reply_ep=EP_TMUX_REPLY)
        self.stats.counter("tilemux/pagefaults").add()

    # -------------------------------------------------- TileMux's own messaging

    def _send_as_tilemux(self, ep: int, data: Any, size: int,
                         reply_ep: Optional[int] = None) -> Generator:
        """Switch to TileMux's own activity id, send, switch back (4.2)."""
        prev_act, _ = yield from self._switch_vdtu(ACT_TILEMUX, self._own_msgs)
        try:
            yield from self.vdtu.cmd_send(ep, data, size, reply_ep=reply_ep)
        finally:
            yield from self._restore_act(prev_act)

    def _restore_act(self, act_id: int) -> Generator:
        """Switch CUR_ACT back after TileMux used its own endpoints."""
        msgs = 0
        if act_id not in (ACT_TILEMUX, ACT_INVALID):
            act = self.acts.get(act_id)
            if act is None:
                act_id = ACT_INVALID
            else:
                msgs, act.msgs = act.msgs, 0
        elif act_id == ACT_TILEMUX:
            msgs = self._own_msgs
        yield from self._switch_vdtu(act_id, msgs)

    # -------------------------------------------------------- core requests

    def _handle_core_reqs(self) -> Generator:
        yield self.clock.cycles_to_ps(self.costs.irq_entry)
        service_own = False
        while True:
            req = yield from self.vdtu.priv_fetch_core_req()
            if req is None:
                break
            yield self.clock.cycles_to_ps(self.costs.core_req_handle)
            yield from self.vdtu.priv_ack_core_req()
            if req.act == ACT_TILEMUX:
                service_own = True
                continue
            act = self.acts.get(req.act)
            if act is None:
                continue  # raced with exit
            to_cur = self.current is not None and act is self.current
            if to_cur:
                # the deposit raced with an activity switch: the message
                # predates the switch, so account it to the live CUR_ACT
                # (the hardware's atomic switch has the same net effect)
                self.vdtu.cur_msgs += 1
            else:
                act.msgs += 1
            self._emit("core_req_route", act=req.act, to_cur=to_cur,
                       count=self.vdtu.cur_msgs if to_cur else act.msgs)
            if act.state is ActState.BLOCKED:
                act.state = ActState.READY
                self.ready.append(act)
                self._emit("act_wake", act=req.act, reason="core_req")
        if self._wake.triggered:
            self._wake = self.sim.event()
        if service_own:
            yield from self._service_own_messages()

    def _service_own_messages(self) -> Generator:
        """Process controller requests and pager replies."""
        prev_act, _ = yield from self._switch_vdtu(ACT_TILEMUX, self._own_msgs)
        while True:
            msg = yield from self.vdtu.cmd_fetch(EP_TMUX_REP)
            if msg is not None:
                yield from self._handle_ctrl_request(msg)
                continue
            reply = yield from self.vdtu.cmd_fetch(EP_TMUX_REPLY)
            if reply is not None:
                yield from self._handle_reply(reply)
                continue
            break
        self._own_msgs = self.vdtu.cur_msgs
        yield from self._restore_act(prev_act)

    def _handle_ctrl_request(self, msg) -> Generator:
        req: TmuxReq = msg.data
        ok, error = True, ""
        if req.op is TmuxOp.CREATE_ACT:
            yield self.clock.cycles_to_ps(self.CREATE_ACT_CY)
            act: Activity = req.args["activity"]
            api = self.api_class(self, act)
            act.api = api  # kept for rebinding on live migration
            act.gen = act.program(api)
            act.state = ActState.READY
            self.acts[act.act_id] = act
            self.ready.append(act)
        elif req.op is TmuxOp.MAP:
            pages = req.args["pages"]
            yield self.clock.cycles_to_ps(self.MAP_BASE_CY
                                    + self.MAP_PER_PAGE_CY * pages)
            act = self.acts.get(req.args["act_id"])
            if act is None:
                ok, error = False, f"no activity {req.args['act_id']}"
            else:
                for i in range(pages):
                    act.addrspace.map_page(req.args["virt_page"] + i,
                                           req.args["phys_page"] + i,
                                           req.args["perm"])
        elif req.op is TmuxOp.UNMAP:
            pages = req.args["pages"]
            yield self.clock.cycles_to_ps(self.MAP_BASE_CY)
            act = self.acts.get(req.args["act_id"])
            if act is not None:
                for i in range(pages):
                    act.addrspace.unmap_page(req.args["virt_page"] + i)
                self.vdtu.tlb.invalidate(act.act_id)
        elif req.op is TmuxOp.KILL_ACT:
            yield self.clock.cycles_to_ps(self.EXIT_CY)
            act = self.acts.pop(req.args["act_id"], None)
            if act is not None:
                act.state = ActState.EXITED
                if act in self.ready:
                    self.ready.remove(act)
                self.vdtu.tlb.invalidate(act.act_id)
        elif req.op is TmuxOp.MIGRATE_OUT:
            # tile-side re-validation is authoritative: the controller's
            # view of our schedule is stale by design (other shard)
            act = self.acts.get(req.args["act_id"])
            if act is None:
                ok, error = False, f"no activity {req.args['act_id']}"
            elif act is not self.current and act.state not in (
                    ActState.READY, ActState.BLOCKED):
                ok, error = False, (f"activity {act.act_id} not migratable "
                                    f"({act.state.value})")
            elif getattr(act, "_sleeping", False):
                ok, error = False, f"activity {act.act_id} is sleeping"
            else:
                if act is self.current:
                    # we are inside this activity's dispatch interrupt
                    # window (the only place controller requests are
                    # serviced while it runs), i.e. at an op boundary
                    # where preemption is legal: detach cooperatively —
                    # the dispatch loop sees the flag, stashes the
                    # pending resume value and stops driving the
                    # generator without requeueing it
                    act._migrated = True
                    act.state = ActState.READY
                # pack the context: registers plus page-table state
                yield self.clock.cycles_to_ps(
                    self.MIGRATE_BASE_CY
                    + self.MIGRATE_PER_PAGE_CY * act.addrspace.mapped_pages)
                self.acts.pop(act.act_id, None)
                if act in self.ready:
                    self.ready.remove(act)
                if self._last_dispatched is act:
                    self._last_dispatched = None
                self.vdtu.tlb.invalidate(act.act_id)
                self._emit("migrate_out", act=act.act_id)
                self._count_sched("migrations_out")
        elif req.op is TmuxOp.MIGRATE_IN:
            act = req.args["activity"]
            yield self.clock.cycles_to_ps(
                self.MIGRATE_BASE_CY
                + self.MIGRATE_PER_PAGE_CY * act.addrspace.mapped_pages)
            act.tile_id = self.tile_id
            if act.api is not None:
                act.api.rebind(self)
            # The controller recomputed the unread count from the source
            # endpoint snapshot, but the EPs went live here (WRITE_EPS)
            # before this request arrived: a message deposited in that
            # window raised a core request we dropped (unknown act) and
            # is missing from the snapshot.  Count unread straight from
            # the EP table (a privileged tile-local read), minus the
            # core requests still queued for this act — those drain
            # after registration and increment the count then.
            unread = sum(ep.unread for ep in self.vdtu.eps
                         if ep.kind is EndpointKind.RECEIVE
                         and ep.act == act.act_id)
            queued = sum(1 for cr in self.vdtu._core_reqs
                         if cr.act == act.act_id)
            act.msgs = max(0, unread - queued)
            self.acts[act.act_id] = act
            if act.state is ActState.BLOCKED and act.msgs > 0:
                act.state = ActState.READY
            if act.state is ActState.READY and act not in self.ready:
                self.ready.append(act)
            self._emit("migrate_in", act=act.act_id)
            self._count_sched("migrations_in")
        else:
            ok, error = False, f"unknown op {req.op}"
        yield from self.vdtu.cmd_reply(EP_TMUX_REP, msg,
                                       TmuxReply(req.seq, ok, error),
                                       TmuxReply.SIZE)

    def _handle_reply(self, msg) -> Generator:
        reply: RpcReply = msg.data
        yield from self.vdtu.cmd_ack(EP_TMUX_REPLY, msg)
        ctx = self._pf_pending.pop(reply.seq, None)
        if ctx is None:
            return
        if not reply.ok:
            raise PageFault(ctx.act_id, reply.value or 0, Perm.R)
        if ctx.state is ActState.BLOCKED_PF:
            ctx.state = ActState.READY
            self.ready.append(ctx)
            self._emit("act_wake", act=ctx.act_id, reason="pagefault")
