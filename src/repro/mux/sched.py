"""Pluggable TileMux scheduling policies (ROADMAP item 4).

TileMux historically hard-coded a preemptive round-robin over a
``deque``.  This module extracts that ready-queue behind a small policy
interface so the scheduling discipline becomes a frozen, comparable
configuration knob (:class:`SchedSpec` on ``repro.api.SystemConfig``)
instead of a code fork.  Four disciplines ship:

* ``rr`` — the original round-robin; byte-identical to the historical
  inline deque (the default, so every golden trace digest is preserved);
* ``edf`` — earliest deadline first.  Deadlines are *advisory* and come
  from the workload layer via :meth:`repro.mux.api.ActivityApi.set_deadline`
  (the serving stack stamps each request's deadline on its worker);
  activities without a deadline run FIFO behind all deadlined ones;
* ``lottery`` — proportional-share lottery scheduling over per-activity
  ``tickets``; the draw stream is tile-local and seeded, so results are
  independent of hash seed and shard count;
* ``autotune`` — round-robin order with a per-activity timeslice that
  adapts to observed behaviour: an activity that burns consecutive full
  slices (CPU-bound) has its slice doubled to amortize context-switch
  cost, one that traps early (I/O-bound) has it halved, both clamped to
  ``[slice_min_us, slice_max_us]``.

All policies expose the ``deque`` verbs TileMux already used
(``append``/``popleft``/``remove``/``in``/``len``/truthiness) plus the
scheduling hooks (``slice_ps``/``on_preempt``/``on_trap``), so the hot
path stays the same shape for the default policy.  Policies are
tile-local state: picks happen inside the owning tile's shard, never
across shards (REP004).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

__all__ = ["SCHED_POLICIES", "SchedSpec", "SchedPolicy", "RoundRobinPolicy",
           "EdfPolicy", "LotteryPolicy", "AutotunePolicy", "make_policy"]

SCHED_POLICIES = ("rr", "edf", "lottery", "autotune")


@dataclass(frozen=True)
class SchedSpec:
    """Frozen TileMux scheduling configuration.

    ``policy`` selects the discipline (see module docstring); ``seed``
    feeds the lottery draw stream (combined with the tile id, so every
    tile draws independently); the slice bounds apply to ``autotune``
    only.  The default spec reproduces the historical scheduler
    exactly — same picks, same costs, same trace.
    """

    policy: str = "rr"            # rr | edf | lottery | autotune
    seed: int = 1                 # lottery draw stream seed
    slice_min_us: float = 125.0   # autotune lower clamp
    slice_max_us: float = 4000.0  # autotune upper clamp

    def __post_init__(self):
        if self.policy not in SCHED_POLICIES:
            raise ValueError(f"unknown sched policy {self.policy!r}; "
                             f"expected one of {SCHED_POLICIES}")
        if self.slice_min_us <= 0 or self.slice_max_us < self.slice_min_us:
            raise ValueError(f"bad autotune slice bounds "
                             f"[{self.slice_min_us}, {self.slice_max_us}] us")


class SchedPolicy:
    """Base policy: the original round-robin deque.

    Subclasses override :meth:`popleft` (the pick) and the hooks; the
    queue container itself stays a deque so membership/removal verbs
    behave identically everywhere.
    """

    name = "rr"

    def __init__(self, spec: SchedSpec, tile_id: int):
        self.spec = spec
        self.tile_id = tile_id
        self._q: Deque = deque()

    # -- deque verbs (TileMux's historical ready-queue surface) ------------

    def append(self, act) -> None:
        self._q.append(act)

    def popleft(self):
        return self._q.popleft()

    def remove(self, act) -> None:
        self._q.remove(act)

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    def __contains__(self, act) -> bool:
        return act in self._q

    def __iter__(self):
        return iter(self._q)

    # -- scheduling hooks ---------------------------------------------------

    def slice_ps(self, act, base_ps: int) -> int:
        """The timeslice to grant ``act`` on this dispatch."""
        return base_ps

    def on_preempt(self, act) -> bool:
        """``act`` burned its whole slice; True if the policy adapted."""
        return False

    def on_trap(self, act) -> bool:
        """``act`` gave up the core before its slice ended (block, yield
        or sleep TMCall); True if the policy adapted."""
        return False


RoundRobinPolicy = SchedPolicy


class EdfPolicy(SchedPolicy):
    """Earliest deadline first over the advisory ``deadline_ps``.

    Ties (equal deadlines, and all no-deadline activities) resolve in
    FIFO order — deque position is the tiebreak, so a pure-EDF queue
    with no deadlines degenerates to exact round-robin.
    """

    name = "edf"

    _NO_DEADLINE = float("inf")

    def popleft(self):
        q = self._q
        best_i = 0
        best_d = q[0].deadline_ps
        if best_d is None:
            best_d = self._NO_DEADLINE
        for i in range(1, len(q)):
            d = q[i].deadline_ps
            if d is None:
                d = self._NO_DEADLINE
            if d < best_d:
                best_i, best_d = i, d
        act = q[best_i]
        del q[best_i]
        return act


class LotteryPolicy(SchedPolicy):
    """Proportional-share lottery over per-activity ``tickets``.

    The RNG is a private, seeded stream keyed on (tile, spec.seed):
    draws depend only on the deterministic sequence of picks on this
    tile, never on hash seed or shard layout.
    """

    name = "lottery"

    def __init__(self, spec: SchedSpec, tile_id: int):
        super().__init__(spec, tile_id)
        self._rng = random.Random(f"sched:{tile_id}:{spec.seed}")

    def popleft(self):
        q = self._q
        if len(q) == 1:
            return q.popleft()
        total = 0
        for act in q:
            total += act.tickets
        draw = self._rng.randrange(total)
        for i, act in enumerate(q):
            draw -= act.tickets
            if draw < 0:
                del q[i]
                return act
        raise AssertionError("lottery draw out of range")  # pragma: no cover


class AutotunePolicy(SchedPolicy):
    """Round-robin order with per-activity timeslice adaptation.

    The adapted slice rides on the activity (``sched_slice_ps``) so it
    survives live migration to another tile.
    """

    name = "autotune"

    def __init__(self, spec: SchedSpec, tile_id: int):
        super().__init__(spec, tile_id)
        self._min_ps = round(spec.slice_min_us * 1_000_000)
        self._max_ps = round(spec.slice_max_us * 1_000_000)

    def _clamp(self, ps: int) -> int:
        return min(max(ps, self._min_ps), self._max_ps)

    def slice_ps(self, act, base_ps: int) -> int:
        if act.sched_slice_ps is None:
            act.sched_slice_ps = self._clamp(base_ps)
        return act.sched_slice_ps

    def on_preempt(self, act) -> bool:
        cur = act.sched_slice_ps
        if cur is None:
            return False
        grown = self._clamp(cur * 2)
        if grown == cur:
            return False
        act.sched_slice_ps = grown
        return True

    def on_trap(self, act) -> bool:
        cur = act.sched_slice_ps
        if cur is None:
            return False
        shrunk = self._clamp(cur // 2)
        if shrunk == cur:
            return False
        act.sched_slice_ps = shrunk
        return True


_POLICY_CLASSES = {
    "rr": RoundRobinPolicy,
    "edf": EdfPolicy,
    "lottery": LotteryPolicy,
    "autotune": AutotunePolicy,
}


def make_policy(spec: Optional[SchedSpec], tile_id: int) -> SchedPolicy:
    """Instantiate the ready-queue policy for one tile."""
    spec = spec if spec is not None else SchedSpec()
    return _POLICY_CLASSES[spec.policy](spec, tile_id)
