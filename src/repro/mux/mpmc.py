"""A Virtual-Link-style MPMC queue as an alternative channel backend.

Per-pair DTU endpoints (``Controller.wire_channel``) give every
producer/consumer pair its own send gate, credits, and receive slots.
For fan-in traffic — many gateways feeding one balancer — that costs
O(pairs) endpoints and per-pair credit management, and a single slow
producer cannot lend its slack to the others.

Virtual-Link (PAPERS.md) instead places one bounded multi-producer
multi-consumer queue in shared memory: producers enqueue with a CAS on
the tail pointer, consumers dequeue with a CAS on the head, and the
capacity is shared across all producers.  :class:`VirtualLinkQueue`
models that design point on top of the simulator:

* every enqueue/dequeue pays the library cost plus one NoC round trip
  to the queue's home memory tile (slot write/read + pointer CAS);
* CAS contention is modeled by serializing operations at the home
  memory controller: concurrent operations queue behind each other for
  ``op_ps`` each, so heavy fan-in shows up as enqueue latency exactly
  like a contended cache line would;
* capacity is one shared bound — ``try_put`` returns False when the
  queue is full (backpressure for overload-aware producers), ``get``
  parks the consumer until an item arrives (the VL doorbell).

The queue lives on the *memory* plane: items never traverse the DTU
message path, so the user-plane fault injectors (:mod:`repro.faults`)
do not apply to it — consistent with the hardware model, where the
protected memory plane delivers or the machine checks.

**Scheduling caveat**: ``get`` parks the calling activity on a
simulation event while it *holds the core*; use it only from an
activity that does not share its tile (the figS balancer), and
``get_polled`` — fetch-or-sleep, like the DTU library's poll loop —
from multiplexed tiles.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.noc import NocParams
from repro.sim.channel import Channel

#: CAS + pointer update at the home memory controller; mirrors the
#: DTU's MMIO access cost scale (tens of ns), not a core-clock cost.
DEFAULT_OP_PS = 40_000

#: Wire bytes per pointer/slot access round trip (header + one slot).
_ACCESS_BYTES = 64


class VirtualLinkQueue:
    """One bounded MPMC queue homed on a memory tile.

    ``plat`` is any built tiled platform (duck-typed: ``sim`` and
    ``config.noc`` are used); ``capacity`` is the shared slot count.
    All public methods are activity-program generators taking the
    caller's :class:`~repro.mux.api.ActivityApi`.
    """

    def __init__(self, plat, capacity: int, name: str = "vlq",
                 noc: NocParams = None, op_ps: int = DEFAULT_OP_PS):
        self.sim = plat.sim
        self.name = name
        self.noc = noc if noc is not None else plat.config.noc
        self.op_ps = int(op_ps)
        self._chan = Channel(self.sim, capacity=capacity, name=name)
        self._busy_until = 0
        stats = getattr(plat, "stats", None)
        self._ctr_puts = stats.counter(f"mpmc/{name}/puts") if stats else None
        self._ctr_gets = stats.counter(f"mpmc/{name}/gets") if stats else None
        self._ctr_full = stats.counter(f"mpmc/{name}/full_rejects") \
            if stats else None

    def __len__(self) -> int:
        return len(self._chan)

    @property
    def full(self) -> bool:
        return self._chan.full

    # ------------------------------------------------------------- modeling

    def _round_trip_ps(self) -> int:
        """Core -> home memory tile -> core, header + one slot access."""
        per_link = self.noc.transfer_ps(_ACCESS_BYTES) + self.noc.hop_latency_ps
        return 2 * per_link

    def _occupy(self) -> int:
        """Serialize one CAS at the home memory controller.

        Returns the delay until this operation's slot completes: the
        round trip plus any queueing behind concurrent operations on
        the same pointer word (the contention model).
        """
        start = max(self.sim.now, self._busy_until)
        done = start + self.op_ps
        self._busy_until = done
        return (done - self.sim.now) + self._round_trip_ps()

    # ------------------------------------------------------------ operations

    def try_put(self, api, item: Any) -> Generator:
        """Enqueue if a slot is free; returns False when full.

        The producer pays the marshalling cost and the round trip even
        for a rejected enqueue — it had to read the tail pointer to
        learn the queue is full.
        """
        yield from api.compute(api.costs.lib_send)
        yield self._occupy()
        ok = self._chan.try_put(item)
        if ok:
            if self._ctr_puts is not None:
                self._ctr_puts.add()
        elif self._ctr_full is not None:
            self._ctr_full.add()
        return ok

    def put(self, api, item: Any) -> Generator:
        """Blocking enqueue: waits (holding the core) for a free slot."""
        yield from api.compute(api.costs.lib_send)
        yield self._occupy()
        yield self._chan.put(item)
        if self._ctr_puts is not None:
            self._ctr_puts.add()

    def get(self, api) -> Generator:
        """Dequeue; parks on the VL doorbell while empty (see caveat)."""
        yield from api.compute(api.costs.lib_fetch)
        item = yield self._chan.get()
        yield self._occupy()
        if self._ctr_gets is not None:
            self._ctr_gets.add()
        return item

    def try_get(self, api) -> Generator:
        """Dequeue one item, or return None when the queue is empty.

        Items must not be None (the figS requests never are); an empty
        poll still pays the fetch cost and head-pointer read.
        """
        yield from api.compute(api.costs.lib_fetch)
        ok, item = self._chan.try_get()
        if not ok:
            yield self._round_trip_ps()   # read an empty head pointer
            return None
        yield self._occupy()
        if self._ctr_gets is not None:
            self._ctr_gets.add()
        return item

    def get_polled(self, api, poll_gap_us: float = 5.0) -> Generator:
        """Dequeue by fetch-or-sleep, safe on multiplexed tiles."""
        while True:
            item = yield from self.try_get(api)
            if item is not None:
                return item
            yield from api.sleep_us(poll_gap_us)
