"""The voice assistant of section 6.5.1.

Components and trust mapping, exactly as the paper lays them out:

1. **scanner** — continuously scans room audio for the trigger word.
   Runs alone on a simple Rocket tile for strong isolation; uses no
   pager (all pages mapped up front to minimise its TCB).
2. **compressor** — receives the selected audio samples from the
   scanner *by delegated memory capability*, compresses them
   losslessly (Rice coding, the libFLAC stand-in) and ships them to
   the cloud via UDP.
3. **net** — the network stack.
4. **pager** — manages the address spaces of compressor and net.

Placement is the experiment's knob: compressor+net+pager either share
one BOOM tile ("shared") or get a dedicated tile each ("isolated").
"""

from __future__ import annotations

from typing import Dict, Generator, List

import numpy as np

from repro.apps.compress import (
    COMPRESS_CYCLES_PER_SAMPLE,
    SCAN_CYCLES_PER_SAMPLE,
    detect_trigger,
    make_audio,
    rice_compress,
)
from repro.kernel.protocol import Syscall
from repro.services.net import NetClient

FRAME_SAMPLES = 2048           # scanner analysis frame
WINDOW_SAMPLES = 16384         # audio shipped per trigger
DATAGRAM_BYTES = 1024
CLOUD_PORT = 9000


def scanner_program(env: Dict, audio: np.ndarray, triggers_expected: int):
    """Factory: the scanner activity."""

    def program(api) -> Generator:
        while "scan_sep" not in env:
            yield api.sim.timeout(1_000_000)
        sent = 0
        pos = 0
        write_off = 0
        while pos + FRAME_SAMPLES <= len(audio) and sent < triggers_expected:
            frame = audio[pos:pos + FRAME_SAMPLES]
            yield from api.compute(SCAN_CYCLES_PER_SAMPLE * FRAME_SAMPLES)
            if detect_trigger(frame):
                window = audio[pos:pos + WINDOW_SAMPLES]
                data = window.astype("<i2").tobytes()
                # stage the samples in the shared audio buffer ...
                yield from api.write(env["audio_ep"], write_off, data)
                # ... and delegate a capability to exactly that range
                sel = yield from api.syscall(Syscall.DERIVE_MGATE, {
                    "mgate_sel": env["audio_sel"], "offset": write_off,
                    "size": len(data)})
                comp_sel = yield from api.syscall(Syscall.DELEGATE, {
                    "sel": sel, "target_act": env["compressor_act"]})
                yield from api.send(env["scan_sep"],
                                    {"sel": comp_sel, "bytes": len(data),
                                     "samples": len(window)}, 64)
                write_off = (write_off + len(data)) % env["audio_buf_bytes"]
                sent += 1
                pos += WINDOW_SAMPLES
            else:
                pos += FRAME_SAMPLES
        env["scanner_done"] = api.sim.now

    return program


def compressor_program(env: Dict, audio: np.ndarray, triggers_expected: int):
    """Factory: the compressor activity (pager-managed heap)."""

    def program(api) -> Generator:
        while "comp_rep" not in env:
            yield api.sim.timeout(1_000_000)
        netc = NetClient(api, *env["net_eps"])
        sid = yield from netc.socket()
        yield from netc.bind(sid)
        out_buf = api.alloc_buf(64 * 1024)
        done = 0
        total_in = 0
        total_out = 0
        while done < triggers_expected:
            msg = yield from api.recv(env["comp_rep"])
            yield from api.ack(env["comp_rep"], msg)
            grant = msg.data
            ep = yield from api.syscall(Syscall.ACTIVATE,
                                        {"sel": grant["sel"],
                                         "ep_id": env["comp_data_ep"]})
            raw = yield from api.read(ep, 0, grant["bytes"])
            samples = np.frombuffer(raw, dtype="<i2")
            yield from api.compute(COMPRESS_CYCLES_PER_SAMPLE * len(samples))
            encoded = rice_compress(samples)
            # the output buffer is demand-paged through the pager
            for page_off in range(0, min(len(encoded), 64 * 1024), 4096):
                yield from api.touch(out_buf + page_off)
            for off in range(0, len(encoded), DATAGRAM_BYTES):
                chunk_len = min(DATAGRAM_BYTES, len(encoded) - off)
                yield from netc.sendto(sid, CLOUD_PORT, None, chunk_len)
            total_in += len(raw)
            total_out += len(encoded)
            done += 1
        env["compressor_done"] = api.sim.now
        env["bytes_in"] = total_in
        env["bytes_out"] = total_out

    return program
