"""The traceplayer (section 6.4).

Replays a recorded system-call trace against a VFS backend, charging
the application's own think time between calls.  On M3v every call is
a tile-local RPC to the file-system activity on the same tile; on M3x
each such RPC needs two slow paths through the controller.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.posix.vfs import O_CREAT, O_RDWR, Vfs
from repro.workloads.traces import TraceCall


class TracePlayer:
    """Replays traces; counts completed runs for throughput metrics."""

    def __init__(self, vfs: Vfs, compute):
        """``compute`` is the api's cycle-burning generator function."""
        self.vfs = vfs
        self.compute = compute
        self.runs_completed = 0
        self.calls_replayed = 0

    def play(self, trace: List[TraceCall]) -> Generator:
        """Replay the trace once."""
        fd_table: Dict[int, int] = {}
        scratch = bytearray()
        for call in trace:
            if call.think_cycles:
                yield from self.compute(call.think_cycles)
            op = call.op
            if op == "open":
                fd_table[len(fd_table)] = (yield from self.vfs.open(
                    call.path, O_RDWR | O_CREAT))
            elif op == "close":
                fd = fd_table.pop(call.fd, None)
                if fd is not None:
                    yield from self.vfs.close(fd)
            elif op == "read":
                data = yield from self.vfs.read(fd_table[call.fd], call.size)
                scratch[:] = data[:64]
            elif op == "write":
                yield from self.vfs.write(fd_table[call.fd],
                                          b"\xdb" * call.size)
            elif op == "fsync":
                yield from self.vfs.fsync(fd_table[call.fd])
            elif op == "stat":
                yield from self.vfs.stat(call.path)
            elif op == "readdir":
                yield from self.vfs.readdir(call.path)
            elif op == "mkdir":
                yield from self.vfs.mkdir(call.path)
            elif op == "unlink":
                yield from self.vfs.unlink(call.path)
            else:
                raise ValueError(f"unknown trace op {op!r}")
            self.calls_replayed += 1
        self.runs_completed += 1

    def play_forever(self, trace: List[TraceCall], reset) -> Generator:
        """Replay in a loop (the throughput measurement of Figure 9).

        ``reset`` is a generator function re-priming the file system
        between runs (e.g. truncating the SQLite db file).
        """
        while True:
            yield from self.play(trace)
            if reset is not None:
                yield from reset()
