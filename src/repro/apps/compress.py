"""Lossless audio compression (the libFLAC stand-in, section 6.5.1).

A real (if compact) codec: first-order linear prediction (delta
coding) followed by Rice/Golomb coding of the zig-zag-mapped residuals
— the same core pipeline FLAC uses.  Implemented with numpy bit
twiddling; the cycle cost the voice assistant charges per sample is
calibrated against libFLAC throughput on small cores.
"""

from __future__ import annotations

import numpy as np

# Encoder work per input sample on the simulated cores (calibrated to
# libFLAC -5 on ~100 MHz-class embedded cores: a few hundred cycles).
COMPRESS_CYCLES_PER_SAMPLE = 55


def _zigzag(values: np.ndarray) -> np.ndarray:
    return ((values << 1) ^ (values >> 31)).astype(np.uint32)


def _unzigzag(values: np.ndarray) -> np.ndarray:
    return ((values >> 1).astype(np.int32) ^ -(values & 1).astype(np.int32))


def _choose_k(residuals: np.ndarray) -> int:
    """Rice parameter from the mean residual magnitude."""
    mean = float(np.mean(residuals)) if len(residuals) else 0.0
    k = 0
    while (1 << k) < mean and k < 30:
        k += 1
    return k


def rice_compress(samples: np.ndarray) -> bytes:
    """Compress int16 PCM samples; returns the encoded frame."""
    samples = np.asarray(samples, dtype=np.int16)
    predicted = np.empty_like(samples, dtype=np.int32)
    predicted[0] = samples[0]
    predicted[1:] = samples[1:].astype(np.int32) - samples[:-1].astype(np.int32)
    mapped = _zigzag(predicted)
    k = _choose_k(mapped)

    quotients = mapped >> k
    bits_needed = int(np.sum(quotients)) + len(mapped) * (1 + k)
    out = np.zeros((bits_needed + 7) // 8 * 8, dtype=np.uint8)
    pos = 0
    # unary part: 'q' zeros then a one; binary part: k low bits
    for value, q in zip(mapped.tolist(), quotients.tolist()):
        pos += q
        out[pos] = 1
        pos += 1
        for bit in range(k - 1, -1, -1):
            out[pos] = (value >> bit) & 1
            pos += 1
    packed = np.packbits(out[:pos])
    header = np.array([k, len(samples) & 0xFF, (len(samples) >> 8) & 0xFF,
                       (len(samples) >> 16) & 0xFF], dtype=np.uint8)
    return header.tobytes() + packed.tobytes()


def rice_decompress(frame: bytes) -> np.ndarray:
    """Inverse of :func:`rice_compress` (used to verify losslessness)."""
    k = frame[0]
    n = frame[1] | (frame[2] << 8) | (frame[3] << 16)
    bits = np.unpackbits(np.frombuffer(frame[4:], dtype=np.uint8))
    mapped = np.empty(n, dtype=np.uint32)
    pos = 0
    for i in range(n):
        q = 0
        while bits[pos] == 0:
            q += 1
            pos += 1
        pos += 1  # the terminating one
        value = 0
        for _ in range(k):
            value = (value << 1) | int(bits[pos])
            pos += 1
        mapped[i] = (q << k) | value
    residuals = _unzigzag(mapped)
    samples = np.cumsum(residuals, dtype=np.int64)
    return samples.astype(np.int16)


def make_audio(n_samples: int, trigger_at=None, seed: int = 7) -> np.ndarray:
    """Synthetic room audio: quiet noise with loud 'trigger word' bursts."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_samples)
    audio = (rng.normal(0, 40, n_samples)
             + 120 * np.sin(2 * np.pi * t / 197)).astype(np.int16)
    for pos in (trigger_at or []):
        burst = slice(pos, min(pos + 2048, n_samples))
        n = burst.stop - burst.start
        audio[burst] += (4000 * np.sin(2 * np.pi * np.arange(n) / 23)
                         ).astype(np.int16)
    return audio


def detect_trigger(frame: np.ndarray, threshold: float = 1000.0) -> bool:
    """The scanner's trigger-word detector: an RMS energy gate."""
    return float(np.sqrt(np.mean(frame.astype(np.float64) ** 2))) > threshold


# Scanner work per input sample (feature extraction + matching).
SCAN_CYCLES_PER_SAMPLE = 12
