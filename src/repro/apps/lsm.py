"""A LevelDB-like LSM-tree key-value store (the cloud service's DB).

A real implementation of the leveldb architecture over the POSIX shim:
a write-ahead log, an in-memory memtable, sorted-string-table files
flushed when the memtable fills, L0->L1 compaction, point lookups
through per-table indexes, and merging range scans.  All persistence
goes through the VFS, so the store pays m3fs extent-grant costs on M3v
and per-syscall costs on Linux — exactly the traffic Figure 10
measures.
"""

from __future__ import annotations

import itertools
import struct
from typing import Dict, Generator, Iterable, List, Optional, Tuple

from repro.posix.vfs import O_CREAT, O_RDWR, O_TRUNC, O_WRONLY, Vfs

_table_ids = itertools.count(1)

TOMBSTONE = b"\x00__tombstone__"


class SSTable:
    """One immutable sorted table file + its in-memory index."""

    def __init__(self, path: str, level: int):
        self.path = path
        self.level = level
        # sorted keys with (offset, length) of the value in the file
        self.keys: List[str] = []
        self.index: Dict[str, Tuple[int, int]] = {}

    def locate(self, key: str) -> Optional[Tuple[int, int]]:
        return self.index.get(key)

    @staticmethod
    def encode(items: Iterable[Tuple[str, bytes]]):
        """Serialize sorted items; returns (blob, keys, index)."""
        blob = bytearray()
        keys: List[str] = []
        index: Dict[str, Tuple[int, int]] = {}
        for key, value in items:
            kb = key.encode()
            blob += struct.pack("<I", len(kb)) + kb
            blob += struct.pack("<I", len(value))
            index[key] = (len(blob), len(value))
            keys.append(key)
            blob += value
        return bytes(blob), keys, index


class LsmStore:
    """The store. All public methods are simulation generators."""

    MEMTABLE_LIMIT = 16 * 1024      # bytes before flush
    L0_COMPACT_AT = 4               # L0 tables before compaction
    # Calibrated against leveldb + musl on an 80 MHz core with 16 kB
    # L1 caches (the paper's platform): every operation walks a lot of
    # cold code, so per-op CPU costs are in the tens of kilocycles.
    PUT_CY = 40_000                 # memtable insert, WAL encode, skiplist
    GET_CY = 50_000                 # lookup path incl. bloom checks
    CMP_CY = 200                    # one key comparison (cold caches)
    SCAN_ENTRY_CY = 6_000           # merge-iterator step per scanned entry

    def __init__(self, vfs: Vfs, compute, root: str = "/db"):
        self.vfs = vfs
        self.compute = compute
        self.root = root
        self.mem: Dict[str, bytes] = {}
        self.mem_bytes = 0
        self.tables: List[SSTable] = []   # newest first
        self._wal_fd: Optional[int] = None
        self.stats = {"puts": 0, "gets": 0, "scans": 0, "flushes": 0,
                      "compactions": 0}

    # ------------------------------------------------------------- lifecycle

    def open(self) -> Generator:
        yield from self.vfs.mkdir(self.root)
        self._wal_fd = yield from self.vfs.open(f"{self.root}/wal",
                                                O_WRONLY | O_CREAT | O_TRUNC)

    def close(self) -> Generator:
        if self.mem:
            yield from self._flush()
        if self._wal_fd is not None:
            yield from self.vfs.close(self._wal_fd)
            self._wal_fd = None

    # ------------------------------------------------------------- mutations

    def put(self, key: str, value: bytes) -> Generator:
        yield from self.compute(self.PUT_CY)
        record = struct.pack("<I", len(key)) + key.encode() \
            + struct.pack("<I", len(value)) + value
        yield from self.vfs.write(self._wal_fd, record)
        if key not in self.mem:
            self.mem_bytes += len(key) + len(value)
        else:
            self.mem_bytes += len(value) - len(self.mem[key])
        self.mem[key] = value
        self.stats["puts"] += 1
        if self.mem_bytes >= self.MEMTABLE_LIMIT:
            yield from self._flush()

    def delete(self, key: str) -> Generator:
        yield from self.put(key, TOMBSTONE)

    # ------------------------------------------------------------- lookups

    def get(self, key: str) -> Generator:
        yield from self.compute(self.GET_CY)
        value = self.mem.get(key)
        if value is not None:
            return None if value == TOMBSTONE else value
        for table in self.tables:
            # binary search over the table's index
            yield from self.compute(
                self.CMP_CY * max(1, len(table.keys)).bit_length())
            loc = table.locate(key)
            if loc is None:
                continue
            offset, length = loc
            value = yield from self._read_at(table, offset, length)
            return None if value == TOMBSTONE else value
        return None

    def _read_at(self, table: SSTable, offset: int, length: int) -> Generator:
        fd = yield from self.vfs.open(table.path)
        yield from self.vfs.seek(fd, offset)
        value = yield from self.vfs.read(fd, length)
        yield from self.vfs.close(fd)
        return value

    def scan(self, start_key: str, count: int) -> Generator:
        """Range scan: merge memtable and all tables, newest wins."""
        self.stats["scans"] += 1
        # collect the candidate key space (index walk, charged per entry)
        merged: Dict[str, Tuple[int, Optional[SSTable]]] = {}
        for age, table in enumerate(self.tables):
            for key in table.keys:
                if key >= start_key and (key not in merged
                                         or merged[key][0] > age):
                    merged[key] = (age, table)
        for key in self.mem:
            if key >= start_key:
                merged[key] = (-1, None)
        selected = sorted(merged)[:count]
        yield from self.compute(self.SCAN_ENTRY_CY * max(1, len(merged)))

        results: List[Tuple[str, bytes]] = []
        open_fds: Dict[str, int] = {}
        try:
            for key in selected:
                age, table = merged[key]
                if table is None:
                    value = self.mem[key]
                else:
                    fd = open_fds.get(table.path)
                    if fd is None:
                        fd = yield from self.vfs.open(table.path)
                        open_fds[table.path] = fd
                    offset, length = table.index[key]
                    yield from self.vfs.seek(fd, offset)
                    value = yield from self.vfs.read(fd, length)
                if value != TOMBSTONE:
                    results.append((key, value))
        finally:
            for fd in sorted(open_fds.values()):
                yield from self.vfs.close(fd)
        return results

    # ----------------------------------------------------------- maintenance

    def _flush(self) -> Generator:
        """Memtable -> a new L0 table; truncate the WAL."""
        self.stats["flushes"] += 1
        items = sorted(self.mem.items())
        blob, keys, index = SSTable.encode(items)
        table = SSTable(f"{self.root}/sst{next(_table_ids):06d}", level=0)
        table.keys, table.index = keys, index
        fd = yield from self.vfs.open(table.path, O_WRONLY | O_CREAT)
        yield from self.vfs.write(fd, blob)
        yield from self.vfs.fsync(fd)
        yield from self.vfs.close(fd)
        self.tables.insert(0, table)
        self.mem.clear()
        self.mem_bytes = 0
        yield from self.vfs.close(self._wal_fd)
        self._wal_fd = yield from self.vfs.open(f"{self.root}/wal",
                                                O_WRONLY | O_CREAT | O_TRUNC)
        if sum(1 for t in self.tables if t.level == 0) >= self.L0_COMPACT_AT:
            yield from self._compact()

    def _compact(self) -> Generator:
        """Merge all tables into one L1 table (simple full compaction)."""
        self.stats["compactions"] += 1
        entries: Dict[str, bytes] = {}
        for table in reversed(self.tables):  # oldest first; newest wins
            fd = yield from self.vfs.open(table.path)
            pieces = []
            while True:
                piece = yield from self.vfs.read(fd, 256 * 1024)
                if not piece:
                    break
                pieces.append(piece)
            blob = b"".join(pieces)
            yield from self.vfs.close(fd)
            pos = 0
            while pos < len(blob):
                klen = struct.unpack_from("<I", blob, pos)[0]
                key = blob[pos + 4:pos + 4 + klen].decode()
                pos += 4 + klen
                vlen = struct.unpack_from("<I", blob, pos)[0]
                pos += 4
                entries[key] = bytes(blob[pos:pos + vlen])
                pos += vlen
            yield from self.compute(self.CMP_CY * max(1, len(table.keys)))
        live = sorted((k, v) for k, v in entries.items() if v != TOMBSTONE)
        blob, keys, index = SSTable.encode(live)
        merged = SSTable(f"{self.root}/sst{next(_table_ids):06d}", level=1)
        merged.keys, merged.index = keys, index
        fd = yield from self.vfs.open(merged.path, O_WRONLY | O_CREAT)
        yield from self.vfs.write(fd, blob)
        yield from self.vfs.fsync(fd)
        yield from self.vfs.close(fd)
        for table in self.tables:
            yield from self.vfs.unlink(table.path)
        self.tables = [merged]
