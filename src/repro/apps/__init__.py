"""Applications used in the paper's evaluation.

* :mod:`repro.apps.traceplayer` — replays find/SQLite syscall traces
  against a file system (Figure 9).
* :mod:`repro.apps.lsm` — a LevelDB-like LSM-tree key-value store over
  the POSIX shim (Figure 10).
* :mod:`repro.apps.compress` — a real lossless audio compressor
  (Rice/delta coding, the libFLAC stand-in).
* :mod:`repro.apps.voice` — the voice-assistant pipeline of 6.5.1.
"""

from repro.apps.traceplayer import TracePlayer
from repro.apps.lsm import LsmStore
from repro.apps.compress import rice_compress, rice_decompress

__all__ = ["TracePlayer", "LsmStore", "rice_compress", "rice_decompress"]
