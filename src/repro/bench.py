"""Performance benchmarks with a committed trajectory.

``repro bench`` measures the simulator's host-side throughput — an
engine-only churn microbenchmark plus quick-scale figure workloads —
and emits two schema-versioned JSON files:

``BENCH_engine.json``
    the engine trajectory: churn + fig9 quick, the recorded
    pre-optimization *seed* baseline, and the speedup against it
``BENCH_figs.json``
    per-figure quick-mode wall-clock (fig6, fig8, fig9)

Both files carry an environment fingerprint and, for every benchmark,
the **exact** number of simulated events processed.  The event count is
deterministic (the simulation is), so ``scripts/check_perf.sh`` treats
a count mismatch as a hard failure — an engine change that alters the
amount of scheduled work cannot hide inside wall-clock noise — while
wall-clock throughput is compared with a noise-tolerant threshold
(``PERF_THRESHOLD``, default 25%).

Two measurement caveats are designed in rather than papered over:

* **Wall-clock noise** — every benchmark runs ``runs`` times after a
  warmup and reports the *best* run; the gate compares relative, not
  absolute, numbers.
* **Metric honesty** — the optimized engine schedules roughly half the
  events the seed needed for the same simulated fig9 work (batched NoC
  transfers, merged DTU command phases), so *raw* events/sec understates
  the real gain.  The trajectory therefore also records
  ``work_normalized_events_per_sec`` = seed events / current wall, which
  divides identical work by wall time on both sides of the comparison.

``REPRO_BENCH_HANDICAP_S`` injects a sleep into the timed region of
selected benchmarks (``"0.2"`` for all, ``"fig9_quick:0.2"`` for one) —
a synthetic regression used by the gate's own tests.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.sim import Channel, Simulator, engine, envcfg

SCHEMA = "repro-bench/1"

ENGINE_FILE = "BENCH_engine.json"
FIGS_FILE = "BENCH_figs.json"

#: Pre-optimization baseline: the growth-seed engine (git e6d6aea),
#: measured on the same host interleaved with the optimized build
#: (alternating subprocess A/B runs, median of best-of-3 sittings) so
#: machine drift cancels out of the comparison.  ``events`` counts are
#: exact; the seed scheduled 141,183 events for the fig9 quick sweep
#: the optimized engine covers in ~70,400.  The seed churn run yields
#: ``Timeout`` events where the optimized engine uses the int fast
#: path (the seed has none) — same logical schedule, and in fact the
#: identical event count.
SEED_BASELINE: Dict[str, Dict[str, Any]] = {
    "commit": {"rev": "e6d6aea", "note": "growth seed, pre-optimization"},
    "fig9_quick": {"wall_s": 1.0009, "events": 141183,
                   "events_per_sec": 141054.0},
    "engine_churn": {"wall_s": 0.1604, "events": 80040,
                     "events_per_sec": 498974.0},
}


# -- workloads -----------------------------------------------------------------

def churn_workload(pairs: int = 10, rounds: int = 2000) -> int:
    """Engine-only churn: channel ping-pong plus timer ticks.

    Exercises the hot paths the figures lean on — the int-yield tick
    fast path, channel put/get handoff, and same-timestamp bucket
    collisions — with no model code on top.  Returns the exact number
    of events processed, which is a pure function of the arguments.
    """
    before = engine.events_processed()
    sim = Simulator()
    chans = [Channel(sim, name=f"churn{i}") for i in range(pairs)]

    def ping(ch: Channel) -> Any:
        for i in range(rounds):
            yield 7            # int fast path, collides across pairs
            yield ch.put(i)

    def pong(ch: Channel) -> Any:
        for _ in range(rounds):
            yield ch.get()
            yield 3

    for ch in chans:
        sim.process(ping(ch), name="churn-ping")
        sim.process(pong(ch), name="churn-pong")
    sim.run()
    return engine.events_processed() - before


def _fig6_quick() -> None:
    from repro.core.exps.fig6 import Fig6Params, run_fig6
    run_fig6(Fig6Params(iterations=10, warmup=2))


def _fig8_quick() -> None:
    from repro.core.exps.fig8 import Fig8Params, run_fig8
    run_fig8(Fig8Params(repetitions=5, warmup=1))


def _fig9_quick() -> None:
    from repro.core.exps.fig9 import Fig9Params, run_fig9
    run_fig9(Fig9Params(trace="find", tile_counts=[1, 2], runs=1,
                        find_dirs=4, find_files=6, sqlite_txns=4))


def _fig9_64(shards: int = 0) -> None:
    from repro.core.exps.fig9 import Fig9Point, run_fig9_point
    run_fig9_point(Fig9Point("m3v", 64, trace="find", runs=1,
                             find_dirs=2, find_files=3, shards=shards))


def _fig9_64_sharded() -> None:
    _fig9_64(shards=4)


# -- measurement ---------------------------------------------------------------

def _handicap_s(name: str) -> float:
    """Synthetic-regression hook: seconds to sleep inside the timed
    region of benchmark ``name`` (see module docstring)."""
    spec = envcfg.raw("REPRO_BENCH_HANDICAP_S")
    if not spec:
        return 0.0
    total = 0.0
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            target, _, amount = part.partition(":")
            if target.strip() == name:
                total += float(amount)
        else:
            total += float(part)
    return total


def measure(name: str, workload: Callable[[], Any],
            runs: int = 3) -> Dict[str, Any]:
    """Warm up, then time ``workload`` ``runs`` times; keep the best.

    The simulated-event count must be identical across runs — a
    difference means the simulation is not deterministic, which is a
    bug worth crashing a benchmark over.
    """
    handicap = _handicap_s(name)
    workload()  # warmup: imports, code objects, allocator steady-state
    best: Optional[float] = None
    events: Optional[int] = None
    for _ in range(max(1, runs)):
        before = engine.events_processed()
        t0 = time.perf_counter()
        workload()
        if handicap:
            time.sleep(handicap)
        wall = time.perf_counter() - t0
        count = engine.events_processed() - before
        if events is None:
            events = count
        elif count != events:
            raise RuntimeError(
                f"benchmark {name!r} processed {count} events vs {events} "
                f"on an earlier run — simulation is not deterministic")
        if best is None or wall < best:
            best = wall
    return {
        "wall_s": round(best, 6),
        "events": events,
        "events_per_sec": round(events / best, 1) if best else 0.0,
        "runs": runs,
    }


def fingerprint() -> Dict[str, Any]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "hashseed": os.environ.get("PYTHONHASHSEED", ""),
        "scheduler": engine.default_scheduler(),
        "noc_batch": envcfg.raw("REPRO_NOC_BATCH", "1"),
        "shards": envcfg.raw("REPRO_SHARDS"),
        "shard_backend": envcfg.raw("REPRO_SHARD_BACKEND"),
    }


# -- the two bench suites ------------------------------------------------------

def run_engine_bench(runs: int = 3) -> Dict[str, Any]:
    """The engine trajectory: churn + fig9 quick vs the seed baseline,
    plus the 64-tile scaling point serial and sharded (4 shards).

    The serial/sharded pair shares an identical event count — the
    conservative parallel engine's merge order is provably the serial
    order — so the gate holds both to exact-work equality.  On a
    single-core host (this container: the fingerprint records ``cpus``)
    the sharded run cannot be faster than serial; the recorded
    ``fig9_64_parallel`` ratio is the honest overhead/benefit of the
    sharded engine on *this* machine, and the gate only defends each
    entry's own committed throughput.
    """
    benches = {
        "engine_churn": measure("engine_churn", churn_workload, runs),
        "fig9_quick": measure("fig9_quick", _fig9_quick, runs),
        "fig9_64_serial": measure("fig9_64_serial", _fig9_64, runs),
        "fig9_64_sharded": measure("fig9_64_sharded", _fig9_64_sharded,
                                   runs),
    }
    base = SEED_BASELINE["fig9_quick"]
    wall = benches["fig9_quick"]["wall_s"]
    speedup = {
        "fig9_64_parallel": round(benches["fig9_64_serial"]["wall_s"]
                                  / benches["fig9_64_sharded"]["wall_s"], 2),
        # identical simulated work divided by wall time on both sides —
        # the honest cross-engine comparison (see module docstring)
        "fig9_quick_wall": round(base["wall_s"] / wall, 2),
        "fig9_quick_work_normalized_events_per_sec":
            round(base["events"] / wall, 1),
        "fig9_quick_vs_baseline_events_per_sec":
            round((base["events"] / wall) / base["events_per_sec"], 2),
        "engine_churn_events_per_sec": round(
            benches["engine_churn"]["events_per_sec"]
            / SEED_BASELINE["engine_churn"]["events_per_sec"], 2),
    }
    return {
        "schema": SCHEMA,
        "kind": "engine",
        "fingerprint": fingerprint(),
        "benches": benches,
        "baseline": SEED_BASELINE,
        "speedup": speedup,
    }


def run_figs_bench(runs: int = 3) -> Dict[str, Any]:
    """Per-figure quick-mode wall-clock."""
    benches = {
        "fig6_quick": measure("fig6_quick", _fig6_quick, runs),
        "fig8_quick": measure("fig8_quick", _fig8_quick, runs),
        "fig9_quick": measure("fig9_quick", _fig9_quick, runs),
    }
    return {
        "schema": SCHEMA,
        "kind": "figs",
        "fingerprint": fingerprint(),
        "benches": benches,
    }


def write_bench_files(out_dir: str = ".", runs: int = 3,
                      which: str = "all") -> List[Path]:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    if which in ("all", "engine"):
        path = out / ENGINE_FILE
        with open(path, "w") as fh:
            json.dump(run_engine_bench(runs), fh, indent=2, sort_keys=True)
            fh.write("\n")
        written.append(path)
    if which in ("all", "figs"):
        path = out / FIGS_FILE
        with open(path, "w") as fh:
            json.dump(run_figs_bench(runs), fh, indent=2, sort_keys=True)
            fh.write("\n")
        written.append(path)
    return written


# -- schema validation and the regression gate --------------------------------

def validate(doc: Dict[str, Any]) -> List[str]:
    """Structural checks on a BENCH document; returns problem strings."""
    problems = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if doc.get("kind") not in ("engine", "figs"):
        problems.append(f"unknown kind {doc.get('kind')!r}")
    fp = doc.get("fingerprint")
    if not isinstance(fp, dict) or "python" not in fp:
        problems.append("missing environment fingerprint")
    benches = doc.get("benches")
    if not isinstance(benches, dict) or not benches:
        problems.append("no benches recorded")
        return problems
    for name, b in benches.items():
        for field in ("wall_s", "events", "events_per_sec"):
            if not isinstance(b.get(field), (int, float)):
                problems.append(f"{name}: missing/invalid {field!r}")
        if isinstance(b.get("events"), int) and b["events"] <= 0:
            problems.append(f"{name}: nonpositive event count")
    if doc.get("kind") == "engine" and "baseline" not in doc:
        problems.append("engine bench must carry the seed baseline")
    return problems


def compare(committed: Dict[str, Any], fresh: Dict[str, Any],
            threshold: float = 0.25,
            notes: Optional[List[str]] = None) -> List[str]:
    """Regression gate: ``fresh`` against the ``committed`` trajectory.

    * simulated-event counts must match exactly (deterministic work);
    * throughput may not drop more than ``threshold`` below the
      committed value (wall-clock noise tolerance — improvements and
      anything within the band pass);
    * on a multi-core host the sharded engine must not run slower than
      serial; on a single-core host that ratio is physically meaningless
      (no parallelism to win), so it is only *annotated* via ``notes``.
    """
    problems = list(validate(fresh))
    sp = fresh.get("speedup", {}).get("fig9_64_parallel")
    if fresh.get("kind") == "engine" and sp is not None:
        cpus = fresh.get("fingerprint", {}).get("cpus") or 0
        if cpus > 1:
            if sp < 1.0 - threshold:
                problems.append(
                    f"fig9_64_parallel: sharded engine {sp}x vs serial on a "
                    f"{cpus}-cpu host (threshold {1.0 - threshold:.2f}x)")
        elif notes is not None:
            notes.append(
                f"fig9_64_parallel speedup {sp}x recorded but not gated: "
                f"single-cpu host, sharded cannot beat serial here")
    for name, base in committed.get("benches", {}).items():
        cur = fresh.get("benches", {}).get(name)
        if cur is None:
            problems.append(f"{name}: missing from fresh run")
            continue
        if cur.get("events") != base.get("events"):
            problems.append(
                f"{name}: event count changed {base.get('events')} -> "
                f"{cur.get('events')} (engine work is no longer identical; "
                f"re-baseline deliberately if intended)")
        floor = base["events_per_sec"] * (1.0 - threshold)
        if cur["events_per_sec"] < floor:
            drop = 1.0 - cur["events_per_sec"] / base["events_per_sec"]
            problems.append(
                f"{name}: throughput regressed {drop:.0%} "
                f"({base['events_per_sec']:,.0f} -> "
                f"{cur['events_per_sec']:,.0f} ev/s, "
                f"threshold {threshold:.0%})")
    return problems


def check_against(committed_dir: str, fresh_dir: str,
                  threshold: float = 0.25,
                  notes: Optional[List[str]] = None) -> List[str]:
    """Compare every BENCH file present in ``committed_dir``."""
    problems = []
    for fname in (ENGINE_FILE, FIGS_FILE):
        base_path = Path(committed_dir) / fname
        fresh_path = Path(fresh_dir) / fname
        if not base_path.exists():
            problems.append(f"{fname}: no committed baseline at {base_path}")
            continue
        if not fresh_path.exists():
            problems.append(f"{fname}: fresh run did not produce it")
            continue
        with open(base_path) as fh:
            base = json.load(fh)
        with open(fresh_path) as fh:
            fresh = json.load(fh)
        fnotes: List[str] = []
        problems.extend(f"{fname}: {p}"
                        for p in compare(base, fresh, threshold, notes=fnotes))
        if notes is not None:
            notes.extend(f"{fname}: {n}" for n in fnotes)
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.bench`` (used by the gate)."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench")
    parser.add_argument("--out-dir", default=".")
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--which", choices=("all", "engine", "figs"),
                        default="all")
    parser.add_argument("--against", metavar="DIR",
                        help="compare the fresh files against the "
                             "committed BENCH_*.json in DIR; exit 1 on "
                             "regression")
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get("PERF_THRESHOLD",
                                                     "0.25")))
    args = parser.parse_args(argv)
    paths = write_bench_files(args.out_dir, args.runs, args.which)
    for path in paths:
        print(f"wrote {path}")
    if args.against:
        notes: List[str] = []
        problems = check_against(args.against, args.out_dir, args.threshold,
                                 notes=notes)
        for n in notes:
            print(f"note: {n}")
        if problems:
            print("PERF GATE FAILED:")
            for p in problems:
                print(f"  - {p}")
            return 1
        print(f"perf gate passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
