"""The NoC fabric: links with bandwidth and backpressure.

Time base: the whole platform simulation runs in integer **picoseconds**
so tiles with different clock frequencies (100 MHz Rocket, 80 MHz BOOM,
3 GHz gem5 x86) compose without rounding drift.

Each directed link serializes packets (``wire_size / bandwidth``) and
adds a per-hop latency.  Every tile attachment has a bounded input
queue; when it fills up, deliveries stall the upstream link — this is
the packet-based flow control that resolves vDTU core-request queue
overruns (section 3.8 of the paper).

Two transfer implementations share the same timing recurrence
(``start = max(now, link.busy_until); busy_until = start + transfer;
arrive = start + transfer + hop_latency``):

* the **batched** path (default) reserves every link on the packet's
  route eagerly at injection time and schedules a single arrival event,
  so an n-hop transfer costs one queue entry instead of a Process plus
  n timeout events;
* the **lazy** path (``batch_hops=False`` or ``REPRO_NOC_BATCH=0``)
  walks the route hop by hop in a generator Process, reserving each
  link only when the packet reaches it.

The two differ observably only when cross traffic claims a downstream
link *while* a packet is mid-flight; the committed golden traces are
byte-identical under both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional, Tuple

from repro.sim import Channel, Event, Simulator, envcfg
from repro.sim.stats import StatRegistry
from repro.noc.packet import HEADER_BYTES, Packet
from repro.noc.topology import Topology

PS_PER_NS = 1_000


@dataclass(frozen=True)
class NocParams:
    """Physical parameters of the interconnect."""

    hop_latency_ps: int = 8_000         # per link traversal (8 ns)
    bytes_per_ns: int = 8               # link bandwidth
    tile_queue_depth: int = 16          # per-tile input buffer (packets)

    def transfer_ps(self, wire_bytes: int) -> int:
        """Serialization delay of a packet on one link."""
        return (wire_bytes * PS_PER_NS + self.bytes_per_ns - 1) // self.bytes_per_ns

    def lookahead_ps(self) -> int:
        """Conservative cross-tile lookahead bound for the parallel
        engine (:mod:`repro.sim.parallel`).

        A packet crossing tiles traverses at least the injection and
        the ejection link; each costs the serialization delay of a
        header-only packet plus the per-hop latency.  Anything a tile
        does at time ``t`` can therefore reach another tile no earlier
        than ``t + lookahead_ps()``.  (Router hops and payload bytes
        only push arrivals later; contention pushes them later still.)
        Derivation: DESIGN.md §15.
        """
        per_link = self.transfer_ps(HEADER_BYTES) + self.hop_latency_ps
        return 2 * per_link


class _Link:
    """A directed link: FIFO serialization with a busy-until horizon."""

    __slots__ = ("busy_until",)

    def __init__(self) -> None:
        self.busy_until = 0


class _Arrival(Event):
    """Batched-path arrival event: carries the in-flight packet state.

    One instance replaces the per-packet transfer Process; the two
    callback methods are bound methods of the event itself, so
    injecting a packet allocates no closures.
    """

    __slots__ = ("fabric", "packet", "wire", "inbox")

    def __init__(self, sim, fabric: "NocFabric", packet: Packet, wire: int):
        Event.__init__(self, sim)
        self.fabric = fabric
        self.packet = packet
        self.wire = wire
        self.inbox: Optional[Channel] = None

    def _arrive(self, _ev: Event) -> None:
        """Packet reached the ejection port: enqueue (with backpressure)."""
        inbox = self.inbox = self.fabric._inboxes[self.packet.dst]
        # delivery completes when the put does — immediately if the
        # inbox has room, or once a consumer drains a slot (backpressure)
        inbox.put_then(self.packet, self._delivered)

    def _delivered(self, _ev: Event) -> None:
        self.fabric._delivered(self.packet, self.wire, self.inbox)


class NocFabric:
    """Routes packets between tile attachments over a topology."""

    def __init__(self, sim: Simulator, topology: Topology,
                 params: Optional[NocParams] = None,
                 stats: Optional[StatRegistry] = None,
                 batch_hops: Optional[bool] = None):
        self.sim = sim
        self.topology = topology
        self.params = params or NocParams()
        self.stats = stats or StatRegistry()
        if batch_hops is None:
            batch_hops = envcfg.raw("REPRO_NOC_BATCH", "1") != "0"
        self.batch_hops = batch_hops
        # hoisted per-send constants (params is frozen after construction)
        self._hop_ps = self.params.hop_latency_ps
        self._bpn = self.params.bytes_per_ns
        self._links: Dict[Tuple[str, int, int], _Link] = {}
        self._paths: Dict[Tuple[int, int], Tuple[_Link, ...]] = {}
        self._inboxes: Dict[int, Channel] = {}
        self._ctr_packets = self.stats.counter("noc/packets")
        self._ctr_bytes = self.stats.counter("noc/bytes")
        self._sinks: Dict[int, Callable[[Packet], None]] = {}

    # -- attachment -----------------------------------------------------------

    def attach(self, tile: int) -> Channel:
        """Attach a tile; returns its bounded input queue.

        The owner (a DTU model) consumes packets from the returned
        channel.  A full queue exerts backpressure on the fabric.
        """
        if tile in self._inboxes:
            raise ValueError(f"tile {tile} already attached")
        inbox = Channel(self.sim, capacity=self.params.tile_queue_depth,
                        name=f"noc-inbox-{tile}")
        self._inboxes[tile] = inbox
        return inbox

    def inbox(self, tile: int) -> Channel:
        return self._inboxes[tile]

    # -- transfer -------------------------------------------------------------

    def send(self, packet: Packet):
        """Inject ``packet`` into the fabric.

        On the lazy path this returns the delivery Process; on the
        batched path delivery is driven by plain event callbacks and
        ``None`` is returned.  No caller may rely on the return value.
        """
        if packet.dst not in self._inboxes:
            raise ValueError(f"destination tile {packet.dst} not attached")
        sim = self.sim
        tracer = sim.tracer
        if tracer is not None:
            tracer.emit(sim, "noc_inject", src=packet.src,
                        dst=packet.dst, pkt=packet.kind.value,
                        size=packet.size, pid=packet.pid)
        if not self.batch_hops:
            # The lazy path's transfer Process touches the source-side
            # links *and* the destination inbox, so on sharded runs it
            # lives on the global lane (safe with every shard).
            if sim.shard_plan is None:
                return sim.process(self._transfer(packet),
                                   name=f"pkt{packet.pid}")
            prev = sim._active_shard
            sim._active_shard = -1  # GLOBAL_SHARD
            try:
                return sim.process(self._transfer(packet),
                                   name=f"pkt{packet.pid}")
            finally:
                sim._active_shard = prev

        # Batched fast path: reserve every link on the route now and
        # schedule one arrival event at the accumulated time.
        wire = packet.wire_size
        bpn = self._bpn
        transfer = (wire * PS_PER_NS + bpn - 1) // bpn
        hop = self._hop_ps
        t = sim.now
        for link in self._path(packet.src, packet.dst):
            start = link.busy_until
            if start < t:
                start = t
            link.busy_until = start + transfer
            t = start + transfer + hop
        plan = sim.shard_plan
        if plan is None:
            arrival = _Arrival(sim, self, packet, wire)
        else:
            # Cross-shard injection is the conservative sync point: the
            # arrival (and everything it triggers — deposit, core
            # request, wakeup) belongs to the *destination* tile's
            # shard, and its delay t - now carries at least the
            # injection + ejection link cost, i.e. the lookahead bound
            # the sharded queue's causality check enforces.
            prev = sim._active_shard
            sim._active_shard = plan.shard_of(packet.dst)
            arrival = _Arrival(sim, self, packet, wire)
            sim._active_shard = prev
        arrival.callbacks.append(arrival._arrive)
        arrival.succeed(None, delay=t - sim.now)
        return None

    def _delivered(self, packet: Packet, wire: int, inbox: Channel) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(self.sim, "noc_deliver", src=packet.src,
                        dst=packet.dst, pkt=packet.kind.value,
                        pid=packet.pid, qlen=len(inbox))
        self._ctr_packets.add()
        self._ctr_bytes.add(wire)

    def _path(self, src: int, dst: int) -> Tuple[_Link, ...]:
        """The route (injection, routers..., ejection) as cached links."""
        key = (src, dst)
        path = self._paths.get(key)
        if path is None:
            topo = self.topology
            src_router = topo.router_of(src)
            dst_router = topo.router_of(dst)
            links = [self._link("inj", src, src_router)]
            rpath = topo.router_path(src_router, dst_router)
            for a, b in zip(rpath, rpath[1:]):
                links.append(self._link("rtr", a, b))
            links.append(self._link("ej", dst_router, dst))
            path = self._paths[key] = tuple(links)
        return path

    def _link(self, kind: str, a: int, b: int) -> _Link:
        key = (kind, a, b)
        link = self._links.get(key)
        if link is None:
            link = self._links[key] = _Link()
        return link

    def _traverse(self, link: _Link, wire_bytes: int) -> Generator:
        """Occupy one link: wait for it, serialize, add hop latency."""
        now = self.sim.now
        start = max(now, link.busy_until)
        transfer = self.params.transfer_ps(wire_bytes)
        link.busy_until = start + transfer
        yield start - now + transfer + self.params.hop_latency_ps

    def _transfer(self, packet: Packet) -> Generator:
        topo = self.topology
        src_router = topo.router_of(packet.src)
        dst_router = topo.router_of(packet.dst)
        wire = packet.wire_size

        # tile -> router injection link
        yield from self._traverse(self._link("inj", packet.src, src_router), wire)
        # router-to-router hops
        rpath = topo.router_path(src_router, dst_router)
        for a, b in zip(rpath, rpath[1:]):
            yield from self._traverse(self._link("rtr", a, b), wire)
        # router -> tile ejection link; blocking put = backpressure
        yield from self._traverse(self._link("ej", dst_router, packet.dst), wire)
        inbox = self._inboxes[packet.dst]
        yield inbox.put(packet)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(self.sim, "noc_deliver", src=packet.src,
                        dst=packet.dst, pkt=packet.kind.value,
                        pid=packet.pid, qlen=len(inbox))
        self._ctr_packets.add()
        self._ctr_bytes.add(wire)

    # -- helpers ---------------------------------------------------------------

    def latency_estimate_ps(self, src: int, dst: int, payload_bytes: int) -> int:
        """Uncontended end-to-end latency estimate (for tests/docs)."""
        hops = self.topology.hops(src, dst)
        per_hop = self.params.transfer_ps(payload_bytes + 16) + self.params.hop_latency_ps
        return hops * per_hop
