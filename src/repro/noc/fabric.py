"""The NoC fabric: links with bandwidth and backpressure.

Time base: the whole platform simulation runs in integer **picoseconds**
so tiles with different clock frequencies (100 MHz Rocket, 80 MHz BOOM,
3 GHz gem5 x86) compose without rounding drift.

Each directed link serializes packets (``wire_size / bandwidth``) and
adds a per-hop latency.  Every tile attachment has a bounded input
queue; when it fills up, deliveries stall the upstream link — this is
the packet-based flow control that resolves vDTU core-request queue
overruns (section 3.8 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional, Tuple

from repro.sim import Channel, Simulator
from repro.sim.stats import StatRegistry
from repro.noc.packet import Packet
from repro.noc.topology import Topology

PS_PER_NS = 1_000


@dataclass(frozen=True)
class NocParams:
    """Physical parameters of the interconnect."""

    hop_latency_ps: int = 8_000         # per link traversal (8 ns)
    bytes_per_ns: int = 8               # link bandwidth
    tile_queue_depth: int = 16          # per-tile input buffer (packets)

    def transfer_ps(self, wire_bytes: int) -> int:
        """Serialization delay of a packet on one link."""
        return (wire_bytes * PS_PER_NS + self.bytes_per_ns - 1) // self.bytes_per_ns


class _Link:
    """A directed link: FIFO serialization with a busy-until horizon."""

    __slots__ = ("busy_until",)

    def __init__(self) -> None:
        self.busy_until = 0


class NocFabric:
    """Routes packets between tile attachments over a topology."""

    def __init__(self, sim: Simulator, topology: Topology,
                 params: Optional[NocParams] = None,
                 stats: Optional[StatRegistry] = None):
        self.sim = sim
        self.topology = topology
        self.params = params or NocParams()
        self.stats = stats or StatRegistry()
        self._links: Dict[Tuple[str, int, int], _Link] = {}
        self._inboxes: Dict[int, Channel] = {}
        self._sinks: Dict[int, Callable[[Packet], None]] = {}

    # -- attachment -----------------------------------------------------------

    def attach(self, tile: int) -> Channel:
        """Attach a tile; returns its bounded input queue.

        The owner (a DTU model) consumes packets from the returned
        channel.  A full queue exerts backpressure on the fabric.
        """
        if tile in self._inboxes:
            raise ValueError(f"tile {tile} already attached")
        inbox = Channel(self.sim, capacity=self.params.tile_queue_depth,
                        name=f"noc-inbox-{tile}")
        self._inboxes[tile] = inbox
        return inbox

    def inbox(self, tile: int) -> Channel:
        return self._inboxes[tile]

    # -- transfer -------------------------------------------------------------

    def send(self, packet: Packet):
        """Inject ``packet``; returns the delivery Process (an Event).

        The event fires once the packet has been enqueued at the
        destination tile (i.e. accepted by its input queue).
        """
        if packet.dst not in self._inboxes:
            raise ValueError(f"destination tile {packet.dst} not attached")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(self.sim, "noc_inject", src=packet.src,
                        dst=packet.dst, pkt=packet.kind.value,
                        size=packet.size, pid=packet.pid)
        return self.sim.process(self._transfer(packet), name=f"pkt{packet.pid}")

    def _link(self, kind: str, a: int, b: int) -> _Link:
        key = (kind, a, b)
        link = self._links.get(key)
        if link is None:
            link = self._links[key] = _Link()
        return link

    def _traverse(self, link: _Link, wire_bytes: int) -> Generator:
        """Occupy one link: wait for it, serialize, add hop latency."""
        now = self.sim.now
        start = max(now, link.busy_until)
        transfer = self.params.transfer_ps(wire_bytes)
        link.busy_until = start + transfer
        yield self.sim.timeout(start - now + transfer + self.params.hop_latency_ps)

    def _transfer(self, packet: Packet) -> Generator:
        topo = self.topology
        src_router = topo.router_of(packet.src)
        dst_router = topo.router_of(packet.dst)
        wire = packet.wire_size

        # tile -> router injection link
        yield from self._traverse(self._link("inj", packet.src, src_router), wire)
        # router-to-router hops
        rpath = topo.router_path(src_router, dst_router)
        for a, b in zip(rpath, rpath[1:]):
            yield from self._traverse(self._link("rtr", a, b), wire)
        # router -> tile ejection link; blocking put = backpressure
        yield from self._traverse(self._link("ej", dst_router, packet.dst), wire)
        inbox = self._inboxes[packet.dst]
        yield inbox.put(packet)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(self.sim, "noc_deliver", src=packet.src,
                        dst=packet.dst, pkt=packet.kind.value,
                        pid=packet.pid, qlen=len(inbox))
        self.stats.counter("noc/packets").add()
        self.stats.counter("noc/bytes").add(wire)

    # -- helpers ---------------------------------------------------------------

    def latency_estimate_ps(self, src: int, dst: int, payload_bytes: int) -> int:
        """Uncontended end-to-end latency estimate (for tests/docs)."""
        hops = self.topology.hops(src, dst)
        per_hop = self.params.transfer_ps(payload_bytes + 16) + self.params.hop_latency_ps
        return hops * per_hop
