"""Network-on-chip simulation.

Models the on-chip interconnect of the M3v FPGA platform: four routers
in a 2x2 star-mesh (Figure 4 of the paper), links with finite bandwidth
and bounded input queues (packet-based flow control), and a fabric that
delivers packets between tile attachments.

The packet-based flow control of the NoC is load-bearing for the vDTU:
core-request queue overruns in the vDTU are resolved by NoC
backpressure (section 3.8), which emerges here from the bounded queues.
"""

from repro.noc.packet import Packet, PacketKind
from repro.noc.topology import StarMeshTopology, Topology
from repro.noc.fabric import NocFabric, NocParams

__all__ = [
    "Packet",
    "PacketKind",
    "Topology",
    "StarMeshTopology",
    "NocFabric",
    "NocParams",
]
