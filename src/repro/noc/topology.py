"""NoC topologies.

The FPGA prototype connects 11 tiles through four routers arranged as a
2x2 star-mesh (Figure 4): routers form a square; each router serves a
"star" of locally attached tiles.  We also provide a generic mesh for
scalability experiments beyond the FPGA's tile count (the gem5
configuration in section 6.4 uses up to 13 tiles).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


class Topology:
    """Maps tiles to routers and yields router-level routes.

    Subclasses fill ``_tile_router`` (tile id -> router id) and
    ``_adjacency`` (router id -> list of neighbour router ids).
    """

    def __init__(self) -> None:
        self._tile_router: Dict[int, int] = {}
        self._adjacency: Dict[int, List[int]] = {}
        self._route_cache: Dict[Tuple[int, int], List[int]] = {}

    @property
    def routers(self) -> List[int]:
        return sorted(self._adjacency)

    def attach_tile(self, tile: int, router: int) -> None:
        if tile in self._tile_router:
            raise ValueError(f"tile {tile} already attached")
        if router not in self._adjacency:
            raise ValueError(f"unknown router {router}")
        self._tile_router[tile] = router

    def router_of(self, tile: int) -> int:
        return self._tile_router[tile]

    def router_path(self, src_router: int, dst_router: int) -> List[int]:
        """Shortest router path (inclusive of both ends), BFS + cache."""
        key = (src_router, dst_router)
        if key in self._route_cache:
            return self._route_cache[key]
        if src_router == dst_router:
            path = [src_router]
        else:
            # BFS over the (tiny) router graph
            frontier = [[src_router]]
            seen = {src_router}
            path = []
            while frontier and not path:
                trail = frontier.pop(0)
                for nxt in self._adjacency[trail[-1]]:
                    if nxt in seen:
                        continue
                    if nxt == dst_router:
                        path = trail + [nxt]
                        break
                    seen.add(nxt)
                    frontier.append(trail + [nxt])
            if not path:
                raise ValueError(f"no path {src_router} -> {dst_router}")
        self._route_cache[key] = path
        return path

    def hops(self, src_tile: int, dst_tile: int) -> int:
        """Total link traversals tile -> ... -> tile."""
        rpath = self.router_path(self.router_of(src_tile), self.router_of(dst_tile))
        # tile->router link + router-to-router links + router->tile link
        return 2 + (len(rpath) - 1)


class StarMeshTopology(Topology):
    """The 2x2 star-mesh of the FPGA platform.

    Four routers on a square (0-1, 1-3, 3-2, 2-0 plus both diagonals are
    NOT connected; the paper's figure shows a square of four routers).
    Tiles are distributed round-robin over the routers unless an
    explicit placement is given.
    """

    def __init__(self, tiles: Sequence[int], placement: Dict[int, int] = None):
        super().__init__()
        square = {0: [1, 2], 1: [0, 3], 2: [0, 3], 3: [1, 2]}
        for router, neighbours in square.items():
            self._adjacency[router] = list(neighbours)
        if placement is None:
            placement = {tile: i % 4 for i, tile in enumerate(tiles)}
        for tile in tiles:
            self.attach_tile(tile, placement[tile])


class SingleRouterTopology(Topology):
    """All tiles on one router — the degenerate small-platform case."""

    def __init__(self, tiles: Sequence[int]):
        super().__init__()
        self._adjacency[0] = []
        for tile in tiles:
            self.attach_tile(tile, 0)
