"""NoC packets.

A packet is the unit of transfer on the interconnect.  DTU commands
decompose into one or more packets (e.g. a READ is a request packet and
a response packet carrying the data).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_packet_ids = itertools.count()

# Every packet carries a fixed header in addition to its payload.
HEADER_BYTES = 16


class PacketKind(enum.Enum):
    """What a packet does at the receiving DTU."""

    MSG = "msg"                # message-passing payload (send/reply)
    READ_REQ = "read_req"      # DMA read request to a memory endpoint
    READ_RESP = "read_resp"    # data coming back
    WRITE_REQ = "write_req"    # DMA write carrying data
    WRITE_RESP = "write_resp"  # write acknowledgement
    ACK = "ack"                # credit return / message ack
    EXT_REQ = "ext_req"        # controller -> DTU external interface
    EXT_RESP = "ext_resp"      # DTU -> controller external response
    ERROR = "error"            # error response (e.g. no receive buffer)


@dataclass(slots=True)
class Packet:
    """One NoC packet.

    ``payload`` is opaque to the network; the DTUs interpret it.
    ``size`` is the payload size in bytes (header added by the fabric).
    """

    kind: PacketKind
    src: int                      # source tile id
    dst: int                      # destination tile id
    size: int = 0                 # payload bytes
    payload: Any = None
    tag: Optional[int] = None     # correlates requests and responses
    pid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative packet size {self.size}")

    @property
    def wire_size(self) -> int:
        """Bytes actually occupying the link, including the header."""
        return self.size + HEADER_BYTES

    def response_to(self, kind: PacketKind, size: int = 0, payload: Any = None) -> "Packet":
        """Build the response packet travelling back to the sender."""
        return Packet(kind=kind, src=self.dst, dst=self.src, size=size,
                      payload=payload, tag=self.tag)
