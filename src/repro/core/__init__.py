"""Top-level system assembly and experiment plumbing.

* :mod:`repro.core.platform` — builds complete M3v platforms (tiles,
  NoC, vDTUs, TileMux instances, controller) from a config.
* :mod:`repro.core.results` — result tables shared by the benchmark
  harness and EXPERIMENTS.md generation.
"""

from repro.core.platform import (
    M3Platform,
    M3vPlatform,
    M3xPlatform,
    PlatformConfig,
)

__all__ = ["M3Platform", "M3vPlatform", "M3xPlatform", "PlatformConfig"]
