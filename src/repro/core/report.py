"""Render experiment results as ASCII figures and the EXPERIMENTS.md
paper-vs-measured report.

Consumed by ``scripts/run_experiments.py`` and the CLI
(``python -m repro report``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping

BAR_WIDTH = 44


def bar_chart(title: str, values: Mapping[str, float], unit: str = "",
              width: int = BAR_WIDTH) -> str:
    """A horizontal ASCII bar chart, like the paper's figures.

    NaN values (e.g. the mean of a histogram that never got a sample)
    render as an em-dash row instead of poisoning the whole chart.
    """
    if not values:
        return f"{title}\n  (no data)"
    finite = [v for v in values.values() if not math.isnan(v)]
    peak = (max(finite) if finite else 0.0) or 1.0
    label_w = max(len(k) for k in values)
    lines = [title]
    for name, value in values.items():
        if math.isnan(value):
            lines.append(f"  {name:{label_w}s} |{'':{width}s} — {unit}")
            continue
        bar = "#" * max(1, round(width * value / peak))
        lines.append(f"  {name:{label_w}s} |{bar:<{width}s} {value:,.1f} {unit}")
    return "\n".join(lines)


def series_chart(title: str, series: Mapping[str, Mapping[int, float]],
                 x_label: str = "tiles", unit: str = "") -> str:
    """A small multi-series table (for the Figure 9 scaling curves)."""
    xs = sorted({x for ys in series.values() for x in ys})
    label_w = max(len(k) for k in series)
    lines = [title,
             "  " + " " * label_w + "".join(f"{x:>9}" for x in xs)
             + f"   ({x_label})"]
    for name, ys in series.items():
        cells = "".join(
            f"{'—':>9s}" if math.isnan(ys.get(x, float("nan")))
            else f"{ys[x]:9.0f}" for x in xs)
        lines.append(f"  {name:{label_w}s}{cells}   {unit}")
    return "\n".join(lines)


def format_duration(seconds: float) -> str:
    """Compact wall-clock rendering for progress and summary lines."""
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


def progress_line(sweep: str, done: int, total: int, cached: int,
                  elapsed_s: float, eta_s: float) -> str:
    """One scheduler progress tick, e.g. ``[fig9] 7/24 ...``."""
    cached_part = f", {cached} cached" if cached else ""
    return (f"[{sweep}] {done}/{total} points{cached_part}, "
            f"{format_duration(elapsed_s)} elapsed, "
            f"eta {format_duration(eta_s)}")


def runner_summary(runner, elapsed_s: float = None) -> str:
    """End-of-run line for a :class:`repro.runner.Runner`.

    With self-profiling on (``Runner(profile=True)``), the per-subsystem
    wall-clock table merged over every simulated point is appended."""
    parts = [f"runner: {runner.total_points} points",
             f"{runner.simulated} simulated",
             f"{runner.served} from cache (jobs={runner.jobs})"]
    line = " — ".join([parts[0], ", ".join(parts[1:])])
    failed = getattr(runner, "failed", 0)
    if failed:
        line += f", {failed} FAILED"
    if elapsed_s is not None:
        line += f" in {format_duration(elapsed_s)}"
    if getattr(runner, "profile", False):
        outcomes = (getattr(runner, "all_outcomes", None)
                    or getattr(runner, "last_outcomes", []))
        profiles = [o.profile for o in outcomes
                    if o is not None and o.profile]
        if profiles:
            from repro.obs import SelfProfiler

            merged = SelfProfiler()
            for p in profiles:
                merged.merge(p)
            line += "\nself-profile (merged over simulated points):\n"
            line += merged.table()
    return line


def render_report(results: Dict) -> str:
    """The full ASCII report over a run_experiments results dict."""
    parts: List[str] = []

    if "table1" in results:
        t1 = results["table1"]
        parts.append(
            f"Table 1 — vDTU {t1['vdtu_kluts']} kLUTs = "
            f"{t1['vdtu_of_boom']:.1%} of BOOM / "
            f"{t1['vdtu_of_rocket']:.1%} of Rocket; "
            f"virtualization adds {t1['virt_overhead']:.1%} logic")

    if "fig6" in results:
        parts.append(bar_chart(
            "Figure 6 — no-op round trips (k cycles)",
            {k: v["kcycles"] for k, v in results["fig6"].items()},
            unit="kcy"))

    if "fig7" in results:
        parts.append(bar_chart("Figure 7 — file throughput (MiB/s)",
                               results["fig7"], unit="MiB/s"))

    if "fig8" in results:
        parts.append(bar_chart("Figure 8 — UDP RTT (us)",
                               results["fig8"], unit="us"))

    if "fig9" in results:
        for trace, series in results["fig9"].items():
            normalized = {sys: {int(k): v for k, v in ys.items()}
                          for sys, ys in series.items()}
            parts.append(series_chart(
                f"Figure 9 — {trace} throughput (runs/s)", normalized))

    if "fig10" in results:
        for mix, systems in results["fig10"].items():
            parts.append(bar_chart(
                f"Figure 10 — YCSB {mix}-heavy, total runtime (s)",
                {sys: row["total_s"] for sys, row in systems.items()},
                unit="s"))

    if "figR" in results:
        figr = {sys: {float(k): v for k, v in ys.items()}
                for sys, ys in results["figR"].items()}
        rates = sorted({r for ys in figr.values() for r in ys})
        label_w = max(len(s) for s in figr)
        lines = ["Figure R — resilience: goodput (round trips/s) vs "
                 "NoC fault rate",
                 "  " + " " * label_w + "".join(f"{r:>9.0%}" for r in rates)]
        for sys_name, ys in figr.items():
            cells = "".join(
                f"{'—':>9s}" if ys.get(r) is None
                else f"{ys[r]['goodput_rps']:9.0f}" for r in rates)
            lines.append(f"  {sys_name:{label_w}s}{cells}   rps")
        parts.append("\n".join(lines))

    if "figS" in results:
        figs = {arm: {float(k): v for k, v in ys.items()}
                for arm, ys in results["figS"].items()}
        loads = sorted({x for ys in figs.values() for x in ys})
        label_w = max(len(s) for s in figs)
        lines = ["Figure S — serving under overload: goodput (rps) vs "
                 "offered load (x saturation), faults on"]
        header = "  " + " " * label_w + "".join(f"{x:>9.1f}x" for x in loads)
        lines.append(header)
        for arm, ys in figs.items():
            cells = "".join(
                f"{'—':>10s}" if ys.get(x) is None
                else f"{ys[x]['goodput_rps']:10.0f}" for x in loads)
            lines.append(f"  {arm:{label_w}s}{cells}   rps")
        lines.append("  p99 latency (us):")
        for arm, ys in figs.items():
            cells = "".join(
                f"{'—':>10s}" if ys.get(x) is None
                else f"{ys[x]['p99_us']:10.0f}" for x in loads)
            lines.append(f"  {arm:{label_w}s}{cells}   us")
        parts.append("\n".join(lines))

    if "voice" in results:
        v = results["voice"]
        parts.append(
            f"Voice assistant — isolated {v['isolated_ms']:.1f} ms, "
            f"shared {v['shared_ms']:.1f} ms "
            f"(+{v['overhead_pct']:.1f}%; paper: +3.6%)")

    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# shape checks: the qualitative claims the reproduction must uphold
# ---------------------------------------------------------------------------

def shape_checks(results: Dict) -> List[str]:
    """Verify the paper's qualitative claims; returns failures."""
    failures: List[str] = []

    def expect(cond: bool, claim: str) -> None:
        if not cond:
            failures.append(claim)

    fig6 = results.get("fig6")
    if fig6:
        expect(0.5 < fig6["m3v_remote"]["kcycles"]
               / fig6["linux_syscall"]["kcycles"] < 1.5,
               "fig6: M3v remote RPC ~ Linux syscall")
        expect(fig6["m3v_local"]["kcycles"]
               > 2.5 * fig6["m3v_remote"]["kcycles"],
               "fig6: local RPC much dearer than remote")

    fig7 = results.get("fig7")
    if fig7:
        expect(fig7["m3v_read_shared"] > fig7["linux_read"],
               "fig7: M3v read beats Linux even shared")
        expect(fig7["linux_write"] < fig7["linux_read"],
               "fig7: writes slower than reads")

    fig9 = results.get("fig9", {})
    for trace, series in fig9.items():
        m3v = {int(k): v for k, v in series["m3v"].items()}
        m3x = {int(k): v for k, v in series["m3x"].items()}
        top = max(m3v)
        expect(m3v[1] > 1.3 * m3x[1],
               f"fig9/{trace}: ~2x single-tile advantage")
        expect(m3v[top] / m3v[1] > 0.65 * top,
               f"fig9/{trace}: near-linear M3v scaling")
        expect(m3x[top] < 1.4 * m3x[min(4, top)],
               f"fig9/{trace}: M3x plateaus")

    fig10 = results.get("fig10", {})
    if "scan" in fig10:
        expect(fig10["scan"]["linux"]["total_s"]
               > fig10["scan"]["m3v_shared"]["total_s"],
               "fig10: Linux loses on scans")

    voice = results.get("voice")
    if voice:
        expect(0 < voice["overhead_pct"] < 15,
               "voice: small sharing overhead")

    figs = results.get("figS")
    if figs and "m3v" in figs and "m3x" in figs:
        m3v = {float(k): v for k, v in figs["m3v"].items()}
        m3x = {float(k): v for k, v in figs["m3x"].items()}
        ok_v = {x: r for x, r in m3v.items() if r is not None}
        if ok_v:
            peak = max(r["goodput_rps"] for r in ok_v.values())
            top = max(ok_v)
            if top >= 1.5 and peak > 0:
                expect(ok_v[top]["goodput_rps"] >= 0.8 * peak,
                       "figS: M3v goodput at overload >= 80% of peak")
            low = max((x for x in ok_v if x <= 0.7), default=None)
            if low is not None:
                row = ok_v[low]
                expect(row["slo_met"] >= 0.95 * max(1, row["completed"]),
                       "figS: p99 SLO holds up to 70% utilization on M3v")
            both = max((x for x in ok_v if m3x.get(x) is not None),
                       default=None)
            if both is not None and both >= 1.5:
                expect(ok_v[both]["goodput_rps"]
                       > m3x[both]["goodput_rps"],
                       "figS: M3x slow path collapses under overload")
                expect(ok_v[both]["p99_us"] < m3x[both]["p99_us"],
                       "figS: M3v tail latency beats M3x under overload")

    if figs and "m3v_static" in figs and "m3v_adapt" in figs:
        static = {float(k): v for k, v in figs["m3v_static"].items()}
        adapt = {float(k): v for k, v in figs["m3v_adapt"].items()}
        for load in sorted(k for k in static
                           if static[k] is not None
                           and adapt.get(k) is not None):
            s, a = static[load], adapt[load]
            slo = s["tenants"]["gold"]["slo_us"]
            expect(s["tenants"]["gold"]["p99_us"] > slo,
                   f"figS: packed static layout breaks gold p99 SLO "
                   f"under skew @ {load}x")
            expect(a["tenants"]["gold"]["p99_us"] <= slo,
                   f"figS: adaptive placement holds gold p99 SLO @ {load}x")
            expect(a["migrations"] > 0 and s["migrations"] == 0,
                   f"figS: only the adaptive arm live-migrates @ {load}x")

    figr = results.get("figR")
    if figr and "m3v" in figr and "m3x" in figr:
        m3v = {float(k): v for k, v in figr["m3v"].items()}
        m3x = {float(k): v for k, v in figr["m3x"].items()}
        top = max((r for r in m3v if r > 0 and m3v[r] and m3x.get(r)),
                  default=None)
        if top is not None:
            expect(m3v[top]["goodput_rps"] > m3x[top]["goodput_rps"],
                   "figR: M3v degrades more gracefully than M3x")
            expect(m3v[top]["failures"] == 0,
                   "figR: no abandoned round trips on M3v")

    return failures
