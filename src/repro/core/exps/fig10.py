"""Figure 10: the cloud service — YCSB on a LevelDB-like store.

Four components: the database (LSM store + request handling), the file
system backing it, the network stack shipping requests and results via
UDP to the remote machine, and the pager.  Configurations: "isolated"
(a tile per component), "shared" (all four on one BOOM tile), and
Linux (everything on the one Linux tile).  Reported: total runtime
split into user and system time (section 6.5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.lsm import LsmStore
from repro.core.exps.common import fpga_system, linux_system
from repro.posix.vfs import LinuxVfs, M3vVfs
from repro.services.boot import (
    boot_m3fs,
    boot_net,
    boot_pager,
    connect_fs,
    connect_net,
)
from repro.services.m3fs import FsClient
from repro.services.net import NetClient
from repro.workloads.ycsb import YcsbOp, YcsbWorkload, make_workload

CLOUD_PORT = 9100
REQUEST_BYTES = 48      # serialized request shipped via UDP
RESULT_BYTES = 64       # op result shipped via UDP
HANDLE_REQ_CY = 20_000  # request decode + dispatch in the db component


def _db_phase(api, store, netc, sid, workload: YcsbWorkload):
    """Load the records, then execute the operation mix."""
    for key, value in workload.records:
        yield from store.put(key, value)
    for req in workload.requests:
        yield from api.compute(HANDLE_REQ_CY)
        yield from netc.sendto(sid, CLOUD_PORT, None, REQUEST_BYTES)
        if req.op is YcsbOp.READ:
            yield from store.get(req.key)
        elif req.op is YcsbOp.INSERT:
            yield from store.put(req.key, req.value)
        elif req.op is YcsbOp.UPDATE:
            yield from store.put(req.key, req.value)
        else:
            yield from store.scan(req.key, req.scan_len)
        yield from netc.sendto(sid, CLOUD_PORT, None, RESULT_BYTES)


@dataclass
class Fig10Params:
    records: int = 200
    operations: int = 200
    runs: int = 2
    warmup: int = 1
    seed: int = 1
    mixes: Tuple[str, ...] = ("read", "insert", "update", "mixed", "scan")


def _run_m3v(mix: str, shared: bool, p: Fig10Params) -> Dict[str, float]:
    plat = fpga_system()
    if shared:
        db_tile = fs_tile = net_tile = pager_tile = 1
    else:
        db_tile, fs_tile, net_tile, pager_tile = 2, 3, 1, 4

    plat.run_proc(boot_pager(plat, tile=pager_tile))
    fs = plat.run_proc(boot_m3fs(plat, tile=fs_tile, blocks=8192))
    net = plat.run_proc(boot_net(plat, tile=net_tile))
    env: Dict = {}
    out: Dict = {}

    def db(api):
        while "fs_eps" not in env or "net_eps" not in env:
            yield api.sim.timeout(1_000_000)
        fsc = FsClient(api, *env["fs_eps"])
        netc = NetClient(api, *env["net_eps"])
        vfs = M3vVfs(fsc)
        sid = yield from netc.socket()
        yield from netc.bind(sid)

        def one_run(idx):
            workload = make_workload(mix, p.records, p.operations,
                                     seed=p.seed)
            store = LsmStore(vfs, api.compute, root=f"/db{idx}")
            yield from store.open()
            yield from _db_phase(api, store, netc, sid, workload)
            yield from store.close()

        for i in range(p.warmup):
            yield from one_run(f"w{i}")
        marks = {a.name: a.user_ps for a in plat.controller.acts.values()}
        start = api.sim.now
        for i in range(p.runs):
            yield from one_run(f"m{i}")
        out["total_ps"] = api.sim.now - start
        out["marks"] = marks

    act = plat.run_proc(plat.controller.spawn("db", db_tile, db,
                                              pager="pager"))
    env["fs_eps"] = plat.run_proc(connect_fs(plat, act, fs))
    env["net_eps"] = plat.run_proc(connect_net(plat, act, net))
    plat.sim.run_until_event(act.exit_event, limit=10**16)

    # user/system split (section 6.5.2): time spent in the fs and net
    # services is system time; the database, pager and TileMux count as
    # user time ("for implementation-specific reasons").
    marks = out["marks"]
    sys_ps = sum(a.user_ps - marks.get(a.name, 0)
                 for a in plat.controller.acts.values()
                 if a.name in ("m3fs", "net"))
    total = out["total_ps"] / p.runs / 1e12
    sys_s = sys_ps / p.runs / 1e12
    return {"total_s": total, "sys_s": sys_s,
            "user_s": max(0.0, total - sys_s)}


def _run_linux(mix: str, p: Fig10Params) -> Dict[str, float]:
    machine = linux_system(with_net=True)
    out: Dict = {}

    def prog(api):
        vfs = LinuxVfs(api)
        sid = yield from api.socket()
        yield from api.bind(sid)

        class _Net:
            def sendto(self, s, port, data, size):
                return api.sendto(s, port, data, size)

        def one_run(idx):
            workload = make_workload(mix, p.records, p.operations,
                                     seed=p.seed)
            store = LsmStore(vfs, api.compute, root=f"/db{idx}")
            yield from store.open()
            yield from _db_phase(api, store, _Net(), sid, workload)
            yield from store.close()

        for i in range(p.warmup):
            yield from one_run(f"w{i}")
        usage0 = api.getrusage()
        start = api.sim.now
        for i in range(p.runs):
            yield from one_run(f"m{i}")
        out["total_ps"] = api.sim.now - start
        usage1 = api.getrusage()
        out["user_s"] = usage1["user_s"] - usage0["user_s"]
        out["sys_s"] = usage1["sys_s"] - usage0["sys_s"]

    proc = machine.spawn("db", prog)
    machine.sim.run_until_event(proc.exit_event, limit=10**16)
    return {"total_s": out["total_ps"] / p.runs / 1e12,
            "user_s": out["user_s"] / p.runs,
            "sys_s": out["sys_s"] / p.runs}


# -- sweep decomposition (repro.runner) ---------------------------------------

FIG10_SYSTEMS = ("m3v_isolated", "m3v_shared", "linux")


@dataclass(frozen=True)
class Fig10Point:
    mix: str
    system: str                # one of FIG10_SYSTEMS
    records: int = 200
    operations: int = 200
    runs: int = 2
    warmup: int = 1
    seed: int = 1


def fig10_points(params: Fig10Params = None) -> List[Fig10Point]:
    p = params or Fig10Params()
    return [Fig10Point(mix, system, p.records, p.operations,
                       p.runs, p.warmup, p.seed)
            for mix in p.mixes for system in FIG10_SYSTEMS]


def run_fig10_point(pt: Fig10Point) -> Dict[str, float]:
    """{total_s, user_s, sys_s} for one (mix, system) bar group."""
    p = Fig10Params(records=pt.records, operations=pt.operations,
                    runs=pt.runs, warmup=pt.warmup, seed=pt.seed,
                    mixes=(pt.mix,))
    if pt.system == "linux":
        return _run_linux(pt.mix, p)
    if pt.system in ("m3v_isolated", "m3v_shared"):
        return _run_m3v(pt.mix, shared=pt.system == "m3v_shared", p=p)
    raise ValueError(f"unknown fig10 system {pt.system!r}")


def reduce_fig10(params: Fig10Params, values: List[Dict[str, float]]
                 ) -> Dict[str, Dict[str, Dict[str, float]]]:
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for pt, v in zip(fig10_points(params), values):
        results.setdefault(pt.mix, {})[pt.system] = v
    return results


def run_fig10(params: Fig10Params = None,
              mixes: Optional[Sequence[str]] = None
              ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Returns {mix -> {system -> {total_s, user_s, sys_s}}}."""
    p = params or Fig10Params()
    if mixes is not None:
        p = replace(p, mixes=tuple(mixes))
    return reduce_fig10(p, [run_fig10_point(pt) for pt in fig10_points(p)])
