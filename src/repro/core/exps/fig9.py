"""Figure 9: scalability of context-switch-heavy workloads, M3x vs M3v.

The gem5 configuration of section 6.4: 3 GHz out-of-order x86 cores in
every tile, one traceplayer + one file-system instance *per tile* (so
every file-system call is a tile-local RPC — the context-switch-heavy
pattern), scaled from 1 to 12 tiles.  The y-axis is aggregate
application runs per second after one warmup run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.api import SystemConfig, build_system
from repro.apps.traceplayer import TracePlayer
from repro.core.platform import PlatformConfig
from repro.posix.vfs import M3vVfs
from repro.services.boot import boot_m3fs, connect_fs
from repro.services.m3fs import FsClient
from repro.tiles.costs import X86_GEM5
from repro.workloads.traces import find_trace, find_tree_spec, sqlite_trace


@dataclass
class Fig9Params:
    tile_counts: List[int] = field(default_factory=lambda: [1, 2, 4, 8, 12])
    trace: str = "find"            # find | sqlite
    runs: int = 2                  # measured runs per tile (after 1 warmup)
    # trace shape (paper scale: find 24x40, sqlite 32 transactions)
    find_dirs: int = 24
    find_files: int = 40
    sqlite_txns: int = 32
    fs_blocks: int = 512

    def make_trace(self):
        if self.trace == "find":
            return find_trace(self.find_dirs, self.find_files)
        if self.trace == "sqlite":
            return sqlite_trace(self.sqlite_txns)
        raise ValueError(f"unknown trace {self.trace!r}")


def gem5_config(n_tiles: int) -> PlatformConfig:
    return PlatformConfig(n_proc_tiles=n_tiles, proc_core=X86_GEM5,
                          controller_core=X86_GEM5, n_mem_tiles=2)


def gem5_sysconfig(system: str, n_tiles: int) -> SystemConfig:
    return SystemConfig(kind=system, n_proc_tiles=n_tiles,
                        proc_core=X86_GEM5, controller_core=X86_GEM5,
                        n_mem_tiles=2)


def _populate(fs, p: Fig9Params) -> None:
    if p.trace == "find":
        dirs, files = find_tree_spec(p.find_dirs, p.find_files)
        for d in dirs:
            fs.image.mkdir(d)
        for f in files:
            fs.image.create(f)


def _throughput(system: str, n_tiles: int, p: Fig9Params) -> float:
    """Aggregate runs/s over ``n_tiles`` tiles."""
    plat = build_system(gem5_sysconfig(system, n_tiles))
    trace = p.make_trace()
    results: Dict[int, Dict[str, int]] = {}
    players = []

    for tile in range(n_tiles):
        fs = plat.run_proc(boot_m3fs(plat, tile=tile, blocks=p.fs_blocks,
                                     name=f"m3fs{tile}"))
        _populate(fs, p)
        env: Dict = {}
        out: Dict = {}
        results[tile] = out

        def bench(api, env=env, out=out):
            while "fs_eps" not in env:
                yield api.sim.timeout(1_000_000)
            fsc = FsClient(api, *env["fs_eps"])
            player = TracePlayer(M3vVfs(fsc), api.compute)

            def reset():
                if p.trace == "sqlite":
                    yield from fsc.unlink("/test.db")

            yield from player.play(trace)      # warmup
            yield from reset()
            start = api.sim.now
            for _ in range(p.runs):
                yield from player.play(trace)
                yield from reset()
            out["ps"] = api.sim.now - start

        act = plat.run_proc(plat.controller.spawn(f"player{tile}", tile,
                                                  bench))
        env["fs_eps"] = plat.run_proc(connect_fs(plat, act, fs))
        players.append(act)

    for act in players:
        plat.sim.run_until_event(act.exit_event, limit=10**16)
    return sum(p.runs / (out["ps"] / 1e12) for out in results.values())


# -- sweep decomposition (repro.runner) ---------------------------------------

@dataclass(frozen=True)
class Fig9Point:
    system: str                # "m3v" | "m3x"
    n_tiles: int
    trace: str = "find"
    runs: int = 2
    find_dirs: int = 24
    find_files: int = 40
    sqlite_txns: int = 32
    fs_blocks: int = 512


def fig9_points(params: Fig9Params = None) -> List[Fig9Point]:
    p = params or Fig9Params()
    return [Fig9Point(system, n, p.trace, p.runs, p.find_dirs,
                      p.find_files, p.sqlite_txns, p.fs_blocks)
            for system in ("m3v", "m3x") for n in p.tile_counts]


def run_fig9_point(pt: Fig9Point) -> float:
    """Aggregate runs/s for one (system, tile count) curve point."""
    p = Fig9Params(tile_counts=[pt.n_tiles], trace=pt.trace, runs=pt.runs,
                   find_dirs=pt.find_dirs, find_files=pt.find_files,
                   sqlite_txns=pt.sqlite_txns, fs_blocks=pt.fs_blocks)
    return _throughput(pt.system, pt.n_tiles, p)


def reduce_fig9(params: Fig9Params,
                values: List[float]) -> Dict[str, Dict[int, float]]:
    out: Dict[str, Dict[int, float]] = {"m3v": {}, "m3x": {}}
    for pt, v in zip(fig9_points(params), values):
        out[pt.system][pt.n_tiles] = v
    return out


def run_fig9(params: Fig9Params = None) -> Dict[str, Dict[int, float]]:
    """Returns {system -> {n_tiles -> aggregate runs/s}}."""
    p = params or Fig9Params()
    return reduce_fig9(p, [run_fig9_point(pt) for pt in fig9_points(p)])
