"""Figure 9: scalability of context-switch-heavy workloads, M3x vs M3v.

The gem5 configuration of section 6.4: 3 GHz out-of-order x86 cores in
every tile, one traceplayer + one file-system instance *per tile* (so
every file-system call is a tile-local RPC — the context-switch-heavy
pattern), scaled from 1 to 12 tiles.  The y-axis is aggregate
application runs per second after one warmup run.

Beyond the paper's gem5 ceiling the sweep extends to 64/128/256 tiles
(:data:`EXTENDED_TILE_COUNTS`) — the regime where M³v's near-linear
core-multiplexing claim actually gets stressed.  Memory shape scales
with the tile count past 12 tiles (each tile needs its ~8 MiB activity
window plus a per-tile m3fs image); the 1–12-tile points keep the
paper's exact 2×64 MiB shape so their event counts stay comparable
across the BENCH trajectory.  ``shards`` runs the point on the
conservative parallel engine (:mod:`repro.sim.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.api import ShardSpec, SystemConfig, build_system
from repro.apps.traceplayer import TracePlayer
from repro.core.platform import PlatformConfig
from repro.posix.vfs import M3vVfs
from repro.services.boot import boot_m3fs, connect_fs
from repro.services.m3fs import FsClient
from repro.tiles.costs import X86_GEM5
from repro.workloads.traces import find_trace, find_tree_spec, sqlite_trace

#: Past-the-paper scaling points (section 6.4 stops at 12).
EXTENDED_TILE_COUNTS = [64, 128, 256]

_MIB = 1024 * 1024


@dataclass
class Fig9Params:
    tile_counts: List[int] = field(default_factory=lambda: [1, 2, 4, 8, 12])
    trace: str = "find"            # find | sqlite
    runs: int = 2                  # measured runs per tile (after 1 warmup)
    # trace shape (paper scale: find 24x40, sqlite 32 transactions)
    find_dirs: int = 24
    find_files: int = 40
    sqlite_txns: int = 32
    fs_blocks: int = 512
    shards: int = 0                # conservative parallel DES shard count

    def make_trace(self):
        if self.trace == "find":
            return find_trace(self.find_dirs, self.find_files)
        if self.trace == "sqlite":
            return sqlite_trace(self.sqlite_txns)
        raise ValueError(f"unknown trace {self.trace!r}")


def extended_params(quick: bool = True, shards: int = 0,
                    tile_counts: List[int] = None) -> Fig9Params:
    """The 64+-tile sweep, ``--quick``-compatible by default.

    Quick mode shrinks the per-tile trace (2×3 find tree, one measured
    run) so a 256-tile point stays tractable on one host; full mode
    keeps the paper's trace shape.
    """
    counts = list(tile_counts if tile_counts is not None
                  else EXTENDED_TILE_COUNTS)
    if quick:
        return Fig9Params(tile_counts=counts, runs=1, find_dirs=2,
                          find_files=3, sqlite_txns=4, shards=shards)
    return Fig9Params(tile_counts=counts, shards=shards)


def gem5_config(n_tiles: int) -> PlatformConfig:
    return PlatformConfig(n_proc_tiles=n_tiles, proc_core=X86_GEM5,
                          controller_core=X86_GEM5, n_mem_tiles=2)


def _mem_shape(n_tiles: int):
    """(n_mem_tiles, dram_bytes) for ``n_tiles`` processing tiles.

    The paper's 2×64 MiB shape up to its 12-tile ceiling (keeping those
    points byte-comparable with the committed trajectory); beyond that,
    one memory tile per 16 processing tiles sized for each tile's
    activity window + m3fs image with 2× headroom.
    """
    if n_tiles <= 12:
        return 2, 64 * _MIB
    n_mem = max(2, (n_tiles + 15) // 16)
    dram = ((n_tiles * 20 * _MIB) // n_mem + _MIB - 1) // _MIB * _MIB
    return n_mem, max(64 * _MIB, dram)


def gem5_sysconfig(system: str, n_tiles: int, shards: int = 0) -> SystemConfig:
    n_mem, dram = _mem_shape(n_tiles)
    # The controller wires one send EP per tile above EP_DYN_BASE; past
    # ~125 tiles that outgrows the Table-1 128-entry register file, so
    # grow it to the next power of two (hardware scale-up, same idea as
    # the extra memory tiles).
    overrides = {}
    if n_tiles + 16 > 128:
        overrides["num_endpoints"] = 1 << (n_tiles + 16 - 1).bit_length()
    return SystemConfig(kind=system, n_proc_tiles=n_tiles,
                        proc_core=X86_GEM5, controller_core=X86_GEM5,
                        n_mem_tiles=n_mem, dram_bytes=dram,
                        dtu_overrides=overrides,
                        shards=ShardSpec(n=shards) if shards else None)


def _populate(fs, p: Fig9Params) -> None:
    if p.trace == "find":
        dirs, files = find_tree_spec(p.find_dirs, p.find_files)
        for d in dirs:
            fs.image.mkdir(d)
        for f in files:
            fs.image.create(f)


def _throughput(system: str, n_tiles: int, p: Fig9Params) -> float:
    """Aggregate runs/s over ``n_tiles`` tiles."""
    plat = build_system(gem5_sysconfig(system, n_tiles, shards=p.shards))
    trace = p.make_trace()
    results: Dict[int, Dict[str, int]] = {}
    players = []

    for tile in range(n_tiles):
        fs = plat.run_proc(boot_m3fs(plat, tile=tile, blocks=p.fs_blocks,
                                     name=f"m3fs{tile}"))
        _populate(fs, p)
        env: Dict = {}
        out: Dict = {}
        results[tile] = out

        def bench(api, env=env, out=out):
            while "fs_eps" not in env:
                yield api.sim.timeout(1_000_000)
            fsc = FsClient(api, *env["fs_eps"])
            player = TracePlayer(M3vVfs(fsc), api.compute)

            def reset():
                if p.trace == "sqlite":
                    yield from fsc.unlink("/test.db")

            yield from player.play(trace)      # warmup
            yield from reset()
            start = api.sim.now
            for _ in range(p.runs):
                yield from player.play(trace)
                yield from reset()
            out["ps"] = api.sim.now - start

        act = plat.run_proc(plat.controller.spawn(f"player{tile}", tile,
                                                  bench))
        env["fs_eps"] = plat.run_proc(connect_fs(plat, act, fs))
        players.append(act)

    for act in players:
        plat.sim.run_until_event(act.exit_event, limit=10**16)
    return sum(p.runs / (out["ps"] / 1e12) for out in results.values())


# -- sweep decomposition (repro.runner) ---------------------------------------

@dataclass(frozen=True)
class Fig9Point:
    system: str                # "m3v" | "m3x"
    n_tiles: int
    trace: str = "find"
    runs: int = 2
    find_dirs: int = 24
    find_files: int = 40
    sqlite_txns: int = 32
    fs_blocks: int = 512
    shards: int = 0


def fig9_points(params: Fig9Params = None) -> List[Fig9Point]:
    p = params or Fig9Params()
    return [Fig9Point(system, n, p.trace, p.runs, p.find_dirs,
                      p.find_files, p.sqlite_txns, p.fs_blocks, p.shards)
            for system in ("m3v", "m3x") for n in p.tile_counts]


def run_fig9_point(pt: Fig9Point) -> float:
    """Aggregate runs/s for one (system, tile count) curve point."""
    p = Fig9Params(tile_counts=[pt.n_tiles], trace=pt.trace, runs=pt.runs,
                   find_dirs=pt.find_dirs, find_files=pt.find_files,
                   sqlite_txns=pt.sqlite_txns, fs_blocks=pt.fs_blocks,
                   shards=pt.shards)
    return _throughput(pt.system, pt.n_tiles, p)


def reduce_fig9(params: Fig9Params,
                values: List[float]) -> Dict[str, Dict[int, float]]:
    out: Dict[str, Dict[int, float]] = {"m3v": {}, "m3x": {}}
    for pt, v in zip(fig9_points(params), values):
        out[pt.system][pt.n_tiles] = v
    return out


def run_fig9(params: Fig9Params = None) -> Dict[str, Dict[int, float]]:
    """Returns {system -> {n_tiles -> aggregate runs/s}}."""
    p = params or Fig9Params()
    return reduce_fig9(p, [run_fig9_point(pt) for pt in fig9_points(p)])
