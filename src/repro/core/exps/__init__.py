"""Experiment runners: one module per table/figure of the paper.

Each runner builds the right platform(s), executes the workload, and
returns plain result rows that the benchmark harness prints and
EXPERIMENTS.md records.  Paper-scale parameters are the defaults of
each ``*Params`` dataclass; benchmarks may shrink them for quick runs.

Every figure is additionally decomposed into pure, picklable *point
functions* (a frozen ``*Point`` config in, a plain result out) plus a
``reduce_*`` function that assembles the figure's result structure from
the point values in order.  ``run_*`` is exactly
``reduce(map(point_fn, points))``, so the serial entry points and the
parallel runner (:mod:`repro.runner`) execute identical code per point
— the basis of the serial/parallel parity guarantee.
"""

from repro.core.exps.fig6 import (
    Fig6Params, Fig6Point, fig6_points, reduce_fig6, run_fig6,
    run_fig6_point,
)
from repro.core.exps.fig7 import (
    Fig7Params, Fig7Point, fig7_points, reduce_fig7, run_fig7,
    run_fig7_point,
)
from repro.core.exps.fig8 import (
    Fig8Params, Fig8Point, fig8_points, reduce_fig8, run_fig8,
    run_fig8_point,
)
from repro.core.exps.fig9 import (
    Fig9Params, Fig9Point, fig9_points, reduce_fig9, run_fig9,
    run_fig9_point,
)
from repro.core.exps.fig10 import (
    Fig10Params, Fig10Point, fig10_points, reduce_fig10, run_fig10,
    run_fig10_point,
)
from repro.core.exps.figr import (
    FigRParams, FigRPoint, figr_points, reduce_figr, run_figr,
    run_figr_point,
)
from repro.core.exps.figs import (
    FigSParams, FigSPoint, figs_points, reduce_figs, run_figs,
    run_figs_point,
)
from repro.core.exps.voice import (
    VoiceParams, VoicePoint, reduce_voice, run_voice, run_voice_point,
    voice_points,
)

__all__ = [
    "Fig6Params", "Fig6Point", "fig6_points", "run_fig6_point",
    "reduce_fig6", "run_fig6",
    "Fig7Params", "Fig7Point", "fig7_points", "run_fig7_point",
    "reduce_fig7", "run_fig7",
    "Fig8Params", "Fig8Point", "fig8_points", "run_fig8_point",
    "reduce_fig8", "run_fig8",
    "Fig9Params", "Fig9Point", "fig9_points", "run_fig9_point",
    "reduce_fig9", "run_fig9",
    "Fig10Params", "Fig10Point", "fig10_points", "run_fig10_point",
    "reduce_fig10", "run_fig10",
    "FigRParams", "FigRPoint", "figr_points", "run_figr_point",
    "reduce_figr", "run_figr",
    "FigSParams", "FigSPoint", "figs_points", "run_figs_point",
    "reduce_figs", "run_figs",
    "VoiceParams", "VoicePoint", "voice_points", "run_voice_point",
    "reduce_voice", "run_voice",
]
