"""Experiment runners: one module per table/figure of the paper.

Each runner builds the right platform(s), executes the workload, and
returns plain result rows that the benchmark harness prints and
EXPERIMENTS.md records.  Paper-scale parameters are the defaults of
each ``*Params`` dataclass; benchmarks may shrink them for quick runs.
"""

from repro.core.exps.fig6 import Fig6Params, run_fig6
from repro.core.exps.fig7 import Fig7Params, run_fig7
from repro.core.exps.fig8 import Fig8Params, run_fig8
from repro.core.exps.fig9 import Fig9Params, run_fig9
from repro.core.exps.fig10 import Fig10Params, run_fig10
from repro.core.exps.voice import VoiceParams, run_voice

__all__ = [
    "Fig6Params", "run_fig6",
    "Fig7Params", "run_fig7",
    "Fig8Params", "run_fig8",
    "Fig9Params", "run_fig9",
    "Fig10Params", "run_fig10",
    "VoiceParams", "run_voice",
]
