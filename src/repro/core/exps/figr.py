"""Figure R (resilience): goodput and tail latency vs NoC fault rate.

Not a figure of the paper — a robustness experiment over the same
platform models.  A multiplexed echo workload (two servers sharing one
tile, one client per server on another) streams RPCs while seeded fault
injectors (:mod:`repro.faults`) drop and corrupt user-plane packets.
The recovery layer (:mod:`repro.mux.recovery`) retransmits; we measure

* **goodput**: completed round trips per simulated second,
* **p50/p99 RTT** in microseconds,
* failed round trips (retransmission budget exhausted) and recovery
  counters (retransmits, timeouts, dedups, M3x slow paths).

M3v retries locally through the vDTU, so its degradation tracks the
fault rate.  On M3x every bounced delivery to a descheduled activity
takes the controller slow path — retransmission pressure multiplies the
load on the single-threaded controller, so M3x degrades visibly worse
(the remote-multiplexing cost of section 2.2, now under faults).

Fault rate 0 runs the recovery layer disabled and is byte-identical to
the plain model; every point runs the PR-1 invariant checkers online.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.api import FaultSpec, build_system
from repro.core.exps.common import fpga_sysconfig, rendezvous
from repro.dtu import DtuFault
from repro.faults import RecoveryPolicy
from repro.sim.trace import Tracer
from repro.testing.invariants import InvariantSuite

SIM_LIMIT_PS = 10**13  # 10 s of simulated time; a stuck point fails loudly


@dataclass
class FigRParams:
    fault_rates: List[float] = field(
        default_factory=lambda: [0.0, 0.02, 0.05, 0.1, 0.2])
    systems: List[str] = field(default_factory=lambda: ["m3v", "m3x"])
    pairs: int = 2                 # echo servers (tile 0) = clients (tile 1)
    messages: int = 60             # round trips per client
    msg_bytes: int = 32
    fault_seed: int = 7
    max_retries: int = 16          # bounded, but deep enough that losing a
                                   # message outright is ~(2*rate)^17


def _percentile(sorted_vals: List[int], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return float(sorted_vals[idx])


def _run_workload(system: str, rate: float, p: FigRParams) -> Dict[str, float]:
    config = fpga_sysconfig(system, n_proc_tiles=2)
    if rate > 0:
        config = config.with_(
            recovery=RecoveryPolicy(max_retries=p.max_retries,
                                    seed=p.fault_seed),
            faults=FaultSpec(seed=f"figR:{system}:{rate}:{p.fault_seed}",
                             rate=rate))
    plat = build_system(config)

    # invariant checkers ride along on every point; reuse an installed
    # tracer (e.g. `repro trace`) or attach a record-free one
    tracer = plat.sim.tracer
    if tracer is None:
        tracer = Tracer(record=False).attach(plat.sim)
    suite = InvariantSuite().attach(tracer)

    env: Dict = {}
    outs: List[Dict] = [{} for _ in range(p.pairs)]

    def server(api, idx):
        rep = f"s{idx}_rep"
        yield from rendezvous(api, env, rep)
        while True:
            msg = yield from api.recv(env[rep])
            try:
                yield from api.reply(env[rep], msg, msg.data, p.msg_bytes)
            except DtuFault:
                pass  # reply abandoned; the client counts the failure

    def client(api, idx, out):
        sep, rep = f"c{idx}_sep", f"c{idx}_rep"
        yield from rendezvous(api, env, sep, rep)
        rtts: List[int] = []
        failures = 0
        start = api.sim.now
        for i in range(p.messages):
            t0 = api.sim.now
            try:
                yield from api.send(env[sep], i, p.msg_bytes,
                                    reply_ep=env[rep])
            except DtuFault:
                failures += 1
                continue
            while True:
                msg = yield from api.recv(env[rep])
                yield from api.ack(env[rep], msg)
                if msg.data == i:
                    rtts.append(api.sim.now - t0)
                    break
                # stale echo of an abandoned round trip: discard
        out["rtts"] = rtts
        out["failures"] = failures
        out["span_ps"] = api.sim.now - start

    ctrl = plat.controller
    clients = []
    for idx in range(p.pairs):
        srv = plat.run_proc(ctrl.spawn(
            f"echo{idx}", 0, lambda api, idx=idx: server(api, idx)))
        cli = plat.run_proc(ctrl.spawn(
            f"client{idx}", 1,
            lambda api, idx=idx, out=outs[idx]: client(api, idx, out)))
        sep, rep, rpl = plat.run_proc(ctrl.wire_channel(cli, srv, credits=2))
        env.update({f"s{idx}_rep": rep, f"c{idx}_sep": sep,
                    f"c{idx}_rep": rpl})
        clients.append(cli)

    for cli in clients:
        plat.sim.run_until_event(cli.exit_event, limit=SIM_LIMIT_PS)
    if any("span_ps" not in out for out in outs):
        raise RuntimeError(
            f"figR {system}@{rate}: workload did not quiesce within "
            f"{SIM_LIMIT_PS} ps")
    suite.finish()

    rtts = sorted(rtt for out in outs for rtt in out["rtts"])
    span_ps = max(out["span_ps"] for out in outs)
    stats = plat.stats
    return {
        "goodput_rps": len(rtts) / (span_ps / 1e12) if span_ps else 0.0,
        "p50_us": _percentile(rtts, 0.50) / 1e6,
        "p99_us": _percentile(rtts, 0.99) / 1e6,
        "round_trips": len(rtts),
        "failures": sum(out["failures"] for out in outs),
        "retransmits": stats.counter_value("recovery/retransmits"),
        "timeouts": stats.counter_value("dtu/ack_timeouts"),
        "dedups": stats.counter_value("dtu/msgs_deduped"),
        "dropped": stats.counter_value("faults/pkts_dropped"),
        "corrupted": stats.counter_value("faults/pkts_corrupted"),
        "slow_paths": stats.counter_value("m3x/slow_paths"),
    }


# -- sweep decomposition (repro.runner) ---------------------------------------

@dataclass(frozen=True)
class FigRPoint:
    system: str                # "m3v" | "m3x"
    rate: float
    pairs: int = 2
    messages: int = 60
    msg_bytes: int = 32
    fault_seed: int = 7
    max_retries: int = 16


def figr_points(params: FigRParams = None) -> List[FigRPoint]:
    p = params or FigRParams()
    return [FigRPoint(system, rate, p.pairs, p.messages, p.msg_bytes,
                      p.fault_seed, p.max_retries)
            for system in p.systems for rate in p.fault_rates]


def run_figr_point(pt: FigRPoint) -> Dict[str, float]:
    """Goodput/latency/recovery stats for one (system, fault rate)."""
    p = FigRParams(fault_rates=[pt.rate], systems=[pt.system],
                   pairs=pt.pairs, messages=pt.messages,
                   msg_bytes=pt.msg_bytes, fault_seed=pt.fault_seed,
                   max_retries=pt.max_retries)
    return _run_workload(pt.system, pt.rate, p)


def reduce_figr(params: FigRParams,
                values: List[Dict]) -> Dict[str, Dict[float, Dict]]:
    p = params or FigRParams()
    out: Dict[str, Dict[float, Dict]] = {s: {} for s in p.systems}
    for pt, v in zip(figr_points(p), values):
        out[pt.system][pt.rate] = v
    return out


def run_figr(params: FigRParams = None) -> Dict[str, Dict[float, Dict]]:
    """Returns {system -> {fault rate -> point stats}}."""
    p = params or FigRParams()
    return reduce_figr(p, [run_figr_point(pt) for pt in figr_points(p)])
