"""Figure S (serving): goodput and tail latency vs offered load.

Not a figure of the paper — the ROADMAP's datacenter-scale serving
scenario over the same platform models.  An open-loop multi-tenant
load generator (:mod:`repro.workloads.serving`) drives a sharded LSM
KV store through a load balancer:

* tile 0 — the balancer, alone on its tile;
* tiles ``1..S`` — one KV *replica* each (:class:`repro.apps.lsm`
  over a private m3fs instance, two activities per tile).  The
  balancer routes a key to ``key_idx % S`` but may steer to any
  replica when the circuit breaker trips — the read-mostly store is
  replicated, so steering is safe;
* tiles ``S+1..S+G`` — one gateway + one latency-recording sink per
  tile, the client edge.

Requests flow gateway → balancer → shard → sink (direct server
return); the shard acks the balancer's message only after executing
the operation, so DTU credits implement shard→balancer backpressure,
and ``send_nowait`` surfaces it without blocking.  With the
protection stack (:mod:`repro.services.serving`) enabled, bounded
admission queues shed on overflow and on hopeless deadlines, token
buckets enforce per-tenant quotas, and the quarantine-aware breaker
steers around unhealthy tiles — the goodput curve flattens at
saturation.  With ``protection=False`` the same topology runs
blocking sends and unbounded queues: open-loop overload then grows
queues without bound and goodput collapses past saturation.

On M³x every block/wake of the multiplexed KV, gateway and sink
activities takes the centralized controller slow path; under overload
the controller serializes the whole fleet's scheduling, so M³x shows
the slow-path collapse even with protection enabled (section 2.2's
remote-multiplexing cost, now SLO-denominated).

The ``mpmc`` backend swaps the G per-pair gateway→balancer DTU
channels for one Virtual-Link MPMC queue
(:class:`repro.mux.mpmc.VirtualLinkQueue`) — the head-to-head fan-in
comparison.  Every point runs the PR-1 invariant checkers online;
fault injection (``fault_rate``) exercises the PR-3 recovery layer
under load.

The *adaptive-placement* pair (``m3v_static`` vs ``m3v_adapt``) packs
``pack`` KV replicas per tile and steers ``skew`` of the offered load
onto shard 0 — a hotspot the static layout cannot absorb, so the gold
tenant's p99 blows through its SLO.  The adaptive arm runs the same
packed layout under the EDF TileMux policy (kv replicas stamp each
request's deadline, so the most urgent replica runs first) with the
controller rebalancer attached (``PlacementSpec``): load beacons mark
the packed tile hot and the controller live-migrates replicas onto the
spare tiles, after which the hot shard owns a core and the SLO holds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List

from repro.api import (FaultSpec, PlacementSpec, SchedSpec, ServingSpec,
                       build_system)
from repro.apps.lsm import LsmStore
from repro.core.exps.common import fpga_sysconfig, rendezvous
from repro.dtu import DtuFault
from repro.faults import RecoveryPolicy
from repro.mux.mpmc import VirtualLinkQueue
from repro.posix.vfs import M3vVfs
from repro.services.boot import boot_m3fs, connect_fs
from repro.services.m3fs import FsClient
from repro.sim.trace import Tracer
from repro.testing.invariants import InvariantSuite
from repro.workloads.serving import DEFAULT_TENANTS, open_loop_arrivals

SIM_LIMIT_PS = 10**13   # 10 s of simulated time; a stuck point fails loudly
REQ_BYTES = 64
RSP_BYTES = 64
ROUTE_CY = 1_600        # balancer: decode + hash + breaker + queue ops
HANDLE_CY = 8_000       # shard: request decode + dispatch


@dataclass
class FigSParams:
    loads: List[float] = field(
        default_factory=lambda: [0.3, 0.5, 0.7, 1.0, 1.5, 2.0])
    systems: List[str] = field(default_factory=lambda: ["m3v", "m3x"])
    base_rps: float = 3000.0       # offered load at load=1.0 (≈ saturation)
    kv_shards: int = 4
    gateways: int = 3
    requests: int = 60             # per gateway
    keyspace: int = 4096
    preload: int = 64
    backend: str = "dtu"
    fault_rate: float = 0.02       # active fault injection on the curve
    seed: int = 1
    queue_slots: int = 16
    quota_mult: float = 2.5
    # extra arms: protection-off ablation + MPMC fan-in comparison
    ablation_loads: List[float] = field(default_factory=lambda: [1.0, 2.0])
    backend_loads: List[float] = field(default_factory=lambda: [0.7, 2.0])
    # adaptive-placement arms: a skewed workload on a packed layout,
    # static (collapses) vs EDF + rebalancer (holds the gold SLO).
    # The pair runs at its own request count: the gold p99 is computed
    # over completed requests only, so at very short runs (~10/gateway)
    # the sample is too small and at long runs (60+/gateway) admission
    # shedding masks the static arm's violations — 30/gateway is the
    # validated operating point where the gap is stable.
    adaptive_loads: List[float] = field(default_factory=lambda: [1.1])
    adaptive_requests: int = 30    # per gateway, for the adaptive pair
    skew: float = 0.8              # fraction of requests steered to shard 0
    pack: int = 2                  # KV replicas per tile in the packed arms


def _percentile(sorted_vals: List[int], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return float(sorted_vals[idx])


def _key(idx: int) -> str:
    return f"k{idx:06d}"


# -- one serving run ----------------------------------------------------------

def _run_serving(pt: "FigSPoint") -> Dict[str, float]:
    S, G = pt.kv_shards, pt.gateways
    spec = ServingSpec(protection=pt.protection, queue_slots=pt.queue_slots,
                       quota_mult=pt.quota_mult, backend=pt.backend)
    config = fpga_sysconfig(pt.system, n_proc_tiles=1 + S + G, serving=spec)
    if pt.system == "m3v":
        if pt.sched != "rr":
            config = config.with_(sched=SchedSpec(policy=pt.sched,
                                                  seed=pt.seed))
        if pt.rebalance:
            config = config.with_(placement=PlacementSpec(
                interval_us=200.0, hot_depth=2, spread=2,
                cooldown_us=1000.0))
    if pt.fault_rate > 0:
        config = config.with_(
            recovery=RecoveryPolicy(max_retries=16, seed=pt.seed),
            faults=FaultSpec(seed=f"figS:{pt.system}:{pt.load}:{pt.seed}",
                             rate=pt.fault_rate,
                             deadline_ps=SIM_LIMIT_PS))
    plat = build_system(config)

    tracer = plat.sim.tracer
    if tracer is None:
        tracer = Tracer(record=False).attach(plat.sim)
    suite = InvariantSuite().attach(tracer)

    stack = plat.serving
    offered_rps = pt.base_rps * pt.load
    if pt.protection and pt.quota_mult > 0:
        for t in DEFAULT_TENANTS:
            stack.set_quota(t.name, pt.quota_mult * t.weight * pt.base_rps)

    env: Dict = {}
    acct = {"completed": 0, "shed": 0, "failed": 0,
            "t_first": SIM_LIMIT_PS, "t_last": 0}
    # per-stage uid sets: tiny (G * requests uids) and turns a stuck
    # point's error into "uid N last seen at <stage>"
    seen = {"gw": set(), "sent": set(), "lb": set(), "kv": set(),
            "done": set()}
    records: List = []        # (tenant, latency_ps, slo_met)
    expected = G * pt.requests
    protection = pt.protection
    use_mpmc = pt.backend == "mpmc"
    vlq = VirtualLinkQueue(plat, capacity=spec.mpmc_slots, name="ingress") \
        if use_mpmc else None

    def resolve_shed(req, reason: str, now: int) -> None:
        seen["done"].add(req.uid)
        acct["shed"] += 1
        acct["t_last"] = max(acct["t_last"], now)
        stack.count_shed(reason)

    def resolve_failed(req, now: int) -> None:
        seen["done"].add(req.uid)
        acct["failed"] += 1
        acct["t_last"] = max(acct["t_last"], now)

    # -- balancer (tile 0, alone) --------------------------------------------

    def balancer(api):
        keys = [f"lb_sep{s}" for s in range(S)]
        if not use_mpmc:
            keys += [f"lb_rep{g}" for g in range(G)]
        yield from rendezvous(api, env, *keys)
        seps = [env[f"lb_sep{s}"] for s in range(S)]
        reps = [] if use_mpmc else [env[f"lb_rep{g}"] for g in range(G)]
        queues = [stack.make_queue() if protection else deque()
                  for _ in range(S)]

        def route(req, now: int) -> None:
            seen["lb"].add(req.uid)
            primary = req.key_idx % S
            if not protection:
                queues[primary].append(req)
                return
            target = -1
            for k in range(S):
                s = (primary + k) % S
                if stack.breaker.healthy(s, now):
                    target = s
                    break
            if target < 0:
                resolve_failed(req, now)   # whole replica set unhealthy
                return
            if target != primary:
                stack.count_steered()
            verdict = queues[target].offer(req, now,
                                           stack.estimator.estimate_ps)
            if verdict != "admitted":
                resolve_shed(req, verdict, now)

        idle = 0
        while True:
            progressed = False
            if use_mpmc:
                for _ in range(G):
                    req = yield from vlq.try_get(api)
                    if req is None:
                        break
                    yield from api.compute(ROUTE_CY)
                    route(req, api.sim.now)
                    progressed = True
            else:
                for g in range(G):
                    msg = yield from api.fetch(reps[g])
                    if msg is None:
                        continue
                    req = msg.data
                    yield from api.ack(reps[g], msg)
                    yield from api.compute(ROUTE_CY)
                    route(req, api.sim.now)
                    progressed = True
            now = api.sim.now
            est = stack.estimator.estimate_ps
            for s in range(S):
                q = queues[s]
                if protection:
                    for r in q.scrub(now, est):
                        resolve_shed(r, "deadline", now)
                while len(q):
                    r = q.pop() if protection else q.popleft()
                    try:
                        if protection:
                            ok = yield from api.send_nowait(seps[s], r,
                                                            REQ_BYTES)
                        else:
                            yield from api.send(seps[s], r, REQ_BYTES)
                            ok = True
                    except DtuFault:
                        resolve_failed(r, api.sim.now)
                        if protection:
                            stack.breaker.record_failure(s, api.sim.now)
                        progressed = True
                        continue
                    if ok:
                        if protection:
                            stack.breaker.record_success(s)
                        progressed = True
                    else:
                        q.push_front(r)
                        stack.count_backpressure()
                        break
            if progressed:
                idle = 0
                continue
            idle = min(idle + 1, 4)
            yield from api.sleep_us(2.0 * (1 << idle))

    # -- KV shard replica (tiles 1..S, shares its tile with m3fs) ------------

    def kv_server(api, s):
        keys = [f"kv{s}_fs", f"kv{s}_rep"] + \
            [f"kv{s}_sink{g}" for g in range(G)]
        yield from rendezvous(api, env, *keys)
        fsc = FsClient(api, *env[f"kv{s}_fs"])
        store = LsmStore(M3vVfs(fsc), api.compute, root=f"/kv{s}")
        yield from store.open()
        for k in range(pt.preload):
            yield from store.put(_key(k % pt.keyspace), b"seed")
        env[f"kv{s}_ready"] = True
        rep = env[f"kv{s}_rep"]
        sinks = [env[f"kv{s}_sink{g}"] for g in range(G)]
        while True:
            msg = yield from api.recv(rep)
            req = msg.data
            seen["kv"].add(req.uid)
            # advisory: under the EDF policy the replica holding the
            # most urgent request runs first (free no-op under rr)
            api.set_deadline(req.deadline_ps)
            yield from api.compute(HANDLE_CY)
            t0 = api.sim.now
            if req.op == "get":
                yield from store.get(_key(req.key_idx))
            else:
                yield from store.put(_key(req.key_idx), b"v" * 16)
            stack.estimator.observe(api.sim.now - t0)
            try:
                yield from api.send(sinks[req.gateway], req, RSP_BYTES)
            except DtuFault:
                resolve_failed(req, api.sim.now)
            # ack last: the unreturned credit is the backpressure signal
            yield from api.ack(rep, msg)

    # -- client edge (tiles S+1..S+G: gateway + sink per tile) ---------------

    def gateway(api, g, schedule):
        keys = [f"kv{s}_ready" for s in range(S)]
        if not use_mpmc:
            keys.append(f"gw{g}_sep")
        yield from rendezvous(api, env, *keys)
        epoch = api.sim.now
        reqs = [replace(r, arrival_ps=r.arrival_ps + epoch,
                        deadline_ps=r.deadline_ps + epoch) for r in schedule]
        acct["t_first"] = min(acct["t_first"], reqs[0].arrival_ps)
        sep = env.get(f"gw{g}_sep")
        q = stack.make_queue() if protection else deque()
        i, n = 0, len(reqs)
        while i < n or len(q):
            now = api.sim.now
            while i < n and reqs[i].arrival_ps <= now:
                r = reqs[i]
                i += 1
                seen["gw"].add(r.uid)
                if not protection:
                    q.append(r)
                    continue
                if not stack.admit_tenant(r.tenant, now):
                    resolve_shed(r, "quota", now)
                    continue
                verdict = q.offer(r, now, stack.estimator.estimate_ps)
                if verdict == "admitted":
                    stack.count_admitted()
                else:
                    resolve_shed(r, verdict, now)
            if protection:
                for r in q.scrub(now, stack.estimator.estimate_ps):
                    resolve_shed(r, "deadline", now)
            blocked = False
            while len(q):
                r = q.pop() if protection else q.popleft()
                try:
                    if not protection:
                        if use_mpmc:
                            yield from vlq.put(api, r)
                        else:
                            yield from api.send(sep, r, REQ_BYTES)
                        continue
                    if use_mpmc:
                        ok = yield from vlq.try_put(api, r)
                    else:
                        ok = yield from api.send_nowait(sep, r, REQ_BYTES)
                except DtuFault:
                    resolve_failed(r, api.sim.now)
                    continue
                if not ok:
                    q.push_front(r)
                    stack.count_backpressure()
                    blocked = True
                    break
                seen["sent"].add(r.uid)
            if blocked:
                yield from api.sleep_us(10.0)
            elif i < n:
                gap = reqs[i].arrival_ps - api.sim.now
                if gap > 0:
                    yield from api.sleep_us(gap / 1e6)

    def sink(api, g):
        keys = [f"sink{g}_rep{s}" for s in range(S)]
        yield from rendezvous(api, env, *keys)
        reps = [env[f"sink{g}_rep{s}"] for s in range(S)]
        idle = 0
        while True:
            got = False
            for ep in reps:
                msg = yield from api.fetch(ep)
                if msg is None:
                    continue
                got = True
                req = msg.data
                yield from api.ack(ep, msg)
                now = api.sim.now
                records.append((req.tenant, now - req.arrival_ps,
                                now <= req.deadline_ps))
                seen["done"].add(req.uid)
                acct["completed"] += 1
                acct["t_last"] = max(acct["t_last"], now)
            if got:
                idle = 0
                continue
            idle = min(idle + 1, 4)
            yield from api.sleep_us(2.0 * (1 << idle))

    # -- assemble ------------------------------------------------------------

    ctrl = plat.controller
    lb = plat.run_proc(ctrl.spawn("lb", 0, balancer))
    kv_acts = []
    n_kv_tiles = (S + pt.pack - 1) // pt.pack
    for s in range(S):
        kv_tile = 1 + s // pt.pack
        fs = plat.run_proc(boot_m3fs(plat, tile=kv_tile, blocks=2048,
                                     name=f"m3fs{s}"))
        kv = plat.run_proc(ctrl.spawn(
            f"kv{s}", kv_tile, lambda api, s=s: kv_server(api, s)))
        env[f"kv{s}_fs"] = plat.run_proc(connect_fs(plat, kv, fs))
        kv_acts.append(kv)
    gw_acts, sink_acts = [], []
    per_gw_rps = offered_rps / G
    for g in range(G):
        tile = 1 + n_kv_tiles + g
        schedule = open_loop_arrivals(g, pt.requests, per_gw_rps,
                                      keyspace=pt.keyspace, seed=pt.seed,
                                      skew=pt.skew, skew_mod=S)
        gw_acts.append(plat.run_proc(ctrl.spawn(
            f"gw{g}", tile,
            lambda api, g=g, sc=schedule: gateway(api, g, sc))))
        sink_acts.append(plat.run_proc(ctrl.spawn(
            f"sink{g}", tile, lambda api, g=g: sink(api, g))))
    if not use_mpmc:
        for g in range(G):
            sep, rep, _ = plat.run_proc(
                ctrl.wire_channel(gw_acts[g], lb, credits=2))
            env[f"gw{g}_sep"], env[f"lb_rep{g}"] = sep, rep
    for s in range(S):
        sep, rep, _ = plat.run_proc(
            ctrl.wire_channel(lb, kv_acts[s], credits=2))
        env[f"lb_sep{s}"], env[f"kv{s}_rep"] = sep, rep
        for g in range(G):
            sep, rep, _ = plat.run_proc(
                ctrl.wire_channel(kv_acts[s], sink_acts[g], credits=4))
            env[f"kv{s}_sink{g}"], env[f"sink{g}_rep{s}"] = sep, rep

    for gw in gw_acts:
        plat.sim.run_until_event(gw.exit_event, limit=SIM_LIMIT_PS)
    while (acct["completed"] + acct["shed"] + acct["failed"]) < expected \
            and plat.sim.now < SIM_LIMIT_PS:
        plat.sim.run(until=min(plat.sim.now + 1_000_000_000, SIM_LIMIT_PS))
    resolved = acct["completed"] + acct["shed"] + acct["failed"]
    if resolved < expected:
        missing = {}
        for stage in ("kv", "lb", "sent", "gw"):
            for uid in seen[stage] - seen["done"]:
                missing.setdefault(uid, stage)
        raise RuntimeError(
            f"figS {pt.system}@{pt.load}: {resolved}/{expected} requests "
            f"resolved within {SIM_LIMIT_PS} ps (acct={acct}, last seen: "
            f"{sorted(missing.items())})")
    suite.finish()

    # -- reduce one point ----------------------------------------------------

    lats = sorted(lat for _, lat, _ in records)
    met = sum(1 for _, _, ok in records if ok)
    span_ps = max(1, acct["t_last"] - acct["t_first"])
    span_s = span_ps / 1e12
    stats = plat.stats
    tenants: Dict[str, Dict[str, float]] = {}
    for t in DEFAULT_TENANTS:
        tl = sorted(lat for name, lat, _ in records if name == t.name)
        tenants[t.name] = {
            "count": len(tl),
            "met": sum(1 for name, _, ok in records
                       if name == t.name and ok),
            "slo_us": t.slo_us,
            "p50_us": _percentile(tl, 0.50) / 1e6,
            "p99_us": _percentile(tl, 0.99) / 1e6,
            "p999_us": _percentile(tl, 0.999) / 1e6,
        }
    return {
        "offered_rps": offered_rps,
        "goodput_rps": met / span_s,
        "throughput_rps": len(records) / span_s,
        "completed": acct["completed"],
        "slo_met": met,
        "shed": acct["shed"],
        "failed": acct["failed"],
        "span_ms": span_ps / 1e9,
        "p50_us": _percentile(lats, 0.50) / 1e6,
        "p99_us": _percentile(lats, 0.99) / 1e6,
        "p999_us": _percentile(lats, 0.999) / 1e6,
        "shed_quota": stats.counter_value("serving/shed_quota"),
        "shed_deadline": stats.counter_value("serving/shed_deadline"),
        "shed_full": stats.counter_value("serving/shed_full"),
        "backpressure": stats.counter_value("serving/backpressure"),
        "steered": stats.counter_value("serving/steered"),
        "breaker_opens": stats.counter_value("serving/breaker_opens"),
        "mpmc_rejects": stats.counter_value("mpmc/ingress/full_rejects"),
        "retransmits": stats.counter_value("recovery/retransmits"),
        "dropped": stats.counter_value("faults/pkts_dropped"),
        "slow_paths": stats.counter_value("m3x/slow_paths"),
        "migrations": stats.counter_value("ctrl/migrations"),
        "migrate_refused": stats.counter_value("ctrl/migrate_refused"),
        "retargets": stats.counter_value("ctrl/retargets"),
        "tenants": tenants,
    }


# -- sweep decomposition (repro.runner) ---------------------------------------

@dataclass(frozen=True)
class FigSPoint:
    system: str                # "m3v" | "m3x"
    load: float                # multiple of base_rps
    backend: str = "dtu"       # dtu | mpmc
    protection: bool = True
    kv_shards: int = 4
    gateways: int = 3
    requests: int = 60
    base_rps: float = 3000.0
    keyspace: int = 4096
    preload: int = 64
    fault_rate: float = 0.02
    seed: int = 1
    queue_slots: int = 16
    quota_mult: float = 2.5
    # adaptive-placement arm knobs (defaults reproduce the classic
    # spread-out static layout exactly)
    sched: str = "rr"          # TileMux policy (m3v only)
    rebalance: bool = False    # attach the controller rebalancer (m3v only)
    pack: int = 1              # KV replicas per tile (1 = one per tile)
    skew: float = 0.0          # fraction of requests steered to shard 0


def _arm(pt: FigSPoint) -> str:
    name = pt.system
    if pt.backend != "dtu":
        name += f"_{pt.backend}"
    if not pt.protection:
        name += "_noprot"
    if pt.rebalance:
        name += "_adapt"
    elif pt.pack != 1 or pt.skew > 0:
        name += "_static"
    return name


def figs_points(params: FigSParams = None) -> List[FigSPoint]:
    p = params or FigSParams()

    def mk(system, load, **kw):
        kw.setdefault("requests", p.requests)
        return FigSPoint(system, load, kv_shards=p.kv_shards,
                         gateways=p.gateways,
                         base_rps=p.base_rps, keyspace=p.keyspace,
                         preload=p.preload, fault_rate=p.fault_rate,
                         seed=p.seed, queue_slots=p.queue_slots,
                         quota_mult=p.quota_mult, **kw)

    pts = [mk(system, load, backend=p.backend)
           for system in p.systems for load in p.loads]
    pts += [mk("m3v", load, protection=False) for load in p.ablation_loads]
    pts += [mk("m3v", load, backend="mpmc") for load in p.backend_loads]
    # adaptive-placement pair: identical packed layout + skewed load,
    # static vs EDF + rebalancer (the live-migration arm)
    adapt = dict(pack=p.pack, skew=p.skew, requests=p.adaptive_requests)
    pts += [mk("m3v", load, **adapt) for load in p.adaptive_loads]
    pts += [mk("m3v", load, sched="edf", rebalance=True, **adapt)
            for load in p.adaptive_loads]
    return pts


def run_figs_point(pt: FigSPoint) -> Dict[str, float]:
    """Goodput/latency/protection stats for one (arm, offered load)."""
    return _run_serving(pt)


def reduce_figs(params: FigSParams,
                values: List[Dict]) -> Dict[str, Dict[float, Dict]]:
    p = params or FigSParams()
    out: Dict[str, Dict[float, Dict]] = {}
    for pt, v in zip(figs_points(p), values):
        out.setdefault(_arm(pt), {})[pt.load] = v
    return out


def run_figs(params: FigSParams = None) -> Dict[str, Dict[float, Dict]]:
    """Returns {arm -> {load -> point stats}}; arms are ``m3v``/``m3x``
    plus the ``m3v_noprot`` ablation and ``m3v_mpmc`` fan-in arms."""
    p = params or FigSParams()
    return reduce_figs(p, [run_figs_point(pt) for pt in figs_points(p)])
