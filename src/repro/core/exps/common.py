"""Shared plumbing for the experiment runners."""

from __future__ import annotations

from typing import Dict, Generator

from repro.api import System, SystemConfig, build_system
from repro.core.platform import M3vPlatform, PlatformConfig
from repro.tiles.costs import BOOM, ROCKET


def fpga_config(**overrides) -> PlatformConfig:
    """The FPGA prototype shape: 8 BOOM processing tiles + controller
    on a Rocket core + 2 DDR4 memory tiles (Figure 4)."""
    config = PlatformConfig(n_proc_tiles=8, proc_core=BOOM,
                            controller_core=ROCKET, n_mem_tiles=2)
    if overrides:
        from dataclasses import replace
        config = replace(config, **overrides)
    return config


def fpga_sysconfig(kind: str = "m3v", **overrides) -> SystemConfig:
    """The FPGA prototype shape as a facade :class:`SystemConfig`."""
    config = SystemConfig(kind=kind, n_proc_tiles=8, proc_core=BOOM,
                          controller_core=ROCKET, n_mem_tiles=2)
    if overrides:
        from dataclasses import replace
        config = replace(config, **overrides)
    return config


def fpga_system(kind: str = "m3v", **overrides) -> System:
    """Build an FPGA-shaped system through :func:`repro.api.build_system`."""
    return build_system(fpga_sysconfig(kind, **overrides))


def linux_system(**overrides) -> System:
    """Build the Linux reference machine through the facade."""
    return build_system(SystemConfig(kind="linux", **overrides))


def rendezvous(api, env: Dict, *keys) -> Generator:
    """Boot-time helper: wait for the harness to publish channel ids."""
    while any(k not in env for k in keys):
        yield api.sim.timeout(1_000_000)


def wait_all(plat: M3vPlatform, acts, limit: int = 10**14) -> None:
    for act in acts:
        plat.sim.run_until_event(act.exit_event, limit=limit)
