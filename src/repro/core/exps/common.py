"""Shared plumbing for the experiment runners."""

from __future__ import annotations

from typing import Dict, Generator

from repro.core.platform import M3vPlatform, PlatformConfig, build_m3v
from repro.tiles.costs import BOOM, ROCKET


def fpga_config(**overrides) -> PlatformConfig:
    """The FPGA prototype shape: 8 BOOM processing tiles + controller
    on a Rocket core + 2 DDR4 memory tiles (Figure 4)."""
    config = PlatformConfig(n_proc_tiles=8, proc_core=BOOM,
                            controller_core=ROCKET, n_mem_tiles=2)
    if overrides:
        from dataclasses import replace
        config = replace(config, **overrides)
    return config


def rendezvous(api, env: Dict, *keys) -> Generator:
    """Boot-time helper: wait for the harness to publish channel ids."""
    while any(k not in env for k in keys):
        yield api.sim.timeout(1_000_000)


def wait_all(plat: M3vPlatform, acts, limit: int = 10**14) -> None:
    for act in acts:
        plat.sim.run_until_event(act.exit_event, limit=limit)
