"""Figure 6: local/remote communication on M3v and Linux references.

Four bars: Linux yield (2x), Linux syscall, M3v local RPC, M3v remote
RPC — all no-op round-trips on the 80 MHz BOOM FPGA cores, 1000 runs
with a warm system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.exps.common import fpga_system, linux_system, rendezvous
from repro.tiles.costs import BOOM


@dataclass
class Fig6Params:
    iterations: int = 1000
    warmup: int = 50


def _measure_m3v_rpc(local: bool, p: Fig6Params) -> float:
    """Mean no-op RPC latency in ps."""
    plat = fpga_system()
    env: Dict = {}
    out: Dict = {}

    def server(api):
        yield from rendezvous(api, env, "s_rep")
        while True:
            msg = yield from api.recv(env["s_rep"])
            if msg.data == "stop":
                return
            yield from api.reply(env["s_rep"], msg, data=0, size=16)

    def client(api):
        yield from rendezvous(api, env, "c_sep")
        for _ in range(p.warmup):
            yield from api.call(env["c_sep"], env["c_rep"], 0, 16)
        start = api.sim.now
        for _ in range(p.iterations):
            yield from api.call(env["c_sep"], env["c_rep"], 0, 16)
        out["ps"] = (api.sim.now - start) / p.iterations
        yield from api.send(env["c_sep"], "stop", 16)

    ctrl = plat.controller
    server_act = plat.run_proc(ctrl.spawn("server", 0 if local else 1, server))
    client_act = plat.run_proc(ctrl.spawn("client", 0, client))
    sep, rep, rpl = plat.run_proc(ctrl.wire_channel(client_act, server_act,
                                                    credits=2))
    env.update(s_rep=rep, c_sep=sep, c_rep=rpl)
    plat.sim.run_until_event(client_act.exit_event, limit=10**14)
    return out["ps"]


def _measure_linux_syscall(p: Fig6Params) -> float:
    machine = linux_system()
    out: Dict = {}

    def prog(api):
        for _ in range(p.warmup):
            yield from api.noop_syscall()
        start = api.sim.now
        for _ in range(p.iterations):
            yield from api.noop_syscall()
        out["ps"] = (api.sim.now - start) / p.iterations

    proc = machine.spawn("bench", prog)
    machine.sim.run_until_event(proc.exit_event, limit=10**14)
    return out["ps"]


def _measure_linux_yield2(p: Fig6Params) -> float:
    """Two context switches: ping yields to pong, pong yields back."""
    machine = linux_system()
    out: Dict = {}
    n = p.iterations

    def ponger(api):
        for _ in range(n + p.warmup + 5):
            yield from api.sched_yield()

    def pinger(api):
        for _ in range(p.warmup):
            yield from api.sched_yield()
        start = api.sim.now
        for _ in range(n):
            yield from api.sched_yield()
        out["ps"] = (api.sim.now - start) / n

    machine.spawn("ponger", ponger)
    proc = machine.spawn("pinger", pinger)
    machine.sim.run_until_event(proc.exit_event, limit=10**14)
    return out["ps"]


# -- sweep decomposition (repro.runner) ---------------------------------------
#
# One point per bar; each point builds its own platform, so points are
# pure and picklable and the parallel runner can fan them out.

FIG6_KINDS = ("linux_yield_2x", "linux_syscall", "m3v_local", "m3v_remote")


@dataclass(frozen=True)
class Fig6Point:
    kind: str
    iterations: int = 1000
    warmup: int = 50


def fig6_points(params: Fig6Params = None) -> List[Fig6Point]:
    p = params or Fig6Params()
    return [Fig6Point(kind, p.iterations, p.warmup) for kind in FIG6_KINDS]


def run_fig6_point(pt: Fig6Point) -> float:
    """Mean round-trip latency in ps for one bar of Figure 6."""
    p = Fig6Params(iterations=pt.iterations, warmup=pt.warmup)
    if pt.kind == "linux_yield_2x":
        return _measure_linux_yield2(p)
    if pt.kind == "linux_syscall":
        return _measure_linux_syscall(p)
    if pt.kind in ("m3v_local", "m3v_remote"):
        return _measure_m3v_rpc(local=pt.kind == "m3v_local", p=p)
    raise ValueError(f"unknown fig6 point kind {pt.kind!r}")


def reduce_fig6(params: Fig6Params,
                values: List[float]) -> Dict[str, Dict[str, float]]:
    period_ps = BOOM.clock.period_ps
    return {pt.kind: {"us": ps / 1e6, "kcycles": ps / period_ps / 1e3}
            for pt, ps in zip(fig6_points(params), values)}


def run_fig6(params: Fig6Params = None) -> Dict[str, Dict[str, float]]:
    """Returns rows: name -> {us, kcycles} like the two x-axes of Fig 6."""
    p = params or Fig6Params()
    return reduce_fig6(p, [run_fig6_point(pt) for pt in fig6_points(p)])
