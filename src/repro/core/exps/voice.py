"""Section 6.5.1: the voice assistant, shared vs isolated placement.

The scanner runs alone on a Rocket core; compressor, net and pager run
either on one shared BOOM core or a dedicated BOOM core each.  Audio
goes out via UDP (the paper fell back from TCP to UDP, see the wire
model's loss knob).  Reported: end-to-end runtime and the sharing
overhead (paper: 384 ms isolated vs 398 ms shared, +3.6%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.compress import make_audio
from repro.apps.voice import (
    WINDOW_SAMPLES,
    compressor_program,
    scanner_program,
)
from repro.core.exps.common import fpga_system
from repro.dtu.endpoints import Perm
from repro.kernel.caps import CapKind, MGateObj
from repro.services.boot import boot_net, boot_pager, connect_net
from repro.tiles.costs import ROCKET


@dataclass
class VoiceParams:
    triggers: int = 8             # trigger words in the audio stream
    repetitions: int = 1          # pipeline runs to average over
    scanner_tile: int = 0         # the Rocket tile


def run_voice_once(shared: bool, p: VoiceParams) -> Dict[str, float]:
    plat = fpga_system(core_overrides={0: ROCKET})
    if shared:
        comp_tile = net_tile = pager_tile = 1
    else:
        comp_tile, net_tile, pager_tile = 2, 1, 3

    plat.run_proc(boot_pager(plat, tile=pager_tile))
    net = plat.run_proc(boot_net(plat, tile=net_tile))

    # audio with known trigger positions
    n_samples = p.triggers * 4 * WINDOW_SAMPLES
    trigger_at = [i * 4 * WINDOW_SAMPLES + WINDOW_SAMPLES // 4
                  for i in range(p.triggers)]
    audio = make_audio(n_samples, trigger_at=trigger_at)

    env: Dict = {}
    ctrl = plat.controller
    scanner = plat.run_proc(ctrl.spawn(
        "scanner", p.scanner_tile, scanner_program(env, audio, p.triggers)))
    compressor = plat.run_proc(ctrl.spawn(
        "compressor", comp_tile, compressor_program(env, audio, p.triggers),
        pager="pager"))

    # the scanner's staging buffer: an mgate in DRAM it can write and
    # derive per-trigger sub-capabilities from
    audio_buf_bytes = 4 * WINDOW_SAMPLES * 2
    region = ctrl.phys.alloc(audio_buf_bytes)
    audio_cap = ctrl.tables[scanner.act_id].insert(
        CapKind.MGATE, MGateObj(mem_tile=region.mem_tile, base=region.base,
                                size=region.size, perm=Perm.RW))
    audio_ep = plat.run_proc(ctrl.wire_memory(
        scanner, region.mem_tile, region.base, region.size))
    # scanner -> compressor message channel
    sep, rep, _ = plat.run_proc(ctrl.wire_channel(scanner, compressor,
                                                  slots=4, credits=2))
    env["net_eps"] = plat.run_proc(connect_net(plat, compressor, net))
    env["comp_data_ep"] = ctrl.alloc_ep(comp_tile)
    env.update(audio_ep=audio_ep, audio_sel=audio_cap.sel,
               audio_buf_bytes=audio_buf_bytes,
               compressor_act=compressor.act_id,
               comp_rep=rep)
    start = plat.sim.now
    env["scan_sep"] = sep  # publishing this starts the scanner

    plat.sim.run_until_event(compressor.exit_event, limit=10**16)
    elapsed_ms = (env["compressor_done"] - start) / 1e9
    return {"ms": elapsed_ms,
            "bytes_in": env["bytes_in"], "bytes_out": env["bytes_out"],
            "compression_ratio": env["bytes_in"] / max(1, env["bytes_out"])}


# -- sweep decomposition (repro.runner) ---------------------------------------

@dataclass(frozen=True)
class VoicePoint:
    shared: bool
    rep: int                    # repetition index (averaged by the reducer)
    triggers: int = 8
    scanner_tile: int = 0


def voice_points(params: VoiceParams = None) -> List[VoicePoint]:
    p = params or VoiceParams()
    return [VoicePoint(shared, rep, p.triggers, p.scanner_tile)
            for shared in (False, True) for rep in range(p.repetitions)]


def run_voice_point(pt: VoicePoint) -> Dict[str, float]:
    """One end-to-end pipeline run; the full run_voice_once row."""
    p = VoiceParams(triggers=pt.triggers, repetitions=1,
                    scanner_tile=pt.scanner_tile)
    return run_voice_once(pt.shared, p)


def reduce_voice(params: VoiceParams,
                 values: List[Dict[str, float]]) -> Dict[str, float]:
    points = voice_points(params)
    iso = [v["ms"] for pt, v in zip(points, values) if not pt.shared]
    sha = [v["ms"] for pt, v in zip(points, values) if pt.shared]
    isolated = sum(iso) / len(iso)
    shared = sum(sha) / len(sha)
    return {"isolated_ms": isolated, "shared_ms": shared,
            "overhead_pct": 100.0 * (shared - isolated) / isolated}


def run_voice(params: VoiceParams = None) -> Dict[str, float]:
    """Returns isolated/shared runtimes (ms) and the sharing overhead."""
    p = params or VoiceParams()
    return reduce_voice(p, [run_voice_point(pt) for pt in voice_points(p)])
