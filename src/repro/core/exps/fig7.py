"""Figure 7: file read/write throughput, M3v (shared/isolated) vs Linux.

2 MiB files, 4 KiB buffers, 64-block extents; 10 measured runs after 4
warmup runs (section 6.3).  "Shared" puts the pager, the file system
and the benchmark on one BOOM core; "isolated" gives each its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.exps.common import fpga_system, linux_system
from repro.linuxsim.machine import O_CREAT as L_O_CREAT
from repro.linuxsim.machine import O_TRUNC as L_O_TRUNC
from repro.linuxsim.machine import O_WRONLY as L_O_WRONLY
from repro.services.boot import boot_m3fs, boot_pager, connect_fs
from repro.services.m3fs import FsClient, O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY


@dataclass
class Fig7Params:
    file_bytes: int = 2 * 1024 * 1024
    buf_bytes: int = 4096
    runs: int = 10
    warmup: int = 4
    max_extent_blocks: int = 64


def _mib_per_s(total_bytes: int, ps: int) -> float:
    return total_bytes / (1 << 20) / (ps / 1e12)


def _run_m3v(op: str, shared: bool, p: Fig7Params) -> float:
    plat = fpga_system()
    fs_tile = 1
    bench_tile = 1 if shared else 2
    pager_tile = 1 if shared else 3

    pager, _ = plat.run_proc(boot_pager(plat, tile=pager_tile))
    blocks = max(512, 4 * p.file_bytes // 4096)
    fs = plat.run_proc(boot_m3fs(plat, tile=fs_tile, blocks=blocks,
                                 max_extent_blocks=p.max_extent_blocks))
    if op == "read":
        fs.populate(plat.tiles[fs.region.mem_tile].dtu, "/bench.dat",
                    b"\xab" * p.file_bytes,
                    max_extent_blocks=p.max_extent_blocks)
    env: Dict = {}
    out: Dict = {}

    def bench(api):
        while "fs_eps" not in env:
            yield api.sim.timeout(1_000_000)
        fsc = FsClient(api, *env["fs_eps"])
        chunk = b"\xcd" * p.buf_bytes

        def one_run():
            if op == "read":
                fd = yield from fsc.open("/bench.dat", O_RDONLY)
                while True:
                    data = yield from fsc.read(fd, p.buf_bytes)
                    if not data:
                        break
                yield from fsc.close(fd)
            else:
                fd = yield from fsc.open("/bench.dat",
                                         O_WRONLY | O_CREAT | O_TRUNC)
                written = 0
                while written < p.file_bytes:
                    yield from fsc.write(fd, chunk)
                    written += len(chunk)
                yield from fsc.close(fd)

        for _ in range(p.warmup):
            yield from one_run()
        start = api.sim.now
        for _ in range(p.runs):
            yield from one_run()
        out["ps"] = api.sim.now - start

    act = plat.run_proc(plat.controller.spawn("bench", bench_tile, bench,
                                              pager="pager"))
    env["fs_eps"] = plat.run_proc(connect_fs(plat, act, fs))
    plat.sim.run_until_event(act.exit_event, limit=10**15)
    return _mib_per_s(p.runs * p.file_bytes, out["ps"])


def _run_linux(op: str, p: Fig7Params) -> float:
    machine = linux_system()
    out: Dict = {}

    def prog(api):
        chunk = b"\xcd" * p.buf_bytes
        if op == "read":
            fd = yield from api.open("/bench.dat", L_O_CREAT | L_O_WRONLY)
            written = 0
            while written < p.file_bytes:
                yield from api.write(fd, chunk)
                written += len(chunk)
            yield from api.close(fd)

        def one_run():
            if op == "read":
                fd = yield from api.open("/bench.dat")
                while True:
                    data = yield from api.read(fd, p.buf_bytes)
                    if not data:
                        break
                yield from api.close(fd)
            else:
                fd = yield from api.open("/bench.dat",
                                         L_O_CREAT | L_O_WRONLY | L_O_TRUNC)
                written = 0
                while written < p.file_bytes:
                    yield from api.write(fd, chunk)
                    written += len(chunk)
                yield from api.close(fd)

        for _ in range(p.warmup):
            yield from one_run()
        start = api.sim.now
        for _ in range(p.runs):
            yield from one_run()
        out["ps"] = api.sim.now - start

    proc = machine.spawn("bench", prog)
    machine.sim.run_until_event(proc.exit_event, limit=10**15)
    return _mib_per_s(p.runs * p.file_bytes, out["ps"])


# -- sweep decomposition (repro.runner) ---------------------------------------

# (system, op, shared) for the six bars, in the order Figure 7 plots them
FIG7_BARS = (("linux", "write", False), ("linux", "read", False),
             ("m3v", "write", True), ("m3v", "write", False),
             ("m3v", "read", True), ("m3v", "read", False))


@dataclass(frozen=True)
class Fig7Point:
    system: str                # "linux" | "m3v"
    op: str                    # "read" | "write"
    shared: bool = False       # meaningful for m3v only
    file_bytes: int = 2 * 1024 * 1024
    buf_bytes: int = 4096
    runs: int = 10
    warmup: int = 4
    max_extent_blocks: int = 64

    @property
    def name(self) -> str:
        if self.system == "linux":
            return f"linux_{self.op}"
        return f"m3v_{self.op}_{'shared' if self.shared else 'isolated'}"


def fig7_points(params: Fig7Params = None) -> List[Fig7Point]:
    p = params or Fig7Params()
    return [Fig7Point(system, op, shared, p.file_bytes, p.buf_bytes,
                      p.runs, p.warmup, p.max_extent_blocks)
            for system, op, shared in FIG7_BARS]


def run_fig7_point(pt: Fig7Point) -> float:
    """MiB/s for one bar of Figure 7."""
    p = Fig7Params(file_bytes=pt.file_bytes, buf_bytes=pt.buf_bytes,
                   runs=pt.runs, warmup=pt.warmup,
                   max_extent_blocks=pt.max_extent_blocks)
    if pt.system == "linux":
        return _run_linux(pt.op, p)
    return _run_m3v(pt.op, shared=pt.shared, p=p)


def reduce_fig7(params: Fig7Params, values: List[float]) -> Dict[str, float]:
    return {pt.name: v for pt, v in zip(fig7_points(params), values)}


def run_fig7(params: Fig7Params = None) -> Dict[str, float]:
    """Returns MiB/s for the six bars of Figure 7."""
    p = params or Fig7Params()
    return reduce_fig7(p, [run_fig7_point(pt) for pt in fig7_points(p)])
