"""Figure 8: UDP round-trip latency, M3v (shared/isolated) vs Linux.

50 repetitions of sending and receiving 1-byte packets after 5 warmup
runs; the peer is the fast remote host over a direct gigabit link
(section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.exps.common import fpga_system, linux_system
from repro.services.boot import boot_net, boot_pager, connect_net
from repro.services.net import NetClient

ECHO_PORT = 7


@dataclass
class Fig8Params:
    repetitions: int = 50
    warmup: int = 5
    payload_bytes: int = 1


def _run_m3v(shared: bool, p: Fig8Params) -> float:
    """Mean RTT in microseconds."""
    plat = fpga_system()
    nic_tile = 1                       # net is pinned to the NIC tile
    bench_tile = 1 if shared else 2
    pager_tile = 1 if shared else 3

    plat.run_proc(boot_pager(plat, tile=pager_tile))
    net = plat.run_proc(boot_net(plat, tile=nic_tile))
    net.remote.echo_ports.add(ECHO_PORT)
    env: Dict = {}
    out: Dict = {}

    def bench(api):
        while "net_eps" not in env:
            yield api.sim.timeout(1_000_000)
        netc = NetClient(api, *env["net_eps"])
        sid = yield from netc.socket()
        yield from netc.bind(sid, 5000)
        for _ in range(p.warmup):
            yield from netc.sendto(sid, ECHO_PORT, b"x", p.payload_bytes)
            yield from netc.recvfrom(sid)
        start = api.sim.now
        for _ in range(p.repetitions):
            yield from netc.sendto(sid, ECHO_PORT, b"x", p.payload_bytes)
            yield from netc.recvfrom(sid)
        out["ps"] = (api.sim.now - start) / p.repetitions

    act = plat.run_proc(plat.controller.spawn("bench", bench_tile, bench,
                                              pager="pager"))
    env["net_eps"] = plat.run_proc(connect_net(plat, act, net))
    plat.sim.run_until_event(act.exit_event, limit=10**15)
    return out["ps"] / 1e6


def _run_linux(p: Fig8Params) -> float:
    machine = linux_system(with_net=True)
    machine.remote.echo_ports.add(ECHO_PORT)
    out: Dict = {}

    def prog(api):
        sid = yield from api.socket()
        yield from api.bind(sid, 5000)
        for _ in range(p.warmup):
            yield from api.sendto(sid, ECHO_PORT, b"x", p.payload_bytes)
            yield from api.recvfrom(sid)
        start = api.sim.now
        for _ in range(p.repetitions):
            yield from api.sendto(sid, ECHO_PORT, b"x", p.payload_bytes)
            yield from api.recvfrom(sid)
        out["ps"] = (api.sim.now - start) / p.repetitions

    proc = machine.spawn("bench", prog)
    machine.sim.run_until_event(proc.exit_event, limit=10**15)
    return out["ps"] / 1e6


# -- sweep decomposition (repro.runner) ---------------------------------------

FIG8_KINDS = ("linux", "m3v_shared", "m3v_isolated")


@dataclass(frozen=True)
class Fig8Point:
    kind: str
    repetitions: int = 50
    warmup: int = 5
    payload_bytes: int = 1


def fig8_points(params: Fig8Params = None) -> List[Fig8Point]:
    p = params or Fig8Params()
    return [Fig8Point(kind, p.repetitions, p.warmup, p.payload_bytes)
            for kind in FIG8_KINDS]


def run_fig8_point(pt: Fig8Point) -> float:
    """Mean RTT in microseconds for one bar of Figure 8."""
    p = Fig8Params(repetitions=pt.repetitions, warmup=pt.warmup,
                   payload_bytes=pt.payload_bytes)
    if pt.kind == "linux":
        return _run_linux(p)
    if pt.kind in ("m3v_shared", "m3v_isolated"):
        return _run_m3v(shared=pt.kind == "m3v_shared", p=p)
    raise ValueError(f"unknown fig8 point kind {pt.kind!r}")


def reduce_fig8(params: Fig8Params, values: List[float]) -> Dict[str, float]:
    return {pt.kind: v for pt, v in zip(fig8_points(params), values)}


def run_fig8(params: Fig8Params = None) -> Dict[str, float]:
    """Returns mean RTT in microseconds for the three bars of Figure 8."""
    p = params or Fig8Params()
    return reduce_fig8(p, [run_fig8_point(pt) for pt in fig8_points(p)])
