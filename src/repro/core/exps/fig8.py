"""Figure 8: UDP round-trip latency, M3v (shared/isolated) vs Linux.

50 repetitions of sending and receiving 1-byte packets after 5 warmup
runs; the peer is the fast remote host over a direct gigabit link
(section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.exps.common import fpga_config
from repro.core.platform import build_m3v
from repro.linuxsim import LinuxMachine
from repro.services.boot import boot_net, boot_pager, connect_net
from repro.services.net import NetClient

ECHO_PORT = 7


@dataclass
class Fig8Params:
    repetitions: int = 50
    warmup: int = 5
    payload_bytes: int = 1


def _run_m3v(shared: bool, p: Fig8Params) -> float:
    """Mean RTT in microseconds."""
    plat = build_m3v(fpga_config())
    nic_tile = 1                       # net is pinned to the NIC tile
    bench_tile = 1 if shared else 2
    pager_tile = 1 if shared else 3

    plat.run_proc(boot_pager(plat, tile=pager_tile))
    net = plat.run_proc(boot_net(plat, tile=nic_tile))
    net.remote.echo_ports.add(ECHO_PORT)
    env: Dict = {}
    out: Dict = {}

    def bench(api):
        while "net_eps" not in env:
            yield api.sim.timeout(1_000_000)
        netc = NetClient(api, *env["net_eps"])
        sid = yield from netc.socket()
        yield from netc.bind(sid, 5000)
        for _ in range(p.warmup):
            yield from netc.sendto(sid, ECHO_PORT, b"x", p.payload_bytes)
            yield from netc.recvfrom(sid)
        start = api.sim.now
        for _ in range(p.repetitions):
            yield from netc.sendto(sid, ECHO_PORT, b"x", p.payload_bytes)
            yield from netc.recvfrom(sid)
        out["ps"] = (api.sim.now - start) / p.repetitions

    act = plat.run_proc(plat.controller.spawn("bench", bench_tile, bench,
                                              pager="pager"))
    env["net_eps"] = plat.run_proc(connect_net(plat, act, net))
    plat.sim.run_until_event(act.exit_event, limit=10**15)
    return out["ps"] / 1e6


def _run_linux(p: Fig8Params) -> float:
    machine = LinuxMachine(with_net=True)
    machine.remote.echo_ports.add(ECHO_PORT)
    out: Dict = {}

    def prog(api):
        sid = yield from api.socket()
        yield from api.bind(sid, 5000)
        for _ in range(p.warmup):
            yield from api.sendto(sid, ECHO_PORT, b"x", p.payload_bytes)
            yield from api.recvfrom(sid)
        start = api.sim.now
        for _ in range(p.repetitions):
            yield from api.sendto(sid, ECHO_PORT, b"x", p.payload_bytes)
            yield from api.recvfrom(sid)
        out["ps"] = (api.sim.now - start) / p.repetitions

    proc = machine.spawn("bench", prog)
    machine.sim.run_until_event(proc.exit_event, limit=10**15)
    return out["ps"] / 1e6


def run_fig8(params: Fig8Params = None) -> Dict[str, float]:
    """Returns mean RTT in microseconds for the three bars of Figure 8."""
    p = params or Fig8Params()
    return {
        "linux": _run_linux(p),
        "m3v_shared": _run_m3v(shared=True, p=p),
        "m3v_isolated": _run_m3v(shared=False, p=p),
    }
