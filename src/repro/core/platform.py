"""Platform assembly.

Builds the M3v platform of Figure 4: processing tiles (vDTU + TileMux),
a controller tile, memory tiles with DDR4 interfaces, all connected by
the 2x2 star-mesh NoC.  The tile counts are configurable to cover both
the FPGA prototype (8 processing tiles) and the gem5 configuration of
section 6.4 (up to 12 processing tiles, 3 GHz x86 cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Generator, List, Optional

from repro.dtu import ACT_TILEMUX, DtuParams, MemoryDtu, SendEndpoint, VDtu
from repro.dtu.dtu import Dtu
from repro.kernel.caps import RGateObj
from repro.kernel.controller import (
    Controller,
    EP_TMUX_PAGER,
)
from repro.kernel.rebalance import PlacementSpec, Rebalancer
from repro.mux.sched import SchedSpec
from repro.mux.tilemux import TileMux
from repro.noc import NocFabric, NocParams, StarMeshTopology
from repro.sim import Simulator
from repro.sim.stats import StatRegistry
from repro.tiles import BOOM, CoreCosts, ROCKET, Tile, TileKind


@dataclass
class PlatformConfig:
    """Shape and parameters of a platform instance."""

    n_proc_tiles: int = 8
    proc_core: CoreCosts = BOOM
    controller_core: CoreCosts = ROCKET
    n_mem_tiles: int = 2
    dram_bytes: int = 64 * 1024 * 1024
    noc: NocParams = field(default_factory=NocParams)
    timeslice_us: float = 1000.0
    # heterogeneous cores: tile index -> CoreCosts (overrides proc_core)
    core_overrides: Dict[int, CoreCosts] = field(default_factory=dict)
    dtu_overrides: Dict[str, int] = field(default_factory=dict)
    # conservative parallel DES (repro.sim.parallel); 0 = serial unless
    # REPRO_SHARDS overrides at Simulator construction
    shards: int = 0
    shard_policy: str = "block"
    # TileMux scheduling policy (repro.mux.sched); None = round-robin
    sched: Optional[SchedSpec] = None
    # adaptive placement (repro.kernel.rebalance); None = static (off)
    placement: Optional[PlacementSpec] = None

    def with_tiles(self, n: int) -> "PlatformConfig":
        return replace(self, n_proc_tiles=n)


def _sharded_sim(config: "PlatformConfig", all_tiles: List[int]):
    """Build the Simulator (honoring shard config/env) and its plan.

    Returns ``(sim, shard_of)`` where ``shard_of`` maps a tile id to
    its shard (always ``GLOBAL_SHARD`` on serial runs).  The plan's
    lookahead is the NoC bound (:meth:`repro.noc.NocParams.lookahead_ps`).
    """
    sim = Simulator(shards=config.shards or None)
    if not sim.shards:
        return sim, (lambda tid: -1)
    from repro.sim.parallel import ShardPlan

    plan = ShardPlan.for_tiles(all_tiles, sim.shards,
                               config.noc.lookahead_ps(),
                               policy=config.shard_policy)
    sim.set_shard_plan(plan)
    return sim, plan.shard_of


class M3vPlatform:
    """A built platform: simulator, tiles, fabric, controller."""

    def __init__(self, config: PlatformConfig):
        self.config = config
        self.stats = StatRegistry()

        n = config.n_proc_tiles
        self.proc_tile_ids = list(range(n))
        self.ctrl_tile_id = n
        self.mem_tile_ids = list(range(n + 1, n + 1 + config.n_mem_tiles))
        all_tiles = self.proc_tile_ids + [self.ctrl_tile_id] + self.mem_tile_ids

        self.sim, shard_of = _sharded_sim(config, all_tiles)
        self.shard_of = shard_of

        topo = StarMeshTopology(all_tiles)
        self.fabric = NocFabric(self.sim, topo, params=config.noc,
                                stats=self.stats)

        self.tiles: Dict[int, Tile] = {}
        for tid in self.proc_tile_ids:
            costs = config.core_overrides.get(tid, config.proc_core)
            params = DtuParams.for_clock(costs.clock.period_ps,
                                         **config.dtu_overrides)
            beacon_us = (config.placement.interval_us
                         if config.placement is not None else None)
            with self.sim.shard_scope(shard_of(tid)):
                vdtu = VDtu(self.sim, tid, self.fabric, params=params,
                            stats=self.stats)
                mux = TileMux(self.sim, tid, vdtu, costs, stats=self.stats,
                              timeslice_us=config.timeslice_us,
                              sched=config.sched, beacon_us=beacon_us)
            self.tiles[tid] = Tile(tid, TileKind.PROCESSING, costs=costs,
                                   dtu=vdtu, mux=mux)

        ctrl_costs = config.controller_core
        ctrl_params = DtuParams.for_clock(ctrl_costs.clock.period_ps,
                                          **config.dtu_overrides)
        with self.sim.shard_scope(shard_of(self.ctrl_tile_id)):
            ctrl_dtu = Dtu(self.sim, self.ctrl_tile_id, self.fabric,
                           params=ctrl_params, stats=self.stats)
            self.tiles[self.ctrl_tile_id] = Tile(self.ctrl_tile_id,
                                                 TileKind.CONTROLLER,
                                                 costs=ctrl_costs,
                                                 dtu=ctrl_dtu)
            self.controller = Controller(self.sim, self.ctrl_tile_id,
                                         ctrl_dtu, costs=ctrl_costs,
                                         stats=self.stats)

        for tid in self.mem_tile_ids:
            with self.sim.shard_scope(shard_of(tid)):
                mdtu = MemoryDtu(self.sim, tid, self.fabric,
                                 dram_size=config.dram_bytes,
                                 stats=self.stats)
            self.tiles[tid] = Tile(tid, TileKind.MEMORY, dtu=mdtu)

        with self.sim.shard_scope(shard_of(self.ctrl_tile_id)):
            self.controller.boot([(tid, config.dram_bytes)
                                  for tid in self.mem_tile_ids],
                                 n_tiles=config.n_proc_tiles)
        for tid in self.proc_tile_ids:
            with self.sim.shard_scope(shard_of(tid)):
                self.controller.boot_wire_tile(tid, self.tiles[tid].mux)
        self._start_rebalancer(shard_of)

    def _start_rebalancer(self, shard_of) -> None:
        # adaptive placement: a controller-shard process, so every input
        # it reads (beacon mailbox, quarantine set, placement table) is
        # shard-local and its decisions are shard-count independent
        self.rebalancer: Optional[Rebalancer] = None
        if self.config.placement is not None:
            with self.sim.shard_scope(shard_of(self.ctrl_tile_id)):
                self.rebalancer = Rebalancer(self.sim, self.controller,
                                             self.config.placement,
                                             self.proc_tile_ids)

    # ------------------------------------------------------------ conveniences

    def mux(self, tile_id: int) -> TileMux:
        return self.tiles[tile_id].mux

    def proc_tiles(self) -> List[Tile]:
        """The processing tiles, in tile-id order."""
        return [self.tiles[tid] for tid in self.proc_tile_ids]

    def vdtu(self, tile_id: int) -> VDtu:
        return self.tiles[tile_id].dtu

    def mem_dtu(self, idx: int = 0) -> MemoryDtu:
        return self.tiles[self.mem_tile_ids[idx]].dtu

    def run_proc(self, gen: Generator, name: str = "setup"):
        """Run a generator as a simulation process to completion."""
        proc = self.sim.process(gen, name=name)
        return self.sim.run_until_event(proc, limit=self.sim.now + 10**13)

    def wire_pager_eps(self, pager_rgate: RGateObj,
                       tile_ids: Optional[List[int]] = None) -> None:
        """Give every TileMux a send gate to the pager service (4.3).

        Boot-time wiring: runs without simulation cost.
        """
        for tid in tile_ids or self.proc_tile_ids:
            if tid == pager_rgate.tile:
                pass  # TileMux may send to a pager on its own tile too
            self.vdtu(tid).configure(EP_TMUX_PAGER, SendEndpoint(
                act=ACT_TILEMUX, dst_tile=pager_rgate.tile,
                dst_ep=pager_rgate.ep, label=tid,
                credits=2, max_credits=2))

    @property
    def now_us(self) -> float:
        return self.sim.now / 1e6


class M3Platform(M3vPlatform):
    """The original M3 (ASPLOS '16): **no tile multiplexing**.

    One activity per tile, period (section 2.1): a tile cannot start a
    new activity until the current one terminated, and co-locating two
    activities is rejected outright.  Useful as the isolation-maximal
    reference point of the M3 / M3x / M3v spectrum.
    """

    def __init__(self, config: PlatformConfig):
        super().__init__(config)
        ctrl = self.controller
        orig_spawn = ctrl.spawn.__get__(ctrl)

        def m3_spawn(name, tile_id, program, **kwargs):
            mux = self.tiles[tile_id].mux
            if mux.resident > 0:
                from repro.kernel.controller import SyscallError
                raise SyscallError(
                    f"M3 runs at most one activity per tile; tile "
                    f"{tile_id} is occupied (use M3x/M3v to multiplex)")
            return (yield from orig_spawn(name, tile_id, program, **kwargs))

        ctrl.spawn = m3_spawn


class M3xPlatform(M3vPlatform):
    """The M3x baseline platform (section 6.4).

    Processing tiles carry a *non-virtualized* DTU and a thin RCTMux;
    all multiplexing runs remotely in the (M3x-extended) controller.
    """

    def __init__(self, config: PlatformConfig):
        # Same assembly as M3v, but swap the per-tile pieces afterwards
        # would leave stale processes; build from scratch instead.
        from repro.mux.m3x import M3xController, M3xMux

        self.config = config
        self.stats = StatRegistry()

        n = config.n_proc_tiles
        self.proc_tile_ids = list(range(n))
        self.ctrl_tile_id = n
        self.mem_tile_ids = list(range(n + 1, n + 1 + config.n_mem_tiles))
        all_tiles = self.proc_tile_ids + [self.ctrl_tile_id] + self.mem_tile_ids

        self.sim, shard_of = _sharded_sim(config, all_tiles)
        self.shard_of = shard_of

        topo = StarMeshTopology(all_tiles)
        self.fabric = NocFabric(self.sim, topo, params=config.noc,
                                stats=self.stats)

        self.tiles = {}
        for tid in self.proc_tile_ids:
            costs = config.core_overrides.get(tid, config.proc_core)
            params = DtuParams.for_clock(costs.clock.period_ps,
                                         **config.dtu_overrides)
            with self.sim.shard_scope(shard_of(tid)):
                dtu = Dtu(self.sim, tid, self.fabric, params=params,
                          stats=self.stats)
                mux = M3xMux(self.sim, tid, dtu, costs, stats=self.stats)
            self.tiles[tid] = Tile(tid, TileKind.PROCESSING, costs=costs,
                                   dtu=dtu, mux=mux)

        ctrl_costs = config.controller_core
        ctrl_params = DtuParams.for_clock(ctrl_costs.clock.period_ps,
                                          **config.dtu_overrides)
        with self.sim.shard_scope(shard_of(self.ctrl_tile_id)):
            ctrl_dtu = Dtu(self.sim, self.ctrl_tile_id, self.fabric,
                           params=ctrl_params, stats=self.stats)
            self.tiles[self.ctrl_tile_id] = Tile(self.ctrl_tile_id,
                                                 TileKind.CONTROLLER,
                                                 costs=ctrl_costs,
                                                 dtu=ctrl_dtu)
            self.controller = M3xController(self.sim, self.ctrl_tile_id,
                                            ctrl_dtu, costs=ctrl_costs,
                                            stats=self.stats)
        # remote multiplexing has no tile-local contexts to live-migrate
        self.rebalancer = None

        for tid in self.mem_tile_ids:
            with self.sim.shard_scope(shard_of(tid)):
                mdtu = MemoryDtu(self.sim, tid, self.fabric,
                                 dram_size=config.dram_bytes,
                                 stats=self.stats)
            self.tiles[tid] = Tile(tid, TileKind.MEMORY, dtu=mdtu)

        with self.sim.shard_scope(shard_of(self.ctrl_tile_id)):
            self.controller.boot([(tid, config.dram_bytes)
                                  for tid in self.mem_tile_ids],
                                 n_tiles=config.n_proc_tiles)
        for tid in self.proc_tile_ids:
            with self.sim.shard_scope(shard_of(tid)):
                self.controller.boot_wire_tile(tid, self.tiles[tid].mux)
