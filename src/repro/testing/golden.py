"""Canonical trace serialization and golden-file conformance.

The tracer's raw events contain two process-global counters (message
``uid``, packet ``pid``) that are unique but not stable across runs in
one interpreter; :func:`canonical_events` renumbers both by first
appearance, after which the same seed and workload produce
byte-identical JSON (:func:`canonical_json`).

Golden files commit a *digest* — event count, per-kind counts, the
SHA-256 of the full canonical JSON, and the head of the trace for
useful diffs — rather than the trace itself, keeping them small while
still pinning every byte of behavior.  Refresh them after intentional
behavior changes with ``repro trace --refresh`` (or
:func:`write_golden`).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Sequence, Union

from repro.sim.trace import TraceEvent, Tracer, capture

__all__ = [
    "GOLDEN_DIR",
    "GOLDEN_WORKLOADS",
    "canonical_events",
    "canonical_json",
    "digest",
    "diff_digest",
    "load_golden",
    "record_trace",
    "write_golden",
]

GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"
DIGEST_VERSION = 1
HEAD_EVENTS = 32

# Fields renumbered by first appearance (process-global counters).
_RENUMBERED_FIELDS = ("uid", "pid")
# Activity-id fields share one id space; the reserved ids (TileMux's 0
# and ACT_INVALID) are semantically fixed and kept as-is.
_ACT_FIELDS = ("act", "owner", "cur_act", "old_act", "new_act")
_RESERVED_ACTS = frozenset((0, 0xFFFF))


def _events_of(trace: Union[Tracer, Sequence[TraceEvent]]) -> Sequence[TraceEvent]:
    return trace.events if isinstance(trace, Tracer) else trace


def canonical_events(trace) -> List[Dict[str, Any]]:
    """Stable dict form of a trace: ids renumbered by first appearance."""
    remap: Dict[str, Dict[Any, int]] = {f: {} for f in _RENUMBERED_FIELDS}
    act_map: Dict[int, int] = {}
    out: List[Dict[str, Any]] = []
    for seq, ev in enumerate(_events_of(trace)):
        d = ev.as_dict()
        d["seq"] = seq
        for field in _RENUMBERED_FIELDS:
            value = d.get(field)
            if value is None:
                continue
            mapping = remap[field]
            if value not in mapping:
                mapping[value] = len(mapping)
            d[field] = mapping[value]
        for field in _ACT_FIELDS:
            value = d.get(field)
            if value is None or value in _RESERVED_ACTS:
                continue
            if value not in act_map:
                act_map[value] = len(act_map) + 1
            d[field] = act_map[value]
        out.append(d)
    return out


def canonical_json(trace) -> str:
    """Byte-stable JSON of the whole trace (same run ⇒ same bytes)."""
    doc = {"version": DIGEST_VERSION, "events": canonical_events(trace)}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def digest(trace) -> Dict[str, Any]:
    """Compact, committable summary pinning the full canonical trace."""
    events = canonical_events(trace)
    doc = {"version": DIGEST_VERSION, "events": events}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    by_kind: Dict[str, int] = {}
    for d in events:
        by_kind[d["kind"]] = by_kind.get(d["kind"], 0) + 1
    return {
        "version": DIGEST_VERSION,
        "n_events": len(events),
        "sha256": hashlib.sha256(blob.encode()).hexdigest(),
        "by_kind": dict(sorted(by_kind.items())),
        "head": events[:HEAD_EVENTS],
    }


def diff_digest(expected: Dict[str, Any],
                actual: Dict[str, Any]) -> List[str]:
    """Human-readable differences between two digests ([] if identical)."""
    problems: List[str] = []
    if expected.get("version") != actual.get("version"):
        problems.append(f"digest version {actual.get('version')} != "
                        f"expected {expected.get('version')}")
    if expected.get("n_events") != actual.get("n_events"):
        problems.append(f"event count {actual.get('n_events')} != "
                        f"expected {expected.get('n_events')}")
    exp_kinds = expected.get("by_kind", {})
    act_kinds = actual.get("by_kind", {})
    for kind in sorted(set(exp_kinds) | set(act_kinds)):
        e, a = exp_kinds.get(kind, 0), act_kinds.get(kind, 0)
        if e != a:
            problems.append(f"kind {kind}: {a} events, expected {e}")
    exp_head = expected.get("head", [])
    act_head = actual.get("head", [])
    for i, (e, a) in enumerate(zip(exp_head, act_head)):
        if e != a:
            problems.append(f"first divergence at event #{i}: "
                            f"got {a}, expected {e}")
            break
    if not problems and expected.get("sha256") != actual.get("sha256"):
        problems.append(f"trace hash {actual.get('sha256')} != expected "
                        f"{expected.get('sha256')} (divergence beyond the "
                        f"recorded head)")
    return problems


# -- golden workloads ---------------------------------------------------------
#
# Small, fixed-parameter versions of the paper's microbenchmarks; the
# noisy per-step `evq_pop` events are excluded to keep traces focused
# on architectural behavior.

def _fig6_workload() -> None:
    from repro.core.exps.fig6 import Fig6Params, run_fig6

    run_fig6(Fig6Params(iterations=10, warmup=2))


def _fig8_workload() -> None:
    from repro.core.exps.fig8 import Fig8Params, run_fig8

    run_fig8(Fig8Params(repetitions=5, warmup=1))


GOLDEN_WORKLOADS: Dict[str, Callable[[], None]] = {
    "fig6": _fig6_workload,
    "fig8": _fig8_workload,
}


def record_trace(name: str) -> Tracer:
    """Run golden workload ``name`` under tracing; returns the tracer."""
    workload = GOLDEN_WORKLOADS[name]
    with capture(exclude=("evq_pop",)) as tracer:
        workload()
    return tracer


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def load_golden(name: str) -> Dict[str, Any]:
    with open(golden_path(name)) as fh:
        return json.load(fh)


def write_golden(name: str, trace) -> Path:
    path = golden_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(digest(trace), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path
