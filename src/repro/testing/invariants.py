"""Online invariant checkers over execution traces.

Each checker subscribes to a :class:`repro.sim.trace.Tracer` and
verifies one system-wide property *continuously* while the simulation
runs, raising :class:`InvariantViolation` at the first offending event.
The checkers consume only trace events (never simulator internals), so
the same suite runs unchanged against M3v and M3x platforms — events a
system never emits make the corresponding checks vacuously true
(e.g. M3x has no ``cur_inc``).

The five properties (ISSUE: sections 3.5, 3.7, 3.8 of the paper):

* :class:`MessageConservation` — no message is lost or duplicated
  end-to-end: every ``msg_send`` uid is delivered, bounced, dropped by
  a fault injector, or discarded as a retransmit duplicate exactly
  once, and only delivered messages are fetched.
* :class:`CurActConsistency` — the unread count in ``CUR_ACT`` always
  equals deposited-minus-fetched: the register value read back by the
  atomic activity switch must match the balance of ``cur_inc`` /
  ``cur_dec`` / routed core requests since the previous switch.
* :class:`CoreReqQueueBound` — the vDTU core-request queue never
  exceeds its capacity, stalls only happen on a full queue, and the
  queue length evolves by exactly one per enqueue/ack.
* :class:`BlockedWakeup` — a blocked activity for which messages
  arrive is always woken (the lost-wakeup freedom of section 3.7).
* :class:`EndpointOwnership` — endpoints are only ever used by their
  owning activity (the isolation property of section 3.5).

Usage::

    from repro.sim.trace import capture
    from repro.testing.invariants import InvariantSuite

    with capture(record=False) as tracer:
        suite = InvariantSuite().attach(tracer)
        ...  # build platform, run workload, drain the simulation
    suite.finish()   # end-of-trace checks (e.g. messages in flight)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple, Type

from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "InvariantViolation",
    "Invariant",
    "MessageConservation",
    "CurActConsistency",
    "CoreReqQueueBound",
    "BlockedWakeup",
    "EndpointOwnership",
    "ALL_INVARIANTS",
    "InvariantSuite",
]


class InvariantViolation(AssertionError):
    """A system-wide property was violated by the traced execution."""


class Invariant:
    """Base class: one property checked over the event stream."""

    name = "invariant"

    def on_event(self, ev: TraceEvent) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        """End-of-trace checks (defaults to none)."""

    def fail(self, msg: str, ev: Optional[TraceEvent] = None) -> None:
        where = f" at {ev!r}" if ev is not None else ""
        raise InvariantViolation(f"[{self.name}] {msg}{where}")


class MessageConservation(Invariant):
    """Every sent message is delivered or bounced exactly once."""

    name = "msg-conservation"

    def __init__(self) -> None:
        self.sent: Set[int] = set()
        self.delivered: Set[int] = set()
        self.bounced: Set[int] = set()
        self.dropped: Set[int] = set()   # swallowed by a fault injector
        self.deduped: Set[int] = set()   # retransmit duplicate, discarded

    def on_event(self, ev: TraceEvent) -> None:
        kind = ev.kind
        if kind == "msg_send":
            uid = ev.get("uid")
            if uid in self.sent:
                self.fail(f"uid {uid} sent twice", ev)
            self.sent.add(uid)
        elif kind == "msg_deliver":
            uid = ev.get("uid")
            if uid not in self.sent:
                self.fail(f"uid {uid} delivered but never sent", ev)
            if uid in self.delivered:
                self.fail(f"uid {uid} delivered twice (duplicated)", ev)
            if uid in self.bounced:
                self.fail(f"uid {uid} delivered after bouncing", ev)
            self.delivered.add(uid)
        elif kind == "msg_bounce":
            uid = ev.get("uid")
            if uid not in self.sent:
                self.fail(f"uid {uid} bounced but never sent", ev)
            if uid in self.delivered:
                self.fail(f"uid {uid} bounced after delivery", ev)
            if uid in self.bounced:
                self.fail(f"uid {uid} bounced twice", ev)
            self.bounced.add(uid)
        elif kind == "msg_fetch":
            uid = ev.get("uid")
            if uid is None:
                return  # deposited out-of-band (M3x snapshot slow path)
            if uid not in self.delivered:
                self.fail(f"uid {uid} fetched but never delivered", ev)
        elif kind == "pkt_drop":
            uid = ev.get("uid")
            if uid is None:
                return  # a dropped acknowledgement, not a message
            if uid in self.delivered:
                self.fail(f"uid {uid} dropped after delivery", ev)
            if uid in self.dropped:
                self.fail(f"uid {uid} dropped twice", ev)
            self.dropped.add(uid)
        elif kind == "msg_dedup":
            uid = ev.get("uid")
            if uid not in self.sent:
                self.fail(f"uid {uid} deduplicated but never sent", ev)
            if uid in self.delivered:
                self.fail(f"uid {uid} both delivered and deduplicated", ev)
            self.deduped.add(uid)

    def finish(self) -> None:
        lost = (self.sent - self.delivered - self.bounced
                - self.dropped - self.deduped)
        if lost:
            sample = sorted(lost)[:5]
            self.fail(f"{len(lost)} message(s) lost in flight "
                      f"(uids {sample}{'...' if len(lost) > 5 else ''})")


class CurActConsistency(Invariant):
    """CUR_ACT's unread count equals deposited-minus-fetched.

    Maintains a shadow of the counter per (sim, tile) from the deposit
    (``cur_inc``, routed core requests) and fetch (``cur_dec``) events
    and cross-checks it against every value the hardware reports — in
    particular the old count read back by the atomic switch.
    """

    name = "cur-act"

    def __init__(self) -> None:
        self.cur: Dict[Tuple[int, int], int] = {}

    def _key(self, ev: TraceEvent) -> Tuple[int, int]:
        return (ev.sim, ev.get("tile"))

    def on_event(self, ev: TraceEvent) -> None:
        kind = ev.kind
        if kind == "act_switch":
            key = self._key(ev)
            shadow = self.cur.get(key)
            if shadow is not None and shadow != ev.get("old_msgs"):
                self.fail(f"tile {key[1]}: switch read CUR_ACT count "
                          f"{ev.get('old_msgs')}, but deposited-minus-"
                          f"fetched is {shadow}", ev)
            self.cur[key] = ev.get("new_msgs")
        elif kind == "cur_inc":
            key = self._key(ev)
            shadow = self.cur.get(key, 0)
            if ev.get("cur") != shadow + 1:
                self.fail(f"tile {key[1]}: deposit reported count "
                          f"{ev.get('cur')}, expected {shadow + 1}", ev)
            self.cur[key] = ev.get("cur")
        elif kind == "cur_dec":
            key = self._key(ev)
            shadow = self.cur.get(key, 0)
            if ev.get("cur") != shadow - 1:
                self.fail(f"tile {key[1]}: fetch reported count "
                          f"{ev.get('cur')}, expected {shadow - 1}", ev)
            self.cur[key] = ev.get("cur")
        elif kind == "core_req_route" and ev.get("to_cur"):
            # TileMux accounted a raced deposit into the live register
            key = self._key(ev)
            shadow = self.cur.get(key, 0)
            if ev.get("count") != shadow + 1:
                self.fail(f"tile {key[1]}: routed-to-CUR count "
                          f"{ev.get('count')}, expected {shadow + 1}", ev)
            self.cur[key] = ev.get("count")


class CoreReqQueueBound(Invariant):
    """The core-request queue never exceeds its capacity (section 3.8)."""

    name = "core-req-bound"

    def __init__(self) -> None:
        self.qlen: Dict[Tuple[int, int], int] = {}
        self.cap: Dict[Tuple[int, int], int] = {}

    def _key(self, ev: TraceEvent) -> Tuple[int, int]:
        return (ev.sim, ev.get("tile"))

    def on_event(self, ev: TraceEvent) -> None:
        kind = ev.kind
        if kind == "core_req_enq":
            key = self._key(ev)
            cap = ev.get("cap")
            self.cap[key] = cap
            if ev.get("qlen") > cap:
                self.fail(f"tile {key[1]}: queue length {ev.get('qlen')} "
                          f"exceeds capacity {cap}", ev)
            shadow = self.qlen.get(key, 0)
            if ev.get("qlen") != shadow + 1:
                self.fail(f"tile {key[1]}: enqueue to length "
                          f"{ev.get('qlen')}, expected {shadow + 1}", ev)
            self.qlen[key] = ev.get("qlen")
        elif kind == "core_req_ack":
            key = self._key(ev)
            shadow = self.qlen.get(key)
            if shadow is not None and ev.get("qlen") != shadow - 1:
                self.fail(f"tile {key[1]}: ack to length {ev.get('qlen')}, "
                          f"expected {shadow - 1}", ev)
            self.qlen[key] = ev.get("qlen")
        elif kind == "core_req_stall":
            key = self._key(ev)
            cap = self.cap.get(key)
            if cap is not None and ev.get("qlen") < cap:
                self.fail(f"tile {key[1]}: stalled with queue length "
                          f"{ev.get('qlen')} < capacity {cap}", ev)


class BlockedWakeup(Invariant):
    """A blocked activity with pending messages is eventually woken.

    Tracks blocked activities from ``act_block``/``act_wake`` and marks
    them *pending* when a message arrives for them (a routed core
    request, a deposit counted into their live ``CUR_ACT``, or a direct
    endpoint delivery).  At the end of the trace, no activity may
    remain blocked with pending messages — the lost wakeup the atomic
    switch of section 3.7 exists to prevent.
    """

    name = "blocked-wakeup"

    def __init__(self) -> None:
        # (sim, tile, act) -> seq of the act_block event
        self.blocked: Dict[Tuple[int, int, int], int] = {}
        self.pending: Dict[Tuple[int, int, int], int] = {}

    def on_event(self, ev: TraceEvent) -> None:
        kind = ev.kind
        if kind == "act_block":
            key = (ev.sim, ev.get("tile"), ev.get("act"))
            self.blocked[key] = ev.seq
            self.pending.pop(key, None)
        elif kind in ("act_wake", "act_exit"):
            key = (ev.sim, ev.get("tile"), ev.get("act"))
            self.blocked.pop(key, None)
            self.pending.pop(key, None)
        elif kind == "act_switch":
            # the new activity is running, hence not blocked
            key = (ev.sim, ev.get("tile"), ev.get("new_act"))
            self.blocked.pop(key, None)
            self.pending.pop(key, None)
        elif kind in ("core_req_route", "cur_inc", "msg_deliver"):
            key = (ev.sim, ev.get("tile"), ev.get("act"))
            if key in self.blocked:
                self.pending[key] = ev.seq

    def finish(self) -> None:
        stuck = {k: s for k, s in self.pending.items() if k in self.blocked}
        if stuck:
            (sim, tile, act), seq = sorted(stuck.items())[0]
            self.fail(f"activity {act} on tile {tile} (sim {sim}) stayed "
                      f"blocked although a message arrived (event #{seq}) — "
                      f"lost wakeup")


class EndpointOwnership(Invariant):
    """Endpoints are only used by their owning activity (section 3.5)."""

    name = "ep-ownership"

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind == "ep_use" and ev.get("owner") != ev.get("cur_act"):
            self.fail(f"tile {ev.get('tile')}: activity {ev.get('cur_act')} "
                      f"used endpoint {ev.get('ep')} owned by "
                      f"{ev.get('owner')}", ev)


ALL_INVARIANTS: Tuple[Type[Invariant], ...] = (
    MessageConservation,
    CurActConsistency,
    CoreReqQueueBound,
    BlockedWakeup,
    EndpointOwnership,
)


class InvariantSuite:
    """Runs a set of invariant checkers against one tracer."""

    def __init__(self,
                 checkers: Optional[Iterable[Type[Invariant]]] = None):
        self.checkers: List[Invariant] = [
            cls() for cls in (checkers if checkers is not None
                              else ALL_INVARIANTS)]
        self.seen = 0

    def attach(self, tracer: Tracer) -> "InvariantSuite":
        tracer.subscribe(self.on_event)
        return self

    def on_event(self, ev: TraceEvent) -> None:
        self.seen += 1
        for checker in self.checkers:
            checker.on_event(ev)

    def finish(self) -> None:
        """Run end-of-trace checks; call after the simulation drained."""
        for checker in self.checkers:
            checker.finish()
