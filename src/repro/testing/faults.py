"""Seeded fault injection for whole-system stress tests.

Injectors perturb *timing and resources*, never protocol correctness —
the point is to drive the system through adversarial interleavings
(raced deposits, queue overruns, TLB thrash, preemption at awkward
points) while the invariant checkers
(:mod:`repro.testing.invariants`) watch the execution.

All randomness flows through one explicit ``random.Random(seed)`` held
by the :class:`FaultPlan`, so a (seed, workload) pair reproduces the
exact same perturbed schedule.  Every injector bounds its activity by
a deadline in simulated time so the event heap still drains and tests
can run the simulation to quiescence afterwards.

Usage::

    plat = build_system(SystemConfig(kind="m3v", ...))
    plan = FaultPlan(seed=7, deadline_ps=2_000_000_000)
    plan.add(NocJitter(prob=0.4))
    plan.add(TlbPressure(capacity=2))
    plan.add(ForcedPreemption(mean_gap_ps=200_000_000))
    plan.apply(plat)
    ...  # run the workload
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.dtu.vdtu import VDtu

__all__ = ["NocJitter", "TlbPressure", "ForcedPreemption", "FaultPlan"]

DEFAULT_DEADLINE_PS = 5_000_000_000  # 5 ms of simulated time


class NocJitter:
    """Randomly delays packet injection, causing delivery reorder.

    Packets injected concurrently on disjoint links may overtake each
    other when one is held back — the jitter exercises the raced
    deposit paths (core requests vs. activity switches) and the
    backpressure machinery.
    """

    def __init__(self, prob: float = 0.3, max_delay_ps: int = 20_000_000):
        self.prob = prob
        self.max_delay_ps = max_delay_ps

    def apply(self, plan: "FaultPlan", platform) -> None:
        sim, fabric = platform.sim, platform.fabric
        rng, deadline = plan.rng, plan.deadline_ps
        orig_send = fabric.send

        def jittered_send(packet):
            if sim.now < deadline and rng.random() < self.prob:
                delay = rng.randrange(1, self.max_delay_ps)

                def _held():
                    yield delay
                    orig_send(packet)

                return sim.process(_held(), name=f"jitter-pkt{packet.pid}")
            return orig_send(packet)

        fabric.send = jittered_send


class TlbPressure:
    """Shrinks the vDTU TLBs and randomly sheds entries.

    Forces frequent translate TMCalls and TLB refills, interleaving
    TileMux work with message delivery.  No-op on M3x tiles (their DTU
    has no TLB).
    """

    def __init__(self, capacity: int = 2, shed_gap_ps: int = 500_000_000):
        self.capacity = capacity
        self.shed_gap_ps = shed_gap_ps

    def apply(self, plan: "FaultPlan", platform) -> None:
        sim, rng, deadline = platform.sim, plan.rng, plan.deadline_ps
        for _tid, tile in sorted(platform.tiles.items()):
            if not isinstance(tile.dtu, VDtu):
                continue
            tlb = tile.dtu.tlb
            tlb.capacity = max(1, self.capacity)
            while len(tlb) > tlb.capacity:
                tlb._evict()
            sim.process(self._shed(sim, rng, deadline, tlb),
                        name=f"tlb-pressure-{tile.dtu.tile}")

    def _shed(self, sim, rng, deadline, tlb):
        while sim.now < deadline:
            yield rng.randrange(1, self.shed_gap_ps)
            entries = [e for e in tlb._entries.values() if not e.pinned]
            if entries:
                victim = entries[rng.randrange(len(entries))]
                tlb.invalidate(victim.act, victim.virt_page)


class ForcedPreemption:
    """Expires the running activity's time slice at random points.

    Preemption then happens at the next interrupt window, interleaving
    activity switches with whatever the workload was doing.  No-op on
    M3x tiles (RCTMux has no timer; the controller drives switches).
    """

    def __init__(self, mean_gap_ps: int = 300_000_000):
        self.mean_gap_ps = mean_gap_ps

    def apply(self, plan: "FaultPlan", platform) -> None:
        sim, rng, deadline = platform.sim, plan.rng, plan.deadline_ps
        for _tid, tile in sorted(platform.tiles.items()):
            mux = tile.mux
            if mux is None or not hasattr(mux, "timeslice_ps"):
                continue
            sim.process(self._expire(sim, rng, deadline, mux),
                        name=f"forced-preempt-{mux.tile_id}")

    def _expire(self, sim, rng, deadline, mux):
        while sim.now < deadline:
            yield rng.randrange(1, 2 * self.mean_gap_ps)
            ctx = mux.current
            if ctx is not None and ctx.slice_end > sim.now:
                ctx.slice_end = sim.now


class FaultPlan:
    """A seeded collection of fault injectors applied to one platform."""

    def __init__(self, seed: int,
                 deadline_ps: int = DEFAULT_DEADLINE_PS,
                 injectors: Optional[List] = None):
        self.seed = seed
        self.rng = random.Random(seed)
        self.deadline_ps = deadline_ps
        self.injectors: List = list(injectors) if injectors else []

    def add(self, injector) -> "FaultPlan":
        self.injectors.append(injector)
        return self

    def apply(self, platform) -> "FaultPlan":
        for injector in self.injectors:
            injector.apply(self, platform)
        return self

    @classmethod
    def standard(cls, seed: int,
                 deadline_ps: int = DEFAULT_DEADLINE_PS) -> "FaultPlan":
        """The default stress mix used by the system-level tests."""
        return cls(seed, deadline_ps=deadline_ps).add(
            NocJitter()).add(ForcedPreemption())
