"""Chaos campaigns: seeded fault storms composed with overload bursts.

A :class:`ChaosCampaign` is a named, deterministic sequence of
:class:`Phase` s.  Each phase runs one figS serving point
(:mod:`repro.core.exps.figs`) — the full multi-tenant topology with
the PR-1 invariant checkers attached online — under a chosen mix of
NoC fault rate and offered load, then asserts *campaign-level*
guarantees on the result:

* **conservation / exactly-once** — every generated request resolves
  exactly once (completed, shed, or failed); ``_run_serving`` already
  refuses to return otherwise, and the phase re-checks the arithmetic
  on the reduced stats;
* **invariants** — any :class:`repro.testing.invariants`
  violation (lost wakeups, credit leaks, cur-act divergence) raises
  out of the run and fails the phase;
* **SLO floors** — per-phase lower bounds (:class:`Floor`) on goodput
  and upper bounds on tail latency and failure count, so a campaign
  distinguishes "survived the burst" from "survived with service".

Campaigns are pure functions of their seed: the same seed yields the
same arrival schedule, the same fault pattern and therefore the same
verdicts, which is what lets CI run them as a strict gate
(``scripts/check_chaos.sh``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

__all__ = ["Floor", "Phase", "ChaosCampaign", "PhaseResult",
           "CampaignResult", "run_campaign", "standard_campaigns",
           "run_campaigns"]


@dataclass(frozen=True)
class Floor:
    """SLO floor for one phase; ``None`` disables a bound."""

    min_goodput_frac: Optional[float] = None  # of offered load
    max_p99_us: Optional[float] = None
    max_failed_frac: Optional[float] = None   # of generated requests

    def check(self, res: Dict, expected: int,
              offered_rps: float) -> List[str]:
        problems: List[str] = []
        if self.min_goodput_frac is not None:
            floor = self.min_goodput_frac * offered_rps
            if res["goodput_rps"] < floor:
                problems.append(
                    f"goodput {res['goodput_rps']:.0f} rps below floor "
                    f"{floor:.0f} ({self.min_goodput_frac:.0%} of offered)")
        if self.max_p99_us is not None and res["p99_us"] > self.max_p99_us:
            problems.append(f"p99 {res['p99_us']:.0f} us above ceiling "
                            f"{self.max_p99_us:.0f} us")
        if self.max_failed_frac is not None:
            ceiling = self.max_failed_frac * expected
            if res["failed"] > ceiling:
                problems.append(f"{res['failed']} failed requests above "
                                f"ceiling {ceiling:.1f}")
        return problems


@dataclass(frozen=True)
class Phase:
    """One leg of a campaign: a (load, fault mix) applied to the
    serving topology, judged against a :class:`Floor`."""

    label: str
    load: float
    fault_rate: float
    floor: Floor = field(default_factory=Floor)
    system: str = "m3v"
    backend: str = "dtu"
    protection: bool = True
    # adaptive-placement knobs (defaults reproduce the classic static
    # spread-out layout byte-identically — see FigSPoint)
    sched: str = "rr"
    rebalance: bool = False
    pack: int = 1
    skew: float = 0.0
    # mechanism assertion: fail the phase unless the rebalancer actually
    # migrated at least this many activities (keeps the migration-storm
    # campaign from passing vacuously with the rebalancer parked)
    min_migrations: int = 0


@dataclass(frozen=True)
class ChaosCampaign:
    name: str
    phases: List[Phase]
    seed: int = 1
    requests: int = 10          # per gateway, per phase
    kv_shards: int = 4
    gateways: int = 3


@dataclass
class PhaseResult:
    label: str
    ok: bool
    problems: List[str]
    stats: Dict


@dataclass
class CampaignResult:
    name: str
    ok: bool
    phases: List[PhaseResult]

    def summary(self) -> str:
        lines = [f"campaign {self.name}: "
                 f"{'PASS' if self.ok else 'FAIL'}"]
        for ph in self.phases:
            mark = "ok  " if ph.ok else "FAIL"
            s = ph.stats
            lines.append(
                f"  [{mark}] {ph.label:<24s} goodput "
                f"{s.get('goodput_rps', 0):7.0f} rps  "
                f"p99 {s.get('p99_us', 0):8.0f} us  "
                f"shed {s.get('shed', 0):3d}  "
                f"failed {s.get('failed', 0):2d}  "
                f"mig {s.get('migrations', 0):2d}")
            for problem in ph.problems:
                lines.append(f"         - {problem}")
        return "\n".join(lines)


def _run_phase(campaign: ChaosCampaign, index: int,
               phase: Phase) -> PhaseResult:
    from repro.core.exps.figs import FigSPoint, run_figs_point

    pt = FigSPoint(system=phase.system, load=phase.load,
                   backend=phase.backend, protection=phase.protection,
                   kv_shards=campaign.kv_shards,
                   gateways=campaign.gateways,
                   requests=campaign.requests,
                   fault_rate=phase.fault_rate,
                   sched=phase.sched, rebalance=phase.rebalance,
                   pack=phase.pack, skew=phase.skew,
                   # phase index folds into the seed so two phases with
                   # the same knobs still see different fault patterns
                   seed=campaign.seed * 1000 + index)
    expected = campaign.gateways * campaign.requests
    problems: List[str] = []
    try:
        res = run_figs_point(pt)
    except Exception as exc:  # invariant violation or stuck run
        return PhaseResult(phase.label, False,
                           [f"{type(exc).__name__}: {exc}"], {})
    resolved = res["completed"] + res["shed"] + res["failed"]
    if resolved != expected:
        problems.append(f"conservation: {resolved}/{expected} requests "
                        f"resolved exactly once")
    problems += phase.floor.check(res, expected, res["offered_rps"])
    if res.get("migrations", 0) < phase.min_migrations:
        problems.append(f"only {res.get('migrations', 0)} live migrations, "
                        f"phase requires >= {phase.min_migrations}")
    return PhaseResult(phase.label, not problems, problems, res)


def run_campaign(campaign: ChaosCampaign) -> CampaignResult:
    results = [_run_phase(campaign, i, ph)
               for i, ph in enumerate(campaign.phases)]
    return CampaignResult(campaign.name, all(r.ok for r in results),
                          results)


def standard_campaigns(requests: int = 10) -> List[ChaosCampaign]:
    """The CI campaign set (``requests`` per gateway per phase).

    Floors are deliberately loose relative to the committed figS curve
    — they are meltdown detectors, not perf gates; the perf gate is
    ``scripts/check_perf.sh``.
    """
    steady = Floor(min_goodput_frac=0.5, max_p99_us=20_000.0,
                   max_failed_frac=0.2)
    burst = Floor(min_goodput_frac=0.3, max_p99_us=40_000.0,
                  max_failed_frac=0.2)
    survive = Floor(max_failed_frac=0.35)
    campaigns = [
        ChaosCampaign(
            name="m3v-overload-burst", requests=requests,
            phases=[
                Phase("steady 0.7x, 2% faults", 0.7, 0.02, steady),
                Phase("burst 2.0x, 2% faults", 2.0, 0.02, burst),
                Phase("burst 2.0x, 8% faults", 2.0, 0.08, survive),
            ]),
        ChaosCampaign(
            name="m3v-fault-storm", requests=requests,
            phases=[
                Phase("storm 1.0x, 10% faults", 1.0, 0.10, survive),
                Phase("recovery 0.7x, 2% faults", 0.7, 0.02, steady),
            ]),
        ChaosCampaign(
            name="m3v-mpmc-burst", requests=requests,
            phases=[
                Phase("mpmc burst 2.0x, 2% faults", 2.0, 0.02,
                      replace(burst, max_p99_us=60_000.0),
                      backend="mpmc"),
            ]),
        ChaosCampaign(
            name="m3v-migration-storm", requests=requests,
            phases=[
                # packed, skewed KV layout with the EDF mux and the
                # controller rebalancer online: the hot tile must shed
                # replicas via live migration (min_migrations makes the
                # gate non-vacuous), and the conversation state has to
                # survive the moves exactly-once
                Phase("skewed steady 1.0x, 2% faults", 1.0, 0.02,
                      survive, sched="edf", rebalance=True,
                      pack=2, skew=0.8, min_migrations=1),
                # then a fault storm on the same layout: quarantined
                # tiles are evacuated mid-storm while requests keep
                # arriving; only conservation + invariants are floored
                Phase("storm 1.2x, 8% faults", 1.2, 0.08,
                      survive, sched="edf", rebalance=True,
                      pack=2, skew=0.8, min_migrations=1),
            ]),
        ChaosCampaign(
            name="m3x-under-pressure", requests=requests,
            phases=[
                # no goodput floor: the M3x slow path is *expected* to
                # degrade — the campaign only asserts the invariants
                # hold and requests are conserved while it does
                Phase("m3x burst 1.5x, 2% faults", 1.5, 0.02,
                      Floor(max_failed_frac=0.35), system="m3x"),
            ]),
    ]
    return campaigns


def run_campaigns(campaigns: Optional[List[ChaosCampaign]] = None,
                  requests: int = 10) -> List[CampaignResult]:
    return [run_campaign(c)
            for c in (campaigns or standard_campaigns(requests))]
