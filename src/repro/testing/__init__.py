"""Test-support layer: invariant checkers, fault injection, golden traces.

Built on the opt-in tracer (:mod:`repro.sim.trace`):

* :mod:`repro.testing.invariants` — online checkers that subscribe to a
  tracer and assert system-wide properties over whole executions;
* :mod:`repro.testing.faults` — seeded fault injectors (NoC jitter, TLB
  pressure, forced preemption) to stress those properties;
* :mod:`repro.testing.golden` — canonical trace serialization and
  golden-file conformance for the fig6/fig8 microbenchmarks;
* :mod:`repro.testing.chaos` — seeded campaigns composing fault
  storms with overload bursts over the figS serving topology, judged
  against SLO floors and the invariant checkers.
"""

from repro.testing.invariants import (
    ALL_INVARIANTS,
    BlockedWakeup,
    CoreReqQueueBound,
    CurActConsistency,
    EndpointOwnership,
    InvariantSuite,
    InvariantViolation,
    MessageConservation,
)
from repro.testing.faults import (
    FaultPlan,
    ForcedPreemption,
    NocJitter,
    TlbPressure,
)
from repro.testing.chaos import (
    CampaignResult,
    ChaosCampaign,
    Floor,
    Phase,
    run_campaign,
    run_campaigns,
    standard_campaigns,
)

__all__ = [
    "ALL_INVARIANTS",
    "BlockedWakeup",
    "CoreReqQueueBound",
    "CurActConsistency",
    "EndpointOwnership",
    "InvariantSuite",
    "InvariantViolation",
    "MessageConservation",
    "FaultPlan",
    "ForcedPreemption",
    "NocJitter",
    "TlbPressure",
    "CampaignResult",
    "ChaosCampaign",
    "Floor",
    "Phase",
    "run_campaign",
    "run_campaigns",
    "standard_campaigns",
]
