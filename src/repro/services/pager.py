"""The pager service (section 4.3).

The pager is an ordinary OS-service activity responsible for the
address-space layout of the activities under its care (demand loading,
and the policy half of copy-on-write).  On a page fault TileMux sends a
request to the pager; the pager picks a frame from the client's memory
grant and asks the *controller* to map it (a ``MAP`` system call).  The
controller validates the capabilities and forwards the mapping to the
TileMux responsible for the client — the controller never touches page
tables itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator

from repro.kernel.activity import PAGE_SIZE
from repro.kernel.protocol import PagerOp, RpcReply, Syscall

PF_HANDLE_CY = 1400      # fault decode, region lookup, frame choice
ZERO_FILL_CY = 600       # zero-fill policy bookkeeping


@dataclass
class PagerClient:
    """Per-client session state (registered at spawn time)."""

    act_id: int
    mgate_sel: int            # pager-owned mgate over the client's frames
    base_virt: int            # start of the demand-paged region
    frames: int               # total frames in the grant
    mapped: Dict[int, int] = field(default_factory=dict)  # vpage -> frame


class PagerService:
    """Service state + activity program."""

    def __init__(self, rgate_ep: int):
        self.rgate_ep = rgate_ep
        self.clients: Dict[int, PagerClient] = {}
        self.faults_handled = 0

    def register(self, client: PagerClient) -> None:
        self.clients[client.act_id] = client

    def program(self, api) -> Generator:
        while True:
            msg = yield from api.recv(self.rgate_ep)
            req = msg.data
            try:
                value = yield from self._dispatch(api, req)
                reply = RpcReply(req.seq, ok=True, value=value)
            except KeyError as exc:
                reply = RpcReply(req.seq, ok=False, error=f"no session: {exc}")
            yield from api.reply(self.rgate_ep, msg, reply, RpcReply.SIZE)

    def _dispatch(self, api, req) -> Generator:
        if req.op is not PagerOp.PAGEFAULT:
            raise KeyError(str(req.op))
        yield from api.compute(PF_HANDLE_CY)
        args = req.args
        client = self.clients[args["act_id"]]
        virt = args["virt"]
        vpage = virt // PAGE_SIZE
        frame = client.mapped.get(vpage)
        if frame is None:
            frame = (virt - client.base_virt) // PAGE_SIZE
            if not 0 <= frame < client.frames:
                raise KeyError(f"fault outside region: {virt:#x}")
            client.mapped[vpage] = frame
            yield from api.compute(ZERO_FILL_CY)
        # ask the controller to apply the mapping (it forwards to TileMux)
        yield from api.syscall(Syscall.MAP, {
            "act_id": client.act_id,
            "virt": vpage * PAGE_SIZE,
            "mgate_sel": client.mgate_sel,
            "offset": frame * PAGE_SIZE,
            "pages": 1,
        })
        self.faults_handled += 1
        return {"virt": virt}
