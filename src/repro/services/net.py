"""The net service (section 4.4).

``net`` wraps a smoltcp-like UDP stack plus the AXI-Ethernet driver in
one activity, pinned to the NIC tile.  Clients get POSIX-like sockets
and exchange data and events with the service over their per-session
channel; the service polls/waits on the NIC with interrupt-driven
wake-ups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.kernel.protocol import RpcReply
from repro.mux.api import TmCall
from repro.tiles.nic import EthFrame, NicDevice

# cycle costs of the stack (smoltcp poll, checksums, socket demux) and
# the driver (descriptor handling, cache maintenance), per packet
STACK_TX_CY = 9000
STACK_RX_CY = 9000
DRIVER_TX_CY = 2500
DRIVER_RX_CY = 2500
SOCKET_OP_CY = 1200
COPY_BYTES_PER_CY = 8


class NetOp(enum.Enum):
    SOCKET = "socket"
    BIND = "bind"
    SENDTO = "sendto"
    RECVFROM = "recvfrom"
    CLOSE = "close"


class NetError(Exception):
    pass


@dataclass
class _Socket:
    sid: int
    owner: int
    port: int = 0
    rx: List[EthFrame] = field(default_factory=list)
    # parked RECVFROM requests: (message, request) to answer on arrival
    parked: List[Tuple] = field(default_factory=list)


class NetService:
    """Service state + activity program (always on the NIC tile)."""

    def __init__(self, rgate_ep: int, nic: NicDevice):
        self.rgate_ep = rgate_ep
        self.nic = nic
        self.socks: Dict[int, _Socket] = {}
        self._by_port: Dict[int, _Socket] = {}
        self._next_sid = 1
        self._next_port = 40000
        self.rx_dropped = 0

    def program(self, api) -> Generator:
        # the NIC interrupt must wake us out of a blocked state
        act = api.act
        mux = api.mux

        def wake():
            act._dev_kick = True
            from repro.kernel.activity import ActState
            if act.state is ActState.BLOCKED:
                act.state = ActState.READY
                mux.ready.append(act)
                mux._on_irq()

        self.nic.attach_driver(wake)

        while True:
            progress = False
            while self.nic.has_rx:
                yield from self._handle_rx(api)
                progress = True
            msg = yield from api.fetch(self.rgate_ep)
            if msg is not None:
                yield from self._handle_rpc(api, msg)
                progress = True
            if not progress and not self.nic.has_rx:
                act._dev_kick = False  # about to block; re-armed by the IRQ
                yield TmCall("block", {})

    # ------------------------------------------------------------------- RX

    def _handle_rx(self, api) -> Generator:
        frame = self.nic.pop_rx()
        yield from api.compute(DRIVER_RX_CY + STACK_RX_CY
                               + frame.size // COPY_BYTES_PER_CY)
        sock = self._by_port.get(frame.dst_port)
        if sock is None:
            self.rx_dropped += 1
            return
        if sock.parked:
            msg, req = sock.parked.pop(0)
            value = {"data": frame.payload, "size": frame.size,
                     "from_port": frame.src_port}
            yield from api.reply(self.rgate_ep, msg,
                                 RpcReply(req.seq, ok=True, value=value),
                                 RpcReply.SIZE)
        else:
            sock.rx.append(frame)

    # ------------------------------------------------------------------ RPCs

    def _handle_rpc(self, api, msg) -> Generator:
        req = msg.data
        client = msg.label
        try:
            value = yield from self._dispatch(api, client, msg, req)
        except NetError as exc:
            yield from api.reply(self.rgate_ep, msg,
                                 RpcReply(req.seq, ok=False, error=str(exc)),
                                 RpcReply.SIZE)
            return
        if value is _PARKED:
            return  # answered later, when a packet arrives
        yield from api.reply(self.rgate_ep, msg,
                             RpcReply(req.seq, ok=True, value=value),
                             RpcReply.SIZE)

    def _dispatch(self, api, client: int, msg, req) -> Generator:
        op, args = req.op, req.args
        if op is NetOp.SOCKET:
            yield from api.compute(SOCKET_OP_CY)
            sock = _Socket(self._next_sid, owner=client)
            self._next_sid += 1
            self.socks[sock.sid] = sock
            return {"sid": sock.sid}
        sock = self.socks.get(args.get("sid", -1))
        if sock is None or sock.owner != client:
            raise NetError(f"bad socket {args.get('sid')}")
        if op is NetOp.BIND:
            yield from api.compute(SOCKET_OP_CY)
            port = args.get("port") or self._next_port
            self._next_port += 1
            if port in self._by_port:
                raise NetError(f"port {port} in use")
            sock.port = port
            self._by_port[port] = sock
            return {"port": port}
        if op is NetOp.SENDTO:
            size = args["size"]
            yield from api.compute(STACK_TX_CY + DRIVER_TX_CY
                                   + size // COPY_BYTES_PER_CY)
            self.nic.transmit(EthFrame(payload=args.get("data"), size=size,
                                       src_port=sock.port,
                                       dst_port=args["dst_port"]))
            return {"sent": size}
        if op is NetOp.RECVFROM:
            yield from api.compute(SOCKET_OP_CY)
            if sock.rx:
                frame = sock.rx.pop(0)
                yield from api.compute(frame.size // COPY_BYTES_PER_CY)
                return {"data": frame.payload, "size": frame.size,
                        "from_port": frame.src_port}
            sock.parked.append((msg, req))
            return _PARKED
        if op is NetOp.CLOSE:
            yield from api.compute(SOCKET_OP_CY)
            self.socks.pop(sock.sid, None)
            self._by_port.pop(sock.port, None)
            return None
        raise NetError(f"unknown op {op}")


_PARKED = object()


class NetClient:
    """Client-side socket wrapper (POSIX-like, section 4.4)."""

    def __init__(self, api, send_ep: int, reply_ep: int):
        self.api = api
        self.send_ep = send_ep
        self.reply_ep = reply_ep

    def _rpc(self, op: NetOp, args: dict, size: int = 64) -> Generator:
        value = yield from self.api.rpc(self.send_ep, self.reply_ep, op,
                                        args, size=size)
        return value

    def socket(self) -> Generator:
        value = yield from self._rpc(NetOp.SOCKET, {})
        return value["sid"]

    def bind(self, sid: int, port: int = 0) -> Generator:
        value = yield from self._rpc(NetOp.BIND, {"sid": sid, "port": port})
        return value["port"]

    def sendto(self, sid: int, dst_port: int, data, size: int) -> Generator:
        """Send a datagram; the payload travels as a vDTU message to net."""
        value = yield from self._rpc(NetOp.SENDTO,
                                     {"sid": sid, "dst_port": dst_port,
                                      "data": data, "size": size},
                                     size=min(size + 48, 2048))
        return value["sent"]

    def recvfrom(self, sid: int) -> Generator:
        """Blocking receive; net replies when a datagram arrives."""
        return (yield from self._rpc(NetOp.RECVFROM, {"sid": sid}))

    def close(self, sid: int) -> Generator:
        yield from self._rpc(NetOp.CLOSE, {"sid": sid})
