"""The m3fs service and its client library.

m3fs is M3's extent-based in-memory file system.  Its defining
property (sections 2.2, 6.3): a read or write request does not move
data through the service.  Instead the service *grants the client
direct access to an entire extent* by deriving a memory gate over the
extent's byte range and delegating it; the client then reads/writes the
data via its vDTU without involving the file system again until it
crosses into the next extent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.dtu.endpoints import Perm
from repro.kernel.protocol import RpcReply, Syscall
from repro.services.fsdata import BLOCK_SIZE, FsError, FsImage, Inode, InodeKind


class FsOp(enum.Enum):
    OPEN = "open"
    CLOSE = "close"
    STAT = "stat"
    NEXT_EXTENT = "next_extent"
    MKDIR = "mkdir"
    READDIR = "readdir"
    UNLINK = "unlink"
    CREATE = "create"


# flags
O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 64
O_TRUNC = 512

# cycle costs of service-side request processing (calibrated; the fs is
# a real implementation, these model the Rust service's CPU time)
OP_BASE_CY = 900
OPEN_CY = 2200
NEXT_EXTENT_CY = 1600
DIR_ENTRY_CY = 120


@dataclass
class _OpenFile:
    inode: Inode
    flags: int
    client: int


class M3fsService:
    """Service state + the activity program that serves requests."""

    def __init__(self, image: FsImage, image_ep: int, image_sel: int,
                 rgate_ep: int, max_extent_blocks: int = 64):
        self.image = image
        self.image_ep = image_ep       # fs's own memory EP onto the image
        self.image_sel = image_sel     # fs's mgate capability selector
        self.rgate_ep = rgate_ep
        self.max_extent_blocks = max_extent_blocks
        self._files: Dict[int, _OpenFile] = {}
        self._next_fd = 3

    # ------------------------------------------------------------- the program

    def program(self, api) -> Generator:
        """The m3fs activity: serve requests forever."""
        while True:
            msg = yield from api.recv(self.rgate_ep)
            req = msg.data
            try:
                value = yield from self._dispatch(api, msg.label, req)
                reply = RpcReply(req.seq, ok=True, value=value)
            except FsError as exc:
                reply = RpcReply(req.seq, ok=False, error=str(exc))
            yield from api.reply(self.rgate_ep, msg, reply, RpcReply.SIZE)

    def _dispatch(self, api, client: int, req) -> Generator:
        yield from api.compute(OP_BASE_CY)
        op = req.op
        args = req.args
        if op is FsOp.OPEN:
            return (yield from self._open(api, client, args))
        if op is FsOp.CLOSE:
            return self._close(args)
        if op is FsOp.STAT:
            inode = self.image.lookup(args["path"])
            return {"size": inode.size, "kind": inode.kind.value,
                    "ino": inode.ino}
        if op is FsOp.NEXT_EXTENT:
            return (yield from self._next_extent(api, client, args))
        if op is FsOp.MKDIR:
            self.image.mkdir(args["path"])
            return None
        if op is FsOp.READDIR:
            names = self.image.readdir(args["path"])
            yield from api.compute(DIR_ENTRY_CY * max(1, len(names)))
            return names
        if op is FsOp.UNLINK:
            self.image.unlink(args["path"])
            return None
        if op is FsOp.CREATE:
            inode = self.image.create(args["path"])
            return {"ino": inode.ino}
        raise FsError(f"unknown op {op}")

    def _open(self, api, client: int, args) -> Generator:
        yield from api.compute(OPEN_CY)
        path, flags = args["path"], args.get("flags", O_RDONLY)
        try:
            inode = self.image.lookup(path)
        except FsError:
            if not flags & O_CREAT:
                raise
            inode = self.image.create(path)
        if inode.kind is InodeKind.DIR and flags & (O_WRONLY | O_RDWR):
            raise FsError(f"{path}: is a directory")
        if flags & O_TRUNC and inode.kind is InodeKind.FILE:
            for extent in inode.extents:
                self.image.alloc.free_extent(extent)
            inode.extents.clear()
            inode.size = 0
        fd = self._next_fd
        self._next_fd += 1
        self._files[fd] = _OpenFile(inode, flags, client)
        return {"fd": fd, "size": inode.size}

    def _close(self, args) -> Optional[dict]:
        fd = args["fd"]
        open_file = self._files.pop(fd, None)
        if open_file is None:
            raise FsError(f"bad fd {fd}")
        size = args.get("size")
        if size is not None and size > open_file.inode.size:
            open_file.inode.size = size
        return None

    def _next_extent(self, api, client: int, args) -> Generator:
        """The heart of m3fs: locate (or allocate) the extent covering
        ``offset`` and delegate a memory gate over it to the client."""
        yield from api.compute(NEXT_EXTENT_CY)
        open_file = self._files.get(args["fd"])
        if open_file is None:
            raise FsError(f"bad fd {args['fd']}")
        inode = open_file.inode
        offset = args["offset"]
        for_write = args.get("for_write", False)
        if args.get("size") is not None and args["size"] > inode.size:
            inode.size = args["size"]  # client reports growth so far

        located = inode.extent_at(offset)
        if located is None:
            if not for_write:
                return None  # EOF
            if offset != inode.allocated_bytes:
                raise FsError("sparse writes are not supported")
            want = (args.get("want_bytes", BLOCK_SIZE) + BLOCK_SIZE - 1) \
                // BLOCK_SIZE
            extent = self.image.append_extent(inode, want,
                                              self.max_extent_blocks)
            # allocated blocks must be cleared before handing them out
            # (this is why writes are much slower than reads, section 6.3)
            yield from api.write(self.image_ep, extent.byte_offset,
                                 b"\x00" * extent.bytes)
            ext_file_off = offset
        else:
            extent, into = located
            ext_file_off = offset - into

        perm = Perm.RW if for_write else Perm.R
        sel = yield from api.syscall(Syscall.DERIVE_MGATE, {
            "mgate_sel": self.image_sel, "offset": extent.byte_offset,
            "size": extent.bytes, "perm": perm})
        client_sel = yield from api.syscall(Syscall.DELEGATE, {
            "sel": sel, "target_act": client})
        return {"sel": client_sel, "ext_off": ext_file_off,
                "ext_len": extent.bytes}


class FsClient:
    """Client-side file handle layer (what the musl port calls into).

    Keeps one data endpoint and the currently granted extent window
    per file; only crossing an extent boundary costs an RPC + two
    controller syscalls.
    """

    # client-side bookkeeping per read/write call (buffered-IO layer)
    CALL_CY = 700

    def __init__(self, api, send_ep: int, reply_ep: int, data_ep: int):
        self.api = api
        self.send_ep = send_ep
        self.reply_ep = reply_ep
        self.data_ep = data_ep
        self._pos: Dict[int, int] = {}
        self._size: Dict[int, int] = {}
        self._window: Dict[int, Tuple[int, int, bool]] = {}  # fd -> (off, len, rw)
        self._dirty: Dict[int, bool] = {}
        self._ep_owner: int = -1  # fd whose extent the data EP points at

    def _rpc(self, op: FsOp, args: dict) -> Generator:
        value = yield from self.api.rpc(self.send_ep, self.reply_ep, op, args)
        return value

    # -------------------------------------------------------------- operations

    def open(self, path: str, flags: int = O_RDONLY) -> Generator:
        value = yield from self._rpc(FsOp.OPEN, {"path": path, "flags": flags})
        fd = value["fd"]
        self._pos[fd] = 0
        self._size[fd] = value["size"]
        self._window.pop(fd, None)
        return fd

    def close(self, fd: int) -> Generator:
        size = self._size.get(fd)
        yield from self._rpc(FsOp.CLOSE, {"fd": fd, "size": size})
        for table in (self._pos, self._size, self._window, self._dirty):
            table.pop(fd, None)

    def stat(self, path: str) -> Generator:
        return (yield from self._rpc(FsOp.STAT, {"path": path}))

    def mkdir(self, path: str) -> Generator:
        yield from self._rpc(FsOp.MKDIR, {"path": path})

    def readdir(self, path: str) -> Generator:
        return (yield from self._rpc(FsOp.READDIR, {"path": path}))

    def unlink(self, path: str) -> Generator:
        yield from self._rpc(FsOp.UNLINK, {"path": path})

    def seek(self, fd: int, pos: int) -> None:
        self._pos[fd] = pos

    def size(self, fd: int) -> int:
        return self._size[fd]

    def _ensure_window(self, fd: int, for_write: bool) -> Generator:
        """Make the extent window cover the current position."""
        pos = self._pos[fd]
        window = self._window.get(fd)
        if window is not None and self._ep_owner == fd:
            off, length, rw = window
            if off <= pos < off + length and (rw or not for_write):
                return True
        value = yield from self._rpc(FsOp.NEXT_EXTENT, {
            "fd": fd, "offset": pos, "for_write": for_write,
            "want_bytes": 64 * BLOCK_SIZE, "size": self._size.get(fd)})
        if value is None:
            return False  # EOF
        yield from self.api.syscall(Syscall.ACTIVATE,
                                    {"sel": value["sel"],
                                     "ep_id": self.data_ep})
        self._window[fd] = (value["ext_off"], value["ext_len"], for_write)
        self._ep_owner = fd
        return True

    def read(self, fd: int, n: int) -> Generator:
        """POSIX-style read of up to ``n`` bytes at the current position."""
        yield from self.api.compute(self.CALL_CY)
        pos = self._pos[fd]
        n = min(n, self._size[fd] - pos)
        if n <= 0:
            return b""
        if not (yield from self._ensure_window(fd, for_write=False)):
            return b""
        off, length, _ = self._window[fd]
        n = min(n, off + length - pos)
        data = yield from self.api.read(self.data_ep, pos - off, n)
        self._pos[fd] = pos + n
        return data

    def write(self, fd: int, data: bytes) -> Generator:
        """POSIX-style write at the current position (append-oriented)."""
        yield from self.api.compute(self.CALL_CY)
        done = 0
        while done < len(data):
            pos = self._pos[fd]
            if not (yield from self._ensure_window(fd, for_write=True)):
                raise FsError("no extent for write")
            off, length, _ = self._window[fd]
            chunk = data[done:done + (off + length - pos)]
            yield from self.api.write(self.data_ep, pos - off, chunk)
            done += len(chunk)
            self._pos[fd] = pos + len(chunk)
            self._size[fd] = max(self._size[fd], self._pos[fd])
        return len(data)
