"""OS services — activities providing file system, paging and networking.

Like in M3/M3x/M3v, services are ordinary activities on user tiles:
they receive requests over DTU channels and hand out capabilities
(e.g. memory gates onto file extents) instead of copying data through
themselves wherever possible.
"""

from repro.services.fsdata import BlockAllocator, FsImage, Inode, InodeKind
from repro.services.m3fs import FsClient, FsOp, M3fsService
from repro.services.pager import PagerService
from repro.services.net import NetClient, NetOp, NetService

__all__ = [
    "BlockAllocator",
    "FsImage",
    "Inode",
    "InodeKind",
    "FsOp",
    "M3fsService",
    "FsClient",
    "PagerService",
    "NetService",
    "NetClient",
    "NetOp",
]
