"""Overload protection for multi-tenant serving (figS).

The figS scenario points an open-loop load generator at a sharded KV
store behind a balancer.  Open-loop arrivals do not slow down when the
system saturates, so without protection the queues grow without bound,
every request blows through its SLO, and *goodput* (completions that
met their deadline) collapses even though raw throughput holds.  This
module is the protection stack that turns that collapse into a flat
line:

* :class:`TokenBucket` — per-tenant admission quotas, so one tenant's
  burst cannot starve the others (shed reason ``quota``);
* :class:`AdmissionQueue` — a bounded queue that sheds on overflow
  (``full``) and sheds *early* any request whose deadline cannot be
  met given the queue ahead of it (``deadline``) — work we already
  know is wasted is cheapest to drop at admission;
* :class:`ServiceEstimator` — the integer-EWMA service-time estimate
  that prices the deadline check;
* :class:`CircuitBreaker` — steers traffic away from shards whose tile
  the controller has quarantined (PR 3 watchdog machinery) or that
  keep failing, with a cooldown before re-probing;
* :class:`ServingStack` — one object bundling the above, built from
  an :class:`~repro.api.ServingSpec` by ``build_system`` and shared by
  the gateways and the balancer of one serving deployment.

Backpressure itself is not a class here: it is the composition of
``ActivityApi.send_nowait`` (credit exhaustion surfaces as ``False``
instead of a stall) with these bounded queues — the shard's unreturned
credits push into the balancer's per-shard queue, whose bound pushes
into the gateway's queue, whose bound sheds at the client edge.

Everything is integer-picosecond state machines with no entropy and no
wall-clock reads, so serving decisions are bit-deterministic and safe
under the sharded engine.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["AdmissionQueue", "CircuitBreaker", "ServiceEstimator",
           "ServingStack", "TokenBucket"]


class TokenBucket:
    """Per-tenant admission quota: ``rate_rps`` with ``burst`` headroom.

    Rate 0 means unmetered.  Refill is computed lazily from the elapsed
    simulated time, so the bucket costs nothing while idle.
    """

    __slots__ = ("rate_pps", "burst", "tokens", "last_ps")

    def __init__(self, rate_rps: float, burst: float = 8.0):
        self.rate_pps = rate_rps / 1e12
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_ps = 0

    def allow(self, now_ps: int) -> bool:
        if self.rate_pps <= 0.0:
            return True
        elapsed = now_ps - self.last_ps
        if elapsed > 0:
            self.tokens = min(self.burst,
                              self.tokens + elapsed * self.rate_pps)
            self.last_ps = now_ps
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class ServiceEstimator:
    """Integer EWMA (alpha = 1/8) of observed service times in ps."""

    __slots__ = ("estimate_ps",)

    def __init__(self, initial_ps: int = 500_000_000):
        self.estimate_ps = int(initial_ps)

    def observe(self, sample_ps: int) -> None:
        self.estimate_ps = (7 * self.estimate_ps + int(sample_ps)) // 8


class AdmissionQueue:
    """A bounded FIFO with deadline-aware shedding.

    Items must expose ``deadline_ps``.  ``offer`` refuses a request
    that cannot finish by its deadline given the estimated work queued
    ahead of it; ``scrub`` re-applies the same test to already-queued
    requests (an overload burst can invalidate yesterday's admission).
    """

    __slots__ = ("slots", "_q")

    def __init__(self, slots: int):
        self.slots = int(slots)
        self._q: Deque = deque()

    def __len__(self) -> int:
        return len(self._q)

    @property
    def full(self) -> bool:
        return len(self._q) >= self.slots

    def _misses_deadline(self, item, now_ps: int, est_ps: int,
                         depth: int) -> bool:
        return now_ps + (depth + 1) * est_ps > item.deadline_ps

    def offer(self, item, now_ps: int, est_ps: int) -> str:
        """Returns ``"admitted"``, ``"full"`` or ``"deadline"``."""
        if self.full:
            return "full"
        if self._misses_deadline(item, now_ps, est_ps, len(self._q)):
            return "deadline"
        self._q.append(item)
        return "admitted"

    def scrub(self, now_ps: int, est_ps: int) -> List:
        """Drop queued items that can no longer meet their deadline."""
        shed: List = []
        kept: Deque = deque()
        depth = 0
        for item in self._q:
            if self._misses_deadline(item, now_ps, est_ps, depth):
                shed.append(item)
            else:
                kept.append(item)
                depth += 1
        self._q = kept
        return shed

    def pop(self):
        return self._q.popleft() if self._q else None

    def push_front(self, item) -> None:
        """Return an item the sender could not flush (credits gone)."""
        self._q.appendleft(item)


class CircuitBreaker:
    """Per-target breaker, quarantine-aware.

    A *target* is a small integer (figS: the shard index); ``tile_of``
    maps it to the tile id checked against the controller's quarantine
    set, so the PR 3 watchdog's verdict steers serving traffic too.
    ``failures`` consecutive failures open the breaker for
    ``cooldown_ps``; expiry closes it again (the next failure run
    re-opens it — a cheap half-open probe).
    """

    def __init__(self, failures: int, cooldown_ps: int,
                 controller=None, tile_of: Optional[Dict[int, int]] = None,
                 stats=None):
        self.failures = int(failures)
        self.cooldown_ps = int(cooldown_ps)
        self.controller = controller
        self.tile_of = tile_of or {}
        self._fails: Dict[int, int] = {}
        self._open_until: Dict[int, int] = {}
        self._ctr_open = stats.counter("serving/breaker_opens") \
            if stats else None

    def record_success(self, target: int) -> None:
        self._fails[target] = 0

    def record_failure(self, target: int, now_ps: int) -> None:
        n = self._fails.get(target, 0) + 1
        self._fails[target] = n
        if n >= self.failures and target not in self._open_until:
            self._open_until[target] = now_ps + self.cooldown_ps
            if self._ctr_open is not None:
                self._ctr_open.add()

    def healthy(self, target: int, now_ps: int) -> bool:
        ctrl = self.controller
        if ctrl is not None:
            tile = self.tile_of.get(target)
            if tile is not None and tile in ctrl.quarantined:
                return False
        until = self._open_until.get(target)
        if until is not None:
            if now_ps < until:
                return False
            del self._open_until[target]
            self._fails[target] = 0
        return True


class ServingStack:
    """One deployment's protection state, built from a ``ServingSpec``.

    Shared (plain Python state, like the experiments' ``env`` dicts) by
    the gateways and balancer of one serving scenario; all methods are
    plain calls — the *costs* of serving decisions are charged by the
    activity programs that invoke them.
    """

    def __init__(self, spec, plat=None, controller=None):
        self.spec = spec
        stats = getattr(plat, "stats", None)
        self.stats = stats
        self.estimator = ServiceEstimator()
        self.breaker = CircuitBreaker(
            spec.breaker_failures, spec.breaker_cooldown_ps,
            controller=controller, stats=stats)
        self._buckets: Dict[str, TokenBucket] = {}
        ctr = (lambda name: stats.counter(name)) if stats else \
            (lambda name: None)
        self._ctr_admitted = ctr("serving/admitted")
        self._ctr_shed = {reason: ctr(f"serving/shed_{reason}")
                          for reason in ("quota", "deadline", "full")}
        self._ctr_backpressure = ctr("serving/backpressure")
        self._ctr_steered = ctr("serving/steered")

    # -- per-tenant quotas ----------------------------------------------------

    def set_quota(self, tenant: str, rate_rps: float) -> None:
        self._buckets[tenant] = TokenBucket(rate_rps,
                                            burst=self.spec.quota_burst)

    def admit_tenant(self, tenant: str, now_ps: int) -> bool:
        bucket = self._buckets.get(tenant)
        return True if bucket is None else bucket.allow(now_ps)

    # -- queue factory + accounting ------------------------------------------

    def make_queue(self) -> AdmissionQueue:
        return AdmissionQueue(self.spec.queue_slots)

    def count_admitted(self) -> None:
        if self._ctr_admitted is not None:
            self._ctr_admitted.add()

    def count_shed(self, reason: str, n: int = 1) -> None:
        ctr = self._ctr_shed[reason]
        if ctr is not None and n:
            ctr.add(n)

    def count_backpressure(self) -> None:
        if self._ctr_backpressure is not None:
            self._ctr_backpressure.add()

    def count_steered(self) -> None:
        if self._ctr_steered is not None:
            self._ctr_steered.add()
