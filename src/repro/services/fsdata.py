"""On-"disk" data structures of the extent-based m3fs.

The file system keeps its metadata (superblock, inodes, directories,
block bitmap) in the service and its file *data* in a DRAM region on a
memory tile.  Files are sequences of extents — contiguous block runs —
whose length is capped (the evaluation uses 64 blocks, section 6.3);
granting a client access to an extent means deriving a memory gate over
the extent's byte range of the image.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

BLOCK_SIZE = 4096

_inode_ids = itertools.count(1)


class FsError(Exception):
    pass


class InodeKind(enum.Enum):
    FILE = "file"
    DIR = "dir"


@dataclass(frozen=True)
class Extent:
    """A contiguous run of blocks."""

    start: int   # first block number
    blocks: int

    @property
    def bytes(self) -> int:
        return self.blocks * BLOCK_SIZE

    @property
    def byte_offset(self) -> int:
        return self.start * BLOCK_SIZE


@dataclass
class Inode:
    kind: InodeKind
    ino: int = field(default_factory=lambda: next(_inode_ids))
    size: int = 0
    extents: List[Extent] = field(default_factory=list)
    entries: Optional[Dict[str, int]] = None  # dirs: name -> ino

    def __post_init__(self) -> None:
        if self.kind is InodeKind.DIR and self.entries is None:
            self.entries = {}

    @property
    def allocated_bytes(self) -> int:
        return sum(e.bytes for e in self.extents)

    def extent_at(self, offset: int) -> Optional[Tuple[Extent, int]]:
        """The extent covering byte ``offset`` and the offset within it."""
        pos = 0
        for extent in self.extents:
            if pos <= offset < pos + extent.bytes:
                return extent, offset - pos
            pos += extent.bytes
        return None


class BlockAllocator:
    """Bitmap allocator favouring contiguous extents.

    A rotating search pointer gives sequentially written files long
    contiguous runs, which is what makes extent grants effective.
    """

    def __init__(self, total_blocks: int):
        if total_blocks <= 0:
            raise ValueError("need at least one block")
        self.total = total_blocks
        self._used = bytearray(total_blocks)  # 0 free, 1 used
        self._next = 0
        self.used_blocks = 0

    @property
    def free_blocks(self) -> int:
        return self.total - self.used_blocks

    def alloc_extent(self, want_blocks: int, max_blocks: int) -> Extent:
        """Allocate up to ``min(want, max)`` contiguous blocks.

        Returns a (possibly shorter) extent; raises FsError when full.
        """
        want = min(want_blocks, max_blocks)
        if want <= 0:
            raise ValueError("extent request of zero blocks")
        if self.free_blocks == 0:
            raise FsError("file system full")
        best: Optional[Tuple[int, int]] = None  # (start, length)
        start = self._next
        scanned = 0
        run_start, run_len = None, 0
        idx = start
        while scanned <= self.total:
            if scanned < self.total and not self._used[idx]:
                if run_start is None:
                    run_start, run_len = idx, 1
                else:
                    run_len += 1
                if run_len >= want:
                    best = (run_start, want)
                    break
            else:
                if run_start is not None and (best is None or run_len > best[1]):
                    best = (run_start, run_len)
                run_start, run_len = None, 0
            idx += 1
            scanned += 1
            if idx >= self.total:
                idx = 0
                run_start, run_len = None, 0  # runs do not wrap
        if best is None:
            raise FsError("file system full")
        s, n = best
        for b in range(s, s + n):
            self._used[b] = 1
        self.used_blocks += n
        self._next = (s + n) % self.total
        return Extent(s, n)

    def free_extent(self, extent: Extent) -> None:
        for b in range(extent.start, extent.start + extent.blocks):
            if not self._used[b]:
                raise FsError(f"double free of block {b}")
            self._used[b] = 0
        self.used_blocks -= extent.blocks


class FsImage:
    """The complete file system: metadata + a block allocator.

    The byte contents live in the DRAM region the image was created
    over; this class only says *where* things are.
    """

    def __init__(self, total_blocks: int):
        self.alloc = BlockAllocator(total_blocks)
        self.inodes: Dict[int, Inode] = {}
        self.root = self._new_inode(InodeKind.DIR)

    def _new_inode(self, kind: InodeKind) -> Inode:
        inode = Inode(kind)
        self.inodes[inode.ino] = inode
        return inode

    # -- path handling -----------------------------------------------------------

    @staticmethod
    def _split(path: str) -> List[str]:
        parts = [p for p in path.split("/") if p]
        if not parts and path not in ("/", ""):
            raise FsError(f"bad path {path!r}")
        return parts

    def lookup(self, path: str) -> Inode:
        node = self.root
        for part in self._split(path):
            if node.kind is not InodeKind.DIR:
                raise FsError(f"{path}: not a directory")
            ino = node.entries.get(part)
            if ino is None:
                raise FsError(f"{path}: no such file or directory")
            node = self.inodes[ino]
        return node

    def _parent_of(self, path: str) -> Tuple[Inode, str]:
        parts = self._split(path)
        if not parts:
            raise FsError("cannot operate on /")
        node = self.root
        for part in parts[:-1]:
            ino = node.entries.get(part)
            if ino is None:
                raise FsError(f"{path}: no such directory")
            node = self.inodes[ino]
            if node.kind is not InodeKind.DIR:
                raise FsError(f"{path}: not a directory")
        return node, parts[-1]

    # -- operations ---------------------------------------------------------------

    def create(self, path: str) -> Inode:
        parent, name = self._parent_of(path)
        if name in parent.entries:
            raise FsError(f"{path}: already exists")
        inode = self._new_inode(InodeKind.FILE)
        parent.entries[name] = inode.ino
        return inode

    def mkdir(self, path: str) -> Inode:
        parent, name = self._parent_of(path)
        if name in parent.entries:
            raise FsError(f"{path}: already exists")
        inode = self._new_inode(InodeKind.DIR)
        parent.entries[name] = inode.ino
        return inode

    def unlink(self, path: str) -> None:
        parent, name = self._parent_of(path)
        ino = parent.entries.pop(name, None)
        if ino is None:
            raise FsError(f"{path}: no such file")
        inode = self.inodes.pop(ino)
        if inode.kind is InodeKind.DIR and inode.entries:
            parent.entries[name] = ino
            self.inodes[ino] = inode
            raise FsError(f"{path}: directory not empty")
        for extent in inode.extents:
            self.alloc.free_extent(extent)

    def readdir(self, path: str) -> List[str]:
        node = self.lookup(path)
        if node.kind is not InodeKind.DIR:
            raise FsError(f"{path}: not a directory")
        return sorted(node.entries)

    def append_extent(self, inode: Inode, want_blocks: int,
                      max_blocks: int) -> Extent:
        extent = self.alloc.alloc_extent(want_blocks, max_blocks)
        inode.extents.append(extent)
        return extent

    def walk(self) -> Iterator[Tuple[str, Inode]]:
        stack = [("/", self.root)]
        while stack:
            path, node = stack.pop()
            yield path, node
            if node.kind is InodeKind.DIR:
                for name, ino in sorted(node.entries.items()):
                    child = self.inodes[ino]
                    stack.append((path.rstrip("/") + "/" + name, child))
